// Dedup index merge example (§3): fold a backup dataset's fingerprint
// index into the main index, comparing a CLAM against a Berkeley-DB-style
// on-SSD index. The paper estimates 2 hours for BDB vs under 2 minutes for
// the CLAM at production scale.
package main

import (
	"fmt"
	"log"

	"repro/clam"
	"repro/internal/bdb"
	"repro/internal/dedup"
	"repro/internal/ssd"
	"repro/internal/vclock"
)

type bdbIndex struct{ h *bdb.HashIndex }

func (b bdbIndex) Insert(k, v uint64) error              { return b.h.Insert(k, v) }
func (b bdbIndex) Lookup(k uint64) (uint64, bool, error) { return b.h.Lookup(k) }

func main() {
	const (
		baseN     = 200_000 // fingerprints already in the main index
		incomingN = 80_000  // fingerprints in the backup being merged
		overlap   = 0.35    // fraction of the backup already present
	)
	base := dedup.NewFingerprintSet(1, baseN)

	// CLAM-backed merge.
	clockC := vclock.New()
	c, err := clam.Open(clam.Options{
		Device: clam.IntelSSD, FlashBytes: 64 << 20, MemoryBytes: 12 << 20, Clock: clockC,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := dedup.Populate(c, base); err != nil {
		log.Fatal(err)
	}
	resC, err := dedup.MergeOverlapping(c, dedup.NewOverlappingSet(base, 2, incomingN, overlap), clockC)
	if err != nil {
		log.Fatal(err)
	}

	// BDB-backed merge. As in the paper, the table fills (nearly) the
	// whole device, so its random writes keep the FTL busy collecting
	// garbage; the cache is ~3% of the table, the paper's buffer-pool
	// ratio.
	clockB := vclock.New()
	tablePages := int64(baseN+incomingN)*10/7/255 + 1
	dev := ssd.New(ssd.IntelX18M(), tablePages*4096*103/100, clockB)
	h, err := bdb.NewHashIndex(bdb.Options{
		Device:          dev,
		CapacityEntries: baseN + incomingN,
		CachePages:      int(tablePages * 3 / 100),
		Seed:            3,
	})
	if err != nil {
		log.Fatal(err)
	}
	idx := bdbIndex{h}
	if err := dedup.Populate(idx, base); err != nil {
		log.Fatal(err)
	}
	resB, err := dedup.MergeOverlapping(idx, dedup.NewOverlappingSet(base, 2, incomingN, overlap), clockB)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("merging %d fingerprints into an index of %d (%.0f%% overlap):\n\n",
		incomingN, baseN, overlap*100)
	fmt.Printf("  CLAM: %10v  (%.0f fingerprints/s, %d new, %d dup)\n",
		resC.Elapsed, resC.Rate(), resC.New, resC.Duplicates)
	fmt.Printf("  BDB:  %10v  (%.0f fingerprints/s, %d new, %d dup)\n",
		resB.Elapsed, resB.Rate(), resB.New, resB.Duplicates)
	fmt.Printf("\nspeedup: %.0fx (paper: ~2 hours vs ~2 minutes, ≈60x)\n",
		float64(resB.Elapsed)/float64(resC.Elapsed))
}
