// Dedup index merge example (§3): fold a backup dataset's fingerprint
// index into the main index, comparing a CLAM against a Berkeley-DB-style
// on-SSD index. The paper estimates 2 hours for BDB vs under 2 minutes for
// the CLAM at production scale.
//
// Fingerprints are full 20-byte SHA-1s stored with their variable-length
// chunk locators through the byte-keyed Store API. The CLAM merge runs in
// batched windows: the duplicate check is a batched existence probe
// (Store.ContainsBatch) that stops at the overlapped index hit without
// fetching the record — a duplicate misclassified by a colliding
// fingerprint is the same outcome a real dedup system accepts — and the
// new fingerprints land through the batched insert pipeline, whose
// value-log appends and index flush writes each go out as one overlapped
// submission. The BDB baseline keeps the old compromise — fingerprints
// truncated to 8 bytes, locators dropped — because its page-cache design
// has no batched submission path.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/clam"
	"repro/internal/bdb"
	"repro/internal/dedup"
	"repro/internal/hashutil"
	"repro/internal/ssd"
	"repro/internal/vclock"
)

// bdbIndex narrows the BDB baseline to dedup.Index the truncating way.
type bdbIndex struct{ h *bdb.HashIndex }

func (b bdbIndex) Put(fp, loc []byte) error {
	return b.h.Insert(hashutil.HashBytes(fp, 9)|1, uint64(len(loc)))
}
func (b bdbIndex) Get(fp []byte) ([]byte, bool, error) {
	_, ok, err := b.h.Lookup(hashutil.HashBytes(fp, 9) | 1)
	return nil, ok, err
}

func main() {
	smoke := flag.Bool("smoke", false, "shrink the workload for CI smoke runs")
	flag.Parse()
	baseN, incomingN := int64(200_000), int64(80_000)
	if *smoke {
		baseN, incomingN = 30_000, 12_000
	}
	const overlap = 0.35 // fraction of the backup already present
	base := dedup.NewFingerprintSet(1, baseN)

	// CLAM-backed merge over real fingerprints and locators.
	clockC := vclock.New()
	c, err := clam.Open(
		clam.WithDevice(clam.IntelSSD),
		clam.WithFlash(64<<20),
		clam.WithMemory(12<<20),
		clam.WithClock(clockC))
	if err != nil {
		log.Fatal(err)
	}
	if err := dedup.Populate(c, base); err != nil {
		log.Fatal(err)
	}
	resC, err := dedup.MergeOverlapping(c, dedup.NewOverlappingSet(base, 2, incomingN, overlap), clockC)
	if err != nil {
		log.Fatal(err)
	}

	// BDB-backed merge. As in the paper, the table fills (nearly) the
	// whole device, so its random writes keep the FTL busy collecting
	// garbage; the cache is ~3% of the table, the paper's buffer-pool
	// ratio.
	clockB := vclock.New()
	tablePages := (baseN+incomingN)*10/7/255 + 1
	dev := ssd.New(ssd.IntelX18M(), tablePages*4096*103/100, clockB)
	h, err := bdb.NewHashIndex(bdb.Options{
		Device:          dev,
		CapacityEntries: baseN + incomingN,
		CachePages:      int(tablePages * 3 / 100),
		Seed:            3,
	})
	if err != nil {
		log.Fatal(err)
	}
	idx := bdbIndex{h}
	if err := dedup.Populate(idx, base); err != nil {
		log.Fatal(err)
	}
	resB, err := dedup.MergeOverlapping(idx, dedup.NewOverlappingSet(base, 2, incomingN, overlap), clockB)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("merging %d fingerprints into an index of %d (%.0f%% overlap):\n\n",
		incomingN, baseN, overlap*100)
	fmt.Printf("  CLAM: %10v  (%.0f fingerprints/s, %d new, %d dup; batched windows, locators stored)\n",
		resC.Elapsed, resC.Rate(), resC.New, resC.Duplicates)
	fmt.Printf("  BDB:  %10v  (%.0f fingerprints/s, %d new, %d dup; truncated fps, no locators)\n",
		resB.Elapsed, resB.Rate(), resB.New, resB.Duplicates)
	fmt.Printf("\nspeedup: %.0fx (paper: ~2 hours vs ~2 minutes, ≈60x)\n",
		float64(resB.Elapsed)/float64(resC.Elapsed))
}
