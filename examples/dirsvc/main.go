// Central directory example (§3): a data-oriented network's resolution
// service mapping content names to host locations, with hosts joining and
// leaving, built on a byte-keyed CLAM store. Names are full content hashes
// and the stored location is a variable-length record (host, generation,
// dialable address). Registrations are inserts, departures are lazy
// deletes, and resolutions are lookups — all at CAM speed.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/clam"
	"repro/internal/dirsvc"
	"repro/internal/vclock"
)

func main() {
	smoke := flag.Bool("smoke", false, "shrink the workload for CI smoke runs")
	flag.Parse()
	names, churn, resolves := 300_000, 50_000, 100_000
	if *smoke {
		names, churn, resolves = 30_000, 5_000, 10_000
	}

	clock := vclock.New()
	store, err := clam.Open(
		clam.WithDevice(clam.IntelSSD),
		clam.WithFlash(64<<20),
		clam.WithMemory(8<<20),
		clam.WithClock(clock))
	if err != nil {
		log.Fatal(err)
	}
	dir := dirsvc.New(store, clock)

	name := func(i int) []byte { return fmt.Appendf(nil, "sha256:%016x", i*2654435761) }
	addr := func(h dirsvc.HostID) string {
		return fmt.Sprintf("10.%d.%d.%d:7654", h>>16&0xff, h>>8&0xff, h&0xff)
	}

	// Initial publication: names spread across 256 hosts.
	for i := 0; i < names; i++ {
		h := dirsvc.HostID(i % 256)
		if err := dir.Register(name(i), h, addr(h)); err != nil {
			log.Fatal(err)
		}
	}

	// Churn: hosts leave (lazy deletes) and content migrates
	// (re-registrations with new hosts, bumping the generation).
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < churn; i++ {
		n := rng.Intn(names)
		if rng.Intn(4) == 0 {
			dir.Unregister(name(n))
		} else {
			h := dirsvc.HostID(300 + rng.Intn(100))
			dir.Register(name(n), h, addr(h))
		}
	}

	// Resolution workload.
	hits := 0
	var sample dirsvc.Location
	for i := 0; i < resolves; i++ {
		loc, ok, err := dir.Resolve(name(rng.Intn(names)))
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			hits++
			sample = loc
		}
	}

	st := dir.Stats()
	fmt.Printf("registrations: %d, departures: %d, resolutions: %d (%.1f%% hits)\n",
		st.Registers, st.Unregisters, st.Resolves, 100*float64(st.ResolveHits)/float64(st.Resolves))
	fmt.Printf("sample resolution: host %d gen %d at %s\n", sample.Host, sample.Gen, sample.Addr)
	fmt.Printf("mean directory operation: %v (virtual time)\n", dir.MeanOpLatency())
	ops := st.Registers + st.Unregisters + st.Resolves
	perSec := float64(ops) / st.TotalTime.Seconds()
	fmt.Printf("sustained directory throughput: %.0f ops/s — far beyond the >10K ops/s the paper targets\n", perSec)
}
