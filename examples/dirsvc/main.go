// Central directory example (§3): a data-oriented network's resolution
// service mapping content names to host locations, with hosts joining and
// leaving, built on a CLAM. Registrations are inserts, departures are lazy
// deletes, and resolutions are lookups — all at CAM speed.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/clam"
	"repro/internal/dirsvc"
	"repro/internal/vclock"
)

func main() {
	clock := vclock.New()
	store, err := clam.Open(clam.Options{
		Device:      clam.IntelSSD,
		FlashBytes:  64 << 20,
		MemoryBytes: 8 << 20,
		Clock:       clock,
	})
	if err != nil {
		log.Fatal(err)
	}
	dir := dirsvc.New(store, clock)

	const names = 300_000
	name := func(i int) []byte { return fmt.Appendf(nil, "sha256:%016x", i*2654435761) }

	// Initial publication: 300k content names across 256 hosts.
	for i := 0; i < names; i++ {
		if err := dir.Register(name(i), dirsvc.HostID(i%256)); err != nil {
			log.Fatal(err)
		}
	}

	// Churn: hosts leave (lazy deletes) and content migrates
	// (re-registrations with new hosts).
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50_000; i++ {
		n := rng.Intn(names)
		if rng.Intn(4) == 0 {
			dir.Unregister(name(n))
		} else {
			dir.Register(name(n), dirsvc.HostID(300+rng.Intn(100)))
		}
	}

	// Resolution workload.
	hits := 0
	for i := 0; i < 100_000; i++ {
		if _, ok, err := dir.Resolve(name(rng.Intn(names))); err != nil {
			log.Fatal(err)
		} else if ok {
			hits++
		}
	}

	st := dir.Stats()
	fmt.Printf("registrations: %d, departures: %d, resolutions: %d (%.1f%% hits)\n",
		st.Registers, st.Unregisters, st.Resolves, 100*float64(st.ResolveHits)/float64(st.Resolves))
	fmt.Printf("mean directory operation: %v (virtual time)\n", dir.MeanOpLatency())
	ops := st.Registers + st.Unregisters + st.Resolves
	perSec := float64(ops) / st.TotalTime.Seconds()
	fmt.Printf("sustained directory throughput: %.0f ops/s — far beyond the >10K ops/s the paper targets\n", perSec)
}
