// Sharded walkthrough: scale a CLAM past one core by partitioning the key
// space across independent shards.
//
// The paper evaluates a single blocking-I/O CLAM; clam.Sharded is this
// repository's scaling path, reached through the same Open call with
// WithShards. Each shard is a complete CLAM — its own BufferHash, device
// models, value log, virtual clock and histograms — and keys route by
// their top bits, so shards never share mutable state. This program:
//
//  1. bulk-loads a million fingerprints through the ctx-aware batch API,
//  2. drives concurrent single-key lookups from 8 goroutines,
//  3. prints the merged statistics and per-shard balance, and
//  4. re-runs the same load on a 1-shard instance (the paper's design
//     point, a plain CLAM behind the same Store interface) to show the
//     wall-clock difference; the gap tracks GOMAXPROCS.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/clam"
	"repro/internal/metrics"
)

const goroutines = 8

var nKeys = 1 << 20

func open(shards int) clam.Store {
	s, err := clam.Open(
		clam.WithDevice(clam.IntelSSD),
		clam.WithFlash(256<<20), // total, split evenly across shards
		clam.WithMemory(64<<20),
		clam.WithShards(shards),
	)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

// keys are uniform 64-bit fingerprints — the paper's workload shape and
// the assumption behind routing by high key bits.
func fingerprints(seed int64, n int) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]uint64, n)
	for i := range ks {
		ks[i] = rng.Uint64()
	}
	return ks
}

// load bulk-inserts, then looks everything up from concurrent goroutines,
// returning the wall-clock time spent. It drives the Store interface, so
// the 8-shard deployment and the single-CLAM baseline run the same code.
func load(s clam.Store, keys []uint64) time.Duration {
	ctx := context.Background()
	start := time.Now()
	const chunk = 16384
	vals := make([]uint64, chunk)
	for off := 0; off < len(keys); off += chunk {
		end := min(off+chunk, len(keys))
		for i := range vals[:end-off] {
			vals[i] = uint64(off + i)
		}
		if err := s.PutBatchU64(ctx, keys[off:end], vals[:end-off]); err != nil {
			log.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	per := len(keys) / goroutines
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, k := range keys[g*per : (g+1)*per] {
				if _, _, err := s.GetU64(k); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	return time.Since(start)
}

func main() {
	smoke := flag.Bool("smoke", false, "shrink the workload for CI smoke runs")
	flag.Parse()
	if *smoke {
		nKeys = 1 << 17
	}
	keys := fingerprints(1, nKeys)

	s := open(8).(*clam.Sharded)
	shardedWall := load(s, keys)

	st := s.Stats()
	fmt.Printf("8 shards, %d keys, %d lookup goroutines (GOMAXPROCS=%d)\n",
		nKeys, goroutines, runtime.GOMAXPROCS(0))
	fmt.Printf("wall-clock: %v\n", shardedWall.Round(time.Millisecond))
	fmt.Printf("inserts: mean %.4f ms (virtual, merged across shards)\n",
		metrics.Ms(st.InsertLatency.Mean))
	fmt.Printf("lookups: mean %.4f ms, hit rate %.3f\n",
		metrics.Ms(st.LookupLatency.Mean), st.Core.HitRate())
	fmt.Printf("devices: %d writes, %d reads across %d shard devices\n",
		st.Device.Writes, st.Device.Reads, s.NumShards())
	fmt.Printf("virtual makespan: %v (slowest shard clock)\n\n", s.Now().Round(time.Millisecond))

	fmt.Printf("per-shard balance (high-key-bit routing over uniform fingerprints):\n")
	for i := 0; i < s.NumShards(); i++ {
		ss := s.Shard(i).Stats()
		fmt.Printf("  shard %d: %7d inserts %7d lookups  clock %v\n",
			i, ss.Core.Inserts, ss.Core.Lookups, s.Shard(i).Clock().Now().Round(time.Millisecond))
	}

	base := open(1) // WithShards(1): a plain CLAM behind the same interface
	baseWall := load(base, keys)
	fmt.Printf("\n1 shard (paper baseline): %v wall-clock — %.2fx vs sharded\n",
		baseWall.Round(time.Millisecond), baseWall.Seconds()/shardedWall.Seconds())
}
