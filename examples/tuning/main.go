// Tuning example (§6.4): use the analytical cost model to size a CLAM —
// optimal buffer allocation, Bloom filter memory for a latency target, and
// the effect of buffer size on insertion cost — then open a CLAM with the
// derived configuration and verify the predicted behaviour.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/clam"
	"repro/internal/costmodel"
	"repro/internal/metrics"
)

func main() {
	smoke := flag.Bool("smoke", false, "shrink the workload for CI smoke runs")
	flag.Parse()
	const s = 32.0 // effective bytes per entry
	flash := int64(128) << 20
	if *smoke {
		flash = 16 << 20
	}
	cr := costmodel.PageReadCost(costmodel.IntelSSDCosts())

	// 1. How much memory should go to buffers? (Answer: B_opt, and not a
	// byte more — extra DRAM belongs to Bloom filters.)
	bopt := costmodel.OptimalBufferBytes(flash, s)
	fmt.Printf("for F = %d MB: B_opt = %d KB of buffers\n", flash>>20, bopt>>10)

	// 2. How much Bloom memory buys a 0.1 ms expected lookup overhead?
	need := costmodel.RequiredBloomBytes(flash, s, cr, 100*time.Microsecond)
	fmt.Printf("Bloom filters for 0.1 ms overhead: %d KB\n", need>>10)

	// 3. What buffer size minimizes worst-case insert cost on a raw chip?
	// (The erase block, per Figure 4b: below it, C3 valid-page copying
	// dominates; above it, the flush itself grows.)
	curve := costmodel.Figure4Curve(costmodel.ChipCosts(), s, 2<<20, true, 100)
	best := costmodel.ArgminBuffer(curve)
	fmt.Printf("chip worst-case insert minimized near B' = %.0f KB (erase block = 128 KB)\n\n", best.X/1024)

	// 4. Open a CLAM with a memory budget and verify the derived geometry
	// and the predicted lookup overhead.
	st, err := clam.Open(
		clam.WithDevice(clam.IntelSSD),
		clam.WithFlash(flash),
		clam.WithMemory(flash/8))
	if err != nil {
		log.Fatal(err)
	}
	c := st.(*clam.CLAM)
	cfg := c.Core().Config()
	fmt.Printf("derived: %d super tables × %d incarnations × %d KB buffers, %d bloom bits/entry\n",
		cfg.NumSuperTables(), cfg.NumIncarnations, cfg.BufferBytes>>10, cfg.FilterBitsPerEntry)

	// Fill past one eviction cycle, then measure misses (pure Bloom-filter
	// work plus false-positive reads).
	entries := flash / 32
	for i := int64(0); i < entries*5/4; i++ {
		if err := c.PutU64(uint64(i)+1, uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	c.ResetMetrics()
	for i := 0; i < 50_000; i++ {
		c.GetU64(uint64(i) + (1 << 60)) // guaranteed misses
	}
	stats := c.Stats()
	fmt.Printf("\nmeasured miss-lookup mean: %.4f ms (pure filter work)\n", metrics.Ms(stats.LookupLatency.Mean))
	fmt.Printf("spurious flash reads: %d in %d lookups (rate %.5f)\n",
		stats.Core.SpuriousProbes, stats.Core.Lookups,
		float64(stats.Core.SpuriousProbes)/float64(stats.Core.Lookups))
	fmt.Println("(compare: the model's expected false-positive I/O overhead at this filter size)")
}
