// WAN optimizer example (§8): replay a 50%-redundant object trace through
// a CLAM-backed optimizer at several link speeds and watch the effective
// bandwidth improvement hold up where a disk-based index would collapse.
// The index maps full SHA-1 chunk fingerprints to content-cache references
// through the byte-keyed Store API.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/clam"
	"repro/internal/vclock"
	"repro/internal/wanopt"
	"repro/internal/workload"
)

func main() {
	smoke := flag.Bool("smoke", false, "shrink the workload for CI smoke runs")
	flag.Parse()
	objects := 30
	links := []int64{10, 50, 100, 200}
	if *smoke {
		objects = 8
		links = []int64{10, 100}
	}

	trace := workload.GenerateTrace(workload.TraceConfig{
		Objects:         objects,
		MeanObjectBytes: 512 << 10,
		Redundancy:      0.5,
		Seed:            7,
	})
	fmt.Printf("trace: %d objects, %.1f MB, %.0f%% redundant (ideal compression %.2fx)\n\n",
		len(trace.Objects), float64(trace.TotalBytes)/(1<<20),
		100*trace.MeasuredRedundancy(), 1/(1-trace.MeasuredRedundancy()))

	fmt.Printf("%10s %22s %14s\n", "link", "bandwidth improvement", "compression")
	for _, mbps := range links {
		clock := vclock.New()
		index, err := clam.Open(
			clam.WithDevice(clam.TranscendSSD), // the paper's low-end device
			clam.WithFlash(64<<20),
			clam.WithMemory(8<<20),
			clam.WithClock(clock))
		if err != nil {
			log.Fatal(err)
		}
		opt, err := wanopt.New(wanopt.Config{
			Index:          index,
			Clock:          clock,
			LinkBitsPerSec: mbps * 1e6,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := wanopt.RunThroughputTest(opt, trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d Mbps %21.2fx %13.2fx\n",
			mbps, res.Improvement(),
			float64(res.RawBytes)/float64(res.CompressedBytes))
	}
	fmt.Println("\n(The paper's Figure 9: a Berkeley-DB index keeps up only below ~20 Mbps;")
	fmt.Println(" the CLAM sustains near-ideal improvement through 100+ Mbps on the same SSD.)")
}
