// WAN optimizer example (§8): replay a 50%-redundant object trace through
// a CLAM-backed optimizer at several link speeds and watch the effective
// bandwidth improvement hold up where a disk-based index would collapse.
package main

import (
	"fmt"
	"log"

	"repro/clam"
	"repro/internal/vclock"
	"repro/internal/wanopt"
	"repro/internal/workload"
)

func main() {
	trace := workload.GenerateTrace(workload.TraceConfig{
		Objects:         30,
		MeanObjectBytes: 512 << 10,
		Redundancy:      0.5,
		Seed:            7,
	})
	fmt.Printf("trace: %d objects, %.1f MB, %.0f%% redundant (ideal compression %.2fx)\n\n",
		len(trace.Objects), float64(trace.TotalBytes)/(1<<20),
		100*trace.MeasuredRedundancy(), 1/(1-trace.MeasuredRedundancy()))

	fmt.Printf("%10s %22s %14s\n", "link", "bandwidth improvement", "compression")
	for _, mbps := range []int64{10, 50, 100, 200} {
		clock := vclock.New()
		index, err := clam.Open(clam.Options{
			Device:      clam.TranscendSSD, // the paper's low-end device
			FlashBytes:  64 << 20,
			MemoryBytes: 8 << 20,
			Clock:       clock,
		})
		if err != nil {
			log.Fatal(err)
		}
		opt, err := wanopt.New(wanopt.Config{
			Index:          index,
			Clock:          clock,
			LinkBitsPerSec: mbps * 1e6,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := wanopt.RunThroughputTest(opt, trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d Mbps %21.2fx %13.2fx\n",
			mbps, res.Improvement(),
			float64(res.RawBytes)/float64(res.CompressedBytes))
	}
	fmt.Println("\n(The paper's Figure 9: a Berkeley-DB index keeps up only below ~20 Mbps;")
	fmt.Println(" the CLAM sustains near-ideal improvement through 100+ Mbps on the same SSD.)")
}
