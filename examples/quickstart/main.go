// Quickstart: open a Store, map content fingerprints to variable-length
// chunks, look them up, update and delete — the basic CAM lifecycle from
// the paper's abstract on the redesigned byte-slice API, with the original
// uint64 fast path alongside.
package main

import (
	"bytes"
	"crypto/sha1"
	"flag"
	"fmt"
	"log"

	"repro/clam"
	"repro/internal/metrics"
)

func main() {
	smoke := flag.Bool("smoke", false, "shrink the workload for CI smoke runs")
	flag.Parse()
	n := 200_000
	if *smoke {
		n = 20_000
	}

	// A 64 MB CLAM on a simulated Intel-class SSD with an 8 MB DRAM
	// budget (split per the paper's §6.4 tuning rules) and a 64 MB value
	// log holding the byte values.
	st, err := clam.Open(
		clam.WithDevice(clam.IntelSSD),
		clam.WithFlash(64<<20),
		clam.WithMemory(8<<20),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Store n fingerprint → chunk-record mappings. Keys are real 20-byte
	// SHA-1 fingerprints; values are variable-length records appended to
	// the value log, while the index writes land in DRAM buffers that
	// flush to flash in 128 KB batches.
	fp := func(i int) []byte {
		sum := sha1.Sum(fmt.Appendf(nil, "chunk-%d", i))
		return sum[:]
	}
	record := func(i int) []byte {
		return fmt.Appendf(nil, "container-%04d offset %010d length %d", i>>12, i<<9, 512+(i%3500))
	}
	for i := 0; i < n; i++ {
		if err := st.Put(fp(i), record(i)); err != nil {
			log.Fatal(err)
		}
	}

	// Look some up: every read is verified against the full key bytes
	// stored in the record, so fingerprint collisions can never surface
	// wrong values.
	for _, i := range []int{n - 1, n / 2, 0} {
		val, ok, err := st.Get(fp(i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fingerprint %x... -> %-45q (found=%v)\n", fp(i)[:6], val, ok)
	}

	// Lazy update and delete (§5.1.1).
	st.Update(fp(7), []byte("moved to container-9999"))
	if v, _, _ := st.Get(fp(7)); !bytes.Equal(v, []byte("moved to container-9999")) {
		log.Fatal("update not visible")
	}
	st.Delete(fp(7))
	if _, ok, _ := st.Get(fp(7)); ok {
		log.Fatal("delete not visible")
	}

	// The uint64 fast path stores word-sized values inline in the hash
	// entry — no value log, no fingerprinting step: the paper's original
	// fingerprint → disk-address workload.
	for i := uint64(1); i <= uint64(n); i++ {
		if err := st.PutU64(i, i*4096); err != nil {
			log.Fatal(err)
		}
	}
	if addr, ok, _ := st.GetU64(uint64(n)); ok {
		fmt.Printf("fast path: fingerprint %d -> address %d\n", n, addr)
	}

	s := st.Stats()
	fmt.Printf("\ninserts: mean %.4f ms (worst %.2f ms)\n",
		metrics.Ms(s.InsertLatency.Mean), metrics.Ms(s.InsertLatency.Max))
	fmt.Printf("lookups: mean %.4f ms\n", metrics.Ms(s.LookupLatency.Mean))
	fmt.Printf("index: %d flushes, %d device writes (batched flash writes)\n",
		s.Core.Flushes, s.Device.Writes)
	fmt.Printf("value log: %d records, %d KB appended, %d device writes (page-aligned appends)\n",
		s.ValueLog.Records, s.ValueLog.AppendedBytes>>10, s.ValueDevice.Writes)
	fmt.Printf("DRAM: %d KB buffers + %d KB Bloom filters\n",
		s.Memory.BufferBytes>>10, s.Memory.BloomBytes>>10)
}
