// Quickstart: open a CLAM, insert fingerprint → address mappings, look
// them up, update and delete — the basic CAM lifecycle from the paper's
// abstract, in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"repro/clam"
	"repro/internal/metrics"
)

func main() {
	// A 64 MB CLAM on a simulated Intel-class SSD with an 8 MB DRAM
	// budget, split per the paper's §6.4 tuning rules.
	c, err := clam.Open(clam.Options{
		Device:      clam.IntelSSD,
		FlashBytes:  64 << 20,
		MemoryBytes: 8 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Insert a million fingerprint → disk-address mappings. Most inserts
	// land in DRAM buffers; full buffers flush to flash in 128 KB batches.
	const n = 1_000_000
	for fp := uint64(1); fp <= n; fp++ {
		if err := c.Insert(fp, fp*4096); err != nil {
			log.Fatal(err)
		}
	}

	// Look some up (recent keys are retained; the oldest were evicted by
	// the FIFO incarnation ring once flash filled).
	for _, fp := range []uint64{n, n - 1000, n / 2, 1} {
		addr, ok, err := c.Lookup(fp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fingerprint %8d -> address %10d (found=%v)\n", fp, addr, ok)
	}

	// Lazy update and delete (§5.1.1).
	c.Update(n, 42)
	if addr, _, _ := c.Lookup(n); addr != 42 {
		log.Fatal("update not visible")
	}
	c.Delete(n)
	if _, ok, _ := c.Lookup(n); ok {
		log.Fatal("delete not visible")
	}

	st := c.Stats()
	fmt.Printf("\ninserts: mean %.4f ms (worst %.2f ms)\n",
		metrics.Ms(st.InsertLatency.Mean), metrics.Ms(st.InsertLatency.Max))
	fmt.Printf("lookups: mean %.4f ms\n", metrics.Ms(st.LookupLatency.Mean))
	fmt.Printf("flushes: %d, device writes: %d (batched: %d inserts per flash write)\n",
		st.Core.Flushes, st.Device.Writes, uint64(n)/maxU64(st.Device.Writes, 1))
	fmt.Printf("DRAM: %d KB buffers + %d KB Bloom filters\n",
		st.Memory.BufferBytes>>10, st.Memory.BloomBytes>>10)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
