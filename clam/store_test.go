package clam

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/ssd"
	"repro/internal/vclock"
)

// TestUpdateAliasSemantics pins the documented Update contract on both
// implementations and both key families: Update is Put (lazy update,
// §5.1.1) — updating an absent key inserts it, updating a present key
// shadows the old version, and the structural counters are identical to
// Put's (there is no hidden read-modify-write).
func TestUpdateAliasSemantics(t *testing.T) {
	c, s := strictStores(t, FIFO)
	for _, st := range []struct {
		name string
		s    Store
	}{{"clam", c}, {"sharded", s}} {
		// Absent key: Update inserts.
		if err := st.s.Update([]byte("ghost"), []byte("v1")); err != nil {
			t.Fatalf("%s: update of absent key: %v", st.name, err)
		}
		if v, ok, _ := st.s.Get([]byte("ghost")); !ok || !bytes.Equal(v, []byte("v1")) {
			t.Fatalf("%s: update-as-insert invisible: (%q, %v)", st.name, v, ok)
		}
		// Present key: newest version shadows.
		if err := st.s.Update([]byte("ghost"), []byte("v2")); err != nil {
			t.Fatal(err)
		}
		if v, _, _ := st.s.Get([]byte("ghost")); !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("%s: update not visible: %q", st.name, v)
		}
		// Same contract on the U64 fast path.
		if err := st.s.UpdateU64(404, 1); err != nil {
			t.Fatalf("%s: UpdateU64 of absent key: %v", st.name, err)
		}
		st.s.UpdateU64(404, 2)
		if v, ok, _ := st.s.GetU64(404); !ok || v != 2 {
			t.Fatalf("%s: UpdateU64: (%d, %v)", st.name, v, ok)
		}
		// No read-modify-write: an update is exactly one core insert.
		before := st.s.Stats().Core
		st.s.Update([]byte("ghost"), []byte("v3"))
		st.s.UpdateU64(404, 3)
		after := st.s.Stats().Core
		if after.Inserts != before.Inserts+2 || after.Lookups != before.Lookups {
			t.Fatalf("%s: update performed hidden work: %+v -> %+v", st.name, before, after)
		}
	}
}

// countingCtx is a context whose Err starts returning Canceled after the
// Nth check — a deterministic way to cancel "mid-batch" exactly at a
// router chunk boundary.
type countingCtx struct {
	context.Context
	checks atomic.Int64
	after  int64
}

func (c *countingCtx) Err() error {
	if c.checks.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestBatchCancellation proves a canceled batch returns early: with an
// already-canceled context nothing is applied, and with a context canceled
// after a few chunk-boundary checks only a prefix of the batch lands.
func TestBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	const n = 8192
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	bkeys := make([][]byte, n)
	bvals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15
		vals[i] = uint64(i)
		bkeys[i] = []byte{byte(i), byte(i >> 8), byte(i >> 16), 'k'}
		bvals[i] = []byte{byte(i)}
	}

	c, s := strictStores(t, FIFO)
	for _, st := range []struct {
		name string
		s    Store
	}{{"clam", c}, {"sharded", s}} {
		if err := st.s.PutBatchU64(ctx, keys, vals); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled PutBatchU64 returned %v", st.name, err)
		}
		if err := st.s.PutBatch(ctx, bkeys, bvals); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled PutBatch returned %v", st.name, err)
		}
		if _, _, err := st.s.GetBatchU64(ctx, keys); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled GetBatchU64 returned %v", st.name, err)
		}
		if _, _, err := st.s.GetBatch(ctx, bkeys); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled GetBatch returned %v", st.name, err)
		}
		if err := st.s.DeleteBatchU64(ctx, keys); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled DeleteBatchU64 returned %v", st.name, err)
		}
		if err := st.s.DeleteBatch(ctx, bkeys); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled DeleteBatch returned %v", st.name, err)
		}
		if got := st.s.Stats().Core.Inserts; got != 0 {
			t.Fatalf("%s: pre-canceled batches applied %d inserts", st.name, got)
		}
	}

	// Mid-batch cancellation at a chunk boundary: with chunk size 64 and a
	// single worker, the batch must stop after exactly `after` chunks.
	s2 := openShardedT(t, WithDevice(IntelSSD), WithFlash(32<<20), WithMemory(8<<20),
		WithShards(4), WithWorkers(1), WithBatchChunk(64))
	cctx := &countingCtx{Context: context.Background(), after: 3}
	err := s2.PutBatchU64(cctx, keys, vals)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-batch cancellation returned %v", err)
	}
	applied := s2.Stats().Core.Inserts
	if applied != 3*64 {
		t.Fatalf("canceled batch applied %d inserts, want exactly %d (3 chunks of 64)", applied, 3*64)
	}
}

// TestCustomDeviceByteAPIRequiresValueLog pins ErrNoValueLog: a store over
// a custom index device has no value log unless one is supplied, and the
// U64 path keeps working either way.
func TestCustomDeviceByteAPIRequiresValueLog(t *testing.T) {
	clock := vclock.New()
	dev := ssd.New(ssd.IntelX18M(), 16<<20, clock)
	st, err := Open(WithCustomDevice(dev), WithClock(clock), WithFlash(16<<20), WithMemory(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutU64(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrNoValueLog) {
		t.Fatalf("Put without value log returned %v", err)
	}
	if _, _, err := st.Get([]byte("k")); !errors.Is(err, ErrNoValueLog) {
		t.Fatalf("Get without value log returned %v", err)
	}
	if _, _, err := st.GetBatch(context.Background(), [][]byte{[]byte("k")}); !errors.Is(err, ErrNoValueLog) {
		t.Fatalf("GetBatch without value log returned %v", err)
	}

	// Supplying a value-log device enables the byte API.
	clock2 := vclock.New()
	st2, err := Open(
		WithCustomDevice(ssd.New(ssd.IntelX18M(), 16<<20, clock2)),
		WithValueLogDevice(ssd.New(ssd.IntelX18M(), 16<<20, clock2)),
		WithClock(clock2), WithFlash(16<<20), WithMemory(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := st2.Get([]byte("k")); err != nil || !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("custom value log get: %q %v %v", v, ok, err)
	}
}

// TestValueLogDeviceRequiresCustomDevice pins the Open validation: a
// caller-supplied value-log device is meaningful only next to a custom
// index device — silently building a kind device instead would discard
// the caller's fault-injection or counting wrapper.
func TestValueLogDeviceRequiresCustomDevice(t *testing.T) {
	clock := vclock.New()
	vdev := ssd.New(ssd.IntelX18M(), 16<<20, clock)
	if _, err := Open(WithDevice(IntelSSD), WithFlash(16<<20), WithMemory(4<<20),
		WithClock(clock), WithValueLogDevice(vdev)); err == nil {
		t.Fatal("Open accepted WithValueLogDevice without WithCustomDevice")
	}
}

// TestShardHandleByteOpsConsistent pins the Shard(i) contract for the
// byte family: the live shard handle fingerprints keys with the
// deployment seed, so keys stored through the parent resolve through the
// owning shard's handle and vice versa.
func TestShardHandleByteOpsConsistent(t *testing.T) {
	s := openShardedT(t, WithDevice(IntelSSD), WithFlash(32<<20), WithMemory(8<<20),
		WithSeed(7), WithShards(4))
	for i := 0; i < 64; i++ {
		key := []byte{byte(i), 's', 'h'}
		val := []byte{byte(i), byte(i + 1)}
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
		sh := s.shardIndex(fingerprint(key, s.fpSeed))
		v, ok, err := s.Shard(sh).Get(key)
		if err != nil || !ok || !bytes.Equal(v, val) {
			t.Fatalf("Shard(%d).Get(%q) = (%q, %v, %v) after parent Put", sh, key, v, ok, err)
		}
		// And the reverse: a Put through the owning shard's handle is
		// visible through the parent.
		val2 := append(val, 0xFF)
		if err := s.Shard(sh).Put(key, val2); err != nil {
			t.Fatal(err)
		}
		if v, ok, _ := s.Get(key); !ok || !bytes.Equal(v, val2) {
			t.Fatalf("parent Get(%q) = (%q, %v) after shard-handle Put", key, v, ok)
		}
	}
}

// TestU64AndByteFamiliesCoexist stores through both key families and
// checks neither corrupts the other: byte reads are key-verified, so even
// a U64 entry colliding with a byte fingerprint reads as a miss.
func TestU64AndByteFamiliesCoexist(t *testing.T) {
	c, s := strictStores(t, FIFO)
	for _, st := range []struct {
		name string
		s    Store
	}{{"clam", c}, {"sharded", s}} {
		for i := uint64(0); i < 2000; i++ {
			if err := st.s.PutU64(i*0x9e3779b97f4a7c15+1, i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2000; i++ {
			k := []byte{byte(i), byte(i >> 8), 'b'}
			if err := st.s.Put(k, bytes.Repeat([]byte{byte(i)}, i%50)); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(0); i < 2000; i++ {
			if v, ok, _ := st.s.GetU64(i*0x9e3779b97f4a7c15 + 1); !ok || v != i {
				t.Fatalf("%s: u64 key %d: (%d, %v)", st.name, i, v, ok)
			}
		}
		for i := 0; i < 2000; i++ {
			k := []byte{byte(i), byte(i >> 8), 'b'}
			v, ok, _ := st.s.Get(k)
			if !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, i%50)) {
				t.Fatalf("%s: byte key %d: (%d bytes, %v)", st.name, i, len(v), ok)
			}
		}
	}
}

// TestContainsSemantics pins the existence-probe contract on both
// implementations: agreement with Get for present/absent/deleted keys, no
// value-log record reads, and the documented stale-pointer false positive
// once the circular log laps a record.
func TestContainsSemantics(t *testing.T) {
	for _, tc := range []struct {
		name string
		open func() Store
	}{
		{"clam", func() Store {
			return openCLAMT(t, WithDevice(IntelSSD), WithFlash(8<<20), WithMemory(2<<20), WithSeed(91))
		}},
		{"sharded", func() Store {
			return openShardedT(t, WithDevice(IntelSSD), WithFlash(8<<20), WithMemory(2<<20),
				WithSeed(91), WithShards(4))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := tc.open()
			ctx := context.Background()
			keys := make([][]byte, 500)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("object-%04d", i))
				if err := st.Put(keys[i], []byte(fmt.Sprintf("payload-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// U64 fast path: exact existence.
			if err := st.PutU64(777, 42); err != nil {
				t.Fatal(err)
			}
			if ok, err := st.ContainsU64(777); err != nil || !ok {
				t.Fatalf("ContainsU64(present) = (%v, %v)", ok, err)
			}
			if ok, err := st.ContainsU64(778); err != nil || ok {
				t.Fatalf("ContainsU64(absent) = (%v, %v)", ok, err)
			}
			// Byte probes agree with Get on present keys and skip the record
			// read: the value-log device must not be touched by the probes.
			vr0 := st.Stats().ValueDevice.Reads
			for _, k := range keys[:100] {
				if ok, err := st.Contains(k); err != nil || !ok {
					t.Fatalf("Contains(%q) = (%v, %v)", k, ok, err)
				}
			}
			found, err := st.ContainsBatch(ctx, keys)
			if err != nil {
				t.Fatal(err)
			}
			for i, ok := range found {
				if !ok {
					t.Fatalf("ContainsBatch missed present key %d", i)
				}
			}
			if vr := st.Stats().ValueDevice.Reads; vr != vr0 {
				t.Fatalf("existence probes read the value log: %d -> %d device reads", vr0, vr)
			}
			// Absent and deleted keys read false.
			if ok, _ := st.Contains([]byte("never-inserted")); ok {
				t.Fatal("Contains(absent) = true")
			}
			if err := st.Delete(keys[0]); err != nil {
				t.Fatal(err)
			}
			if ok, _ := st.Contains(keys[0]); ok {
				t.Fatal("Contains(deleted) = true")
			}
			// A U64 entry is not a byte-keyed record even if the fingerprint
			// were probed directly (pointer tag unset).
			if ok, _ := st.Contains([]byte{}); ok {
				t.Fatal("Contains(empty never-inserted key) = true")
			}
		})
	}
}

// TestContainsStalePointerTradeoff shows the accepted false positive: after
// the value log laps a record, Get reads a miss (key verification) but
// Contains still reports true from the index hit alone.
func TestContainsStalePointerTradeoff(t *testing.T) {
	st := openCLAMT(t, WithDevice(IntelSSD), WithFlash(8<<20), WithMemory(2<<20),
		WithValueLog(64<<10), WithSeed(92))
	first := []byte("first-key")
	if err := st.Put(first, bytes.Repeat([]byte{1}, 1000)); err != nil {
		t.Fatal(err)
	}
	// Lap the tiny log so first's record is overwritten.
	for i := 0; st.Stats().ValueLog.Wraps < 2; i++ {
		k := []byte(fmt.Sprintf("filler-%06d", i))
		if err := st.Put(k, bytes.Repeat([]byte{2}, 2000)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := st.Get(first); err != nil || ok {
		t.Fatalf("Get(lapped) = (found=%v, %v), want miss", ok, err)
	}
	ok, err := st.Contains(first)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Contains(lapped) = false; the documented index-only tradeoff should report true")
	}
}

// TestValueLogOccupancyStats exercises the live/dead accounting through the
// Store surface: overwrites and deletes of buffered keys move bytes to the
// dead side, and occupancy stays within [0, 1].
func TestValueLogOccupancyStats(t *testing.T) {
	st := openCLAMT(t, WithDevice(IntelSSD), WithFlash(8<<20), WithMemory(2<<20),
		WithValueLog(1<<20), WithSeed(93))
	val := bytes.Repeat([]byte{7}, 500)
	for i := 0; i < 200; i++ {
		if err := st.Put([]byte(fmt.Sprintf("k-%03d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	s1 := st.Stats().ValueLog
	if s1.LiveBytes == 0 || s1.DeadBytes != 0 {
		t.Fatalf("after fresh puts: %+v", s1)
	}
	if s1.Capacity != 1<<20 {
		t.Fatalf("capacity = %d, want %d", s1.Capacity, 1<<20)
	}
	if occ := s1.Occupancy(); occ <= 0 || occ > 1 {
		t.Fatalf("occupancy = %v", occ)
	}
	// Overwrite half while their pointers are still buffered: their old
	// records die.
	for i := 0; i < 100; i++ {
		if err := st.Put([]byte(fmt.Sprintf("k-%03d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	s2 := st.Stats().ValueLog
	if s2.DeadBytes == 0 {
		t.Fatalf("overwrites marked nothing dead: %+v", s2)
	}
	// Delete the other half: more dead bytes, fewer live.
	for i := 100; i < 200; i++ {
		if err := st.Delete([]byte(fmt.Sprintf("k-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s3 := st.Stats().ValueLog
	if s3.DeadBytes <= s2.DeadBytes || s3.LiveBytes >= s2.LiveBytes {
		t.Fatalf("deletes did not move bytes to the dead side: %+v -> %+v", s2, s3)
	}
	if lf := s3.LiveFraction(); lf < 0 || lf > 1 {
		t.Fatalf("live fraction = %v", lf)
	}
}
