package clam

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/ssd"
	"repro/internal/vclock"
)

// TestUpdateAliasSemantics pins the documented Update contract on both
// implementations and both key families: Update is Put (lazy update,
// §5.1.1) — updating an absent key inserts it, updating a present key
// shadows the old version, and the structural counters are identical to
// Put's (there is no hidden read-modify-write).
func TestUpdateAliasSemantics(t *testing.T) {
	c, s := strictStores(t, FIFO)
	for _, st := range []struct {
		name string
		s    Store
	}{{"clam", c}, {"sharded", s}} {
		// Absent key: Update inserts.
		if err := st.s.Update([]byte("ghost"), []byte("v1")); err != nil {
			t.Fatalf("%s: update of absent key: %v", st.name, err)
		}
		if v, ok, _ := st.s.Get([]byte("ghost")); !ok || !bytes.Equal(v, []byte("v1")) {
			t.Fatalf("%s: update-as-insert invisible: (%q, %v)", st.name, v, ok)
		}
		// Present key: newest version shadows.
		if err := st.s.Update([]byte("ghost"), []byte("v2")); err != nil {
			t.Fatal(err)
		}
		if v, _, _ := st.s.Get([]byte("ghost")); !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("%s: update not visible: %q", st.name, v)
		}
		// Same contract on the U64 fast path.
		if err := st.s.UpdateU64(404, 1); err != nil {
			t.Fatalf("%s: UpdateU64 of absent key: %v", st.name, err)
		}
		st.s.UpdateU64(404, 2)
		if v, ok, _ := st.s.GetU64(404); !ok || v != 2 {
			t.Fatalf("%s: UpdateU64: (%d, %v)", st.name, v, ok)
		}
		// No read-modify-write: an update is exactly one core insert.
		before := st.s.Stats().Core
		st.s.Update([]byte("ghost"), []byte("v3"))
		st.s.UpdateU64(404, 3)
		after := st.s.Stats().Core
		if after.Inserts != before.Inserts+2 || after.Lookups != before.Lookups {
			t.Fatalf("%s: update performed hidden work: %+v -> %+v", st.name, before, after)
		}
	}
}

// countingCtx is a context whose Err starts returning Canceled after the
// Nth check — a deterministic way to cancel "mid-batch" exactly at a
// router chunk boundary.
type countingCtx struct {
	context.Context
	checks atomic.Int64
	after  int64
}

func (c *countingCtx) Err() error {
	if c.checks.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestBatchCancellation proves a canceled batch returns early: with an
// already-canceled context nothing is applied, and with a context canceled
// after a few chunk-boundary checks only a prefix of the batch lands.
func TestBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	const n = 8192
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	bkeys := make([][]byte, n)
	bvals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15
		vals[i] = uint64(i)
		bkeys[i] = []byte{byte(i), byte(i >> 8), byte(i >> 16), 'k'}
		bvals[i] = []byte{byte(i)}
	}

	c, s := strictStores(t, FIFO)
	for _, st := range []struct {
		name string
		s    Store
	}{{"clam", c}, {"sharded", s}} {
		if err := st.s.PutBatchU64(ctx, keys, vals); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled PutBatchU64 returned %v", st.name, err)
		}
		if err := st.s.PutBatch(ctx, bkeys, bvals); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled PutBatch returned %v", st.name, err)
		}
		if _, _, err := st.s.GetBatchU64(ctx, keys); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled GetBatchU64 returned %v", st.name, err)
		}
		if _, _, err := st.s.GetBatch(ctx, bkeys); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled GetBatch returned %v", st.name, err)
		}
		if err := st.s.DeleteBatchU64(ctx, keys); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled DeleteBatchU64 returned %v", st.name, err)
		}
		if err := st.s.DeleteBatch(ctx, bkeys); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled DeleteBatch returned %v", st.name, err)
		}
		if got := st.s.Stats().Core.Inserts; got != 0 {
			t.Fatalf("%s: pre-canceled batches applied %d inserts", st.name, got)
		}
	}

	// Mid-batch cancellation at a chunk boundary: with chunk size 64 and a
	// single worker, the batch must stop after exactly `after` chunks.
	s2 := openShardedT(t, WithDevice(IntelSSD), WithFlash(32<<20), WithMemory(8<<20),
		WithShards(4), WithWorkers(1), WithBatchChunk(64))
	cctx := &countingCtx{Context: context.Background(), after: 3}
	err := s2.PutBatchU64(cctx, keys, vals)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-batch cancellation returned %v", err)
	}
	applied := s2.Stats().Core.Inserts
	if applied != 3*64 {
		t.Fatalf("canceled batch applied %d inserts, want exactly %d (3 chunks of 64)", applied, 3*64)
	}
}

// TestCustomDeviceByteAPIRequiresValueLog pins ErrNoValueLog: a store over
// a custom index device has no value log unless one is supplied, and the
// U64 path keeps working either way.
func TestCustomDeviceByteAPIRequiresValueLog(t *testing.T) {
	clock := vclock.New()
	dev := ssd.New(ssd.IntelX18M(), 16<<20, clock)
	st, err := Open(WithCustomDevice(dev), WithClock(clock), WithFlash(16<<20), WithMemory(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutU64(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrNoValueLog) {
		t.Fatalf("Put without value log returned %v", err)
	}
	if _, _, err := st.Get([]byte("k")); !errors.Is(err, ErrNoValueLog) {
		t.Fatalf("Get without value log returned %v", err)
	}
	if _, _, err := st.GetBatch(context.Background(), [][]byte{[]byte("k")}); !errors.Is(err, ErrNoValueLog) {
		t.Fatalf("GetBatch without value log returned %v", err)
	}

	// Supplying a value-log device enables the byte API.
	clock2 := vclock.New()
	st2, err := Open(
		WithCustomDevice(ssd.New(ssd.IntelX18M(), 16<<20, clock2)),
		WithValueLogDevice(ssd.New(ssd.IntelX18M(), 16<<20, clock2)),
		WithClock(clock2), WithFlash(16<<20), WithMemory(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := st2.Get([]byte("k")); err != nil || !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("custom value log get: %q %v %v", v, ok, err)
	}
}

// TestValueLogDeviceRequiresCustomDevice pins the Open validation: a
// caller-supplied value-log device is meaningful only next to a custom
// index device — silently building a kind device instead would discard
// the caller's fault-injection or counting wrapper.
func TestValueLogDeviceRequiresCustomDevice(t *testing.T) {
	clock := vclock.New()
	vdev := ssd.New(ssd.IntelX18M(), 16<<20, clock)
	if _, err := Open(WithDevice(IntelSSD), WithFlash(16<<20), WithMemory(4<<20),
		WithClock(clock), WithValueLogDevice(vdev)); err == nil {
		t.Fatal("Open accepted WithValueLogDevice without WithCustomDevice")
	}
}

// TestShardHandleByteOpsConsistent pins the Shard(i) contract for the
// byte family: the live shard handle fingerprints keys with the
// deployment seed, so keys stored through the parent resolve through the
// owning shard's handle and vice versa.
func TestShardHandleByteOpsConsistent(t *testing.T) {
	s := openShardedT(t, WithDevice(IntelSSD), WithFlash(32<<20), WithMemory(8<<20),
		WithSeed(7), WithShards(4))
	for i := 0; i < 64; i++ {
		key := []byte{byte(i), 's', 'h'}
		val := []byte{byte(i), byte(i + 1)}
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
		sh := s.shardIndex(fingerprint(key, s.fpSeed))
		v, ok, err := s.Shard(sh).Get(key)
		if err != nil || !ok || !bytes.Equal(v, val) {
			t.Fatalf("Shard(%d).Get(%q) = (%q, %v, %v) after parent Put", sh, key, v, ok, err)
		}
		// And the reverse: a Put through the owning shard's handle is
		// visible through the parent.
		val2 := append(val, 0xFF)
		if err := s.Shard(sh).Put(key, val2); err != nil {
			t.Fatal(err)
		}
		if v, ok, _ := s.Get(key); !ok || !bytes.Equal(v, val2) {
			t.Fatalf("parent Get(%q) = (%q, %v) after shard-handle Put", key, v, ok)
		}
	}
}

// TestU64AndByteFamiliesCoexist stores through both key families and
// checks neither corrupts the other: byte reads are key-verified, so even
// a U64 entry colliding with a byte fingerprint reads as a miss.
func TestU64AndByteFamiliesCoexist(t *testing.T) {
	c, s := strictStores(t, FIFO)
	for _, st := range []struct {
		name string
		s    Store
	}{{"clam", c}, {"sharded", s}} {
		for i := uint64(0); i < 2000; i++ {
			if err := st.s.PutU64(i*0x9e3779b97f4a7c15+1, i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2000; i++ {
			k := []byte{byte(i), byte(i >> 8), 'b'}
			if err := st.s.Put(k, bytes.Repeat([]byte{byte(i)}, i%50)); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(0); i < 2000; i++ {
			if v, ok, _ := st.s.GetU64(i*0x9e3779b97f4a7c15 + 1); !ok || v != i {
				t.Fatalf("%s: u64 key %d: (%d, %v)", st.name, i, v, ok)
			}
		}
		for i := 0; i < 2000; i++ {
			k := []byte{byte(i), byte(i >> 8), 'b'}
			v, ok, _ := st.s.Get(k)
			if !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, i%50)) {
				t.Fatalf("%s: byte key %d: (%d bytes, %v)", st.name, i, len(v), ok)
			}
		}
	}
}
