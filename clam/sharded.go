package clam

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hashutil"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// ShardedOptions configures a Sharded CLAM. The embedded Options describe
// the aggregate deployment: FlashBytes and MemoryBytes are totals that are
// split evenly across shards, and every shard inherits the same device
// kind, eviction policy and ablation switches. Options.Clock and
// Options.CustomDevice must be nil — each shard owns a private clock and
// device model by construction.
type ShardedOptions struct {
	Options

	// Shards is the number of independent partitions; it must be a power
	// of two (the router uses the top log2(Shards) key bits). Default 8.
	Shards int
	// Workers bounds the goroutine pool used by the batch operations
	// (InsertBatch, LookupBatch, DeleteBatch, Flush). Default: one worker
	// per shard.
	Workers int
	// BatchChunk is the batch router's task granularity: each shard's
	// share of a batch is consumed in chunks of at most this many keys.
	// A chunk is one core batched-pipeline call, so the setting bounds
	// gather scratch and the scope of same-page read dedupe, and is the
	// interval at which the owning worker re-visits the shared queue
	// state. Shards themselves are stolen whole by idle workers (a shard
	// serializes behind its own lock, so only one worker can ever make
	// progress on it). Default 512.
	BatchChunk int
}

// Sharded is a horizontally partitioned CLAM: the 64-bit key space is split
// across 2^b shards by the top b key bits, and each shard is a complete,
// independently locked CLAM — its own BufferHash, device model, virtual
// clock and latency histograms. Operations on different shards proceed
// fully in parallel; operations on the same shard serialize behind that
// shard's mutex, preserving the paper's blocking-I/O semantics per shard.
//
// Routing uses raw high key bits (not a hash) so the partition is stable
// and transparent; keys are assumed to be uniformly distributed
// fingerprints, as in every workload of the paper. Hash non-uniform keys
// (e.g. with hashutil.Mix64, a bijection) before storing them.
//
// Virtual time is per-shard: each shard's clock advances only by the work
// that shard performed, modeling one device (and one I/O context) per
// shard. Aggregate views (Stats, Now) merge the per-shard state on demand.
type Sharded struct {
	shards  []*CLAM
	shift   uint // 64 - log2(len(shards)); shift ≥ 64 routes everything to shard 0
	workers int
	chunk   int       // batch router task granularity (keys per chunk)
	groups  sync.Pool // *shardGroups, reused across concurrent batches
	gather  sync.Pool // *gatherScratch, per-worker LookupBatch buffers
}

// gatherScratch is one worker's chunk-sized gather/scatter buffers for
// LookupBatch, pooled so steady batch streams allocate nothing per call.
type gatherScratch struct {
	keys []uint64
	res  []core.LookupResult
}

// OpenSharded builds a Sharded CLAM from opts, opening one CLAM per shard
// with FlashBytes/Shards and MemoryBytes/Shards each and a per-shard
// derived hash seed.
func OpenSharded(opts ShardedOptions) (*Sharded, error) {
	n := opts.Shards
	if n == 0 {
		n = 8
	}
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("clam: Shards must be a power of two, got %d", n)
	}
	workers := opts.Workers
	if workers == 0 {
		workers = n
	}
	if workers < 1 {
		return nil, fmt.Errorf("clam: Workers must be positive, got %d", workers)
	}
	if workers > n {
		workers = n
	}
	if opts.Clock != nil {
		return nil, errors.New("clam: ShardedOptions.Clock must be nil; each shard owns its own clock")
	}
	if opts.CustomDevice != nil {
		return nil, errors.New("clam: ShardedOptions.CustomDevice must be nil; each shard owns its own device")
	}
	if opts.FlashBytes%int64(n) != 0 {
		return nil, fmt.Errorf("clam: FlashBytes %d not divisible by %d shards", opts.FlashBytes, n)
	}
	if opts.MemoryBytes%int64(n) != 0 {
		return nil, fmt.Errorf("clam: MemoryBytes %d not divisible by %d shards", opts.MemoryBytes, n)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	chunk := opts.BatchChunk
	if chunk == 0 {
		chunk = 512
	}
	if chunk < 1 {
		return nil, fmt.Errorf("clam: BatchChunk must be positive, got %d", chunk)
	}
	s := &Sharded{
		shards:  make([]*CLAM, n),
		shift:   64 - uint(bits.Len(uint(n))-1),
		workers: workers,
		chunk:   chunk,
	}
	for i := range s.shards {
		po := opts.Options
		po.FlashBytes = opts.FlashBytes / int64(n)
		po.MemoryBytes = opts.MemoryBytes / int64(n)
		po.Seed = hashutil.Hash64Seed(uint64(i), seed)
		c, err := Open(po)
		if err != nil {
			return nil, fmt.Errorf("clam: shard %d: %w", i, err)
		}
		s.shards[i] = c
	}
	return s, nil
}

// shardIndex routes a key to its owning shard by the top log2(NumShards)
// bits. Every routing decision — single ops and batch grouping — goes
// through here.
func (s *Sharded) shardIndex(key uint64) int {
	if s.shift >= 64 {
		return 0
	}
	return int(key >> s.shift)
}

func (s *Sharded) shard(key uint64) *CLAM { return s.shards[s.shardIndex(key)] }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Workers returns the batch worker-pool bound.
func (s *Sharded) Workers() int { return s.workers }

// Shard exposes shard i for inspection (per-shard stats, clock, device).
// The returned CLAM is live; its methods take the shard lock as usual.
func (s *Sharded) Shard(i int) *CLAM { return s.shards[i] }

// Insert adds or updates a (key, value) mapping on the key's shard.
func (s *Sharded) Insert(key, value uint64) error {
	return s.shard(key).Insert(key, value)
}

// Update is an alias of Insert with the paper's lazy-update semantics.
func (s *Sharded) Update(key, value uint64) error { return s.Insert(key, value) }

// Lookup returns the latest value stored under key.
func (s *Sharded) Lookup(key uint64) (value uint64, found bool, err error) {
	return s.shard(key).Lookup(key)
}

// Delete lazily removes key (§5.1.1) on its shard.
func (s *Sharded) Delete(key uint64) error {
	return s.shard(key).Delete(key)
}

// Flush forces all shards' buffered entries to flash, flushing shards in
// parallel across the worker pool.
func (s *Sharded) Flush() error {
	all := make([]int, len(s.shards))
	for i := range all {
		all[i] = i
	}
	return s.runShards(all, func(shard int) error {
		return s.shards[shard].Flush()
	})
}

// Elapse advances every shard's virtual clock by d, modeling fleet-wide
// idle time (during which SSDs garbage-collect in the background).
func (s *Sharded) Elapse(d time.Duration) {
	for _, c := range s.shards {
		c.Elapse(d)
	}
}

// Now returns the furthest-ahead shard clock: the virtual makespan of the
// work performed so far, the number to report for end-to-end completion
// time of a parallel workload.
func (s *Sharded) Now() time.Duration {
	var max time.Duration
	for _, c := range s.shards {
		if t := c.Clock().Now(); t > max {
			max = t
		}
	}
	return max
}

// ResetMetrics clears every shard's latency histograms and core counters.
func (s *Sharded) ResetMetrics() {
	for _, c := range s.shards {
		c.ResetMetrics()
	}
}

// Stats merges the per-shard snapshots into one aggregate view: core
// counters and device counters are summed, latency histograms are merged
// before summarizing (so percentiles reflect the true global
// distribution), and memory footprints are added.
func (s *Sharded) Stats() Stats {
	var agg Stats
	ins := make([]*metrics.Histogram, 0, len(s.shards))
	lk := make([]*metrics.Histogram, 0, len(s.shards))
	del := make([]*metrics.Histogram, 0, len(s.shards))
	for _, c := range s.shards {
		cs, dc, mem, hi, hl, hd := c.snapshot()
		agg.Core.Merge(cs)
		agg.Device.Add(dc)
		agg.Memory.Add(mem)
		ins = append(ins, hi)
		lk = append(lk, hl)
		del = append(del, hd)
	}
	agg.InsertLatency = metrics.Merged(ins...).Summarize()
	agg.LookupLatency = metrics.Merged(lk...).Summarize()
	agg.DeleteLatency = metrics.Merged(del...).Summarize()
	return agg
}

// snapshot copies one shard's metric state under its lock.
func (c *CLAM) snapshot() (core.Stats, storage.Counters, core.MemoryFootprint, *metrics.Histogram, *metrics.Histogram, *metrics.Histogram) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hi, hl, hd := c.insert, c.lookup, c.del
	return c.bh.Stats(), c.dev.Counters(), c.bh.MemoryFootprint(), &hi, &hl, &hd
}

// --- batch grouping and the chunked batch router ---

// shardGroups is the reusable result of grouping a batch's key indices by
// shard with a counting sort: shard sh owns idx[start[sh]:start[sh+1]], in
// input order. cur is the router's per-shard consumption cursor. Instances
// are pooled on the Sharded because batches run concurrently; the old
// implementation allocated a [][]int plus one slice per active shard on
// every call.
type shardGroups struct {
	idx   []int
	start []int
	cur   []int
}

// groupByShard buckets key indices by owning shard via a two-pass counting
// sort into a pooled shardGroups. Callers return it with putGroups.
func (s *Sharded) groupByShard(keys []uint64) *shardGroups {
	n := len(s.shards)
	g, _ := s.groups.Get().(*shardGroups)
	if g == nil {
		g = &shardGroups{start: make([]int, n+1), cur: make([]int, n)}
	}
	if cap(g.idx) < len(keys) {
		g.idx = make([]int, len(keys))
	}
	g.idx = g.idx[:len(keys)]
	for i := range g.cur {
		g.cur[i] = 0
	}
	for _, k := range keys {
		g.cur[s.shardIndex(k)]++
	}
	g.start[0] = 0
	for i := 0; i < n; i++ {
		g.start[i+1] = g.start[i] + g.cur[i]
		g.cur[i] = g.start[i]
	}
	for i, k := range keys {
		sh := s.shardIndex(k)
		g.idx[g.cur[sh]] = i
		g.cur[sh]++
	}
	for i := 0; i < n; i++ {
		g.cur[i] = g.start[i] // rewind: cur becomes the router's cursor
	}
	return g
}

func (s *Sharded) putGroups(g *shardGroups) { s.groups.Put(g) }

// active returns the shards that received work (bench/legacy path only;
// the router walks start directly).
func (g *shardGroups) active() []int {
	var shards []int
	for sh := 0; sh+1 < len(g.start); sh++ {
		if g.start[sh+1] > g.start[sh] {
			shards = append(shards, sh)
		}
	}
	return shards
}

// runChunked is the batch router: shard groups become chunk-sized tasks
// consumed from a shared queue, so skewed key distributions no longer leave
// workers idle while unclaimed work exists. Two rules shape the schedule:
//
//   - Single ownership: a shard is claimed by at most one worker at a time.
//     Its CLAM serializes behind one mutex anyway, and single ownership
//     preserves within-shard input order.
//   - Affinity: the owning worker keeps its shard between chunks (the
//     shard's Bloom banks and buffers are hot in that worker's cache;
//     migrating per chunk measurably thrashes them) and returns to the
//     shared queue only when the shard is drained, stealing the next
//     pending shard the moment one exists.
//
// Chunks remain the unit of work between scheduler decisions: each chunk is
// one core batched-pipeline call (bounding gather scratch and page-dedupe
// scope) and a natural preemption point for future cancellation/reshard.
//
// run is called with the claiming worker's id (0 ≤ worker < Workers(), for
// per-worker scratch), the shard, and the chunk's key indices. A chunk
// error stops that shard's remaining chunks; other shards keep going, and
// all errors are joined — matching the old dispatch's "every shard is
// attempted" contract.
func (s *Sharded) runChunked(g *shardGroups, run func(worker, shard int, idxs []int) error) error {
	var ready []int
	remaining := 0
	for sh := 0; sh+1 < len(g.start); sh++ {
		if g.start[sh+1] > g.start[sh] {
			ready = append(ready, sh)
			remaining++
		}
	}
	if remaining == 0 {
		return nil
	}
	workers := s.workers
	if workers > remaining {
		workers = remaining
	}
	if workers == 1 {
		var errs []error
		for _, sh := range ready {
			for g.cur[sh] < g.start[sh+1] {
				lo, hi := g.cur[sh], min(g.cur[sh]+s.chunk, g.start[sh+1])
				g.cur[sh] = hi
				if err := run(0, sh, g.idx[lo:hi]); err != nil {
					errs = append(errs, err)
					break // abandon this shard's remaining chunks
				}
			}
		}
		return errors.Join(errs...)
	}

	var (
		mu   sync.Mutex
		errs = make([][]error, workers)
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			for len(ready) > 0 {
				sh := ready[0]
				ready = ready[1:]
				// Own sh until drained or failed; between chunks only the
				// cursor advance needs the queue lock.
				for g.cur[sh] < g.start[sh+1] {
					lo, hi := g.cur[sh], min(g.cur[sh]+s.chunk, g.start[sh+1])
					g.cur[sh] = hi
					mu.Unlock()
					err := run(w, sh, g.idx[lo:hi])
					mu.Lock()
					if err != nil {
						errs[w] = append(errs[w], err)
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all []error
	for _, we := range errs {
		all = append(all, we...)
	}
	return errors.Join(all...)
}

// InsertBatch inserts len(keys) mappings, grouped by shard and dispatched
// through the chunked batch router. Within a shard the batch preserves
// input order; across shards there is no ordering. On error the batch may
// be partially applied; all shard errors are joined.
func (s *Sharded) InsertBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("clam: InsertBatch length mismatch: %d keys, %d values", len(keys), len(values))
	}
	g := s.groupByShard(keys)
	defer s.putGroups(g)
	return s.runChunked(g, func(_, shard int, idxs []int) error {
		c := s.shards[shard]
		for _, i := range idxs {
			if err := c.Insert(keys[i], values[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// LookupBatch looks up len(keys) keys and returns per-key results in input
// order. Each chunk of a shard's group runs through the core batched
// lookup pipeline (CLAM.LookupBatch): the in-memory phase answers
// buffer/Bloom hits with zero I/O, and the flash phase dedupes keys on the
// same page, sorts probes by device address, and overlaps them across the
// device's queue lanes. Chunks are dispatched by the stealing router, so
// a Zipf-skewed batch keeps every worker busy.
func (s *Sharded) LookupBatch(keys []uint64) (values []uint64, found []bool, err error) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return values, found, nil
	}
	g := s.groupByShard(keys)
	defer s.putGroups(g)
	// Per-worker gather/scatter scratch, pooled across calls: chunk
	// indices are positions in the caller's key array, so keys are
	// gathered densely for the core batch and results scattered back.
	scratch := make([]*gatherScratch, s.workers)
	defer func() {
		for _, gs := range scratch {
			if gs != nil {
				s.gather.Put(gs)
			}
		}
	}()
	err = s.runChunked(g, func(w, shard int, idxs []int) error {
		gs := scratch[w]
		if gs == nil {
			gs, _ = s.gather.Get().(*gatherScratch)
			if gs == nil || cap(gs.keys) < s.chunk {
				gs = &gatherScratch{
					keys: make([]uint64, 0, s.chunk),
					res:  make([]core.LookupResult, s.chunk),
				}
			}
			scratch[w] = gs
		}
		kb := gs.keys[:0]
		for _, i := range idxs {
			kb = append(kb, keys[i])
		}
		rb := gs.res[:len(idxs)]
		if err := s.shards[shard].lookupBatchInto(kb, rb); err != nil {
			return err
		}
		for j, i := range idxs {
			values[i], found[i] = rb[j].Value, rb[j].Found
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return values, found, nil
}

// lookupBatchPerKey is PR 1's batch path — whole shard groups dispatched
// across the worker pool, one blocking Lookup per key — kept unexported as
// the baseline the batched-pipeline benchmarks compare against.
func (s *Sharded) lookupBatchPerKey(keys []uint64) (values []uint64, found []bool, err error) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	g := s.groupByShard(keys)
	defer s.putGroups(g)
	err = s.runShards(g.active(), func(shard int) error {
		c := s.shards[shard]
		for _, i := range g.idx[g.start[shard]:g.start[shard+1]] {
			v, ok, err := c.Lookup(keys[i])
			if err != nil {
				return err
			}
			values[i], found[i] = v, ok
		}
		return nil
	})
	return values, found, err
}

// DeleteBatch lazily removes len(keys) keys, grouped and dispatched like
// InsertBatch.
func (s *Sharded) DeleteBatch(keys []uint64) error {
	g := s.groupByShard(keys)
	defer s.putGroups(g)
	return s.runChunked(g, func(_, shard int, idxs []int) error {
		c := s.shards[shard]
		for _, i := range idxs {
			if err := c.Delete(keys[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// runShards executes run(shard) for every listed shard, spread over at
// most s.workers goroutines. Each shard runs on exactly one worker, so
// per-shard operation order is preserved and workers never contend on the
// same shard lock.
func (s *Sharded) runShards(shardIDs []int, run func(shard int) error) error {
	if len(shardIDs) == 0 {
		return nil
	}
	workers := s.workers
	if workers > len(shardIDs) {
		workers = len(shardIDs)
	}
	// Every shard is attempted regardless of other shards' failures, so a
	// batch applies the same set of operations whatever the Workers
	// setting; all shard errors are joined.
	if workers == 1 {
		var errs []error
		for _, sh := range shardIDs {
			if err := run(sh); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	work := make(chan int)
	errs := make([][]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for sh := range work {
				if err := run(sh); err != nil {
					errs[w] = append(errs[w], err)
				}
			}
		}(w)
	}
	for _, sh := range shardIDs {
		work <- sh
	}
	close(work)
	wg.Wait()
	var all []error
	for _, we := range errs {
		all = append(all, we...)
	}
	return errors.Join(all...)
}
