package clam

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hashutil"
	"repro/internal/metrics"
)

// Sharded is a horizontally partitioned CLAM implementing Store: the
// 64-bit key space is split across 2^b shards by the top b key bits, and
// each shard is a complete, independently locked CLAM — its own
// BufferHash, device models, value log, virtual clock and latency
// histograms. Operations on different shards proceed fully in parallel;
// operations on the same shard serialize behind that shard's mutex,
// preserving the paper's blocking-I/O semantics per shard.
//
// U64 keys route by their raw high bits (not a hash) so the partition is
// stable and transparent; they are assumed to be uniformly distributed
// fingerprints, as in every workload of the paper (hash non-uniform keys
// first, e.g. with hashutil.Mix64). Byte keys route by the high bits of
// their fingerprint, which is uniform by construction.
//
// Virtual time is per-shard: each shard's clock advances only by the work
// that shard performed, modeling one device set (and one I/O context) per
// shard. Aggregate views (Stats, Now) merge the per-shard state on demand.
type Sharded struct {
	shards  []*CLAM
	shift   uint // 64 - log2(len(shards)); shift ≥ 64 routes everything to shard 0
	workers int
	chunk   int    // batch router task granularity (keys per chunk)
	par     int    // co-workers per shard (WithShardParallelism; 1 = off)
	fpSeed  uint64 // deployment-level byte-key fingerprint seed
	groups  sync.Pool
	gather  sync.Pool // *gatherScratch, per-worker batch buffers
	fps     sync.Pool // *[]uint64, per-batch byte-key fingerprint buffers

	// Cooperative-router occupancy counters, cumulative per shard:
	// coopJoins counts idle workers attaching as co-workers, coopLanes the
	// phase-A lanes they executed (Stats.Router).
	coopJoins []atomic.Uint64
	coopLanes []atomic.Uint64
}

// gatherScratch is one worker's chunk-sized gather/scatter buffers for the
// batched lookups, pooled so steady batch streams allocate nothing per
// call.
type gatherScratch struct {
	keys []uint64
	res  []core.LookupResult

	bkeys  [][]byte // byte-path gathered keys
	bvals  [][]byte
	bfound []bool
}

// openSharded builds a Sharded CLAM from a resolved config, opening one
// CLAM per shard with an even split of the flash, memory and value-log
// budgets and a per-shard derived hash seed.
func openSharded(cfg config) (*Sharded, error) {
	n := cfg.shards
	workers := cfg.workers
	if workers == 0 {
		workers = n
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("clam: WithShards(%d): shard count must be a power of two", n)
	}
	if workers < 1 {
		return nil, fmt.Errorf("clam: WithWorkers(%d): worker count must be positive", workers)
	}
	if workers > n {
		workers = n
	}
	if cfg.clock != nil {
		return nil, errors.New("clam: WithClock is incompatible with WithShards; each shard owns its own clock")
	}
	if cfg.customDevice != nil || cfg.customVLogDev != nil {
		return nil, errors.New("clam: WithCustomDevice/WithValueLogDevice are incompatible with WithShards; each shard owns its own devices")
	}
	if cfg.flashBytes%int64(n) != 0 {
		return nil, fmt.Errorf("clam: flash capacity %d not divisible by %d shards", cfg.flashBytes, n)
	}
	if cfg.memoryBytes%int64(n) != 0 {
		return nil, fmt.Errorf("clam: memory budget %d not divisible by %d shards", cfg.memoryBytes, n)
	}
	if cfg.valueLogBytes%int64(n) != 0 {
		return nil, fmt.Errorf("clam: value-log capacity %d not divisible by %d shards", cfg.valueLogBytes, n)
	}
	seed := cfg.seed
	if seed == 0 {
		seed = 1
	}
	par := cfg.shardPar
	if par < 1 {
		par = 1
	}
	s := &Sharded{
		shards:    make([]*CLAM, n),
		shift:     64 - uint(bits.Len(uint(n))-1),
		workers:   workers,
		chunk:     cfg.batchChunk,
		par:       par,
		fpSeed:    seed,
		coopJoins: make([]atomic.Uint64, n),
		coopLanes: make([]atomic.Uint64, n),
	}
	for i := range s.shards {
		po := cfg
		// Shard CLAMs must not self-spawn phase-A lanes: cooperative
		// parallelism is the router's to schedule, chunk by chunk.
		po.shardPar = 0
		po.flashBytes = cfg.flashBytes / int64(n)
		po.memoryBytes = cfg.memoryBytes / int64(n)
		po.valueLogBytes = cfg.valueLogBytes / int64(n)
		po.seed = hashutil.Hash64Seed(uint64(i), seed)
		c, err := openCLAM(po)
		if err != nil {
			return nil, fmt.Errorf("clam: shard %d: %w", i, err)
		}
		// Shards fingerprint byte keys with the deployment seed, not their
		// derived internal seed, so the live Shard(i) handle addresses the
		// same byte-key space the parent routes into it.
		c.fpSeed = seed
		s.shards[i] = c
	}
	return s, nil
}

// shardIndex routes a key to its owning shard by the top log2(NumShards)
// bits. Every routing decision — single ops and batch grouping — goes
// through here.
func (s *Sharded) shardIndex(key uint64) int {
	if s.shift >= 64 {
		return 0
	}
	return int(key >> s.shift)
}

func (s *Sharded) shard(key uint64) *CLAM { return s.shards[s.shardIndex(key)] }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Workers returns the batch worker-pool bound.
func (s *Sharded) Workers() int { return s.workers }

// ShardParallelism returns the per-shard co-worker bound set by
// WithShardParallelism (1 = one worker per shard, co-working off).
func (s *Sharded) ShardParallelism() int { return s.par }

// Shard exposes shard i for inspection (per-shard stats, clock, device).
// The returned CLAM is live; its methods take the shard lock as usual.
func (s *Sharded) Shard(i int) *CLAM { return s.shards[i] }

// --- single-key operations ---

// PutU64 adds or updates a (key, value) mapping on the key's shard.
func (s *Sharded) PutU64(key, value uint64) error {
	return s.shard(key).PutU64(key, value)
}

// UpdateU64 is an alias of PutU64 with the paper's lazy-update semantics
// (§5.1.1); see Store.
func (s *Sharded) UpdateU64(key, value uint64) error { return s.PutU64(key, value) }

// GetU64 returns the latest value stored under key.
func (s *Sharded) GetU64(key uint64) (value uint64, found bool, err error) {
	return s.shard(key).GetU64(key)
}

// DeleteU64 lazily removes key (§5.1.1) on its shard.
func (s *Sharded) DeleteU64(key uint64) error {
	return s.shard(key).DeleteU64(key)
}

// Put adds or updates a byte key → value mapping: the key's fingerprint
// picks the shard, and the record lands in that shard's value log.
func (s *Sharded) Put(key, value []byte) error {
	fp := fingerprint(key, s.fpSeed)
	return s.shards[s.shardIndex(fp)].putRecord(fp, key, value)
}

// Update is an alias of Put with the paper's lazy-update semantics
// (§5.1.1); see Store.
func (s *Sharded) Update(key, value []byte) error { return s.Put(key, value) }

// Get returns the latest value stored under key, verified against the full
// key bytes.
func (s *Sharded) Get(key []byte) (value []byte, found bool, err error) {
	fp := fingerprint(key, s.fpSeed)
	return s.shards[s.shardIndex(fp)].getRecord(fp, key)
}

// Delete lazily removes a byte key on its fingerprint's shard.
func (s *Sharded) Delete(key []byte) error {
	fp := fingerprint(key, s.fpSeed)
	return s.shards[s.shardIndex(fp)].deleteFP(fp)
}

// --- maintenance ---

// Flush forces all shards' buffered entries to flash, flushing shards in
// parallel across the worker pool.
func (s *Sharded) Flush() error {
	all := make([]int, len(s.shards))
	for i := range all {
		all[i] = i
	}
	return s.runShards(all, func(shard int) error {
		return s.shards[shard].Flush()
	})
}

// Elapse advances every shard's virtual clock by d, modeling fleet-wide
// idle time (during which SSDs garbage-collect in the background).
func (s *Sharded) Elapse(d time.Duration) {
	for _, c := range s.shards {
		c.Elapse(d)
	}
}

// Now returns the furthest-ahead shard clock: the virtual makespan of the
// work performed so far, the number to report for end-to-end completion
// time of a parallel workload.
func (s *Sharded) Now() time.Duration {
	var max time.Duration
	for _, c := range s.shards {
		if t := c.Clock().Now(); t > max {
			max = t
		}
	}
	return max
}

// ResetMetrics clears every shard's latency histograms and core counters,
// and the router's cooperative-occupancy counters, so every field of the
// next Stats snapshot covers the same since-reset window.
func (s *Sharded) ResetMetrics() {
	for _, c := range s.shards {
		c.ResetMetrics()
	}
	for i := range s.coopJoins {
		s.coopJoins[i].Store(0)
		s.coopLanes[i].Store(0)
	}
}

// Stats merges the per-shard snapshots into one aggregate view: core,
// device and value-log counters are summed, latency histograms are merged
// before summarizing (so percentiles reflect the true global
// distribution), and memory footprints are added.
func (s *Sharded) Stats() Stats {
	var agg Stats
	ins := make([]*metrics.Histogram, 0, len(s.shards))
	lk := make([]*metrics.Histogram, 0, len(s.shards))
	del := make([]*metrics.Histogram, 0, len(s.shards))
	wr := make([]*metrics.Histogram, 0, len(s.shards))
	for _, c := range s.shards {
		cs, hi, hl, hd, hw := c.snapshot()
		agg.Core.Merge(cs.Core)
		agg.Device.Add(cs.Device)
		agg.ValueDevice.Add(cs.ValueDevice)
		agg.ValueLog.Add(cs.ValueLog)
		agg.Memory.Add(cs.Memory)
		ins = append(ins, hi)
		lk = append(lk, hl)
		del = append(del, hd)
		wr = append(wr, hw)
	}
	agg.InsertLatency = metrics.Merged(ins...).Summarize()
	agg.LookupLatency = metrics.Merged(lk...).Summarize()
	agg.DeleteLatency = metrics.Merged(del...).Summarize()
	agg.WriteLatency = metrics.Merged(wr...).Summarize()
	if s.par > 1 {
		agg.Router.CoopJoins = make([]uint64, len(s.shards))
		agg.Router.CoopLanes = make([]uint64, len(s.shards))
		for i := range s.shards {
			agg.Router.CoopJoins[i] = s.coopJoins[i].Load()
			agg.Router.CoopLanes[i] = s.coopLanes[i].Load()
		}
	}
	return agg
}

// snapshot copies one shard's metric state under its lock.
func (c *CLAM) snapshot() (Stats, *metrics.Histogram, *metrics.Histogram, *metrics.Histogram, *metrics.Histogram) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Core:   c.bh.Stats(),
		Device: c.dev.Counters(),
		Memory: c.bh.MemoryFootprint(),
	}
	if c.vlog != nil {
		st.ValueDevice = c.vlog.Device().Counters()
		st.ValueLog = c.vlog.Stats()
	}
	hi, hl, hd, hw := c.insert, c.lookup, c.del, c.write
	return st, &hi, &hl, &hd, &hw
}

// --- batch grouping and the chunked batch router ---

// shardGroups is the reusable result of grouping a batch's key indices by
// shard with a counting sort: shard sh owns idx[start[sh]:start[sh+1]], in
// input order. cur is the router's per-shard consumption cursor. Instances
// are pooled on the Sharded because batches run concurrently.
//
// Mutation batches don't need to scatter results back to input positions,
// so groupPairsByShard skips the index layer entirely: keys (and values)
// are bucketed directly into contiguous per-shard runs held in kbuf/vbuf,
// and each router chunk is a zero-copy slice of those runs.
type shardGroups struct {
	idx   []int
	start []int
	cur   []int
	kbuf  []uint64
	vbuf  []uint64
	bkbuf [][]byte
	bvbuf [][]byte
	ws    []*gatherScratch // per-worker gather buffers, bound lazily
}

// groupByShard buckets key indices by owning shard via a two-pass counting
// sort into a pooled shardGroups. For byte batches the caller passes the
// precomputed fingerprints. Callers return the groups with putGroups.
func (s *Sharded) groupByShard(keys []uint64) *shardGroups {
	n := len(s.shards)
	g, _ := s.groups.Get().(*shardGroups)
	if g == nil {
		g = &shardGroups{start: make([]int, n+1), cur: make([]int, n)}
	}
	if cap(g.idx) < len(keys) {
		g.idx = make([]int, len(keys))
	}
	g.idx = g.idx[:len(keys)]
	for i := range g.cur {
		g.cur[i] = 0
	}
	for _, k := range keys {
		g.cur[s.shardIndex(k)]++
	}
	g.start[0] = 0
	for i := 0; i < n; i++ {
		g.start[i+1] = g.start[i] + g.cur[i]
		g.cur[i] = g.start[i]
	}
	for i, k := range keys {
		sh := s.shardIndex(k)
		g.idx[g.cur[sh]] = i
		g.cur[sh]++
	}
	for i := 0; i < n; i++ {
		g.cur[i] = g.start[i] // rewind: cur becomes the router's cursor
	}
	s.bindWorkers(g)
	return g
}

func (s *Sharded) putGroups(g *shardGroups) {
	// Drop the byte-slice references before pooling: a retained shardGroups
	// must not pin the previous batch's keys and values in memory.
	clear(g.bkbuf)
	clear(g.bvbuf)
	for i, gs := range g.ws {
		if gs != nil {
			s.gather.Put(gs)
			g.ws[i] = nil
		}
	}
	s.groups.Put(g)
}

// bindWorkers sizes g's per-worker scratch table for this batch (the
// gatherScratch instances themselves attach lazily in workerScratch).
func (s *Sharded) bindWorkers(g *shardGroups) {
	if cap(g.ws) < s.workers {
		g.ws = make([]*gatherScratch, s.workers)
	}
	g.ws = g.ws[:s.workers]
}

// groupPairsByShard buckets a mutation batch's keys — and, when values is
// non-nil, the parallel values — directly into per-shard contiguous runs
// (shard sh owns kbuf[start[sh]:start[sh+1]], in input order). Byte
// batches pass their fingerprints as keys and bucket the byte slices
// through bk/bv. One scatter pass replaces the index sort plus the
// per-chunk gather copy of the lookup path, which must keep indices to
// scatter results back.
func (s *Sharded) groupPairsByShard(keys, values []uint64, bk, bv [][]byte) *shardGroups {
	n := len(s.shards)
	g, _ := s.groups.Get().(*shardGroups)
	if g == nil {
		g = &shardGroups{start: make([]int, n+1), cur: make([]int, n)}
	}
	if cap(g.kbuf) < len(keys) {
		g.kbuf = make([]uint64, len(keys))
	}
	g.kbuf = g.kbuf[:len(keys)]
	if values != nil {
		if cap(g.vbuf) < len(values) {
			g.vbuf = make([]uint64, len(values))
		}
		g.vbuf = g.vbuf[:len(values)]
	}
	if bk != nil {
		if cap(g.bkbuf) < len(bk) {
			g.bkbuf = make([][]byte, len(bk))
		}
		g.bkbuf = g.bkbuf[:len(bk)]
	}
	if bv != nil {
		if cap(g.bvbuf) < len(bv) {
			g.bvbuf = make([][]byte, len(bv))
		}
		g.bvbuf = g.bvbuf[:len(bv)]
	}
	for i := range g.cur {
		g.cur[i] = 0
	}
	for _, k := range keys {
		g.cur[s.shardIndex(k)]++
	}
	g.start[0] = 0
	for i := 0; i < n; i++ {
		g.start[i+1] = g.start[i] + g.cur[i]
		g.cur[i] = g.start[i]
	}
	for i, k := range keys {
		sh := s.shardIndex(k)
		at := g.cur[sh]
		g.cur[sh]++
		g.kbuf[at] = k
		if values != nil {
			g.vbuf[at] = values[i]
		}
		if bk != nil {
			g.bkbuf[at] = bk[i]
		}
		if bv != nil {
			g.bvbuf[at] = bv[i]
		}
	}
	for i := 0; i < n; i++ {
		g.cur[i] = g.start[i] // rewind: cur becomes the router's cursor
	}
	s.bindWorkers(g)
	return g
}

// active returns the shards that received work (bench/legacy path only;
// the router walks start directly).
func (g *shardGroups) active() []int {
	var shards []int
	for sh := 0; sh+1 < len(g.start); sh++ {
		if g.start[sh+1] > g.start[sh] {
			shards = append(shards, sh)
		}
	}
	return shards
}

// runChunked is the batch router: shard groups become chunk-sized tasks
// consumed from a shared queue, so skewed key distributions no longer leave
// workers idle while unclaimed work exists. Three rules shape the schedule:
//
//   - Single ownership: a shard is claimed by at most one worker at a time.
//     Its CLAM serializes behind one mutex anyway, and single ownership
//     preserves within-shard input order.
//   - Affinity: the owning worker keeps its shard between chunks (the
//     shard's Bloom banks and buffers are hot in that worker's cache;
//     migrating per chunk measurably thrashes them) and returns to the
//     shared queue only when the shard is drained, stealing the next
//     pending shard the moment one exists.
//   - Co-working (WithShardParallelism > 1): a worker that finds no shard
//     left to own attaches to the deepest still-pending owned shard — the
//     hot shard of a skewed batch — and serves that shard's phase-A lanes
//     through its coopShard instead of exiting, capped at parallelism-1
//     co-workers per shard (see coop.go).
//
// Chunks are the unit of work between scheduler decisions: each chunk is
// one core batched-pipeline call (bounding gather scratch and page-dedupe
// scope) and the router's cancellation point — ctx is checked before every
// chunk, and a canceled batch stops claiming chunks and returns ctx.Err()
// joined with any chunk errors. Work already applied stays applied.
//
// run is called with the claiming worker's id (0 ≤ worker < Workers(), for
// per-worker scratch), the shard, the chunk's key indices, and the phase-A
// runner to bind into the chunk call. A chunk error stops that shard's
// remaining chunks; other shards keep going, and all errors are joined —
// matching the old dispatch's "every shard is attempted" contract.
func (s *Sharded) runChunked(ctx context.Context, g *shardGroups, run func(worker, shard int, idxs []int, br batchRunner) error) error {
	return s.runChunkedRanges(ctx, g, func(w, shard, lo, hi int, br batchRunner) error {
		return run(w, shard, g.idx[lo:hi], br)
	})
}

// runChunkedRanges is the range form of the router: callbacks receive the
// chunk as a [lo, hi) range of the shard's group, which bucketed mutation
// batches slice directly out of the grouped key/value runs (no index
// layer) and index-based callers resolve through g.idx.
func (s *Sharded) runChunkedRanges(ctx context.Context, g *shardGroups, run func(worker, shard, lo, hi int, br batchRunner) error) error {
	var ready []int
	remaining := 0
	for sh := 0; sh+1 < len(g.start); sh++ {
		if g.start[sh+1] > g.start[sh] {
			ready = append(ready, sh)
			remaining++
		}
	}
	if remaining == 0 {
		return nil
	}
	// With co-working, workers beyond one-per-shard are useful as phase-A
	// co-workers, up to parallelism per shard; without it they would idle.
	workers := s.workers
	if limit := remaining * max(s.par, 1); workers > limit {
		workers = limit
	}
	if workers == 1 {
		var errs []error
		for _, sh := range ready {
			for g.cur[sh] < g.start[sh+1] {
				if err := ctx.Err(); err != nil {
					return errors.Join(append(errs, err)...)
				}
				lo, hi := g.cur[sh], min(g.cur[sh]+s.chunk, g.start[sh+1])
				g.cur[sh] = hi
				if err := run(0, sh, lo, hi, batchRunner{}); err != nil {
					errs = append(errs, err)
					break // abandon this shard's remaining chunks
				}
			}
		}
		return errors.Join(errs...)
	}

	var (
		mu       sync.Mutex // guards ready, g.cur, coops, errs, canceled
		errs     []error
		canceled error
		coops    []*coopShard // owned shards' coop gates, indexed by shard
		wg       sync.WaitGroup
	)
	if s.par > 1 {
		coops = make([]*coopShard, len(g.cur))
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			for {
				if len(ready) > 0 {
					sh := ready[0]
					ready = ready[1:]
					var co *coopShard
					var br batchRunner
					if coops != nil {
						co = newCoopShard()
						coops[sh] = co
						br = batchRunner{width: s.par, run: co.runPhase}
					}
					// Own sh until drained, failed or canceled; between
					// chunks only the cursor advance needs the queue lock.
					for g.cur[sh] < g.start[sh+1] {
						if err := ctx.Err(); err != nil {
							if canceled == nil {
								canceled = err
							}
							break
						}
						lo, hi := g.cur[sh], min(g.cur[sh]+s.chunk, g.start[sh+1])
						g.cur[sh] = hi
						mu.Unlock()
						// Bind lanes per chunk: with no co-worker attached
						// right now, the serial phase A (shared duplicate
						// memo, no lane split) is strictly cheaper; helpers
						// that attach mid-chunk catch the next chunk.
						cbr := br
						if co != nil && co.helpers.Load() == 0 {
							cbr = batchRunner{}
						}
						err := run(w, sh, lo, hi, cbr)
						mu.Lock()
						if err != nil {
							errs = append(errs, err)
							break
						}
					}
					if co != nil {
						coops[sh] = nil
						close(co.done) // release attached co-workers
					}
					if canceled != nil {
						return
					}
					continue
				}
				if coops == nil {
					return
				}
				// Co-working: no unowned shard remains. Attach to the
				// deepest pending owned shard — depth in keys is the
				// hot-shard signal — if it still has a co-worker slot and
				// at least two chunks left (below that the handoff cannot
				// pay for itself), then serve its phase-A lanes until its
				// owner drains it.
				best, bestDepth := -1, 2*s.chunk-1
				for sh, co := range coops {
					if co == nil || int(co.helpers.Load()) >= s.par-1 {
						continue
					}
					if depth := g.start[sh+1] - g.cur[sh]; depth > bestDepth {
						best, bestDepth = sh, depth
					}
				}
				if best < 0 {
					return
				}
				co := coops[best]
				co.helpers.Add(1)
				s.coopJoins[best].Add(1)
				mu.Unlock()
				served := co.serve()
				mu.Lock()
				co.helpers.Add(-1)
				s.coopLanes[best].Add(served)
			}
		}(w)
	}
	wg.Wait()
	if canceled != nil {
		errs = append(errs, canceled)
	}
	return errors.Join(errs...)
}

// runSingleShard is the contiguous-batch fast path: when every key of a
// batch routes to one shard (the extreme of the hot-shard skew the router
// exists for), grouping would only copy the batch into a single run, so
// the router collapses to a chunk loop over direct sub-slices of the
// caller's input. Phase-A lanes still engage: with WithShardParallelism,
// chunks run on a spawned-lane runner sized within the worker budget
// (there is no contending shard to borrow workers from).
func (s *Sharded) runSingleShard(ctx context.Context, n int, run func(lo, hi int, br batchRunner) error) error {
	br := s.fastRunner()
	var errs []error
	for lo := 0; lo < n; lo += s.chunk {
		if err := ctx.Err(); err != nil {
			return errors.Join(append(errs, err)...)
		}
		hi := min(lo+s.chunk, n)
		if err := run(lo, hi, br); err != nil {
			errs = append(errs, err)
			break
		}
	}
	return errors.Join(errs...)
}

// fastRunner returns the phase-A runner for batches that bypass the
// router: lanes spawned within the worker budget, or serial when
// co-working is off. Spawned lanes are clamped to GOMAXPROCS — beyond the
// schedulable cores they are pure overhead (unlike router co-workers,
// which exist anyway and claim lanes opportunistically).
func (s *Sharded) fastRunner() batchRunner {
	if w := min(s.par, s.workers, runtime.GOMAXPROCS(0)); w > 1 {
		return batchRunner{width: w, run: core.GoRunner}
	}
	return batchRunner{}
}

// singleShardOf returns the shard every key routes to, or -1 when the
// batch spans shards. The scan stops at the first mismatch, so mixed
// batches pay a handful of comparisons while contiguous single-shard
// batches skip the counting sort and its gather/scatter copies entirely.
func (s *Sharded) singleShardOf(keys []uint64) int {
	if len(keys) == 0 {
		return -1
	}
	sh := s.shardIndex(keys[0])
	for _, k := range keys[1:] {
		if s.shardIndex(k) != sh {
			return -1
		}
	}
	return sh
}

// --- U64 batches ---

// PutBatchU64 inserts len(keys) mappings, grouped by shard and dispatched
// through the chunked batch router. Each chunk runs the core batched
// insert pipeline on its shard: buffer updates apply in order with one
// deferred CPU advance, and every flush the chunk triggers is issued as
// one address-sorted overlapped write submission. Within a shard the batch
// preserves input order; across shards there is no ordering. On error (or
// cancellation) the batch may be partially applied; all errors are joined.
func (s *Sharded) PutBatchU64(ctx context.Context, keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("clam: PutBatchU64 length mismatch: %d keys, %d values", len(keys), len(values))
	}
	if sh := s.singleShardOf(keys); sh >= 0 {
		return s.runSingleShard(ctx, len(keys), func(lo, hi int, br batchRunner) error {
			return s.shards[sh].putBatchU64Chunk(keys[lo:hi], values[lo:hi], br)
		})
	}
	g := s.groupPairsByShard(keys, values, nil, nil)
	defer s.putGroups(g)
	return s.runChunkedRanges(ctx, g, func(_, shard, lo, hi int, br batchRunner) error {
		return s.shards[shard].putBatchU64Chunk(g.kbuf[lo:hi], g.vbuf[lo:hi], br)
	})
}

// GetBatchU64 looks up len(keys) keys and returns per-key results in input
// order. Each chunk of a shard's group runs through the core batched
// lookup pipeline: the in-memory phase answers buffer/Bloom hits with zero
// I/O, and the flash phase dedupes keys on the same page, sorts probes by
// device address, and overlaps them across the device's queue lanes.
// Chunks are dispatched by the stealing router, so a Zipf-skewed batch
// keeps every worker busy; ctx cancels between chunks.
func (s *Sharded) GetBatchU64(ctx context.Context, keys []uint64) (values []uint64, found []bool, err error) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return values, found, nil
	}
	if sh := s.singleShardOf(keys); sh >= 0 {
		if err := s.getBatchU64Single(ctx, sh, keys, values, found); err != nil {
			return nil, nil, err
		}
		return values, found, nil
	}
	if err := s.getBatchU64Routed(ctx, keys, values, found); err != nil {
		return nil, nil, err
	}
	return values, found, nil
}

// getBatchU64Routed is the general multi-shard lookup path: group by
// shard, dispatch through the cooperative chunk router, gather per chunk
// and scatter results back to input positions. (Also the fast path's bench
// baseline: a single-shard batch routed here pays the grouping and copies
// the fast path exists to skip.)
func (s *Sharded) getBatchU64Routed(ctx context.Context, keys []uint64, values []uint64, found []bool) error {
	g := s.groupByShard(keys)
	defer s.putGroups(g)
	return s.runChunked(ctx, g, func(w, shard int, idxs []int, br batchRunner) error {
		gs := s.workerScratch(g.ws, w)
		kb := gs.keys[:0]
		for _, i := range idxs {
			kb = append(kb, keys[i])
		}
		gs.keys = kb
		if cap(gs.res) < len(idxs) {
			gs.res = make([]core.LookupResult, max(len(idxs), s.chunk))
		}
		rb := gs.res[:len(idxs)]
		if err := s.shards[shard].getBatchU64Into(kb, rb, br); err != nil {
			return err
		}
		for j, i := range idxs {
			values[i], found[i] = rb[j].Value, rb[j].Found
		}
		return nil
	})
}

// getBatchU64Single drives a single-shard lookup batch without grouping:
// chunk-sized core pipeline calls on direct sub-slices of keys, results
// scattered straight into the output arrays.
func (s *Sharded) getBatchU64Single(ctx context.Context, sh int, keys []uint64, values []uint64, found []bool) error {
	gs, _ := s.gather.Get().(*gatherScratch)
	if gs == nil {
		gs = &gatherScratch{}
	}
	defer s.gather.Put(gs)
	if cap(gs.res) < s.chunk {
		gs.res = make([]core.LookupResult, s.chunk)
	}
	return s.runSingleShard(ctx, len(keys), func(lo, hi int, br batchRunner) error {
		rb := gs.res[:hi-lo]
		if err := s.shards[sh].getBatchU64Into(keys[lo:hi], rb, br); err != nil {
			return err
		}
		for j := range rb {
			values[lo+j], found[lo+j] = rb[j].Value, rb[j].Found
		}
		return nil
	})
}

// DeleteBatchU64 lazily removes len(keys) keys, grouped and dispatched like
// PutBatchU64, with each chunk applied as one batched core delete.
func (s *Sharded) DeleteBatchU64(ctx context.Context, keys []uint64) error {
	if sh := s.singleShardOf(keys); sh >= 0 {
		return s.runSingleShard(ctx, len(keys), func(lo, hi int, br batchRunner) error {
			return s.shards[sh].deleteBatchU64Chunk(keys[lo:hi], br)
		})
	}
	g := s.groupPairsByShard(keys, nil, nil, nil)
	defer s.putGroups(g)
	return s.runChunkedRanges(ctx, g, func(_, shard, lo, hi int, br batchRunner) error {
		return s.shards[shard].deleteBatchU64Chunk(g.kbuf[lo:hi], br)
	})
}

// workerScratch lazily binds a pooled gatherScratch to worker w (the
// scratch table lives in the batch's pooled shardGroups; putGroups returns
// the bound instances to the pool). Only the key gather buffer is sized
// eagerly; the other buffers grow on the paths that use them, so
// put/delete batches never allocate lookup scratch.
func (s *Sharded) workerScratch(scratch []*gatherScratch, w int) *gatherScratch {
	gs := scratch[w]
	if gs == nil {
		gs, _ = s.gather.Get().(*gatherScratch)
		if gs == nil || cap(gs.keys) < s.chunk {
			gs = &gatherScratch{keys: make([]uint64, 0, s.chunk)}
		}
		scratch[w] = gs
	}
	return gs
}

// --- byte batches ---

// fingerprints computes the batch's fingerprints once into a pooled
// buffer; they both route the batch and serve as the shards' index keys.
// Callers return the buffer with putFingerprints when the batch is done.
func (s *Sharded) fingerprints(keys [][]byte) *[]uint64 {
	p, _ := s.fps.Get().(*[]uint64)
	if p == nil {
		p = new([]uint64)
	}
	if cap(*p) < len(keys) {
		*p = make([]uint64, len(keys))
	}
	*p = (*p)[:len(keys)]
	for i, k := range keys {
		(*p)[i] = fingerprint(k, s.fpSeed)
	}
	return p
}

func (s *Sharded) putFingerprints(p *[]uint64) { s.fps.Put(p) }

// PutBatch applies len(keys) byte Put operations through the chunked
// router. Each chunk runs two overlapped write streams on its shard: the
// chunk's records land in the value log as one tail-buffered multi-record
// append (one sequential page submission), then its fingerprints and
// record pointers run through the core batched insert pipeline with
// overlapped flush writes — the write-side mirror of GetBatch's two read
// streams. See PutBatchU64 for ordering and error semantics.
func (s *Sharded) PutBatch(ctx context.Context, keys, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("clam: PutBatch length mismatch: %d keys, %d values", len(keys), len(values))
	}
	fpp := s.fingerprints(keys)
	defer s.putFingerprints(fpp)
	fps := *fpp
	if sh := s.singleShardOf(fps); sh >= 0 {
		return s.runSingleShard(ctx, len(fps), func(lo, hi int, br batchRunner) error {
			return s.shards[sh].putBatchRecords(fps[lo:hi], keys[lo:hi], values[lo:hi], br)
		})
	}
	g := s.groupPairsByShard(fps, nil, keys, values)
	defer s.putGroups(g)
	return s.runChunkedRanges(ctx, g, func(_, shard, lo, hi int, br batchRunner) error {
		return s.shards[shard].putBatchRecords(g.kbuf[lo:hi], g.bkbuf[lo:hi], g.bvbuf[lo:hi], br)
	})
}

// GetBatch looks up len(keys) byte keys in input order. Each chunk runs
// two overlapped I/O streams on its shard: the core batched index pipeline
// resolves fingerprints to record pointers, then the chunk's surviving
// value-log records are fetched as one overlapped batched read.
func (s *Sharded) GetBatch(ctx context.Context, keys [][]byte) (values [][]byte, found []bool, err error) {
	values = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return values, found, nil
	}
	fpp := s.fingerprints(keys)
	defer s.putFingerprints(fpp)
	fps := *fpp
	if sh := s.singleShardOf(fps); sh >= 0 {
		err = s.runSingleShard(ctx, len(fps), func(lo, hi int, br batchRunner) error {
			return s.shards[sh].getBatchRecords(fps[lo:hi], keys[lo:hi], values[lo:hi], found[lo:hi], br)
		})
		if err != nil {
			return nil, nil, err
		}
		return values, found, nil
	}
	g := s.groupByShard(fps)
	defer s.putGroups(g)
	err = s.runChunked(ctx, g, func(w, shard int, idxs []int, br batchRunner) error {
		gs := s.workerScratch(g.ws, w)
		fb := gs.keys[:0]
		kb := gs.bkeys[:0]
		for _, i := range idxs {
			fb = append(fb, fps[i])
			kb = append(kb, keys[i])
		}
		gs.bkeys = kb
		if cap(gs.bvals) < len(idxs) {
			gs.bvals = make([][]byte, s.chunk)
			gs.bfound = make([]bool, s.chunk)
		}
		vb, ob := gs.bvals[:len(idxs)], gs.bfound[:len(idxs)]
		for j := range vb {
			vb[j], ob[j] = nil, false
		}
		if err := s.shards[shard].getBatchRecords(fb, kb, vb, ob, br); err != nil {
			return err
		}
		for j, i := range idxs {
			values[i], found[i] = vb[j], ob[j]
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return values, found, nil
}

// DeleteBatch lazily removes len(keys) byte keys through the chunked
// router, applying each chunk as one batched core delete.
func (s *Sharded) DeleteBatch(ctx context.Context, keys [][]byte) error {
	fpp := s.fingerprints(keys)
	defer s.putFingerprints(fpp)
	fps := *fpp
	if sh := s.singleShardOf(fps); sh >= 0 {
		return s.runSingleShard(ctx, len(fps), func(lo, hi int, br batchRunner) error {
			return s.shards[sh].deleteBatchFPs(fps[lo:hi], br)
		})
	}
	g := s.groupPairsByShard(fps, nil, nil, nil)
	defer s.putGroups(g)
	return s.runChunkedRanges(ctx, g, func(_, shard, lo, hi int, br batchRunner) error {
		return s.shards[shard].deleteBatchFPs(g.kbuf[lo:hi], br)
	})
}

// --- existence probes ---

// ContainsU64 reports whether a fast-path key is present on its shard.
func (s *Sharded) ContainsU64(key uint64) (bool, error) {
	return s.shard(key).ContainsU64(key)
}

// Contains reports whether a record is indexed under key on its
// fingerprint's shard, with CLAM.Contains's no-record-read tradeoff.
func (s *Sharded) Contains(key []byte) (bool, error) {
	fp := fingerprint(key, s.fpSeed)
	return s.shards[s.shardIndex(fp)].containsFP(fp)
}

// ContainsBatch probes len(keys) byte keys through the chunked router and
// the batched index pipeline, returning per-key existence in input order.
// No value-log records are read (Contains's tradeoff), so each chunk costs
// exactly its overlapped index probes.
func (s *Sharded) ContainsBatch(ctx context.Context, keys [][]byte) ([]bool, error) {
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return found, nil
	}
	fpp := s.fingerprints(keys)
	defer s.putFingerprints(fpp)
	fps := *fpp
	if sh := s.singleShardOf(fps); sh >= 0 {
		if err := s.runSingleShard(ctx, len(fps), func(lo, hi int, br batchRunner) error {
			return s.shards[sh].containsBatchFPs(fps[lo:hi], found[lo:hi], br)
		}); err != nil {
			return nil, err
		}
		return found, nil
	}
	g := s.groupByShard(fps)
	defer s.putGroups(g)
	err := s.runChunked(ctx, g, func(w, shard int, idxs []int, br batchRunner) error {
		gs := s.workerScratch(g.ws, w)
		fb := gs.keys[:0]
		for _, i := range idxs {
			fb = append(fb, fps[i])
		}
		gs.keys = fb
		if cap(gs.bfound) < len(idxs) {
			gs.bfound = make([]bool, max(len(idxs), s.chunk))
		}
		ob := gs.bfound[:len(idxs)]
		if err := s.shards[shard].containsBatchFPs(fb, ob, br); err != nil {
			return err
		}
		for j, i := range idxs {
			found[i] = ob[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return found, nil
}

// getBatchU64PerKey is the PR-1 batch path — whole shard groups dispatched
// across the worker pool, one blocking GetU64 per key — kept unexported as
// the baseline the batched-pipeline benchmarks compare against.
func (s *Sharded) getBatchU64PerKey(keys []uint64) (values []uint64, found []bool, err error) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	g := s.groupByShard(keys)
	defer s.putGroups(g)
	err = s.runShards(g.active(), func(shard int) error {
		c := s.shards[shard]
		for _, i := range g.idx[g.start[shard]:g.start[shard+1]] {
			v, ok, err := c.GetU64(keys[i])
			if err != nil {
				return err
			}
			values[i], found[i] = v, ok
		}
		return nil
	})
	return values, found, err
}

// runShards executes run(shard) for every listed shard, spread over at
// most s.workers goroutines. Each shard runs on exactly one worker, so
// per-shard operation order is preserved and workers never contend on the
// same shard lock.
func (s *Sharded) runShards(shardIDs []int, run func(shard int) error) error {
	if len(shardIDs) == 0 {
		return nil
	}
	workers := s.workers
	if workers > len(shardIDs) {
		workers = len(shardIDs)
	}
	// Every shard is attempted regardless of other shards' failures, so a
	// batch applies the same set of operations whatever the Workers
	// setting; all shard errors are joined.
	if workers == 1 {
		var errs []error
		for _, sh := range shardIDs {
			if err := run(sh); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	work := make(chan int)
	errs := make([][]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for sh := range work {
				if err := run(sh); err != nil {
					errs[w] = append(errs[w], err)
				}
			}
		}(w)
	}
	for _, sh := range shardIDs {
		work <- sh
	}
	close(work)
	wg.Wait()
	var all []error
	for _, we := range errs {
		all = append(all, we...)
	}
	return errors.Join(all...)
}
