package clam

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hashutil"
	"repro/internal/metrics"
)

// Sharded is a horizontally partitioned CLAM implementing Store: the
// 64-bit key space is split across 2^b shards by the top b key bits, and
// each shard is a complete, independently locked CLAM — its own
// BufferHash, device models, value log, virtual clock and latency
// histograms. Operations on different shards proceed fully in parallel;
// operations on the same shard serialize behind that shard's mutex,
// preserving the paper's blocking-I/O semantics per shard.
//
// U64 keys route by their raw high bits (not a hash) so the partition is
// stable and transparent; they are assumed to be uniformly distributed
// fingerprints, as in every workload of the paper (hash non-uniform keys
// first, e.g. with hashutil.Mix64). Byte keys route by the high bits of
// their fingerprint, which is uniform by construction.
//
// Virtual time is per-shard: each shard's clock advances only by the work
// that shard performed, modeling one device set (and one I/O context) per
// shard. Aggregate views (Stats, Now) merge the per-shard state on demand.
type Sharded struct {
	shards  []*CLAM
	shift   uint // 64 - log2(len(shards)); shift ≥ 64 routes everything to shard 0
	workers int
	chunk   int    // batch router task granularity (keys per chunk)
	fpSeed  uint64 // deployment-level byte-key fingerprint seed
	groups  sync.Pool
	gather  sync.Pool // *gatherScratch, per-worker batch buffers
}

// gatherScratch is one worker's chunk-sized gather/scatter buffers for the
// batched lookups, pooled so steady batch streams allocate nothing per
// call.
type gatherScratch struct {
	keys []uint64
	res  []core.LookupResult

	bkeys  [][]byte // byte-path gathered keys
	bvals  [][]byte
	bfound []bool
}

// openSharded builds a Sharded CLAM from a resolved config, opening one
// CLAM per shard with an even split of the flash, memory and value-log
// budgets and a per-shard derived hash seed.
func openSharded(cfg config) (*Sharded, error) {
	n := cfg.shards
	workers := cfg.workers
	if workers == 0 {
		workers = n
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("clam: WithShards(%d): shard count must be a power of two", n)
	}
	if workers < 1 {
		return nil, fmt.Errorf("clam: WithWorkers(%d): worker count must be positive", workers)
	}
	if workers > n {
		workers = n
	}
	if cfg.clock != nil {
		return nil, errors.New("clam: WithClock is incompatible with WithShards; each shard owns its own clock")
	}
	if cfg.customDevice != nil || cfg.customVLogDev != nil {
		return nil, errors.New("clam: WithCustomDevice/WithValueLogDevice are incompatible with WithShards; each shard owns its own devices")
	}
	if cfg.flashBytes%int64(n) != 0 {
		return nil, fmt.Errorf("clam: flash capacity %d not divisible by %d shards", cfg.flashBytes, n)
	}
	if cfg.memoryBytes%int64(n) != 0 {
		return nil, fmt.Errorf("clam: memory budget %d not divisible by %d shards", cfg.memoryBytes, n)
	}
	if cfg.valueLogBytes%int64(n) != 0 {
		return nil, fmt.Errorf("clam: value-log capacity %d not divisible by %d shards", cfg.valueLogBytes, n)
	}
	seed := cfg.seed
	if seed == 0 {
		seed = 1
	}
	s := &Sharded{
		shards:  make([]*CLAM, n),
		shift:   64 - uint(bits.Len(uint(n))-1),
		workers: workers,
		chunk:   cfg.batchChunk,
		fpSeed:  seed,
	}
	for i := range s.shards {
		po := cfg
		po.flashBytes = cfg.flashBytes / int64(n)
		po.memoryBytes = cfg.memoryBytes / int64(n)
		po.valueLogBytes = cfg.valueLogBytes / int64(n)
		po.seed = hashutil.Hash64Seed(uint64(i), seed)
		c, err := openCLAM(po)
		if err != nil {
			return nil, fmt.Errorf("clam: shard %d: %w", i, err)
		}
		// Shards fingerprint byte keys with the deployment seed, not their
		// derived internal seed, so the live Shard(i) handle addresses the
		// same byte-key space the parent routes into it.
		c.fpSeed = seed
		s.shards[i] = c
	}
	return s, nil
}

// shardIndex routes a key to its owning shard by the top log2(NumShards)
// bits. Every routing decision — single ops and batch grouping — goes
// through here.
func (s *Sharded) shardIndex(key uint64) int {
	if s.shift >= 64 {
		return 0
	}
	return int(key >> s.shift)
}

func (s *Sharded) shard(key uint64) *CLAM { return s.shards[s.shardIndex(key)] }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Workers returns the batch worker-pool bound.
func (s *Sharded) Workers() int { return s.workers }

// Shard exposes shard i for inspection (per-shard stats, clock, device).
// The returned CLAM is live; its methods take the shard lock as usual.
func (s *Sharded) Shard(i int) *CLAM { return s.shards[i] }

// --- single-key operations ---

// PutU64 adds or updates a (key, value) mapping on the key's shard.
func (s *Sharded) PutU64(key, value uint64) error {
	return s.shard(key).PutU64(key, value)
}

// UpdateU64 is an alias of PutU64 with the paper's lazy-update semantics
// (§5.1.1); see Store.
func (s *Sharded) UpdateU64(key, value uint64) error { return s.PutU64(key, value) }

// GetU64 returns the latest value stored under key.
func (s *Sharded) GetU64(key uint64) (value uint64, found bool, err error) {
	return s.shard(key).GetU64(key)
}

// DeleteU64 lazily removes key (§5.1.1) on its shard.
func (s *Sharded) DeleteU64(key uint64) error {
	return s.shard(key).DeleteU64(key)
}

// Put adds or updates a byte key → value mapping: the key's fingerprint
// picks the shard, and the record lands in that shard's value log.
func (s *Sharded) Put(key, value []byte) error {
	fp := fingerprint(key, s.fpSeed)
	return s.shards[s.shardIndex(fp)].putRecord(fp, key, value)
}

// Update is an alias of Put with the paper's lazy-update semantics
// (§5.1.1); see Store.
func (s *Sharded) Update(key, value []byte) error { return s.Put(key, value) }

// Get returns the latest value stored under key, verified against the full
// key bytes.
func (s *Sharded) Get(key []byte) (value []byte, found bool, err error) {
	fp := fingerprint(key, s.fpSeed)
	return s.shards[s.shardIndex(fp)].getRecord(fp, key)
}

// Delete lazily removes a byte key on its fingerprint's shard.
func (s *Sharded) Delete(key []byte) error {
	fp := fingerprint(key, s.fpSeed)
	return s.shards[s.shardIndex(fp)].deleteFP(fp)
}

// --- maintenance ---

// Flush forces all shards' buffered entries to flash, flushing shards in
// parallel across the worker pool.
func (s *Sharded) Flush() error {
	all := make([]int, len(s.shards))
	for i := range all {
		all[i] = i
	}
	return s.runShards(all, func(shard int) error {
		return s.shards[shard].Flush()
	})
}

// Elapse advances every shard's virtual clock by d, modeling fleet-wide
// idle time (during which SSDs garbage-collect in the background).
func (s *Sharded) Elapse(d time.Duration) {
	for _, c := range s.shards {
		c.Elapse(d)
	}
}

// Now returns the furthest-ahead shard clock: the virtual makespan of the
// work performed so far, the number to report for end-to-end completion
// time of a parallel workload.
func (s *Sharded) Now() time.Duration {
	var max time.Duration
	for _, c := range s.shards {
		if t := c.Clock().Now(); t > max {
			max = t
		}
	}
	return max
}

// ResetMetrics clears every shard's latency histograms and core counters.
func (s *Sharded) ResetMetrics() {
	for _, c := range s.shards {
		c.ResetMetrics()
	}
}

// Stats merges the per-shard snapshots into one aggregate view: core,
// device and value-log counters are summed, latency histograms are merged
// before summarizing (so percentiles reflect the true global
// distribution), and memory footprints are added.
func (s *Sharded) Stats() Stats {
	var agg Stats
	ins := make([]*metrics.Histogram, 0, len(s.shards))
	lk := make([]*metrics.Histogram, 0, len(s.shards))
	del := make([]*metrics.Histogram, 0, len(s.shards))
	for _, c := range s.shards {
		cs, hi, hl, hd := c.snapshot()
		agg.Core.Merge(cs.Core)
		agg.Device.Add(cs.Device)
		agg.ValueDevice.Add(cs.ValueDevice)
		agg.ValueLog.Add(cs.ValueLog)
		agg.Memory.Add(cs.Memory)
		ins = append(ins, hi)
		lk = append(lk, hl)
		del = append(del, hd)
	}
	agg.InsertLatency = metrics.Merged(ins...).Summarize()
	agg.LookupLatency = metrics.Merged(lk...).Summarize()
	agg.DeleteLatency = metrics.Merged(del...).Summarize()
	return agg
}

// snapshot copies one shard's metric state under its lock.
func (c *CLAM) snapshot() (Stats, *metrics.Histogram, *metrics.Histogram, *metrics.Histogram) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Core:   c.bh.Stats(),
		Device: c.dev.Counters(),
		Memory: c.bh.MemoryFootprint(),
	}
	if c.vlog != nil {
		st.ValueDevice = c.vlog.Device().Counters()
		st.ValueLog = c.vlog.Stats()
	}
	hi, hl, hd := c.insert, c.lookup, c.del
	return st, &hi, &hl, &hd
}

// --- batch grouping and the chunked batch router ---

// shardGroups is the reusable result of grouping a batch's key indices by
// shard with a counting sort: shard sh owns idx[start[sh]:start[sh+1]], in
// input order. cur is the router's per-shard consumption cursor. Instances
// are pooled on the Sharded because batches run concurrently.
type shardGroups struct {
	idx   []int
	start []int
	cur   []int
}

// groupByShard buckets key indices by owning shard via a two-pass counting
// sort into a pooled shardGroups. For byte batches the caller passes the
// precomputed fingerprints. Callers return the groups with putGroups.
func (s *Sharded) groupByShard(keys []uint64) *shardGroups {
	n := len(s.shards)
	g, _ := s.groups.Get().(*shardGroups)
	if g == nil {
		g = &shardGroups{start: make([]int, n+1), cur: make([]int, n)}
	}
	if cap(g.idx) < len(keys) {
		g.idx = make([]int, len(keys))
	}
	g.idx = g.idx[:len(keys)]
	for i := range g.cur {
		g.cur[i] = 0
	}
	for _, k := range keys {
		g.cur[s.shardIndex(k)]++
	}
	g.start[0] = 0
	for i := 0; i < n; i++ {
		g.start[i+1] = g.start[i] + g.cur[i]
		g.cur[i] = g.start[i]
	}
	for i, k := range keys {
		sh := s.shardIndex(k)
		g.idx[g.cur[sh]] = i
		g.cur[sh]++
	}
	for i := 0; i < n; i++ {
		g.cur[i] = g.start[i] // rewind: cur becomes the router's cursor
	}
	return g
}

func (s *Sharded) putGroups(g *shardGroups) { s.groups.Put(g) }

// active returns the shards that received work (bench/legacy path only;
// the router walks start directly).
func (g *shardGroups) active() []int {
	var shards []int
	for sh := 0; sh+1 < len(g.start); sh++ {
		if g.start[sh+1] > g.start[sh] {
			shards = append(shards, sh)
		}
	}
	return shards
}

// runChunked is the batch router: shard groups become chunk-sized tasks
// consumed from a shared queue, so skewed key distributions no longer leave
// workers idle while unclaimed work exists. Two rules shape the schedule:
//
//   - Single ownership: a shard is claimed by at most one worker at a time.
//     Its CLAM serializes behind one mutex anyway, and single ownership
//     preserves within-shard input order.
//   - Affinity: the owning worker keeps its shard between chunks (the
//     shard's Bloom banks and buffers are hot in that worker's cache;
//     migrating per chunk measurably thrashes them) and returns to the
//     shared queue only when the shard is drained, stealing the next
//     pending shard the moment one exists.
//
// Chunks are the unit of work between scheduler decisions: each chunk is
// one core batched-pipeline call (bounding gather scratch and page-dedupe
// scope) and the router's cancellation point — ctx is checked before every
// chunk, and a canceled batch stops claiming chunks and returns ctx.Err()
// joined with any chunk errors. Work already applied stays applied.
//
// run is called with the claiming worker's id (0 ≤ worker < Workers(), for
// per-worker scratch), the shard, and the chunk's key indices. A chunk
// error stops that shard's remaining chunks; other shards keep going, and
// all errors are joined — matching the old dispatch's "every shard is
// attempted" contract.
func (s *Sharded) runChunked(ctx context.Context, g *shardGroups, run func(worker, shard int, idxs []int) error) error {
	var ready []int
	remaining := 0
	for sh := 0; sh+1 < len(g.start); sh++ {
		if g.start[sh+1] > g.start[sh] {
			ready = append(ready, sh)
			remaining++
		}
	}
	if remaining == 0 {
		return nil
	}
	workers := s.workers
	if workers > remaining {
		workers = remaining
	}
	if workers == 1 {
		var errs []error
		for _, sh := range ready {
			for g.cur[sh] < g.start[sh+1] {
				if err := ctx.Err(); err != nil {
					return errors.Join(append(errs, err)...)
				}
				lo, hi := g.cur[sh], min(g.cur[sh]+s.chunk, g.start[sh+1])
				g.cur[sh] = hi
				if err := run(0, sh, g.idx[lo:hi]); err != nil {
					errs = append(errs, err)
					break // abandon this shard's remaining chunks
				}
			}
		}
		return errors.Join(errs...)
	}

	var (
		mu       sync.Mutex
		errs     = make([][]error, workers)
		canceled = make([]error, workers)
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			for len(ready) > 0 {
				sh := ready[0]
				ready = ready[1:]
				// Own sh until drained, failed or canceled; between chunks
				// only the cursor advance needs the queue lock.
				for g.cur[sh] < g.start[sh+1] {
					if err := ctx.Err(); err != nil {
						canceled[w] = err
						return
					}
					lo, hi := g.cur[sh], min(g.cur[sh]+s.chunk, g.start[sh+1])
					g.cur[sh] = hi
					mu.Unlock()
					err := run(w, sh, g.idx[lo:hi])
					mu.Lock()
					if err != nil {
						errs[w] = append(errs[w], err)
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all []error
	for _, we := range errs {
		all = append(all, we...)
	}
	for _, ce := range canceled {
		if ce != nil {
			all = append(all, ce)
			break // one cancellation error is enough
		}
	}
	return errors.Join(all...)
}

// --- U64 batches ---

// PutBatchU64 inserts len(keys) mappings, grouped by shard and dispatched
// through the chunked batch router. Within a shard the batch preserves
// input order; across shards there is no ordering. On error (or
// cancellation) the batch may be partially applied; all errors are joined.
func (s *Sharded) PutBatchU64(ctx context.Context, keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("clam: PutBatchU64 length mismatch: %d keys, %d values", len(keys), len(values))
	}
	g := s.groupByShard(keys)
	defer s.putGroups(g)
	return s.runChunked(ctx, g, func(_, shard int, idxs []int) error {
		c := s.shards[shard]
		for _, i := range idxs {
			if err := c.PutU64(keys[i], values[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// GetBatchU64 looks up len(keys) keys and returns per-key results in input
// order. Each chunk of a shard's group runs through the core batched
// lookup pipeline: the in-memory phase answers buffer/Bloom hits with zero
// I/O, and the flash phase dedupes keys on the same page, sorts probes by
// device address, and overlaps them across the device's queue lanes.
// Chunks are dispatched by the stealing router, so a Zipf-skewed batch
// keeps every worker busy; ctx cancels between chunks.
func (s *Sharded) GetBatchU64(ctx context.Context, keys []uint64) (values []uint64, found []bool, err error) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return values, found, nil
	}
	g := s.groupByShard(keys)
	defer s.putGroups(g)
	scratch := make([]*gatherScratch, s.workers)
	defer s.releaseScratch(scratch)
	err = s.runChunked(ctx, g, func(w, shard int, idxs []int) error {
		gs := s.workerScratch(scratch, w)
		kb := gs.keys[:0]
		for _, i := range idxs {
			kb = append(kb, keys[i])
		}
		rb := gs.res[:len(idxs)]
		if err := s.shards[shard].getBatchU64Into(kb, rb); err != nil {
			return err
		}
		for j, i := range idxs {
			values[i], found[i] = rb[j].Value, rb[j].Found
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return values, found, nil
}

// DeleteBatchU64 lazily removes len(keys) keys, grouped and dispatched like
// PutBatchU64.
func (s *Sharded) DeleteBatchU64(ctx context.Context, keys []uint64) error {
	g := s.groupByShard(keys)
	defer s.putGroups(g)
	return s.runChunked(ctx, g, func(_, shard int, idxs []int) error {
		c := s.shards[shard]
		for _, i := range idxs {
			if err := c.DeleteU64(keys[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// workerScratch lazily binds a pooled gatherScratch to worker w.
func (s *Sharded) workerScratch(scratch []*gatherScratch, w int) *gatherScratch {
	gs := scratch[w]
	if gs == nil {
		gs, _ = s.gather.Get().(*gatherScratch)
		if gs == nil || cap(gs.keys) < s.chunk {
			gs = &gatherScratch{
				keys: make([]uint64, 0, s.chunk),
				res:  make([]core.LookupResult, s.chunk),
			}
		}
		scratch[w] = gs
	}
	return gs
}

// releaseScratch returns the per-worker scratch to the pool.
func (s *Sharded) releaseScratch(scratch []*gatherScratch) {
	for _, gs := range scratch {
		if gs != nil {
			s.gather.Put(gs)
		}
	}
}

// --- byte batches ---

// fingerprints computes the batch's fingerprints once; they both route the
// batch and serve as the shards' index keys.
func (s *Sharded) fingerprints(keys [][]byte) []uint64 {
	fps := make([]uint64, len(keys))
	for i, k := range keys {
		fps[i] = fingerprint(k, s.fpSeed)
	}
	return fps
}

// PutBatch applies len(keys) byte Put operations through the chunked
// router; see PutBatchU64 for ordering and error semantics.
func (s *Sharded) PutBatch(ctx context.Context, keys, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("clam: PutBatch length mismatch: %d keys, %d values", len(keys), len(values))
	}
	fps := s.fingerprints(keys)
	g := s.groupByShard(fps)
	defer s.putGroups(g)
	return s.runChunked(ctx, g, func(_, shard int, idxs []int) error {
		c := s.shards[shard]
		for _, i := range idxs {
			if err := c.putRecord(fps[i], keys[i], values[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// GetBatch looks up len(keys) byte keys in input order. Each chunk runs
// two overlapped I/O streams on its shard: the core batched index pipeline
// resolves fingerprints to record pointers, then the chunk's surviving
// value-log records are fetched as one overlapped batched read.
func (s *Sharded) GetBatch(ctx context.Context, keys [][]byte) (values [][]byte, found []bool, err error) {
	values = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return values, found, nil
	}
	fps := s.fingerprints(keys)
	g := s.groupByShard(fps)
	defer s.putGroups(g)
	scratch := make([]*gatherScratch, s.workers)
	defer s.releaseScratch(scratch)
	err = s.runChunked(ctx, g, func(w, shard int, idxs []int) error {
		gs := s.workerScratch(scratch, w)
		fb := gs.keys[:0]
		kb := gs.bkeys[:0]
		for _, i := range idxs {
			fb = append(fb, fps[i])
			kb = append(kb, keys[i])
		}
		gs.bkeys = kb
		if cap(gs.bvals) < len(idxs) {
			gs.bvals = make([][]byte, s.chunk)
			gs.bfound = make([]bool, s.chunk)
		}
		vb, ob := gs.bvals[:len(idxs)], gs.bfound[:len(idxs)]
		for j := range vb {
			vb[j], ob[j] = nil, false
		}
		if err := s.shards[shard].getBatchRecords(fb, kb, vb, ob); err != nil {
			return err
		}
		for j, i := range idxs {
			values[i], found[i] = vb[j], ob[j]
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return values, found, nil
}

// DeleteBatch lazily removes len(keys) byte keys through the chunked
// router.
func (s *Sharded) DeleteBatch(ctx context.Context, keys [][]byte) error {
	fps := s.fingerprints(keys)
	g := s.groupByShard(fps)
	defer s.putGroups(g)
	return s.runChunked(ctx, g, func(_, shard int, idxs []int) error {
		c := s.shards[shard]
		for _, i := range idxs {
			if err := c.deleteFP(fps[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// getBatchU64PerKey is the PR-1 batch path — whole shard groups dispatched
// across the worker pool, one blocking GetU64 per key — kept unexported as
// the baseline the batched-pipeline benchmarks compare against.
func (s *Sharded) getBatchU64PerKey(keys []uint64) (values []uint64, found []bool, err error) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	g := s.groupByShard(keys)
	defer s.putGroups(g)
	err = s.runShards(g.active(), func(shard int) error {
		c := s.shards[shard]
		for _, i := range g.idx[g.start[shard]:g.start[shard+1]] {
			v, ok, err := c.GetU64(keys[i])
			if err != nil {
				return err
			}
			values[i], found[i] = v, ok
		}
		return nil
	})
	return values, found, err
}

// runShards executes run(shard) for every listed shard, spread over at
// most s.workers goroutines. Each shard runs on exactly one worker, so
// per-shard operation order is preserved and workers never contend on the
// same shard lock.
func (s *Sharded) runShards(shardIDs []int, run func(shard int) error) error {
	if len(shardIDs) == 0 {
		return nil
	}
	workers := s.workers
	if workers > len(shardIDs) {
		workers = len(shardIDs)
	}
	// Every shard is attempted regardless of other shards' failures, so a
	// batch applies the same set of operations whatever the Workers
	// setting; all shard errors are joined.
	if workers == 1 {
		var errs []error
		for _, sh := range shardIDs {
			if err := run(sh); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	work := make(chan int)
	errs := make([][]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for sh := range work {
				if err := run(sh); err != nil {
					errs[w] = append(errs[w], err)
				}
			}
		}(w)
	}
	for _, sh := range shardIDs {
		work <- sh
	}
	close(work)
	wg.Wait()
	var all []error
	for _, we := range errs {
		all = append(all, we...)
	}
	return errors.Join(all...)
}
