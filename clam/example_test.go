package clam_test

import (
	"context"
	"crypto/sha1"
	"fmt"
	"log"

	"repro/clam"
)

// Example mirrors the package quick start: open a Store over a simulated
// SSD, map content fingerprints to variable-length chunks, look them up,
// update and delete with the paper's lazy semantics.
func Example() {
	st, err := clam.Open(
		clam.WithDevice(clam.IntelSSD),
		clam.WithFlash(16<<20), // scaled-down stand-in for the paper's 32 GB
		clam.WithMemory(4<<20), // DRAM budget, split per §6.4
		clam.WithValueLog(8<<20) /* chunk storage for byte values */)
	if err != nil {
		log.Fatal(err)
	}

	chunk := []byte("the quick brown chunk")
	fp := sha1.Sum(chunk) // a real 20-byte content fingerprint
	if err := st.Put(fp[:], chunk); err != nil {
		log.Fatal(err)
	}
	if data, ok, err := st.Get(fp[:]); err == nil && ok {
		fmt.Printf("found %d bytes: %s\n", len(data), data)
	}

	st.Update(fp[:], []byte("v2")) // lazy update: newest version shadows older ones
	data, _, _ := st.Get(fp[:])
	fmt.Printf("updated to %s\n", data)

	st.Delete(fp[:]) // lazy delete (§5.1.1)
	if _, ok, _ := st.Get(fp[:]); !ok {
		fmt.Println("deleted")
	}

	// The U64 fast path stores word-sized values inline — the paper's
	// fingerprint → address workload, no value log involved.
	st.PutU64(0x9e3779b97f4a7c15, 4096)
	if addr, ok, _ := st.GetU64(0x9e3779b97f4a7c15); ok {
		fmt.Println("address", addr)
	}
	// Output:
	// found 21 bytes: the quick brown chunk
	// updated to v2
	// deleted
	// address 4096
}

// Example_sharded scales the same Store API across shards: byte keys route
// by fingerprint bits, batches fan out over a worker pool, and Stats
// merges the per-shard state.
func Example_sharded() {
	st, err := clam.Open(
		clam.WithDevice(clam.IntelSSD),
		clam.WithFlash(32<<20), // totals, split evenly across shards
		clam.WithMemory(8<<20),
		clam.WithShards(4),
	)
	if err != nil {
		log.Fatal(err)
	}

	// One batch call fingerprints the keys, groups them by shard and
	// dispatches chunk tasks across the worker pool.
	keys := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma"), []byte("delta")}
	vals := [][]byte{[]byte("1"), []byte("22"), []byte("333"), []byte("4444")}
	ctx := context.Background()
	if err := st.PutBatch(ctx, keys, vals); err != nil {
		log.Fatal(err)
	}
	got, found, err := st.GetBatch(ctx, keys)
	if err != nil {
		log.Fatal(err)
	}
	for i := range keys {
		fmt.Println(found[i], string(got[i]))
	}
	fmt.Println("inserts seen:", st.Stats().Core.Inserts)
	// Output:
	// true 1
	// true 22
	// true 333
	// true 4444
	// inserts seen: 4
}
