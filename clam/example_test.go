package clam_test

import (
	"fmt"
	"log"

	"repro/clam"
)

// Example mirrors the package quick start: open a CLAM over a simulated
// SSD, insert fingerprint → address mappings, look them up, update and
// delete with the paper's lazy semantics.
func Example() {
	c, err := clam.Open(clam.Options{
		Device:      clam.IntelSSD,
		FlashBytes:  16 << 20, // scaled-down stand-in for the paper's 32 GB
		MemoryBytes: 4 << 20,  // DRAM budget, split per §6.4
	})
	if err != nil {
		log.Fatal(err)
	}

	const fingerprint, diskAddress = 0x9e3779b97f4a7c15, 4096
	if err := c.Insert(fingerprint, diskAddress); err != nil {
		log.Fatal(err)
	}
	if addr, ok, err := c.Lookup(fingerprint); err == nil && ok {
		fmt.Println("found at", addr)
	}

	c.Update(fingerprint, 8192) // lazy update: newest version shadows older ones
	addr, _, _ := c.Lookup(fingerprint)
	fmt.Println("updated to", addr)

	c.Delete(fingerprint) // lazy delete (§5.1.1)
	if _, ok, _ := c.Lookup(fingerprint); !ok {
		fmt.Println("deleted")
	}
	// Output:
	// found at 4096
	// updated to 8192
	// deleted
}

// ExampleOpenSharded scales the same API across shards: keys route by
// their high bits, batches fan out over a worker pool, and Stats merges
// the per-shard state.
func ExampleOpenSharded() {
	s, err := clam.OpenSharded(clam.ShardedOptions{
		Options: clam.Options{
			Device:      clam.IntelSSD,
			FlashBytes:  32 << 20, // totals, split evenly across shards
			MemoryBytes: 8 << 20,
		},
		Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Uniform fingerprints spread across shards; one batch call groups
	// them by shard and dispatches the groups in parallel.
	keys := []uint64{0x0123456789abcdef, 0x4aa3bd1c8e21f000, 0x8f00ba4400112233, 0xfedcba9876543210}
	vals := []uint64{1, 2, 3, 4}
	if err := s.InsertBatch(keys, vals); err != nil {
		log.Fatal(err)
	}
	got, found, err := s.LookupBatch(keys)
	if err != nil {
		log.Fatal(err)
	}
	for i := range keys {
		fmt.Println(found[i], got[i])
	}
	fmt.Println("inserts seen:", s.Stats().Core.Inserts)
	// Output:
	// true 1
	// true 2
	// true 3
	// true 4
	// inserts seen: 4
}
