package clam

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/flashchip"
	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// Option configures Open. Options replace the former Options and
// ShardedOptions structs with one composable surface: the same list opens
// a single CLAM or a sharded deployment depending on WithShards.
type Option func(*config) error

// config is the resolved option set.
type config struct {
	device        DeviceKind
	customDevice  storage.Device
	customVLogDev storage.Device

	flashBytes    int64
	memoryBytes   int64
	valueLogBytes int64 // 0 → flashBytes

	bufferKB           int
	filterBitsPerEntry int
	maxIncarnations    int

	policy Policy
	retain func(key, value uint64) bool

	seed  uint64
	clock *vclock.Clock

	disableBloom    bool
	disableBitslice bool

	shards     int
	workers    int
	batchChunk int
	shardPar   int
}

// WithDevice selects the storage model for the index and the value log
// (default IntelSSD).
func WithDevice(kind DeviceKind) Option {
	return func(c *config) error {
		c.device = kind
		return nil
	}
}

// WithCustomDevice overrides the index device with a caller-supplied model.
// The caller must construct it against the clock passed via WithClock (or
// let the device own its clock). Byte-valued operations additionally need
// WithValueLogDevice; without one they fail with ErrNoValueLog.
// Incompatible with WithShards > 1 — each shard owns a private device.
func WithCustomDevice(dev storage.Device) Option {
	return func(c *config) error {
		c.customDevice = dev
		return nil
	}
}

// WithValueLogDevice overrides the value-log device. Only meaningful
// together with WithCustomDevice; stores opened by device kind build their
// own value-log device.
func WithValueLogDevice(dev storage.Device) Option {
	return func(c *config) error {
		c.customVLogDev = dev
		return nil
	}
}

// WithFlash sets F, the slow-storage capacity dedicated to the hash table
// (total across shards). Required.
func WithFlash(bytes int64) Option {
	return func(c *config) error {
		c.flashBytes = bytes
		return nil
	}
}

// WithMemory sets M, the DRAM budget (total across shards), split per the
// §6.4 tuning rules. Required unless WithBufferKB and
// WithFilterBitsPerEntry are both given.
func WithMemory(bytes int64) Option {
	return func(c *config) error {
		c.memoryBytes = bytes
		return nil
	}
}

// WithValueLog sets the value-log capacity in bytes (total across shards)
// backing the byte-valued API. Default: the flash capacity again. The log
// is circular — when it wraps, the oldest records are overwritten and
// their keys read as misses, the same FIFO story as incarnation eviction.
func WithValueLog(bytes int64) Option {
	return func(c *config) error {
		if bytes <= 0 {
			return fmt.Errorf("clam: WithValueLog(%d): capacity must be positive", bytes)
		}
		c.valueLogBytes = bytes
		return nil
	}
}

// WithBufferKB overrides B′, the per-super-table buffer size (default:
// 128 KB, or the device erase block on raw flash).
func WithBufferKB(kb int) Option {
	return func(c *config) error {
		c.bufferKB = kb
		return nil
	}
}

// WithFilterBitsPerEntry overrides the Bloom budget (default: derived from
// the memory budget).
func WithFilterBitsPerEntry(bits int) Option {
	return func(c *config) error {
		c.filterBitsPerEntry = bits
		return nil
	}
}

// WithMaxIncarnations caps k per super table (default 16, the paper's
// configuration; hard limit 64).
func WithMaxIncarnations(k int) Option {
	return func(c *config) error {
		c.maxIncarnations = k
		return nil
	}
}

// WithPolicy selects eviction behaviour (default FIFO).
func WithPolicy(p Policy) Option {
	return func(c *config) error {
		c.policy = p
		return nil
	}
}

// WithRetain configures PriorityBased eviction: entries for which retain
// returns true survive partial discard. The callback sees the internal
// 64-bit key and value words (byte-keyed entries pass their fingerprint
// and value-log pointer).
func WithRetain(retain func(key, value uint64) bool) Option {
	return func(c *config) error {
		c.retain = retain
		return nil
	}
}

// WithSeed makes all hashing deterministic (default 1).
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithClock supplies the virtual clock; one is created if absent.
// Incompatible with WithShards > 1 — each shard owns a private clock.
func WithClock(clock *vclock.Clock) Option {
	return func(c *config) error {
		c.clock = clock
		return nil
	}
}

// WithoutBloom disables Bloom filters (§7.3.1 ablation).
func WithoutBloom() Option {
	return func(c *config) error {
		c.disableBloom = true
		return nil
	}
}

// WithoutBitslice replaces the bit-sliced Bloom bank with separate filters
// (§7.3.1 ablation); answers are identical, CPU cost higher.
func WithoutBitslice() Option {
	return func(c *config) error {
		c.disableBitslice = true
		return nil
	}
}

// WithShards partitions the key space across n independent shards (n must
// be a power of two). n = 1 (the default) opens a single CLAM, the paper's
// design point; n > 1 opens a Sharded deployment whose flash, memory and
// value-log budgets are split evenly across shards.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("clam: WithShards(%d): shard count must be positive", n)
		}
		c.shards = n
		return nil
	}
}

// WithWorkers bounds the goroutine pool used by the sharded batch
// operations (default: one worker per shard).
func WithWorkers(n int) Option {
	return func(c *config) error {
		c.workers = n
		return nil
	}
}

// WithShardParallelism lets up to n workers cooperate on a single shard's
// batch (default 1: one worker per shard, the pre-cooperative model). With
// n > 1, a batch's chunk calls split their phase A — the read-mostly
// memory-resolution phase of the core pipelines — into parallel lanes: on
// a Sharded store, router workers that run out of shards to own attach to
// the deepest pending shard and serve its lanes instead of idling (capped
// at n-1 co-workers per shard, within the WithWorkers budget); on a single
// CLAM, lanes run on up to n-1 spawned goroutines. Results, per-key probe
// sequences and all core counters are exactly those of the serial pipeline
// — parallelism only changes wall-clock time, never state or virtual time
// (the differential oracles pin this).
func WithShardParallelism(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("clam: WithShardParallelism(%d): parallelism must be positive", n)
		}
		c.shardPar = n
		return nil
	}
}

// WithBatchChunk sets the batch pipeline's task granularity: batches are
// consumed in chunks of at most this many keys (default 512). A chunk is
// one core batched-pipeline call, so the setting bounds gather scratch and
// the scope of same-page read dedupe; it is also the interval at which
// cancellation is checked and — on a Sharded store — at which the owning
// worker re-visits the shared router queue.
func WithBatchChunk(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("clam: WithBatchChunk(%d): chunk must be positive", n)
		}
		c.batchChunk = n
		return nil
	}
}

// Open builds a Store from the given options: a single CLAM by default,
// or a Sharded deployment with WithShards(n > 1). Both implementations
// satisfy Store; callers that need implementation-specific surface
// (per-shard inspection, the core handle, latency histograms) type-assert
// to *CLAM or *Sharded.
func Open(opts ...Option) (Store, error) {
	cfg := config{seed: 1, shards: 1, batchChunk: defaultBatchChunk}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.flashBytes <= 0 {
		return nil, fmt.Errorf("clam: WithFlash is required")
	}
	if cfg.customVLogDev != nil && cfg.customDevice == nil {
		return nil, fmt.Errorf("clam: WithValueLogDevice requires WithCustomDevice (kind-opened stores build their own value-log device)")
	}
	if cfg.shards > 1 {
		return openSharded(cfg)
	}
	return openCLAM(cfg)
}

// defaultBatchChunk is the batch router's default task granularity.
const defaultBatchChunk = 512

// newKindDevice builds a device model of the given kind.
func newKindDevice(kind DeviceKind, capacity int64, clock *vclock.Clock) (storage.Device, error) {
	switch kind {
	case IntelSSD:
		return ssd.New(ssd.IntelX18M(), capacity, clock), nil
	case TranscendSSD:
		return ssd.New(ssd.TranscendTS32(), capacity, clock), nil
	case FlashChip:
		// The chip requires a whole number of erase blocks; round up.
		if bs := int64(128 << 10); capacity%bs != 0 {
			capacity += bs - capacity%bs
		}
		return flashchip.New(flashchip.DefaultConfig(capacity), clock), nil
	case MagneticDisk:
		return disk.New(disk.Hitachi7K80(), capacity, clock), nil
	default:
		return nil, fmt.Errorf("clam: unknown device kind %d", kind)
	}
}
