package clam

import (
	"context"
	"math/rand"
	"testing"
)

// The insert-batch differential oracle, mirroring differential_test.go's
// lookup oracle on the write side: the same seeded op stream drives a
// serial-mutation instance (per-key PutU64/DeleteU64) and a batched
// instance (windowed PutBatchU64/DeleteBatchU64) in lockstep. Windows
// preserve op order — a kind switch, a lookup or a Flush drains pending
// mutations first — so the batched instance sees exactly the serial
// sequence, just in batch-sized bites. The contract under test is the
// insert pipeline's promise: exact core-counter equality and identical
// post-state lookups, in both the strict and the eviction regimes, for
// CLAM and Sharded alike.

// batchMutStore is a store that also offers the batched mutation pipeline.
type batchMutStore interface {
	store
	PutBatchU64(ctx context.Context, keys, values []uint64) error
	DeleteBatchU64(ctx context.Context, keys []uint64) error
}

// applyInsertDifferential drives ops into serial and batched in lockstep,
// checking each lookup against both instances and the oracle tolerance
// (strict: exact found/not-found agreement below eviction onset).
func applyInsertDifferential(t *testing.T, name string, serial, batched batchMutStore, ops []op, strict bool) map[uint64]uint64 {
	return applyInsertDifferentialWindow(t, name, serial, batched, ops, strict, 192)
}

// applyInsertDifferentialWindow is applyInsertDifferential with an explicit
// mutation-window size (see applyBatchedDifferentialWindow).
func applyInsertDifferentialWindow(t *testing.T, name string, serial, batched batchMutStore, ops []op, strict bool, window int) map[uint64]uint64 {
	t.Helper()
	ctx := context.Background()
	oracle := make(map[uint64]uint64)
	var (
		insKeys, insVals []uint64
		delKeys          []uint64
	)
	flushIns := func(at int) {
		if len(insKeys) == 0 {
			return
		}
		if err := batched.PutBatchU64(ctx, insKeys, insVals); err != nil {
			t.Fatalf("%s: insert batch before op %d: %v", name, at, err)
		}
		insKeys, insVals = insKeys[:0], insVals[:0]
	}
	flushDel := func(at int) {
		if len(delKeys) == 0 {
			return
		}
		if err := batched.DeleteBatchU64(ctx, delKeys); err != nil {
			t.Fatalf("%s: delete batch before op %d: %v", name, at, err)
		}
		delKeys = delKeys[:0]
	}
	for i, o := range ops {
		switch o.kind {
		case opInsert:
			if err := serial.PutU64(o.key, o.val); err != nil {
				t.Fatalf("%s: op %d insert (serial): %v", name, i, err)
			}
			flushDel(i)
			insKeys, insVals = append(insKeys, o.key), append(insVals, o.val)
			if len(insKeys) >= window {
				flushIns(i)
			}
			oracle[o.key] = o.val
		case opDelete:
			if err := serial.DeleteU64(o.key); err != nil {
				t.Fatalf("%s: op %d delete (serial): %v", name, i, err)
			}
			flushIns(i)
			delKeys = append(delKeys, o.key)
			if len(delKeys) >= window {
				flushDel(i)
			}
			delete(oracle, o.key)
		case opFlush:
			flushIns(i)
			flushDel(i)
			if err := serial.Flush(); err != nil {
				t.Fatalf("%s: op %d flush (serial): %v", name, i, err)
			}
			if err := batched.Flush(); err != nil {
				t.Fatalf("%s: op %d flush (batched): %v", name, i, err)
			}
		case opLookup:
			flushIns(i)
			flushDel(i)
			sv, sok, err := serial.GetU64(o.key)
			if err != nil {
				t.Fatalf("%s: op %d lookup (serial): %v", name, i, err)
			}
			bv, bok, err := batched.GetU64(o.key)
			if err != nil {
				t.Fatalf("%s: op %d lookup (batched): %v", name, i, err)
			}
			if sv != bv || sok != bok {
				t.Fatalf("%s: op %d lookup(%#x): serial (%d,%v) vs batched (%d,%v)",
					name, i, o.key, sv, sok, bv, bok)
			}
			want, ok := oracle[o.key]
			if bok && (!ok || bv != want) {
				t.Fatalf("%s: op %d lookup(%#x) = %d, oracle has (%d, %v): stale or resurrected value",
					name, i, o.key, bv, want, ok)
			}
			if strict && bok != ok {
				t.Fatalf("%s: op %d lookup(%#x) found=%v, oracle=%v (strict phase)",
					name, i, o.key, bok, ok)
			}
		}
	}
	flushIns(len(ops))
	flushDel(len(ops))
	return oracle
}

// checkInsertCountersEqual asserts the serial and batched instances did
// byte-identical structural work: every core counter — inserts, deletes,
// flushes, evictions, cascades, partial scans, re-insertions and the
// lookup-side counters from the interleaved checks — must match exactly.
func checkInsertCountersEqual(t *testing.T, name string, serial, batched batchMutStore) {
	t.Helper()
	sc, bc := serial.Stats().Core, batched.Stats().Core
	if sc != bc {
		t.Fatalf("%s: core counters diverge:\nserial  %+v\nbatched %+v", name, sc, bc)
	}
	if sc.Inserts == 0 || sc.Flushes == 0 {
		t.Fatalf("%s: degenerate stream (inserts=%d flushes=%d); retune the test", name, sc.Inserts, sc.Flushes)
	}
}

// verifyInsertFinal sweeps the oracle and a sample of absent keys on both
// instances, requiring per-key agreement between them throughout.
func verifyInsertFinal(t *testing.T, name string, serial, batched batchMutStore, oracle map[uint64]uint64, seed int64) {
	t.Helper()
	for k, want := range oracle {
		sv, sok, err := serial.GetU64(k)
		if err != nil {
			t.Fatalf("%s: final serial lookup: %v", name, err)
		}
		bv, bok, err := batched.GetU64(k)
		if err != nil {
			t.Fatalf("%s: final batched lookup: %v", name, err)
		}
		if sv != bv || sok != bok {
			t.Fatalf("%s: final lookup(%#x): serial (%d,%v) vs batched (%d,%v)", name, k, sv, sok, bv, bok)
		}
		if bok && bv != want {
			t.Fatalf("%s: final lookup(%#x) = %d, oracle %d", name, k, bv, want)
		}
	}
	rng := rand.New(rand.NewSource(seed + 7))
	for i := 0; i < 2000; i++ {
		k := rng.Uint64()
		if _, ok := oracle[k]; ok {
			continue
		}
		sv, sok, _ := serial.GetU64(k)
		bv, bok, _ := batched.GetU64(k)
		if sv != bv || sok != bok {
			t.Fatalf("%s: absent-key lookup(%#x): serial (%d,%v) vs batched (%d,%v)", name, k, sv, sok, bv, bok)
		}
	}
}

func TestDifferentialInsertBatchStrict(t *testing.T) {
	// Insert-heavy stream below eviction onset: exact oracle agreement,
	// exact counter equality, and zero evictions on both sides.
	ops := genOps(5001, 40000, 20000, 0.15, 0.08, 0.0002)
	cs, ss := strictStores(t, FIFO)
	cb, sb := strictStores(t, FIFO)

	co := applyInsertDifferential(t, "clam", cs, cb, ops, true)
	so := applyInsertDifferential(t, "sharded", ss, sb, ops, true)
	if len(co) != len(so) {
		t.Fatalf("oracle divergence: %d vs %d keys", len(co), len(so))
	}
	verifyInsertFinal(t, "clam", cs, cb, co, 5001)
	verifyInsertFinal(t, "sharded", ss, sb, so, 5001)
	checkInsertCountersEqual(t, "clam", cs, cb)
	checkInsertCountersEqual(t, "sharded", ss, sb)
	for _, st := range []struct {
		name string
		s    store
	}{{"clam", cb}, {"sharded", sb}} {
		if ev := st.s.Stats().Core.Evictions; ev != 0 {
			t.Fatalf("%s: strict phase evicted %d times; retune the test sizes", st.name, ev)
		}
	}
}

func TestDifferentialInsertBatchEvictionRegime(t *testing.T) {
	for _, policy := range []Policy{FIFO, UpdateBased} {
		t.Run(policy.String(), func(t *testing.T) {
			ops := genOps(6002, 60000, 8000, 0.12, 0.12, 0.001)
			cs, ss := evictionStores(t, policy)
			cb, sb := evictionStores(t, policy)

			co := applyInsertDifferential(t, "clam", cs, cb, ops, false)
			so := applyInsertDifferential(t, "sharded", ss, sb, ops, false)
			verifyInsertFinal(t, "clam", cs, cb, co, 6002)
			verifyInsertFinal(t, "sharded", ss, sb, so, 6002)
			checkInsertCountersEqual(t, "clam", cs, cb)
			checkInsertCountersEqual(t, "sharded", ss, sb)
			for _, st := range []struct {
				name string
				s    store
			}{{"clam", cb}, {"sharded", sb}} {
				if st.s.Stats().Core.Evictions == 0 {
					t.Fatalf("%s: eviction phase never evicted; retune the test sizes", st.name)
				}
			}
		})
	}
}

// TestInsertBatchBytePathEquivalence drives the byte-keyed PutBatch against
// a serial Put loop: identical record placement (value-log stats), core
// counters, and per-key Get results — the two overlapped write streams must
// be pure time-model changes.
func TestInsertBatchBytePathEquivalence(t *testing.T) {
	open := func(shards int) batchByteStore {
		t.Helper()
		opts := []Option{WithDevice(IntelSSD), WithFlash(8 << 20), WithMemory(2 << 20),
			WithValueLog(1 << 20), WithSeed(31)}
		if shards > 1 {
			return openShardedT(t, append(opts, WithShards(shards))...)
		}
		return openCLAMT(t, opts...)
	}
	for _, tc := range []struct {
		name   string
		shards int
	}{{"clam", 1}, {"sharded", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			serial, batched := open(tc.shards), open(tc.shards)
			ctx := context.Background()
			rng := rand.New(rand.NewSource(7001))
			keys := make([][]byte, 6000)
			vals := make([][]byte, len(keys))
			for i := range keys {
				keys[i] = make([]byte, 12+rng.Intn(20))
				rng.Read(keys[i])
				vals[i] = make([]byte, rng.Intn(400))
				rng.Read(vals[i])
			}
			for at := 0; at < len(keys); at += 777 {
				hi := min(at+777, len(keys))
				for i := at; i < hi; i++ {
					if err := serial.Put(keys[i], vals[i]); err != nil {
						t.Fatal(err)
					}
				}
				if err := batched.PutBatch(ctx, keys[at:hi], vals[at:hi]); err != nil {
					t.Fatal(err)
				}
			}
			sst, bst := serial.Stats(), batched.Stats()
			if sst.Core != bst.Core {
				t.Fatalf("core counters diverge:\nserial  %+v\nbatched %+v", sst.Core, bst.Core)
			}
			if sst.ValueLog.Records != bst.ValueLog.Records ||
				sst.ValueLog.AppendedBytes != bst.ValueLog.AppendedBytes ||
				sst.ValueLog.Wraps != bst.ValueLog.Wraps {
				t.Fatalf("value-log stats diverge:\nserial  %+v\nbatched %+v", sst.ValueLog, bst.ValueLog)
			}
			for i, k := range keys {
				sv, sok, err := serial.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				bv, bok, err := batched.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				if sok != bok || string(sv) != string(bv) {
					t.Fatalf("key %d: serial (%q,%v) vs batched (%q,%v)", i, sv, sok, bv, bok)
				}
			}
		})
	}
}

// batchByteStore is the byte surface the equivalence test needs.
type batchByteStore interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, bool, error)
	PutBatch(ctx context.Context, keys, values [][]byte) error
	Stats() Stats
}
