package clam

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Cooperative phase scheduling: how several router workers share one hot
// shard's batch.
//
// A shard's CLAM serializes behind one mutex and its BufferHash is
// single-caller, so the router can never run two chunks of one shard at
// once — that is what used to strand a skewed batch behind a single
// worker. What the core batch pipelines *do* expose is an internal seam:
// phase A (read-mostly memory resolution) splits into contiguous lanes run
// through a core.PhaseRunner (see internal/core/phasea.go). The structures
// here let idle router workers serve those lanes on behalf of the worker
// that owns the hot shard:
//
//   - the owner binds a coopShard's runPhase into its chunk calls as the
//     shard's PhaseRunner;
//   - an idle worker attaches to the deepest owned shard and blocks in
//     serve, executing lane groups the owner hands over;
//   - handoff is an unbuffered channel with non-blocking sends, so a
//     helper that is busy (or has left) costs the owner nothing — the
//     owner simply runs the unclaimed lanes itself. There is no idle
//     spinning and no possibility of a lane going unrun.
//
// Happens-before edges: the owner's pre-phase writes reach helpers through
// the channel send; helpers' lane writes reach the owner through the
// WaitGroup in runPhase. The shard's chunk results are therefore complete
// and visible before the owner's chunk call returns, exactly as in the
// serial case.

// batchRunner is the phase-A parallel configuration one chunk call runs
// with: the lane-count cap and the runner that executes lane tasks. The
// zero value means serial phase A.
type batchRunner struct {
	width int
	run   core.PhaseRunner
}

// coopShard coordinates one owned shard's phase-A handoff between its
// owning worker and any attached co-workers.
type coopShard struct {
	tasks   chan *coopBatch
	done    chan struct{} // closed by the owner when the shard drains
	helpers atomic.Int32  // attached co-workers (router queue lock guards changes)
}

func newCoopShard() *coopShard {
	return &coopShard{tasks: make(chan *coopBatch), done: make(chan struct{})}
}

// coopBatch is one chunk's phase-A lane group: a claim counter over the
// lane tasks and a WaitGroup the owner blocks on until every lane ran.
type coopBatch struct {
	task  func(int)
	next  atomic.Int32
	lanes int32
	wg    sync.WaitGroup
}

// work claims and executes lanes until none remain, reporting how many
// this goroutine ran.
func (b *coopBatch) work() (lanes uint64) {
	for {
		i := b.next.Add(1) - 1
		if i >= b.lanes {
			return lanes
		}
		b.task(int(i))
		b.wg.Done()
		lanes++
	}
}

// runPhase is the core.PhaseRunner the owner binds into its chunk calls:
// it offers the lane group to attached co-workers (one non-blocking send
// per helper, capped at lanes-1 — the owner always works too), then claims
// lanes alongside them and returns when all lanes have run.
func (c *coopShard) runPhase(lanes int, task func(lane int)) {
	h := int(c.helpers.Load())
	if lanes <= 1 || h == 0 {
		for i := 0; i < lanes; i++ {
			task(i)
		}
		return
	}
	b := &coopBatch{task: task, lanes: int32(lanes)}
	b.wg.Add(lanes)
	if h > lanes-1 {
		h = lanes - 1
	}
	for i := 0; i < h; i++ {
		select {
		case c.tasks <- b:
			continue
		default:
		}
		break // no co-worker ready to receive; keep the rest local
	}
	b.work()
	b.wg.Wait()
}

// serve executes lane groups on behalf of the shard's owner until the
// owner closes done, returning the number of lanes this co-worker ran.
func (c *coopShard) serve() (lanes uint64) {
	for {
		select {
		case b := <-c.tasks:
			lanes += b.work()
		case <-c.done:
			return lanes
		}
	}
}
