//go:build race

package clam

// raceEnabled reports whether this test binary runs under the race
// detector, which deliberately drops a fraction of sync.Pool puts and so
// makes exact allocation guards meaningless.
const raceEnabled = true
