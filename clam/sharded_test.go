package clam

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/vclock"
)

// openShardedSmall opens the standard test deployment: 32 MB flash, 8 MB
// DRAM, seed 7.
func openShardedSmall(t testing.TB, shards, workers int) *Sharded {
	t.Helper()
	return openShardedT(t, WithDevice(IntelSSD), WithFlash(32<<20), WithMemory(8<<20),
		WithSeed(7), WithShards(shards), WithWorkers(workers))
}

func TestOpenShardedValidation(t *testing.T) {
	base := []Option{WithDevice(IntelSSD), WithFlash(32 << 20), WithMemory(8 << 20)}
	cases := []struct {
		name string
		opts []Option
	}{
		{"non-power-of-two", append(base[:3:3], WithShards(3))},
		{"negative shards", append(base[:3:3], WithShards(-4))},
		{"negative workers", append(base[:3:3], WithShards(4), WithWorkers(-1))},
		{"shared clock", append(base[:3:3], WithShards(4), WithClock(vclock.New()))},
		{"indivisible flash", []Option{WithDevice(IntelSSD), WithFlash(32<<20 + 1), WithMemory(8 << 20), WithShards(4)}},
		{"zero flash", []Option{WithShards(4)}},
		{"zero chunk", append(base[:3:3], WithShards(4), WithBatchChunk(0))},
	}
	for _, c := range cases {
		if _, err := Open(c.opts...); err == nil {
			t.Errorf("%s: Open accepted invalid options", c.name)
		}
	}
}

func TestOpenShardedDefaults(t *testing.T) {
	s := openShardedT(t, WithDevice(IntelSSD), WithFlash(32<<20), WithMemory(8<<20), WithShards(8))
	if s.NumShards() != 8 || s.Workers() != 8 {
		t.Fatalf("defaults: shards=%d workers=%d, want 8/8", s.NumShards(), s.Workers())
	}
	// Workers above the shard count are useless; the pool is capped.
	s = openShardedSmall(t, 4, 99)
	if s.Workers() != 4 {
		t.Fatalf("workers not capped at shards: %d", s.Workers())
	}
	// WithShards(1) opens a plain CLAM, the paper's single-instance design.
	one, err := Open(WithDevice(IntelSSD), WithFlash(32<<20), WithMemory(8<<20), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, isCLAM := one.(*CLAM); !isCLAM {
		t.Fatalf("WithShards(1) opened %T, want *CLAM", one)
	}
	if err := one.PutU64(^uint64(0), 9); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := one.GetU64(^uint64(0)); !ok || v != 9 {
		t.Fatalf("1-shard lookup: %d %v", v, ok)
	}
}

func TestShardedRoutesByHighKeyBits(t *testing.T) {
	s := openShardedSmall(t, 8, 8)
	for i := uint64(0); i < 8; i++ {
		if err := s.PutU64(i<<61|12345, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if got := s.Shard(i).Stats().Core.Inserts; got != 1 {
			t.Errorf("shard %d received %d inserts, want exactly 1", i, got)
		}
	}
}

// TestShardedConcurrentShardIsolation hammers each shard from its own
// goroutine. Under `go test -race` this fails if any state — buffers,
// device models, clocks, histograms — leaks across shard boundaries.
func TestShardedConcurrentShardIsolation(t *testing.T) {
	const perG = 3000
	s := openShardedSmall(t, 8, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g uint64) {
			defer wg.Done()
			base := g << 61 // top 3 bits route to shard g
			for i := uint64(0); i < perG; i++ {
				k := base | (i + 1)
				if err := s.PutU64(k, i); err != nil {
					errs <- err
					return
				}
				if v, ok, err := s.GetU64(k); err != nil || !ok || v != i {
					errs <- err
					return
				}
				if i%5 == 0 {
					if err := s.DeleteU64(k); err != nil {
						errs <- err
						return
					}
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Core.Inserts != 8*perG {
		t.Fatalf("merged inserts = %d, want %d", st.Core.Inserts, 8*perG)
	}
	if st.Core.Deletes != 8*(perG/5) {
		t.Fatalf("merged deletes = %d, want %d", st.Core.Deletes, 8*(perG/5))
	}
	if st.InsertLatency.Count != 8*perG || st.LookupLatency.Count != 8*perG {
		t.Fatalf("merged histogram counts: %d inserts, %d lookups", st.InsertLatency.Count, st.LookupLatency.Count)
	}
	for g := uint64(0); g < 8; g++ {
		k := g<<61 | perG // not a multiple of 5 +1, survives deletion
		if v, ok, _ := s.GetU64(k); !ok || v != perG-1 {
			t.Fatalf("shard %d lost key %#x: (%d, %v)", g, k, v, ok)
		}
	}
}

// TestShardedConcurrentOpsAndStats races random-key operations against
// concurrent Stats, Flush and Now calls: the aggregation path must take
// every shard lock correctly or -race flags it.
func TestShardedConcurrentOpsAndStats(t *testing.T) {
	s := openShardedSmall(t, 4, 4)
	var ops sync.WaitGroup
	done := make(chan struct{})
	go func() {
		// Aggregate continuously while operations are in flight; Stats,
		// Now and Flush must lock each shard correctly or -race fires.
		for {
			select {
			case <-done:
				return
			default:
				_ = s.Stats()
				_ = s.Now()
				_ = s.Flush()
			}
		}
	}()
	for g := 0; g < 6; g++ {
		ops.Add(1)
		go func(g int64) {
			defer ops.Done()
			rng := rand.New(rand.NewSource(g))
			for i := 0; i < 4000; i++ {
				k := rng.Uint64()
				switch i % 4 {
				case 0, 1:
					s.PutU64(k, uint64(i))
				case 2:
					s.GetU64(k)
				case 3:
					s.DeleteU64(k)
				}
			}
		}(int64(g))
	}
	ops.Wait()
	close(done)
	st := s.Stats()
	if st.Core.Inserts != 6*2000 {
		t.Fatalf("inserts = %d, want %d", st.Core.Inserts, 6*2000)
	}
}

// TestCLAMConcurrentOpsAndStats exercises the single-mutex CLAM path the
// same way, protecting the documented "safe for concurrent use" contract.
func TestCLAMConcurrentOpsAndStats(t *testing.T) {
	c := openSmall(t, IntelSSD)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Stats()
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(g))
			for i := 0; i < 3000; i++ {
				k := rng.Uint64()
				c.PutU64(k, uint64(i))
				c.GetU64(k)
			}
		}(int64(g))
	}
	wg.Wait()
	close(stop)
	if st := c.Stats(); st.Core.Inserts != 4*3000 {
		t.Fatalf("inserts = %d, want %d", st.Core.Inserts, 4*3000)
	}
}

func TestShardedBatchMatchesSingleOps(t *testing.T) {
	batched := openShardedSmall(t, 4, 4)
	single := openShardedSmall(t, 4, 1)

	rng := rand.New(rand.NewSource(99))
	const n = 20000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		vals[i] = rng.Uint64()
	}
	if err := batched.PutBatchU64(context.Background(), keys, vals); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if err := single.PutU64(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Mix hits and misses.
	probe := make([]uint64, 0, 3000)
	for i := 0; i < 2000; i++ {
		probe = append(probe, keys[rng.Intn(n)])
	}
	for i := 0; i < 1000; i++ {
		probe = append(probe, rng.Uint64())
	}
	bv, bok, err := batched.GetBatchU64(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range probe {
		sv, sok, err := single.GetU64(k)
		if err != nil {
			t.Fatal(err)
		}
		if bv[i] != sv || bok[i] != sok {
			t.Fatalf("probe %d (%#x): batch (%d,%v) vs single (%d,%v)", i, k, bv[i], bok[i], sv, sok)
		}
	}

	// Deletes via batch must be equivalent too.
	del := keys[:500]
	if err := batched.DeleteBatchU64(context.Background(), del); err != nil {
		t.Fatal(err)
	}
	dv, dok, err := batched.GetBatchU64(context.Background(), del)
	if err != nil {
		t.Fatal(err)
	}
	for i := range del {
		if dok[i] {
			t.Fatalf("deleted key %#x still found (=%d)", del[i], dv[i])
		}
	}
}

func TestShardedBatchPreservesPerShardOrder(t *testing.T) {
	s := openShardedSmall(t, 4, 4)
	// Three writes to the same key inside one batch: the last one wins,
	// because a shard group executes in input order on a single worker.
	k := uint64(0xdeadbeef) << 32
	if err := s.PutBatchU64(context.Background(), []uint64{k, k, k}, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.GetU64(k); !ok || v != 3 {
		t.Fatalf("lookup after dup-key batch: (%d, %v), want (3, true)", v, ok)
	}
}

func TestShardedBatchLengthMismatch(t *testing.T) {
	s := openShardedSmall(t, 2, 2)
	if err := s.PutBatchU64(context.Background(), make([]uint64, 3), make([]uint64, 2)); err == nil {
		t.Fatal("InsertBatch accepted mismatched lengths")
	}
}

// TestShardedConcurrentBatches issues overlapping batch calls from many
// goroutines; the worker pools of concurrent batches contend on the same
// shard locks, which -race verifies is safe.
func TestShardedConcurrentBatches(t *testing.T) {
	s := openShardedSmall(t, 8, 4)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1000 + g))
			keys := make([]uint64, 500)
			vals := make([]uint64, 500)
			for round := 0; round < 10; round++ {
				for i := range keys {
					keys[i] = rng.Uint64()
					vals[i] = rng.Uint64()
				}
				if err := s.PutBatchU64(context.Background(), keys, vals); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.GetBatchU64(context.Background(), keys); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if st := s.Stats(); st.Core.Inserts != 6*10*500 {
		t.Fatalf("inserts = %d, want %d", st.Core.Inserts, 6*10*500)
	}
}

func TestShardedFlushQuiesces(t *testing.T) {
	s := openShardedSmall(t, 4, 4)
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, 10000)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i], vals[i] = rng.Uint64(), uint64(i)
	}
	if err := s.PutBatchU64(context.Background(), keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Device.Writes == 0 {
		t.Fatal("flush wrote nothing to any shard device")
	}
	vs, ok, err := s.GetBatchU64(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !ok[i] || vs[i] != vals[i] {
			t.Fatalf("post-flush lookup %d: (%d, %v)", i, vs[i], ok[i])
		}
	}
}

func TestShardedPerShardVirtualClocks(t *testing.T) {
	s := openShardedSmall(t, 4, 4)
	// Work lands only on shard 0; its clock must advance while others idle.
	for i := uint64(1); i <= 5000; i++ {
		if err := s.PutU64(i, i); err != nil { // small keys: high bits zero
			t.Fatal(err)
		}
	}
	if t0 := s.Shard(0).Clock().Now(); t0 == 0 {
		t.Fatal("shard 0 clock did not advance")
	}
	for i := 1; i < 4; i++ {
		if ti := s.Shard(i).Clock().Now(); ti != 0 {
			t.Fatalf("idle shard %d clock advanced to %v", i, ti)
		}
	}
	if s.Now() != s.Shard(0).Clock().Now() {
		t.Fatal("Now() is not the max shard clock")
	}
}

// --- chunked batch router ---

// TestRouterTinyChunksEquivalence forces maximal re-queueing (BatchChunk 1)
// and checks batch results against per-key ops, so the router's
// claim/re-enqueue cycle is exercised thousands of times under -race.
func TestRouterTinyChunksEquivalence(t *testing.T) {
	s := openShardedT(t, WithDevice(IntelSSD), WithFlash(32<<20), WithMemory(8<<20),
		WithSeed(7), WithShards(8), WithWorkers(4), WithBatchChunk(1))
	ref := openShardedSmall(t, 8, 1)
	rng := rand.New(rand.NewSource(44))
	keys := make([]uint64, 4000)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i], vals[i] = rng.Uint64(), rng.Uint64()
	}
	if err := s.PutBatchU64(context.Background(), keys, vals); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if err := ref.PutU64(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := s.GetBatchU64(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		rv, rok, _ := ref.GetU64(k)
		if v[i] != rv || ok[i] != rok {
			t.Fatalf("key %#x: (%d,%v) vs ref (%d,%v)", k, v[i], ok[i], rv, rok)
		}
	}
}

// TestRouterSkewedBatch routes ~70% of a batch to one shard — the scenario
// that starved the old one-task-per-shard dispatch — and checks results and
// ordering stay correct.
func TestRouterSkewedBatch(t *testing.T) {
	s := openShardedSmall(t, 8, 8)
	rng := rand.New(rand.NewSource(45))
	const n = 30000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		if rng.Float64() < 0.7 {
			keys[i] = rng.Uint64() >> 3 // top 3 bits zero: shard 0
		} else {
			keys[i] = rng.Uint64()
		}
		vals[i] = uint64(i)
	}
	if err := s.PutBatchU64(context.Background(), keys, vals); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.GetBatchU64(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[uint64]uint64, n)
	for i, k := range keys {
		last[k] = vals[i]
	}
	for i, k := range keys {
		if !ok[i] || v[i] != last[k] {
			t.Fatalf("key %#x: (%d,%v), want (%d,true): same-shard chunk order violated?",
				k, v[i], ok[i], last[k])
		}
	}
}

// TestLookupBatchMatchesPerKeyPath cross-checks the pipeline path against
// the retained PR-1 per-key dispatch on the same instance (FIFO policy:
// lookups don't mutate state, so both paths may run back to back).
func TestLookupBatchMatchesPerKeyPath(t *testing.T) {
	s := openShardedSmall(t, 8, 4)
	rng := rand.New(rand.NewSource(46))
	keys := make([]uint64, 20000)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i], vals[i] = rng.Uint64(), rng.Uint64()
	}
	if err := s.PutBatchU64(context.Background(), keys, vals); err != nil {
		t.Fatal(err)
	}
	probe := make([]uint64, 5000)
	for i := range probe {
		if i%3 == 0 {
			probe[i] = rng.Uint64()
		} else {
			probe[i] = keys[rng.Intn(len(keys))]
		}
	}
	lv, lok, err := s.getBatchU64PerKey(probe)
	if err != nil {
		t.Fatal(err)
	}
	bv, bok, err := s.GetBatchU64(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := range probe {
		if lv[i] != bv[i] || lok[i] != bok[i] {
			t.Fatalf("probe %d: per-key (%d,%v) vs pipeline (%d,%v)", i, lv[i], lok[i], bv[i], bok[i])
		}
	}
}

func TestOpenShardedBatchChunkValidation(t *testing.T) {
	if _, err := Open(WithDevice(IntelSSD), WithFlash(32<<20), WithMemory(8<<20),
		WithShards(4), WithBatchChunk(-1)); err == nil {
		t.Fatal("negative WithBatchChunk accepted")
	}
	s := openShardedT(t, WithDevice(IntelSSD), WithFlash(32<<20), WithMemory(8<<20), WithShards(4))
	if s.chunk != defaultBatchChunk {
		t.Fatalf("default chunk = %d, want %d", s.chunk, defaultBatchChunk)
	}
}
