package clam

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/hashutil"
)

// The insert-batch benchmarks compare the write-side pipeline against a
// per-key PutU64 loop on identically configured sharded stores — the
// wall-clock half of what cmd/clam-bench -putbatch measures in virtual
// time as well.

func putBenchStore(b *testing.B) Store {
	b.Helper()
	return openShardedT(b, WithDevice(IntelSSD), WithFlash(16<<20), WithMemory(4<<20),
		WithBufferKB(8), WithFilterBitsPerEntry(16), WithShards(8), WithBatchChunk(1<<16))
}

func putBenchKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashutil.Mix64(uint64(rng.Int63n(400000)) + 1)
	}
	return keys
}

func BenchmarkPutBatchU64(b *testing.B) {
	st := putBenchStore(b)
	keys := putBenchKeys(1 << 15)
	vals := make([]uint64, len(keys))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.PutBatchU64(ctx, keys, vals); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(keys)), "keys/op")
}

func BenchmarkPutU64SerialLoop(b *testing.B) {
	st := putBenchStore(b)
	keys := putBenchKeys(1 << 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			if err := st.PutU64(k, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(keys)), "keys/op")
}
