package clam

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// Benchmarks for the batched lookup pipeline against the PR-1 baseline
// (whole shard groups dispatched to the pool, one blocking Lookup per key).
// The workload is flash-heavy: the store is warmed past eviction onset so
// most hits require at least one incarnation page probe, which is where
// batching (lock amortization, page dedupe, overlapped virtual I/O) pays.

// openBatchBench builds an 8-shard/8-worker instance small enough to warm
// past eviction onset quickly: 16 MB of flash = 512k entry capacity, warmed
// with 700k distinct keys so the incarnation rings wrap.
func openBatchBench(b *testing.B) (*Sharded, []uint64) {
	b.Helper()
	s := openShardedT(b, WithDevice(IntelSSD), WithFlash(16<<20), WithMemory(4<<20),
		WithSeed(7), WithShards(8), WithWorkers(8))
	rng := rand.New(rand.NewSource(60))
	const nKeys = 700000
	universe := make([]uint64, nKeys)
	vals := make([]uint64, nKeys)
	for i := range universe {
		universe[i] = rng.Uint64()
		vals[i] = uint64(i)
	}
	const chunk = 16384
	for at := 0; at < nKeys; at += chunk {
		end := min(at+chunk, nKeys)
		if err := s.PutBatchU64(context.Background(), universe[at:end], vals[at:end]); err != nil {
			b.Fatal(err)
		}
	}
	if s.Stats().Core.Evictions == 0 {
		b.Fatal("warm-up did not reach the eviction regime")
	}
	return s, universe
}

// measureLookups times fn, best of 3 (robust against scheduler noise).
func measureLookups(b *testing.B, fn func()) time.Duration {
	b.Helper()
	best := time.Duration(0)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		fn()
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best
}

// benchPipelineVsPerKeyDispatch reports the wall-clock speedup of the
// chunked batched pipeline over the PR-1 per-key group dispatch on the
// given probe stream. Lookups under FIFO don't mutate state, so both paths
// run against the same warmed instance. The parallel component of the
// speedup is bounded by GOMAXPROCS (reported alongside, as in
// BenchmarkShardedSpeedup); the batching component — lock/clock/histogram
// amortization, phase-A memoization, page dedupe — survives even on one
// core, which is what the Zipf variant demonstrates.
func benchPipelineVsPerKeyDispatch(b *testing.B, s *Sharded, probes []uint64) {
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		perKey := measureLookups(b, func() {
			if _, _, err := s.getBatchU64PerKey(probes); err != nil {
				b.Fatal(err)
			}
		})
		pipeline := measureLookups(b, func() {
			if _, _, err := s.GetBatchU64(context.Background(), probes); err != nil {
				b.Fatal(err)
			}
		})
		speedup = perKey.Seconds() / pipeline.Seconds()
		b.ReportMetric(float64(len(probes))/pipeline.Seconds(), "pipeline_ops/s(wall)")
		b.ReportMetric(float64(len(probes))/perKey.Seconds(), "perkey_ops/s(wall)")
	}
	b.ReportMetric(speedup, "speedup_x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkLookupBatchVsSerialLoop compares the pipeline against the plain
// single-caller per-key Lookup loop — the paper's blocking design point —
// on the flash-heavy uniform workload. On a multi-core host the router adds
// up-to-min(shards, cores) parallel scaling on top of the batching gain
// this benchmark shows at any core count.
func BenchmarkLookupBatchVsSerialLoop(b *testing.B) {
	s, universe := openBatchBench(b)
	rng := rand.New(rand.NewSource(61))
	probes := make([]uint64, 65536)
	for i := range probes {
		probes[i] = universe[rng.Intn(len(universe))]
	}
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		loop := measureLookups(b, func() {
			for _, k := range probes {
				if _, _, err := s.GetU64(k); err != nil {
					b.Fatal(err)
				}
			}
		})
		pipeline := measureLookups(b, func() {
			if _, _, err := s.GetBatchU64(context.Background(), probes); err != nil {
				b.Fatal(err)
			}
		})
		speedup = loop.Seconds() / pipeline.Seconds()
		b.ReportMetric(float64(len(probes))/pipeline.Seconds(), "pipeline_ops/s(wall)")
		b.ReportMetric(float64(len(probes))/loop.Seconds(), "loop_ops/s(wall)")
	}
	b.ReportMetric(speedup, "speedup_x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkLookupBatchUniformVsPerKeyDispatch: uniformly drawn warm keys —
// the flash-heavy baseline comparison.
func BenchmarkLookupBatchUniformVsPerKeyDispatch(b *testing.B) {
	s, universe := openBatchBench(b)
	rng := rand.New(rand.NewSource(61))
	probes := make([]uint64, 65536)
	for i := range probes {
		probes[i] = universe[rng.Intn(len(universe))]
	}
	benchPipelineVsPerKeyDispatch(b, s, probes)
}

// BenchmarkLookupBatchZipfVsPerKeyDispatch: Zipf(1.2)-ranked warm keys, so
// one shard's group dwarfs the others — the skew the chunked router was
// built for. Acceptance target: ≥ 1.3× the PR-1 dispatch.
func BenchmarkLookupBatchZipfVsPerKeyDispatch(b *testing.B) {
	s, universe := openBatchBench(b)
	zr := rand.New(rand.NewSource(62))
	zipfRank := rand.NewZipf(zr, 1.2, 1, uint64(len(universe)-1))
	probes := make([]uint64, 65536)
	for i := range probes {
		probes[i] = universe[zipfRank.Uint64()]
	}
	benchPipelineVsPerKeyDispatch(b, s, probes)
}

// BenchmarkSingleShardFastPath: the all-keys-one-shard extreme. The fast
// path skips grouping and the gather/scatter copies; the routed baseline
// is the same batch forced through the general router path. The gap is the
// single-core win of the PR-5 contiguity fast path (reported as
// fastpath_speedup_x), independent of phase-A parallelism.
func BenchmarkSingleShardFastPath(b *testing.B) {
	s, universe := openBatchBench(b)
	rng := rand.New(rand.NewSource(63))
	probes := make([]uint64, 65536)
	for i := range probes {
		probes[i] = universe[rng.Intn(len(universe))] &^ (uint64(7) << 61) // shard 0 of 8
	}
	values := make([]uint64, len(probes))
	found := make([]bool, len(probes))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		routed := measureLookups(b, func() {
			if err := s.getBatchU64Routed(ctx, probes, values, found); err != nil {
				b.Fatal(err)
			}
		})
		fast := measureLookups(b, func() {
			if err := s.getBatchU64Single(ctx, 0, probes, values, found); err != nil {
				b.Fatal(err)
			}
		})
		speedup = routed.Seconds() / fast.Seconds()
		b.ReportMetric(float64(len(probes))/fast.Seconds(), "fastpath_ops/s(wall)")
		b.ReportMetric(float64(len(probes))/routed.Seconds(), "routed_ops/s(wall)")
	}
	b.ReportMetric(speedup, "fastpath_speedup_x")
}
