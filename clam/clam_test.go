package clam

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// openCLAMT opens a single CLAM through the public constructor.
func openCLAMT(t testing.TB, opts ...Option) *CLAM {
	t.Helper()
	st, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*CLAM)
}

// openShardedT opens a Sharded store through the public constructor.
func openShardedT(t testing.TB, opts ...Option) *Sharded {
	t.Helper()
	st, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*Sharded)
}

func openSmall(t testing.TB, kind DeviceKind) *CLAM {
	t.Helper()
	return openCLAMT(t, WithDevice(kind), WithFlash(16<<20), WithMemory(4<<20), WithSeed(7))
}

func TestOpenRequiresFlash(t *testing.T) {
	if _, err := Open(); err == nil {
		t.Fatal("Open accepted a zero flash capacity")
	}
}

func TestOpenAllDeviceKinds(t *testing.T) {
	for _, kind := range []DeviceKind{IntelSSD, TranscendSSD, FlashChip, MagneticDisk} {
		c := openCLAMT(t, WithDevice(kind), WithFlash(16<<20), WithMemory(4<<20))
		if err := c.PutU64(1, 2); err != nil {
			t.Fatalf("%v insert: %v", kind, err)
		}
		v, ok, err := c.GetU64(1)
		if err != nil || !ok || v != 2 {
			t.Fatalf("%v lookup: %d %v %v", kind, v, ok, err)
		}
		// The byte API works on every device kind too.
		if err := c.Put([]byte("name"), []byte("value")); err != nil {
			t.Fatalf("%v put: %v", kind, err)
		}
		if bv, ok, err := c.Get([]byte("name")); err != nil || !ok || !bytes.Equal(bv, []byte("value")) {
			t.Fatalf("%v get: %q %v %v", kind, bv, ok, err)
		}
	}
}

func TestDeviceKindString(t *testing.T) {
	names := map[DeviceKind]string{
		IntelSSD: "ssd-intel", TranscendSSD: "ssd-transcend",
		FlashChip: "flash-chip", MagneticDisk: "disk",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("String(%d) = %q", k, k.String())
		}
	}
}

func TestTuningMatchesPaperShape(t *testing.T) {
	// With the paper's ratios (M = F/8), §6.4 tuning should yield 128 KB
	// buffers, k = 16 incarnations, and ~16 bloom bits per entry.
	c := openCLAMT(t, WithDevice(IntelSSD), WithFlash(128<<20), WithMemory(16<<20))
	cfg := c.Core().Config()
	if cfg.BufferBytes != 128<<10 {
		t.Errorf("BufferBytes = %d, want 128KB", cfg.BufferBytes)
	}
	if cfg.NumIncarnations != 16 {
		t.Errorf("NumIncarnations = %d, want 16", cfg.NumIncarnations)
	}
	if cfg.FilterBitsPerEntry < 8 || cfg.FilterBitsPerEntry > 32 {
		t.Errorf("FilterBitsPerEntry = %d, want ≈16", cfg.FilterBitsPerEntry)
	}
	// The derived configuration must cover the flash exactly or less.
	used := int64(cfg.NumSuperTables()) * int64(cfg.NumIncarnations) * int64(cfg.BufferBytes)
	if used > 128<<20 {
		t.Errorf("configuration overcommits flash: %d > %d", used, 128<<20)
	}
}

func TestChipDefaultsToBlockBuffer(t *testing.T) {
	c := openCLAMT(t, WithDevice(FlashChip), WithFlash(16<<20), WithMemory(4<<20))
	if got := c.Core().Config().BufferBytes; got != 128<<10 {
		t.Fatalf("chip buffer = %d, want erase block 128KB", got)
	}
}

func TestLatencyHistogramsPopulated(t *testing.T) {
	c := openSmall(t, IntelSSD)
	// Exceed the total buffer capacity so flushes reach the device.
	for i := uint64(0); i < 50000; i++ {
		if err := c.PutU64(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5000; i++ {
		c.GetU64(i * 3)
	}
	c.DeleteU64(1)
	st := c.Stats()
	if st.InsertLatency.Count != 50000 || st.LookupLatency.Count != 5000 || st.DeleteLatency.Count != 1 {
		t.Fatalf("histogram counts: %+v %+v %+v", st.InsertLatency, st.LookupLatency, st.DeleteLatency)
	}
	if st.InsertLatency.Mean <= 0 || st.LookupLatency.Mean <= 0 {
		t.Fatal("zero mean latencies")
	}
	// Headline shape: inserts are microseconds, well under lookups with
	// flash I/O in them.
	if metrics.Ms(st.InsertLatency.Mean) > 0.05 {
		t.Errorf("insert mean %.4f ms too high", metrics.Ms(st.InsertLatency.Mean))
	}
	if st.Device.Writes == 0 {
		t.Error("no device writes recorded")
	}
	if st.Memory.Total() == 0 {
		t.Error("no memory footprint")
	}
}

func TestUpdateAndDelete(t *testing.T) {
	c := openSmall(t, IntelSSD)
	c.PutU64(10, 1)
	c.UpdateU64(10, 2)
	if v, ok, _ := c.GetU64(10); !ok || v != 2 {
		t.Fatalf("update: %d %v", v, ok)
	}
	c.DeleteU64(10)
	if _, ok, _ := c.GetU64(10); ok {
		t.Fatal("deleted key found")
	}
}

func TestFlushQuiesces(t *testing.T) {
	c := openSmall(t, IntelSSD)
	c.PutU64(5, 50)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.GetU64(5); !ok || v != 50 {
		t.Fatalf("post-flush lookup: %d %v", v, ok)
	}
}

func TestConcurrentUse(t *testing.T) {
	c := openSmall(t, IntelSSD)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) << 32
			for i := uint64(0); i < 2000; i++ {
				if err := c.PutU64(base+i, i); err != nil {
					errs <- err
					return
				}
				if _, _, err := c.GetU64(base + i); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All goroutines' keys visible.
	for g := 0; g < 8; g++ {
		base := uint64(g) << 32
		if _, ok, _ := c.GetU64(base + 1999); !ok {
			t.Fatalf("goroutine %d keys lost", g)
		}
	}
}

func TestResetMetrics(t *testing.T) {
	c := openSmall(t, IntelSSD)
	c.PutU64(1, 1)
	c.ResetMetrics()
	st := c.Stats()
	if st.InsertLatency.Count != 0 || st.Core.Inserts != 0 {
		t.Fatal("metrics not reset")
	}
}

func TestElapseAdvancesClock(t *testing.T) {
	c := openSmall(t, IntelSSD)
	before := c.Clock().Now()
	c.Elapse(time.Second)
	if c.Clock().Now()-before != time.Second {
		t.Fatal("Elapse did not advance the clock")
	}
}

func TestPriorityPolicyThroughFacade(t *testing.T) {
	c := openCLAMT(t,
		WithDevice(IntelSSD), WithFlash(8<<20), WithMemory(2<<20),
		WithPolicy(PriorityBased), WithRetain(func(k, v uint64) bool { return v > 100 }))
	if err := c.PutU64(1, 200); err != nil {
		t.Fatal(err)
	}
}

func TestAblationSwitches(t *testing.T) {
	for _, extra := range []Option{WithoutBloom(), WithoutBitslice()} {
		c := openCLAMT(t, WithDevice(IntelSSD), WithFlash(8<<20), WithMemory(2<<20), extra)
		for i := uint64(0); i < 30000; i++ {
			if err := c.PutU64(i, i); err != nil {
				t.Fatal(err)
			}
		}
		if v, ok, _ := c.GetU64(29999); !ok || v != 29999 {
			t.Fatal("ablated CLAM lost data")
		}
	}
}

func TestMemoryBudgetTooSmall(t *testing.T) {
	// A memory budget smaller than one buffer cannot work.
	_, err := Open(WithDevice(IntelSSD), WithFlash(1<<30), WithMemory(64<<10))
	if err == nil {
		t.Fatal("accepted impossible memory budget")
	}
}
