package clam

import (
	"context"
	"math/rand"
	"testing"
)

// The differential harness runs a seeded randomized stream of Insert /
// Update / Delete / Lookup / Flush operations against a CLAM, a Sharded
// CLAM, and a plain map[uint64]uint64 oracle, asserting agreement modulo
// the paper's documented semantics:
//
//   - Lazy delete (§5.1.1): a deleted key stays invisible until
//     re-inserted — it may never resurface from an older incarnation.
//   - Eviction (§5.1.2): once the incarnation ring wraps, old entries may
//     be silently dropped, so "not found" for a key the oracle still holds
//     is legal only after the structure reports evictions. A found key,
//     however, must always carry the oracle's latest value: eviction can
//     lose data but can never reorder versions or invent values.
//
// The strict phase sizes the workload below eviction onset, where the
// tolerance collapses to exact equality: CLAM, Sharded and the oracle must
// agree on every lookup.

// store is the U64 operation surface shared by CLAM and Sharded.
type store interface {
	PutU64(key, value uint64) error
	DeleteU64(key uint64) error
	GetU64(key uint64) (uint64, bool, error)
	Flush() error
	Stats() Stats
}

type opKind int

const (
	opInsert opKind = iota
	opDelete
	opLookup
	opFlush
)

type op struct {
	kind opKind
	key  uint64
	val  uint64
}

// genOps builds a deterministic op stream over a fixed universe of
// uniformly distributed keys (the paper's keys are fingerprints, and
// Sharded routes by high key bits, so uniformity matters).
func genOps(seed int64, nOps, nKeys int, pLookup, pDelete, pFlush float64) []op {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, nKeys)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	ops := make([]op, 0, nOps)
	for i := 0; i < nOps; i++ {
		k := keys[rng.Intn(nKeys)]
		switch r := rng.Float64(); {
		case r < pFlush:
			ops = append(ops, op{kind: opFlush})
		case r < pFlush+pDelete:
			ops = append(ops, op{kind: opDelete, key: k})
		case r < pFlush+pDelete+pLookup:
			ops = append(ops, op{kind: opLookup, key: k})
		default:
			ops = append(ops, op{kind: opInsert, key: k, val: rng.Uint64()})
		}
	}
	return ops
}

// applyDifferential feeds ops to s and the oracle in lockstep. On every
// lookup it checks the tolerance invariants; when strict is set it also
// requires found/not-found to match the oracle exactly.
func applyDifferential(t *testing.T, name string, s store, ops []op, strict bool) map[uint64]uint64 {
	t.Helper()
	oracle := make(map[uint64]uint64)
	for i, o := range ops {
		switch o.kind {
		case opInsert:
			if err := s.PutU64(o.key, o.val); err != nil {
				t.Fatalf("%s: op %d insert: %v", name, i, err)
			}
			oracle[o.key] = o.val
		case opDelete:
			if err := s.DeleteU64(o.key); err != nil {
				t.Fatalf("%s: op %d delete: %v", name, i, err)
			}
			delete(oracle, o.key)
		case opFlush:
			if err := s.Flush(); err != nil {
				t.Fatalf("%s: op %d flush: %v", name, i, err)
			}
		case opLookup:
			v, found, err := s.GetU64(o.key)
			if err != nil {
				t.Fatalf("%s: op %d lookup: %v", name, i, err)
			}
			want, ok := oracle[o.key]
			if found && (!ok || v != want) {
				t.Fatalf("%s: op %d lookup(%#x) = %d, oracle has (%d, %v): stale or resurrected value",
					name, i, o.key, v, want, ok)
			}
			if strict && found != ok {
				t.Fatalf("%s: op %d lookup(%#x) found=%v, oracle=%v (strict phase)",
					name, i, o.key, found, ok)
			}
		}
	}
	return oracle
}

// verifyFinal sweeps the oracle and a sample of absent keys after the
// stream completes. It returns the number of oracle keys the store lost
// (legal only in the eviction regime).
func verifyFinal(t *testing.T, name string, s store, oracle map[uint64]uint64, seed int64) int {
	t.Helper()
	lost := 0
	for k, want := range oracle {
		v, found, err := s.GetU64(k)
		if err != nil {
			t.Fatalf("%s: final lookup: %v", name, err)
		}
		if !found {
			lost++
			continue
		}
		if v != want {
			t.Fatalf("%s: final lookup(%#x) = %d, oracle %d", name, k, v, want)
		}
	}
	// Keys outside the universe must never be found.
	rng := rand.New(rand.NewSource(seed + 7))
	for i := 0; i < 2000; i++ {
		k := rng.Uint64()
		if _, ok := oracle[k]; ok {
			continue
		}
		if _, found, _ := s.GetU64(k); found {
			t.Fatalf("%s: found never-inserted key %#x", name, k)
		}
	}
	return lost
}

// strictStores opens a CLAM and a 4-shard Sharded sized so the strict op
// stream stays below eviction onset.
func strictStores(t *testing.T, policy Policy) (*CLAM, *Sharded) {
	t.Helper()
	base := []Option{WithDevice(IntelSSD), WithFlash(16 << 20), WithMemory(4 << 20),
		WithPolicy(policy), WithSeed(11)}
	c := openCLAMT(t, base...)
	s := openShardedT(t, append(base[:len(base):len(base)], WithShards(4))...)
	return c, s
}

func TestDifferentialStrictNoEvictions(t *testing.T) {
	// 40k ops over 20k keys with rare flushes: well below the incarnation
	// ring capacity, so the lazy-delete/eviction tolerance collapses to
	// exact equality with the oracle.
	ops := genOps(1001, 40000, 20000, 0.25, 0.10, 0.0002)
	c, s := strictStores(t, FIFO)

	co := applyDifferential(t, "clam", c, ops, true)
	so := applyDifferential(t, "sharded", s, ops, true)

	for _, st := range []struct {
		name string
		s    store
	}{{"clam", c}, {"sharded", s}} {
		if ev := st.s.Stats().Core.Evictions; ev != 0 {
			t.Fatalf("%s: strict phase config evicted %d times; retune the test sizes", st.name, ev)
		}
		if lost := verifyFinal(t, st.name, st.s, co, 1001); lost != 0 {
			t.Fatalf("%s: lost %d keys with zero evictions", st.name, lost)
		}
	}

	// Same stream, same semantics: both oracles are identical maps, and
	// every per-key answer must agree between the two implementations.
	if len(co) != len(so) {
		t.Fatalf("oracle divergence: clam %d keys, sharded %d", len(co), len(so))
	}
	for k, v := range co {
		cv, cok, _ := c.GetU64(k)
		sv, sok, _ := s.GetU64(k)
		if cv != sv || cok != sok || !cok || cv != v {
			t.Fatalf("clam/sharded diverge on %#x: (%d,%v) vs (%d,%v), oracle %d", k, cv, cok, sv, sok, v)
		}
	}
}

// evictionStores opens deliberately tiny instances (8 KB buffers, 1 MB of
// flash) so a tens-of-thousands op stream wraps the incarnation ring many
// times.
func evictionStores(t *testing.T, policy Policy) (*CLAM, *Sharded) {
	t.Helper()
	base := []Option{WithDevice(IntelSSD), WithFlash(1 << 20), WithMemory(256 << 10),
		WithBufferKB(8), WithPolicy(policy), WithSeed(23)}
	c := openCLAMT(t, base...)
	s := openShardedT(t, append(base[:len(base):len(base)], WithShards(4))...)
	return c, s
}

func TestDifferentialEvictionRegime(t *testing.T) {
	for _, policy := range []Policy{FIFO, UpdateBased} {
		t.Run(policy.String(), func(t *testing.T) {
			ops := genOps(2002, 60000, 8000, 0.15, 0.14, 0.001)
			c, s := evictionStores(t, policy)

			co := applyDifferential(t, "clam", c, ops, false)
			so := applyDifferential(t, "sharded", s, ops, false)
			if len(co) != len(so) {
				t.Fatalf("oracle divergence: %d vs %d keys", len(co), len(so))
			}

			for _, st := range []struct {
				name string
				s    store
			}{{"clam", c}, {"sharded", s}} {
				stats := st.s.Stats()
				if stats.Core.Evictions == 0 {
					t.Fatalf("%s: eviction phase never evicted; retune the test sizes", st.name)
				}
				lost := verifyFinal(t, st.name, st.s, co, 2002)
				// Data loss must be explainable by eviction, and the
				// structure must still retain a healthy fraction: losing
				// everything would mean routing or delete-list bugs, not
				// FIFO eviction.
				if lost == len(co) {
					t.Fatalf("%s: lost all %d oracle keys", st.name, lost)
				}
				t.Logf("%s/%s: %d oracle keys, %d lost to eviction (%d evictions, %d flushes)",
					st.name, policy, len(co), lost, stats.Core.Evictions, stats.Core.Flushes)
			}
		})
	}
}

// --- batched-lookup oracle phase ---

// batchStore is a store that also offers the batched lookup pipeline.
type batchStore interface {
	store
	GetBatchU64(ctx context.Context, keys []uint64) ([]uint64, []bool, error)
}

// applyBatchedDifferential drives the same op stream into a serial-lookup
// instance and a batched-lookup instance in lockstep. Mutations apply to
// both immediately; lookups accumulate into a window that is flushed —
// serial per-key Lookup on one instance, one LookupBatch on the other —
// before any mutation executes, and at the end of the stream. Every
// flushed window must agree key-for-key with the other instance and obey
// the oracle tolerance (strict: exact found/not-found agreement).
func applyBatchedDifferential(t *testing.T, name string, serial, batched batchStore, ops []op, strict bool) map[uint64]uint64 {
	return applyBatchedDifferentialWindow(t, name, serial, batched, ops, strict, 128)
}

// applyBatchedDifferentialWindow is applyBatchedDifferential with an
// explicit lookup-window size (the cooperative-regime tests use windows
// spanning several router chunks so idle workers co-schedule).
func applyBatchedDifferentialWindow(t *testing.T, name string, serial, batched batchStore, ops []op, strict bool, window int) map[uint64]uint64 {
	t.Helper()
	oracle := make(map[uint64]uint64)
	var (
		pkeys []uint64
		pwant []uint64 // oracle value at enqueue time
		pok   []bool
	)
	flush := func(at int) {
		if len(pkeys) == 0 {
			return
		}
		bv, bok, err := batched.GetBatchU64(context.Background(), pkeys)
		if err != nil {
			t.Fatalf("%s: batch before op %d: %v", name, at, err)
		}
		for i, k := range pkeys {
			sv, sok, err := serial.GetU64(k)
			if err != nil {
				t.Fatalf("%s: serial lookup before op %d: %v", name, at, err)
			}
			if sv != bv[i] || sok != bok[i] {
				t.Fatalf("%s: op window at %d key %#x: serial (%d,%v) vs batched (%d,%v)",
					name, at, k, sv, sok, bv[i], bok[i])
			}
			if bok[i] && (!pok[i] || bv[i] != pwant[i]) {
				t.Fatalf("%s: lookup(%#x) = %d, oracle had (%d, %v): stale or resurrected value",
					name, k, bv[i], pwant[i], pok[i])
			}
			if strict && bok[i] != pok[i] {
				t.Fatalf("%s: lookup(%#x) found=%v, oracle=%v (strict phase)", name, k, bok[i], pok[i])
			}
		}
		pkeys, pwant, pok = pkeys[:0], pwant[:0], pok[:0]
	}
	both := func(at int, f func(s store) error) {
		flush(at)
		if err := f(serial); err != nil {
			t.Fatalf("%s: op %d (serial): %v", name, at, err)
		}
		if err := f(batched); err != nil {
			t.Fatalf("%s: op %d (batched): %v", name, at, err)
		}
	}
	for i, o := range ops {
		switch o.kind {
		case opInsert:
			both(i, func(s store) error { return s.PutU64(o.key, o.val) })
			oracle[o.key] = o.val
		case opDelete:
			both(i, func(s store) error { return s.DeleteU64(o.key) })
			delete(oracle, o.key)
		case opFlush:
			both(i, func(s store) error { return s.Flush() })
		case opLookup:
			w, ok := oracle[o.key]
			pkeys, pwant, pok = append(pkeys, o.key), append(pwant, w), append(pok, ok)
			if len(pkeys) == window {
				flush(i)
			}
		}
	}
	flush(len(ops))
	return oracle
}

// checkLookupCountersEqual asserts the serial and batched instances probed
// flash identically: same lookups, hits, flash probes, spurious probes and
// per-lookup I/O histogram — the structural equality the pipeline promises.
func checkLookupCountersEqual(t *testing.T, name string, serial, batched batchStore) {
	t.Helper()
	sc, bc := serial.Stats().Core, batched.Stats().Core
	if sc != bc {
		t.Fatalf("%s: core counters diverge:\nserial  %+v\nbatched %+v", name, sc, bc)
	}
	if sc.Lookups == 0 || sc.FlashProbes == 0 {
		t.Fatalf("%s: degenerate stream (lookups=%d flash probes=%d); retune the test",
			name, sc.Lookups, sc.FlashProbes)
	}
}

func TestDifferentialBatchedStrictNoEvictions(t *testing.T) {
	ops := genOps(3001, 40000, 20000, 0.25, 0.10, 0.0002)
	cs, ss := strictStores(t, FIFO)
	cb, sb := strictStores(t, FIFO)

	co := applyBatchedDifferential(t, "clam", cs, cb, ops, true)
	so := applyBatchedDifferential(t, "sharded", ss, sb, ops, true)
	if len(co) != len(so) {
		t.Fatalf("oracle divergence: %d vs %d keys", len(co), len(so))
	}
	checkLookupCountersEqual(t, "clam", cs, cb)
	checkLookupCountersEqual(t, "sharded", ss, sb)
	for _, st := range []struct {
		name string
		s    store
	}{{"clam", cb}, {"sharded", sb}} {
		if ev := st.s.Stats().Core.Evictions; ev != 0 {
			t.Fatalf("%s: strict phase evicted %d times; retune the test sizes", st.name, ev)
		}
	}
}

func TestDifferentialBatchedEvictionRegime(t *testing.T) {
	for _, policy := range []Policy{FIFO, UpdateBased} {
		t.Run(policy.String(), func(t *testing.T) {
			ops := genOps(4002, 60000, 8000, 0.15, 0.14, 0.001)
			cs, ss := evictionStores(t, policy)
			cb, sb := evictionStores(t, policy)

			applyBatchedDifferential(t, "clam", cs, cb, ops, false)
			applyBatchedDifferential(t, "sharded", ss, sb, ops, false)
			checkLookupCountersEqual(t, "clam", cs, cb)
			checkLookupCountersEqual(t, "sharded", ss, sb)
			for _, st := range []struct {
				name string
				s    store
			}{{"clam", cb}, {"sharded", sb}} {
				if st.s.Stats().Core.Evictions == 0 {
					t.Fatalf("%s: eviction phase never evicted; retune the test sizes", st.name)
				}
			}
		})
	}
}
