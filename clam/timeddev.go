package clam

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// timedQueued instruments a device's write stream: every WriteAt records
// its virtual service time, and every WriteBatch records its overlapped
// total spread evenly over the batch's requests — so serial and batched
// write paths produce directly comparable per-request samples. The
// histogram feeds Stats.WriteLatency, the write-side tail the insert
// pipeline is built to flatten (a serial flush pays one full write per
// incarnation image; a batch's images share command setup and overlap
// across queue lanes).
//
// Reads and erases pass through untimed. Every kind-built device model
// implements BatchReader and BatchWriter, so the wrapper forwards both;
// the Eraser and Trimmer optional interfaces are preserved by the variant
// types below, because layout selection and NAND erase-before-write probe
// for them through the device value. Caller-supplied custom devices are
// never wrapped — their dynamic type is part of the caller's contract.
type timedQueued struct {
	dev storage.Device
	br  storage.BatchReader
	bw  storage.BatchWriter
	h   *metrics.Histogram // guarded by the owning CLAM's mutex
}

func (d *timedQueued) ReadAt(p []byte, off int64) (time.Duration, error) {
	return d.dev.ReadAt(p, off)
}

func (d *timedQueued) WriteAt(p []byte, off int64) (time.Duration, error) {
	lat, err := d.dev.WriteAt(p, off)
	if err == nil {
		d.h.Observe(lat)
	}
	return lat, err
}

func (d *timedQueued) Geometry() storage.Geometry { return d.dev.Geometry() }
func (d *timedQueued) Counters() storage.Counters { return d.dev.Counters() }
func (d *timedQueued) ReadBatch(reqs []storage.ReadReq) (time.Duration, error) {
	return d.br.ReadBatch(reqs)
}

func (d *timedQueued) WriteBatch(reqs []storage.WriteReq) (time.Duration, error) {
	lat, err := d.bw.WriteBatch(reqs)
	if err == nil && len(reqs) > 0 {
		d.h.ObserveN(lat/time.Duration(len(reqs)), len(reqs))
	}
	return lat, err
}

// timedQueuedEraser additionally forwards Eraser (raw NAND): the layout
// chooser and the value log's erase-before-write both probe for it.
type timedQueuedEraser struct {
	timedQueued
	er storage.Eraser
}

func (d *timedQueuedEraser) Erase(off, n int64) (time.Duration, error) { return d.er.Erase(off, n) }

// timedQueuedTrimmer additionally forwards Trimmer (SSDs).
type timedQueuedTrimmer struct {
	timedQueued
	tr storage.Trimmer
}

func (d *timedQueuedTrimmer) Trim(off, n int64) error { return d.tr.Trim(off, n) }

// timeWrites wraps a kind-built device with write-latency instrumentation,
// preserving its optional interfaces. Devices without the queued batch
// interfaces are returned unwrapped (never the case for kind-built
// models).
func timeWrites(dev storage.Device, h *metrics.Histogram) storage.Device {
	br, brOK := dev.(storage.BatchReader)
	bw, bwOK := dev.(storage.BatchWriter)
	if !brOK || !bwOK {
		return dev
	}
	base := timedQueued{dev: dev, br: br, bw: bw, h: h}
	if er, ok := dev.(storage.Eraser); ok {
		return &timedQueuedEraser{base, er}
	}
	if tr, ok := dev.(storage.Trimmer); ok {
		return &timedQueuedTrimmer{base, tr}
	}
	return &base
}
