package clam

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The cooperative-batch differential regime: the lookup and insert oracles
// of differential_test.go / differential_insert_test.go re-run over
// hot-shard Zipf streams with WithShardParallelism(4), pinning the
// tentpole's contract — co-workers on a hot shard's phase A change
// wall-clock time only. Key-for-key results and every core counter must
// equal the serial per-key instance exactly, per shard, under -race (which
// also validates the coopShard handoff protocol and the lane-scratch
// striping in the core).

// genHotShardOps builds a deterministic op stream whose key popularity is
// Zipf and whose hot mass lands on shard 0 of a 4-shard deployment: the
// first hotFrac of the key universe — the heavy ranks — has its top two
// key bits cleared. hotFrac 1.0 makes every batch single-shard, the fast
// path's regime.
func genHotShardOps(seed int64, nOps, nKeys int, hotFrac, pLookup, pDelete, pFlush float64) []op {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, nKeys)
	hot := int(float64(nKeys) * hotFrac)
	for i := range keys {
		k := rng.Uint64()
		if i < hot {
			k &= 1<<62 - 1 // clear the top 2 bits: shard 0 of 4
		}
		keys[i] = k
	}
	z := rand.NewZipf(rng, 1.2, 1, uint64(nKeys-1))
	ops := make([]op, 0, nOps)
	for i := 0; i < nOps; i++ {
		k := keys[z.Uint64()]
		switch r := rng.Float64(); {
		case r < pFlush:
			ops = append(ops, op{kind: opFlush})
		case r < pFlush+pDelete:
			ops = append(ops, op{kind: opDelete, key: k})
		case r < pFlush+pDelete+pLookup:
			ops = append(ops, op{kind: opLookup, key: k})
		default:
			ops = append(ops, op{kind: opInsert, key: k, val: rng.Uint64()})
		}
	}
	return ops
}

// coopStores opens a serial-batch Sharded and a cooperative twin: same
// shape, but the twin runs 4 workers with WithShardParallelism(4) and a
// small router chunk so a hot shard holds several pending chunks — the
// depth signal idle workers attach on. The chunk must span at least
// 2 lanes' worth of keys (2 × core minLaneKeys = 128), or phase A never
// splits and the handoff is tested vacuously; 256 gives 4 lanes per chunk.
func coopStores(t *testing.T, base []Option) (serial, coop *Sharded) {
	t.Helper()
	base = base[:len(base):len(base)]
	serial = openShardedT(t, append(base, WithShards(4), WithWorkers(4))...)
	coop = openShardedT(t, append(base, WithShards(4), WithWorkers(4),
		WithShardParallelism(4), WithBatchChunk(256))...)
	return serial, coop
}

// checkShardCountersEqual asserts per-shard core-counter equality — a
// stronger pin than the aggregate: no shard may have done different
// structural work, whatever worker or co-worker executed it.
func checkShardCountersEqual(t *testing.T, name string, serial, coop *Sharded) {
	t.Helper()
	for i := 0; i < serial.NumShards(); i++ {
		sc, cc := serial.Shard(i).Stats().Core, coop.Shard(i).Stats().Core
		if sc != cc {
			t.Fatalf("%s: shard %d core counters diverge:\nserial      %+v\ncooperative %+v", name, i, sc, cc)
		}
	}
}

func TestDifferentialCooperativeHotShardLookups(t *testing.T) {
	for _, tc := range []struct {
		name    string
		hotFrac float64
	}{
		{"hot85", 0.85},      // skewed across shards: router + co-scheduling
		{"singleShard", 1.0}, // every batch one shard: fast path + spawned lanes
	} {
		t.Run(tc.name, func(t *testing.T) {
			ops := genHotShardOps(9001, 40000, 20000, tc.hotFrac, 0.30, 0.08, 0.0002)
			base := []Option{WithDevice(IntelSSD), WithFlash(16 << 20), WithMemory(4 << 20),
				WithPolicy(FIFO), WithSeed(11)}
			serial, coop := coopStores(t, base)
			// Lookup windows span many router chunks, so the hot shard's
			// owner has co-workers to hand phase-A lanes to.
			applyBatchedDifferentialWindow(t, tc.name, serial, coop, ops, true, 1536)
			checkLookupCountersEqual(t, tc.name, serial, coop)
			checkShardCountersEqual(t, tc.name, serial, coop)
		})
	}
}

func TestDifferentialCooperativeHotShardInserts(t *testing.T) {
	t.Run("strict", func(t *testing.T) {
		ops := genHotShardOps(9102, 40000, 20000, 0.85, 0.15, 0.06, 0.0002)
		base := []Option{WithDevice(IntelSSD), WithFlash(16 << 20), WithMemory(4 << 20),
			WithPolicy(FIFO), WithSeed(11)}
		serial, coop := coopStores(t, base)
		oracle := applyInsertDifferentialWindow(t, "coop-strict", serial, coop, ops, true, 1536)
		verifyInsertFinal(t, "coop-strict", serial, coop, oracle, 9102)
		checkInsertCountersEqual(t, "coop-strict", serial, coop)
		checkShardCountersEqual(t, "coop-strict", serial, coop)
	})
	t.Run("eviction", func(t *testing.T) {
		// Tiny instances: the hot shard's incarnation ring wraps many
		// times, so cooperative batches drive flush cascades and
		// evictions through the sequenced drain while lanes precompute
		// routes in parallel.
		ops := genHotShardOps(9203, 60000, 8000, 0.85, 0.12, 0.10, 0.001)
		base := []Option{WithDevice(IntelSSD), WithFlash(1 << 20), WithMemory(256 << 10),
			WithBufferKB(8), WithPolicy(FIFO), WithSeed(23)}
		serial, coop := coopStores(t, base)
		oracle := applyInsertDifferentialWindow(t, "coop-evict", serial, coop, ops, false, 1536)
		verifyInsertFinal(t, "coop-evict", serial, coop, oracle, 9203)
		checkInsertCountersEqual(t, "coop-evict", serial, coop)
		checkShardCountersEqual(t, "coop-evict", serial, coop)
		if coop.Stats().Core.Evictions == 0 {
			t.Fatal("eviction regime never evicted; retune the test sizes")
		}
	})
}

// TestCoopShardProtocol exercises the owner/co-worker handoff directly:
// every lane of every batch runs exactly once whether a helper claims it
// or the owner keeps it, the owner never blocks on an absent helper, and
// detach-by-done never loses work.
func TestCoopShardProtocol(t *testing.T) {
	co := newCoopShard()
	var helped atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	co.helpers.Add(1)
	go func() {
		defer wg.Done()
		helped.Add(co.serve())
	}()

	const lanes = 6
	const batches = 500
	for batch := 0; batch < batches; batch++ {
		var hits [lanes]atomic.Int32
		// The lane task yields, so on a single-core scheduler the helper
		// gets to claim lanes mid-batch instead of the owner racing
		// through all of them first.
		co.runPhase(lanes, func(i int) {
			runtime.Gosched()
			hits[i].Add(1)
		})
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("batch %d: lane %d ran %d times", batch, i, n)
			}
		}
		runtime.Gosched() // let the helper park in serve's receive again
	}
	close(co.done)
	wg.Wait()
	if helped.Load() == 0 {
		t.Fatalf("helper never claimed a lane in %d batches", batches)
	}
	t.Logf("helper executed %d lanes over %d batches", helped.Load(), batches)
}

// TestCooperativeRouterOccupancy drives a skewed multi-shard batch stream
// through the cooperative router and checks the occupancy counters are
// wired (co-scheduling itself is timing-dependent, so the assertion is on
// plumbing: stats exposed, sized per shard, and consistent).
func TestCooperativeRouterOccupancy(t *testing.T) {
	serial, coop := coopStores(t, []Option{WithDevice(IntelSSD), WithFlash(16 << 20),
		WithMemory(4 << 20), WithSeed(11)})
	_ = serial
	rng := rand.New(rand.NewSource(77))
	keys := make([]uint64, 24000)
	vals := make([]uint64, len(keys))
	for i := range keys {
		k := rng.Uint64()
		if i%8 != 0 {
			k &= 1<<62 - 1 // ~7/8 of the batch on shard 0
		}
		keys[i], vals[i] = k, uint64(i)
	}
	ctx := t.Context()
	if err := coop.PutBatchU64(ctx, keys, vals); err != nil {
		t.Fatal(err)
	}
	if _, _, err := coop.GetBatchU64(ctx, keys); err != nil {
		t.Fatal(err)
	}
	st := coop.Stats()
	if len(st.Router.CoopJoins) != coop.NumShards() || len(st.Router.CoopLanes) != coop.NumShards() {
		t.Fatalf("router stats not sized per shard: %+v", st.Router)
	}
	var joins, lanes uint64
	for i := range st.Router.CoopJoins {
		joins += st.Router.CoopJoins[i]
		lanes += st.Router.CoopLanes[i]
	}
	if lanes > 0 && joins == 0 {
		t.Fatalf("lanes served without joins: %+v", st.Router)
	}
	t.Logf("coop occupancy: joins=%d lanes=%d (per shard %v / %v)",
		joins, lanes, st.Router.CoopJoins, st.Router.CoopLanes)
}

// TestBatchGroupingAllocs is the allocation guard for the batch grouping
// and routing scratch: once the pools are warm, grouping a large batch —
// the counting sort, the per-shard runs, the fingerprint buffer and the
// per-worker scratch table — must not allocate per call.
func TestBatchGroupingAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector drops a fraction of sync.Pool puts, so exact allocation counts are meaningless; CI runs this guard in a non-race step")
	}
	s := openShardedT(t, WithDevice(IntelSSD), WithFlash(16<<20), WithMemory(4<<20),
		WithShards(8), WithWorkers(4), WithSeed(5))
	rng := rand.New(rand.NewSource(13))
	keys := make([]uint64, 4096)
	vals := make([]uint64, len(keys))
	bkeys := make([][]byte, 512)
	for i := range keys {
		keys[i], vals[i] = rng.Uint64(), uint64(i)
	}
	for i := range bkeys {
		bkeys[i] = make([]byte, 16)
		rng.Read(bkeys[i])
	}
	warm := func() {
		g := s.groupPairsByShard(keys, vals, nil, nil)
		s.putGroups(g)
		g = s.groupByShard(keys)
		s.putGroups(g)
		s.putFingerprints(s.fingerprints(bkeys))
	}
	warm()
	// sync.Pool may shed entries on a GC, so allow a stray allocation or
	// two; a per-key or per-call regression measures in the hundreds.
	if allocs := testing.AllocsPerRun(20, warm); allocs > 4 {
		t.Fatalf("grouping allocates %.1f allocs per batch; want ~0", allocs)
	}
}
