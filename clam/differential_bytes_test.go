package clam

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// The byte-API differential harness mirrors differential_test.go for the
// Store byte surface: a seeded randomized stream of Put / Update / Delete /
// Get / Flush operations runs against a CLAM, a Sharded CLAM and a plain
// map[string][]byte oracle, asserting agreement modulo the documented
// semantics:
//
//   - Lazy delete (§5.1.1): a deleted key stays invisible until re-put.
//   - Eviction: once the incarnation ring or the circular value log wraps,
//     old entries may silently disappear, so "not found" for a key the
//     oracle holds is legal only in the eviction regime. A found key must
//     always carry the oracle's exact latest value — the full-key
//     verification on every record read turns fingerprint collisions and
//     lapped log records into misses, never wrong bytes.
//
// The strict phase sizes the workload below both eviction onset and the
// value log's first wrap, where the tolerance collapses to exact equality.

// byteOp is one operation of the byte-API stream.
type byteOp struct {
	kind opKind // reuses the u64 harness op kinds
	key  []byte
	val  []byte
}

// genByteOps builds a deterministic op stream over a universe of
// variable-length keys (8–47 bytes) with variable-length values.
func genByteOps(seed int64, nOps, nKeys, maxVal int, pLookup, pDelete, pFlush float64) []byteOp {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, nKeys)
	for i := range keys {
		k := make([]byte, 8+rng.Intn(40))
		rng.Read(k)
		keys[i] = k
	}
	ops := make([]byteOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		k := keys[rng.Intn(nKeys)]
		switch r := rng.Float64(); {
		case r < pFlush:
			ops = append(ops, byteOp{kind: opFlush})
		case r < pFlush+pDelete:
			ops = append(ops, byteOp{kind: opDelete, key: k})
		case r < pFlush+pDelete+pLookup:
			ops = append(ops, byteOp{kind: opLookup, key: k})
		default:
			v := make([]byte, rng.Intn(maxVal+1))
			rng.Read(v)
			ops = append(ops, byteOp{kind: opInsert, key: k, val: v})
		}
	}
	return ops
}

// applyByteDifferential feeds ops to s and the oracle in lockstep,
// checking every Get against the oracle. Every fourth insert goes through
// Update to keep the alias on the differential path too.
func applyByteDifferential(t *testing.T, name string, s Store, ops []byteOp, strict bool) map[string][]byte {
	t.Helper()
	oracle := make(map[string][]byte)
	inserts := 0
	for i, o := range ops {
		switch o.kind {
		case opInsert:
			inserts++
			var err error
			if inserts%4 == 0 {
				err = s.Update(o.key, o.val)
			} else {
				err = s.Put(o.key, o.val)
			}
			if err != nil {
				t.Fatalf("%s: op %d put: %v", name, i, err)
			}
			oracle[string(o.key)] = o.val
		case opDelete:
			if err := s.Delete(o.key); err != nil {
				t.Fatalf("%s: op %d delete: %v", name, i, err)
			}
			delete(oracle, string(o.key))
		case opFlush:
			if err := s.Flush(); err != nil {
				t.Fatalf("%s: op %d flush: %v", name, i, err)
			}
		case opLookup:
			v, found, err := s.Get(o.key)
			if err != nil {
				t.Fatalf("%s: op %d get: %v", name, i, err)
			}
			want, ok := oracle[string(o.key)]
			if found && (!ok || !bytes.Equal(v, want)) {
				t.Fatalf("%s: op %d get(%q) = %d bytes, oracle has (%d bytes, %v): stale or resurrected value",
					name, i, o.key, len(v), len(want), ok)
			}
			if strict && found != ok {
				t.Fatalf("%s: op %d get(%q) found=%v, oracle=%v (strict phase)",
					name, i, o.key, found, ok)
			}
		}
	}
	return oracle
}

// verifyByteFinal sweeps the oracle (serially and via GetBatch) plus a
// sample of absent keys. It returns how many oracle keys the store lost
// (legal only in the eviction regime).
func verifyByteFinal(t *testing.T, name string, s Store, oracle map[string][]byte, seed int64) int {
	t.Helper()
	keys := make([][]byte, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, []byte(k))
	}
	bv, bok, err := s.GetBatch(context.Background(), keys)
	if err != nil {
		t.Fatalf("%s: final GetBatch: %v", name, err)
	}
	lost := 0
	for i, k := range keys {
		v, found, err := s.Get(k)
		if err != nil {
			t.Fatalf("%s: final get: %v", name, err)
		}
		if found != bok[i] || !bytes.Equal(v, bv[i]) {
			t.Fatalf("%s: serial/batched divergence on %q: (%v, %d bytes) vs (%v, %d bytes)",
				name, k, found, len(v), bok[i], len(bv[i]))
		}
		if !found {
			lost++
			continue
		}
		if !bytes.Equal(v, oracle[string(k)]) {
			t.Fatalf("%s: final get(%q) returned wrong bytes", name, k)
		}
	}
	// Keys outside the universe must never be found.
	rng := rand.New(rand.NewSource(seed + 7))
	for i := 0; i < 1000; i++ {
		k := make([]byte, 8+rng.Intn(40))
		rng.Read(k)
		if _, ok := oracle[string(k)]; ok {
			continue
		}
		if _, found, _ := s.Get(k); found {
			t.Fatalf("%s: found never-inserted key %q", name, k)
		}
	}
	return lost
}

func TestDifferentialBytesStrictNoEvictions(t *testing.T) {
	// 30k ops over 10k keys with values up to 200 B: total appended record
	// bytes stay well below the 16 MB value log, and the index stays below
	// eviction onset, so the tolerance collapses to exact equality.
	ops := genByteOps(7001, 30000, 10000, 200, 0.25, 0.10, 0.0002)
	c, s := strictStores(t, FIFO)

	co := applyByteDifferential(t, "clam", c, ops, true)
	so := applyByteDifferential(t, "sharded", s, ops, true)
	if len(co) != len(so) {
		t.Fatalf("oracle divergence: clam %d keys, sharded %d", len(co), len(so))
	}

	for _, st := range []struct {
		name string
		s    Store
	}{{"clam", c}, {"sharded", s}} {
		stats := st.s.Stats()
		if stats.Core.Evictions != 0 {
			t.Fatalf("%s: strict phase evicted %d times; retune the test sizes", st.name, stats.Core.Evictions)
		}
		if stats.ValueLog.Wraps != 0 {
			t.Fatalf("%s: strict phase wrapped the value log %d times; retune the test sizes",
				st.name, stats.ValueLog.Wraps)
		}
		if stats.ValueLog.Records == 0 || stats.ValueDevice.Writes == 0 {
			t.Fatalf("%s: value log unused (%+v)", st.name, stats.ValueLog)
		}
		if lost := verifyByteFinal(t, st.name, st.s, co, 7001); lost != 0 {
			t.Fatalf("%s: lost %d keys with zero evictions", st.name, lost)
		}
	}

	// Same stream, same semantics: every per-key answer must agree between
	// the two implementations.
	for k, v := range co {
		cv, cok, _ := c.Get([]byte(k))
		sv, sok, _ := s.Get([]byte(k))
		if !cok || !sok || !bytes.Equal(cv, v) || !bytes.Equal(sv, v) {
			t.Fatalf("clam/sharded diverge on %q: (%v, %d bytes) vs (%v, %d bytes), oracle %d bytes",
				k, cok, len(cv), sok, len(sv), len(v))
		}
	}
}

func TestDifferentialBytesEvictionRegime(t *testing.T) {
	for _, policy := range []Policy{FIFO, UpdateBased} {
		t.Run(policy.String(), func(t *testing.T) {
			// Tiny stores (1 MB flash, 8 KB buffers, 1 MB value log) with
			// values up to 400 B: both the incarnation rings and the value
			// logs wrap several times over the stream.
			ops := genByteOps(8002, 40000, 4000, 400, 0.15, 0.10, 0.001)
			c, s := evictionStores(t, policy)

			co := applyByteDifferential(t, "clam", c, ops, false)
			so := applyByteDifferential(t, "sharded", s, ops, false)
			if len(co) != len(so) {
				t.Fatalf("oracle divergence: %d vs %d keys", len(co), len(so))
			}

			for _, st := range []struct {
				name string
				s    Store
			}{{"clam", c}, {"sharded", s}} {
				stats := st.s.Stats()
				if stats.Core.Evictions == 0 {
					t.Fatalf("%s: eviction phase never evicted; retune the test sizes", st.name)
				}
				if stats.ValueLog.Wraps == 0 {
					t.Fatalf("%s: value log never wrapped; retune the test sizes", st.name)
				}
				lost := verifyByteFinal(t, st.name, st.s, co, 8002)
				if lost == len(co) {
					t.Fatalf("%s: lost all %d oracle keys", st.name, lost)
				}
				t.Logf("%s/%s: %d oracle keys, %d lost to eviction (%d evictions, %d log wraps)",
					st.name, policy, len(co), lost, stats.Core.Evictions, stats.ValueLog.Wraps)
			}
		})
	}
}

// TestDifferentialBytesBatchedWindows drives the strict stream with Get
// windows flushed through GetBatch on a second instance, proving the
// batched byte pipeline (index probes + value-log reads) agrees key-for-key
// with serial Gets.
func TestDifferentialBytesBatchedWindows(t *testing.T) {
	ops := genByteOps(9003, 20000, 8000, 150, 0.3, 0.08, 0.0002)
	cs, ss := strictStores(t, FIFO)
	cb, sb := strictStores(t, FIFO)

	for _, pair := range []struct {
		name            string
		serial, batched Store
	}{{"clam", cs, cb}, {"sharded", ss, sb}} {
		oracle := make(map[string][]byte)
		var win [][]byte
		flush := func(at int) {
			if len(win) == 0 {
				return
			}
			bv, bok, err := pair.batched.GetBatch(context.Background(), win)
			if err != nil {
				t.Fatalf("%s: batch before op %d: %v", pair.name, at, err)
			}
			for i, k := range win {
				sv, sok, err := pair.serial.Get(k)
				if err != nil {
					t.Fatalf("%s: serial get before op %d: %v", pair.name, at, err)
				}
				if sok != bok[i] || !bytes.Equal(sv, bv[i]) {
					t.Fatalf("%s: window at %d key %q: serial (%v, %d bytes) vs batched (%v, %d bytes)",
						pair.name, at, k, sok, len(sv), bok[i], len(bv[i]))
				}
				want, ok := oracle[string(k)]
				if bok[i] != ok || (ok && !bytes.Equal(bv[i], want)) {
					t.Fatalf("%s: window at %d key %q: batched (%v) vs oracle (%v) (strict phase)",
						pair.name, at, k, bok[i], ok)
				}
			}
			win = win[:0]
		}
		both := func(at int, f func(s Store) error) {
			flush(at)
			if err := f(pair.serial); err != nil {
				t.Fatalf("%s: op %d (serial): %v", pair.name, at, err)
			}
			if err := f(pair.batched); err != nil {
				t.Fatalf("%s: op %d (batched): %v", pair.name, at, err)
			}
		}
		for i, o := range ops {
			switch o.kind {
			case opInsert:
				both(i, func(s Store) error { return s.Put(o.key, o.val) })
				oracle[string(o.key)] = o.val
			case opDelete:
				both(i, func(s Store) error { return s.Delete(o.key) })
				delete(oracle, string(o.key))
			case opFlush:
				both(i, func(s Store) error { return s.Flush() })
			case opLookup:
				win = append(win, o.key)
				if len(win) == 128 {
					flush(i)
				}
			}
		}
		flush(len(ops))
	}
}

// TestByteBatchMutations covers PutBatch/DeleteBatch end to end on both
// implementations, including duplicate keys within one batch (last write
// wins within a shard's in-order chunk stream).
func TestByteBatchMutations(t *testing.T) {
	c, s := strictStores(t, FIFO)
	ctx := context.Background()
	for _, st := range []struct {
		name string
		s    Store
	}{{"clam", c}, {"sharded", s}} {
		const n = 5000
		keys := make([][]byte, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = fmt.Appendf(nil, "bulk-key-%06d", i%4000) // 1000 dups
			vals[i] = fmt.Appendf(nil, "val-%06d", i)
		}
		if err := st.s.PutBatch(ctx, keys, vals); err != nil {
			t.Fatal(err)
		}
		got, found, err := st.s.GetBatch(ctx, keys)
		if err != nil {
			t.Fatal(err)
		}
		last := make(map[string][]byte, n)
		for i := range keys {
			last[string(keys[i])] = vals[i]
		}
		for i := range keys {
			if !found[i] || !bytes.Equal(got[i], last[string(keys[i])]) {
				t.Fatalf("%s: key %q: (%q, %v), want %q", st.name, keys[i], got[i], found[i], last[string(keys[i])])
			}
		}
		if err := st.s.DeleteBatch(ctx, keys[:1000]); err != nil {
			t.Fatal(err)
		}
		_, found, err = st.s.GetBatch(ctx, keys[:1000])
		if err != nil {
			t.Fatal(err)
		}
		for i, ok := range found {
			if ok {
				t.Fatalf("%s: deleted key %q still found", st.name, keys[i])
			}
		}
		if err := st.s.PutBatch(ctx, keys[:2], keys[:1]); err == nil {
			t.Fatalf("%s: PutBatch accepted mismatched lengths", st.name)
		}
	}
}
