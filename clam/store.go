package clam

import (
	"context"
	"errors"
	"time"

	"repro/internal/hashutil"
)

// Store is the one public API of the package, implemented by both CLAM
// (the paper's single blocking-I/O instance) and Sharded (the horizontal
// scaling path). A Store is a content-addressable map from byte-slice keys
// — content fingerprints, names, anything — to variable-length byte
// values, with a zero-overhead 64-bit fast path for the paper's
// fingerprint → address workloads.
//
// # Byte-keyed operations
//
// Put, Get, Delete and the ctx-aware batch variants key on arbitrary byte
// slices. Internally the key is fingerprinted to the 64-bit BufferHash key
// path and the (key, value) record is appended to a page-aligned circular
// value log on slow storage; the hash table stores a tagged pointer to the
// record. Reads verify the full key bytes stored in the record, so
// fingerprint collisions and wrapped-over (evicted) records surface as
// misses, never as wrong values. Values are limited to
// storage.MaxValueRecordBytes per record.
//
// # U64 fast path
//
// PutU64, GetU64, DeleteU64 and their batch variants are the paper's
// original API: 64-bit keys (assumed uniform fingerprints — hash
// non-uniform keys first, e.g. with hashutil.Mix64), 64-bit values stored
// inline in the hash entry. They touch neither the fingerprinting step nor
// the value log, so their I/O pattern, probe counters and virtual-time
// behaviour are exactly the pre-redesign ones.
//
// The two key families inhabit the same underlying table. They cannot
// corrupt each other — byte reads are key-verified, and a byte-keyed entry
// read through GetU64 just returns its (meaningless) pointer word — but a
// Store is meant to be driven through one family per key space.
//
// # Update semantics
//
// Update and UpdateU64 are documented aliases of Put and PutU64 with the
// paper's lazy-update semantics (§5.1.1): the new version is simply
// inserted, and lookups return it because they probe newest-first; older
// versions age out with their incarnations. There is no read-modify-write
// and no "key must exist" check — updating an absent key is an insert.
// Both CLAM and Sharded share this contract, and TestUpdateAliasSemantics
// pins it.
//
// # Batches and cancellation
//
// The batch calls take a context checked at batch-router chunk boundaries
// (see WithBatchChunk): a canceled batch stops between chunks and returns
// ctx.Err() joined with any chunk errors. Operations already applied stay
// applied — cancellation is early return, not rollback.
type Store interface {
	// Put adds or updates a key → value mapping.
	Put(key, value []byte) error
	// Get returns the latest value stored under key. The returned slice is
	// the caller's to keep.
	Get(key []byte) (value []byte, found bool, err error)
	// Delete lazily removes key (§5.1.1).
	Delete(key []byte) error
	// Update is an alias of Put (lazy update, see the interface comment).
	Update(key, value []byte) error

	// PutBatch applies len(keys) Put operations, batched through the
	// router. keys and values must have equal length.
	PutBatch(ctx context.Context, keys, values [][]byte) error
	// GetBatch looks up len(keys) keys through the batched lookup pipeline
	// (overlapped index probes, then overlapped value-log reads) and
	// returns per-key results in input order.
	GetBatch(ctx context.Context, keys [][]byte) (values [][]byte, found []bool, err error)
	// DeleteBatch applies len(keys) Delete operations, batched.
	DeleteBatch(ctx context.Context, keys [][]byte) error

	// Contains reports whether a record is indexed under key, stopping at
	// the index hit and skipping the value-log verification read — the
	// existence probe dedup-style workloads want. It accepts the
	// fingerprint-collision (and lapped-record) false positive rate the
	// paper accepts at 32–64-bit fingerprints; deleted keys read false.
	Contains(key []byte) (bool, error)
	// ContainsU64 reports whether a fast-path key is present (GetU64
	// without the value). On a store driven purely through the fast path
	// the probe is exact; on a store mixing both key families, a byte
	// record whose fingerprint equals key also counts as present (the two
	// families inhabit one table, see the interface comment).
	ContainsU64(key uint64) (bool, error)
	// ContainsBatch probes len(keys) keys through the batched index
	// pipeline with Contains's tradeoff, returning per-key existence in
	// input order.
	ContainsBatch(ctx context.Context, keys [][]byte) ([]bool, error)

	// PutU64 adds or updates a mapping on the 64-bit fast path.
	PutU64(key, value uint64) error
	// GetU64 returns the latest fast-path value stored under key.
	GetU64(key uint64) (value uint64, found bool, err error)
	// DeleteU64 lazily removes a fast-path key.
	DeleteU64(key uint64) error
	// UpdateU64 is an alias of PutU64 (lazy update).
	UpdateU64(key, value uint64) error

	// PutBatchU64 applies len(keys) PutU64 operations, batched.
	PutBatchU64(ctx context.Context, keys, values []uint64) error
	// GetBatchU64 looks up len(keys) fast-path keys through the batched
	// pipeline, returning per-key results in input order with the same
	// values and probe counters as a GetU64 loop.
	GetBatchU64(ctx context.Context, keys []uint64) (values []uint64, found []bool, err error)
	// DeleteBatchU64 applies len(keys) DeleteU64 operations, batched.
	DeleteBatchU64(ctx context.Context, keys []uint64) error

	// Flush forces all buffered entries to flash.
	Flush() error
	// Stats snapshots operation counters and latency summaries.
	Stats() Stats
	// ResetMetrics clears latency histograms and core counters (typically
	// after warm-up).
	ResetMetrics()
	// Elapse advances virtual time by d, modeling host idle time.
	Elapse(d time.Duration)
}

// ErrNoValueLog is returned by byte-valued operations on a store opened
// with WithCustomDevice but no WithValueLogDevice.
var ErrNoValueLog = errors.New("clam: no value-log device; byte-valued API needs WithValueLogDevice alongside WithCustomDevice")

// fingerprintSalt decorrelates byte-key fingerprints from caller-chosen
// U64 keys and from the table's internal hashing.
const fingerprintSalt = 0xb17e5a1c_0ff5e75d

// fingerprint maps a byte key onto the 64-bit key path.
func fingerprint(key []byte, seed uint64) uint64 {
	return hashutil.HashBytes(key, seed^fingerprintSalt)
}

// Compile-time interface checks.
var (
	_ Store = (*CLAM)(nil)
	_ Store = (*Sharded)(nil)
)
