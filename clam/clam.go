// Package clam provides the public API of the CLAM — the Cheap and Large
// CAM of Anand et al. (NSDI 2010): a large hash table spanning DRAM and
// flash, built on the BufferHash data structure (internal/core), offering
// fast inserts, lookups, lazy updates/deletes, and flexible eviction.
//
// A CLAM is opened over a simulated storage device (Intel-class SSD,
// Transcend-class SSD, raw NAND chip, or magnetic disk — see DESIGN.md §3
// for why simulation preserves the paper's behaviour) and operates in
// virtual time: every operation advances a virtual clock by its modeled
// latency, and per-operation latency distributions are recorded in
// histograms that the experiment harness turns into the paper's tables and
// figures.
//
// Quick start (mirrored by the package Example, which go test keeps
// honest):
//
//	c, err := clam.Open(clam.Options{
//	    Device:      clam.IntelSSD,
//	    FlashBytes:  16 << 20, // scaled-down stand-in for the paper's 32 GB
//	    MemoryBytes: 4 << 20,  // DRAM budget, split per §6.4
//	})
//	if err != nil {
//	    // handle err
//	}
//	if err := c.Insert(fingerprint, diskAddress); err != nil {
//	    // handle err
//	}
//	if addr, ok, err := c.Lookup(fingerprint); err == nil && ok {
//	    // use addr
//	}
//
// # Concurrency and sharding
//
// A CLAM's methods are safe for concurrent use, but operations are
// serialized behind one mutex, matching the paper's blocking-I/O design
// point — throughput cannot scale past one core.
//
// Sharded is the scaling path: OpenSharded partitions the 64-bit key
// space across N independent shards by the top log2(N) key bits, each
// shard a complete CLAM with its own BufferHash, device model, virtual
// clock and latency histograms. Operations on different shards run fully
// in parallel; per-shard they keep the paper's serialized semantics. The
// batch APIs (InsertBatch, LookupBatch, DeleteBatch) group operations by
// shard with a counting sort and dispatch chunk-sized tasks from a shared
// queue across a bounded worker pool: a shard is owned by one worker at a
// time (preserving per-shard order and cache affinity), and idle workers
// steal the next pending shard, so skewed batches keep the pool busy.
// Stats merges per-shard counters and histograms into one aggregate view.
//
// LookupBatch additionally runs each chunk through the core batched
// pipeline: buffer and Bloom work for the whole chunk happens with zero
// I/O, then the required incarnation page reads are deduped, sorted by
// device address and overlapped across the device's internal queue lanes
// (storage.BatchReader), charging the batch the maximum lane time instead
// of the serial sum. Results and probe counters are identical to a
// per-key Lookup loop; virtual time and physical read counts are lower.
//
// Keys are assumed to be uniformly distributed fingerprints (the paper's
// workloads); hash non-uniform keys first, e.g. with hashutil.Mix64.
package clam

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/disk"
	"repro/internal/flashchip"
	"repro/internal/metrics"
	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// DeviceKind selects one of the calibrated device models.
type DeviceKind int

// Device models (see internal/ssd, internal/flashchip, internal/disk).
const (
	// IntelSSD is the paper's Intel X18-M: page-mapped FTL, fast reads.
	IntelSSD DeviceKind = iota
	// TranscendSSD is the paper's Transcend TS32GSSD25: block-mapped FTL,
	// an older and much cheaper device.
	TranscendSSD
	// FlashChip is a raw NAND chip (2 KB pages, 128 KB erase blocks).
	FlashChip
	// MagneticDisk is a 7200-rpm hard disk (the BH+Disk baseline).
	MagneticDisk
)

// String returns the device name.
func (d DeviceKind) String() string {
	switch d {
	case IntelSSD:
		return "ssd-intel"
	case TranscendSSD:
		return "ssd-transcend"
	case FlashChip:
		return "flash-chip"
	case MagneticDisk:
		return "disk"
	default:
		return fmt.Sprintf("device(%d)", int(d))
	}
}

// Policy re-exports the BufferHash eviction policies (§5.1.2).
type Policy = core.EvictionPolicy

// Eviction policies.
const (
	FIFO          = core.FIFO
	LRU           = core.LRU
	UpdateBased   = core.UpdateBased
	PriorityBased = core.PriorityBased
)

// Options configures a CLAM. FlashBytes and MemoryBytes are the only
// required fields; everything else has paper-faithful defaults derived by
// the §6.4 tuning rules.
type Options struct {
	// Device selects the storage model; default IntelSSD.
	Device DeviceKind
	// CustomDevice overrides Device with a caller-supplied model. The
	// caller must construct it against Clock (or leave Clock nil and use
	// the device's clock).
	CustomDevice storage.Device

	// FlashBytes is F, the slow-storage capacity dedicated to the hash
	// table. Required.
	FlashBytes int64
	// MemoryBytes is M, the DRAM budget. Per §6.4 it is split into
	// B_opt ≈ 2F/s bits of buffers with the remainder for Bloom filters.
	// Required unless BufferKB/FilterBitsPerEntry are both set.
	MemoryBytes int64

	// BufferKB overrides B′, the per-super-table buffer size (default:
	// 128 KB, or the device erase block on raw flash).
	BufferKB int
	// FilterBitsPerEntry overrides the Bloom budget (default: derived
	// from MemoryBytes).
	FilterBitsPerEntry int
	// MaxIncarnations caps k per super table (default 16, the paper's
	// configuration; hard limit 64).
	MaxIncarnations int

	// Policy selects eviction behaviour; Retain configures PriorityBased.
	Policy Policy
	Retain func(key, value uint64) bool

	// Seed makes all hashing deterministic (default 1).
	Seed uint64

	// Clock supplies the virtual clock; one is created if nil.
	Clock *vclock.Clock

	// DisableBloom / DisableBitslice are the §7.3.1 ablation switches.
	DisableBloom    bool
	DisableBitslice bool
}

// CLAM is a cheap and large CAM. Safe for concurrent use.
type CLAM struct {
	mu     sync.Mutex
	bh     *core.BufferHash
	dev    storage.Device
	clock  *vclock.Clock
	insert metrics.Histogram
	lookup metrics.Histogram
	del    metrics.Histogram
}

// effectiveEntryBytes is s in the §6 analysis: 16-byte entries at 50%
// cuckoo utilization occupy 32 bytes of buffer/flash per stored entry.
const effectiveEntryBytes = 32.0

// Open builds a CLAM from Options, applying the §6.4 tuning rules.
func Open(opts Options) (*CLAM, error) {
	if opts.FlashBytes <= 0 {
		return nil, fmt.Errorf("clam: FlashBytes is required")
	}
	clock := opts.Clock
	if clock == nil {
		clock = vclock.New()
	}
	dev := opts.CustomDevice
	if dev == nil {
		switch opts.Device {
		case IntelSSD:
			dev = ssd.New(ssd.IntelX18M(), opts.FlashBytes, clock)
		case TranscendSSD:
			dev = ssd.New(ssd.TranscendTS32(), opts.FlashBytes, clock)
		case FlashChip:
			dev = flashchip.New(flashchip.DefaultConfig(opts.FlashBytes), clock)
		case MagneticDisk:
			dev = disk.New(disk.Hitachi7K80(), opts.FlashBytes, clock)
		default:
			return nil, fmt.Errorf("clam: unknown device kind %d", opts.Device)
		}
	}
	cfg, err := deriveConfig(opts, dev, clock)
	if err != nil {
		return nil, err
	}
	bh, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &CLAM{bh: bh, dev: dev, clock: clock}, nil
}

// deriveConfig applies §6.4: choose B′ (≈ flash block), the number of super
// tables from B_opt, k = F/(nt·B′), and give all remaining memory to Bloom
// filters.
func deriveConfig(opts Options, dev storage.Device, clock *vclock.Clock) (core.Config, error) {
	g := dev.Geometry()
	bufBytes := opts.BufferKB << 10
	if bufBytes == 0 {
		bufBytes = 128 << 10
		if _, erasable := dev.(storage.Eraser); erasable && g.BlockSize > 0 {
			bufBytes = g.BlockSize
		}
	}
	maxK := opts.MaxIncarnations
	if maxK == 0 {
		maxK = 16
	}
	if maxK > 64 {
		return core.Config{}, fmt.Errorf("clam: MaxIncarnations %d > 64", maxK)
	}

	// Total buffer allocation: B_opt, clamped to at most half the memory
	// budget, and at least one buffer.
	bOpt := costmodel.OptimalBufferBytes(opts.FlashBytes, effectiveEntryBytes)
	if opts.MemoryBytes > 0 && bOpt > opts.MemoryBytes/2 {
		bOpt = opts.MemoryBytes / 2
	}
	nt := bOpt / int64(bufBytes)
	// k = F/(nt·B′) must stay ≤ maxK; widen the partitioning if needed.
	for nt == 0 || opts.FlashBytes/(nt*int64(bufBytes)) > int64(maxK) {
		if nt == 0 {
			nt = 1
			continue
		}
		nt *= 2
	}
	partitionBits := uint(bits.Len64(uint64(nt)) - 1) // floor(log2)
	nt = 1 << partitionBits
	k := int(opts.FlashBytes / (nt * int64(bufBytes)))
	if k < 1 {
		k = 1
	}
	if k > maxK {
		k = maxK
	}

	fbe := opts.FilterBitsPerEntry
	if fbe == 0 {
		if opts.MemoryBytes == 0 {
			fbe = 16 // the paper's candidate configuration
		} else {
			bloomBytes := opts.MemoryBytes - nt*int64(bufBytes)
			if bloomBytes <= 0 {
				return core.Config{}, fmt.Errorf(
					"clam: MemoryBytes %d leaves no room for Bloom filters after %d of buffers",
					opts.MemoryBytes, nt*int64(bufBytes))
			}
			entries := nt * int64(k) * int64(bufBytes/32) // n′ per incarnation × all
			fbe = int(bloomBytes * 8 / entries)
			if fbe < 1 {
				fbe = 1
			}
			if fbe > 64 {
				fbe = 64
			}
		}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return core.Config{
		Device:             dev,
		Clock:              clock,
		PartitionBits:      partitionBits,
		BufferBytes:        bufBytes,
		NumIncarnations:    k,
		FilterBitsPerEntry: fbe,
		FilterHashes:       0,
		Policy:             opts.Policy,
		Retain:             opts.Retain,
		Seed:               seed,
		DisableBloom:       opts.DisableBloom,
		DisableBitslice:    opts.DisableBitslice,
	}, nil
}

// Insert adds or updates a (key, value) mapping.
func (c *CLAM) Insert(key, value uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	err := c.bh.Insert(key, value)
	c.insert.Observe(w.Elapsed())
	return err
}

// Update is an alias of Insert with the paper's lazy-update semantics.
func (c *CLAM) Update(key, value uint64) error { return c.Insert(key, value) }

// Lookup returns the latest value stored under key.
func (c *CLAM) Lookup(key uint64) (value uint64, found bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	res, err := c.bh.Lookup(key)
	c.lookup.Observe(w.Elapsed())
	return res.Value, res.Found, err
}

// LookupBatch looks up len(keys) keys through the core batched pipeline
// (see internal/core: in-memory phase, coalesced overlapped flash phase,
// serial-identical resolution) and returns per-key results in input order.
// The structural counters match a loop of Lookup calls key-for-key; the
// batch holds the lock once and its flash reads overlap in virtual time.
//
// Latency accounting: the batch's virtual elapsed time is spread evenly
// over its keys, so the lookup histogram records amortized per-key latency
// and its count stays equal to the number of lookups performed.
func (c *CLAM) LookupBatch(keys []uint64) (values []uint64, found []bool, err error) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	results := make([]core.LookupResult, len(keys))
	if err := c.lookupBatchInto(keys, results); err != nil {
		return nil, nil, err
	}
	for i, r := range results {
		values[i], found[i] = r.Value, r.Found
	}
	return values, found, nil
}

// lookupBatchInto is LookupBatch without the output allocation: results
// must have len(keys). The sharded batch router calls this with per-worker
// scratch buffers.
func (c *CLAM) lookupBatchInto(keys []uint64, results []core.LookupResult) error {
	if len(keys) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	if err := c.bh.LookupBatch(keys, results); err != nil {
		return err
	}
	c.lookup.ObserveN(w.Elapsed()/time.Duration(len(keys)), len(keys))
	return nil
}

// Delete lazily removes key (§5.1.1).
func (c *CLAM) Delete(key uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	err := c.bh.Delete(key)
	c.del.Observe(w.Elapsed())
	return err
}

// Flush forces all buffered entries to flash.
func (c *CLAM) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bh.Flush()
}

// Clock returns the virtual clock (for building workloads that pace
// arrivals in virtual time).
func (c *CLAM) Clock() *vclock.Clock { return c.clock }

// Device returns the underlying storage device.
func (c *CLAM) Device() storage.Device { return c.dev }

// Core exposes the underlying BufferHash for the experiment harness.
// Callers must not use it concurrently with CLAM methods.
func (c *CLAM) Core() *core.BufferHash { return c.bh }

// Stats is a point-in-time summary of a CLAM's behaviour.
type Stats struct {
	Core   core.Stats
	Device storage.Counters

	InsertLatency metrics.Summary
	LookupLatency metrics.Summary
	DeleteLatency metrics.Summary

	Memory core.MemoryFootprint
}

// Stats snapshots the operation counters and latency summaries.
func (c *CLAM) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Core:          c.bh.Stats(),
		Device:        c.dev.Counters(),
		InsertLatency: c.insert.Summarize(),
		LookupLatency: c.lookup.Summarize(),
		DeleteLatency: c.del.Summarize(),
		Memory:        c.bh.MemoryFootprint(),
	}
}

// InsertHistogram returns the insert latency histogram (callers must not
// race it against operations; quiesce first).
func (c *CLAM) InsertHistogram() *metrics.Histogram { return &c.insert }

// LookupHistogram returns the lookup latency histogram.
func (c *CLAM) LookupHistogram() *metrics.Histogram { return &c.lookup }

// ResetMetrics clears latency histograms and core counters, typically after
// a warm-up phase.
func (c *CLAM) ResetMetrics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert.Reset()
	c.lookup.Reset()
	c.del.Reset()
	c.bh.ResetStats()
}

// Elapse advances the virtual clock by d, modeling host idle time (during
// which SSDs perform background garbage collection).
func (c *CLAM) Elapse(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock.Advance(d)
}
