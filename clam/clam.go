// Package clam provides the public API of the CLAM — the Cheap and Large
// CAM of Anand et al. (NSDI 2010): a large hash table spanning DRAM and
// flash, built on the BufferHash data structure (internal/core), offering
// fast inserts, lookups, lazy updates/deletes, and flexible eviction.
//
// Everything is reached through one interface, Store, with one
// constructor, Open, configured by functional options:
//
//	st, err := clam.Open(
//	    clam.WithDevice(clam.IntelSSD),
//	    clam.WithFlash(16<<20),  // scaled-down stand-in for the paper's 32 GB
//	    clam.WithMemory(4<<20),  // DRAM budget, split per §6.4
//	)
//	if err != nil {
//	    // handle err
//	}
//	fp := sha1.Sum(chunk) // real content fingerprints are byte slices
//	if err := st.Put(fp[:], chunk); err != nil {
//	    // handle err
//	}
//	if data, ok, err := st.Get(fp[:]); err == nil && ok {
//	    // use data
//	}
//
// Byte keys of any length map to variable-length byte values: keys are
// fingerprinted onto the paper's 64-bit key path and records live in a
// page-aligned circular value log on slow storage, with every read
// verified against the full key bytes (see Store). Workloads that already
// have 64-bit fingerprints and word-sized values — the paper's evaluation
// — use the inline fast path (PutU64/GetU64), which bypasses the value log
// entirely and behaves exactly as before the byte API existed. Existence
// checks that don't need the value go through Contains/ContainsU64/
// ContainsBatch, which stop at the index hit and skip the record read
// (accepting the fingerprint-collision rate the paper accepts).
//
// Adding WithShards(8) to the same option list opens a Sharded store: the
// key space is partitioned by top fingerprint bits across independent
// shards, each a complete CLAM with its own BufferHash, device models,
// virtual clock and histograms. Batch operations route through a shared
// chunk queue over a bounded worker pool with single-shard ownership,
// cache affinity and shard stealing. GetBatch/GetBatchU64 run each chunk
// through the core batched lookup pipeline, overlapping index page probes
// — and then value-log record reads, a second I/O stream — across the
// device's internal queue lanes. PutBatch/PutBatchU64 are the write-side
// mirror: each chunk's records land in the value log as one multi-record
// append, and every buffer flush the chunk triggers is issued as one
// address-sorted storage.BatchWriter submission, so flush writes overlap
// the same way lookup probes do while counters and state stay exactly
// serial (Stats.WriteLatency shows the flattened write tail).
//
// # Worker model: one worker per shard, cooperative phases on hot shards
//
// A shard serializes behind one mutex, so the batch router assigns each
// pending shard to exactly one worker at a time: within-shard input order
// is preserved, and a worker keeps its shard between chunks (cache
// affinity) until it is drained, then steals the next pending shard. Under
// uniform traffic that keeps every worker busy; under heavy skew the
// drained-out workers used to idle while one worker ground through the
// hot shard's chunks.
//
// WithShardParallelism(n) closes that gap without giving up the one-mutex
// shard: the core batch pipelines split their phase A — the read-mostly
// memory-resolution phase (route hashing, buffer probes, Bloom queries) —
// into contiguous key lanes, and a worker that finds no shard left to own
// attaches to the deepest pending shard as a co-worker, executing phase-A
// lanes its owner hands over (up to n-1 co-workers per shard). All
// mutation — buffer application, flush staging, probe resolution, the
// clock advance — stays in a single sequenced drain on the owning worker,
// so results, per-key probe sequences and every core counter are exactly
// the serial pipeline's (the cooperative differential oracles pin this);
// only wall-clock time changes, bounded by physical cores.
// Stats.Router reports per-shard co-worker occupancy. Batches whose keys
// all route to one shard — the extreme of the skew — additionally skip
// the grouping sort and its gather/scatter copies entirely and run
// phase-A lanes on spawned goroutines within the worker budget.
//
// A CLAM is opened over simulated storage devices (Intel-class SSD,
// Transcend-class SSD, raw NAND chip, or magnetic disk — see DESIGN.md §3
// for why simulation preserves the paper's behaviour) and operates in
// virtual time: every operation advances a virtual clock by its modeled
// latency, and per-operation latency distributions are recorded in
// histograms that the experiment harness turns into the paper's tables
// and figures.
//
// All Store methods are safe for concurrent use. A single CLAM serializes
// operations behind one mutex, matching the paper's blocking-I/O design
// point; a Sharded store serializes per shard and runs shards in parallel.
package clam

import (
	"bytes"
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// DeviceKind selects one of the calibrated device models.
type DeviceKind int

// Device models (see internal/ssd, internal/flashchip, internal/disk).
const (
	// IntelSSD is the paper's Intel X18-M: page-mapped FTL, fast reads.
	IntelSSD DeviceKind = iota
	// TranscendSSD is the paper's Transcend TS32GSSD25: block-mapped FTL,
	// an older and much cheaper device.
	TranscendSSD
	// FlashChip is a raw NAND chip (2 KB pages, 128 KB erase blocks).
	FlashChip
	// MagneticDisk is a 7200-rpm hard disk (the BH+Disk baseline).
	MagneticDisk
)

// String returns the device name.
func (d DeviceKind) String() string {
	switch d {
	case IntelSSD:
		return "ssd-intel"
	case TranscendSSD:
		return "ssd-transcend"
	case FlashChip:
		return "flash-chip"
	case MagneticDisk:
		return "disk"
	default:
		return fmt.Sprintf("device(%d)", int(d))
	}
}

// Policy re-exports the BufferHash eviction policies (§5.1.2).
type Policy = core.EvictionPolicy

// Eviction policies.
const (
	FIFO          = core.FIFO
	LRU           = core.LRU
	UpdateBased   = core.UpdateBased
	PriorityBased = core.PriorityBased
)

// CLAM is a cheap and large CAM — one instance of the paper's design,
// implementing Store. Safe for concurrent use; operations serialize behind
// one mutex (the paper's blocking-I/O design point).
type CLAM struct {
	mu     sync.Mutex
	bh     *core.BufferHash
	dev    storage.Device
	vlog   *storage.ValueLog // nil iff no value-log device was configured
	clock  *vclock.Clock
	fpSeed uint64
	chunk  int         // batch chunk size: ctx-check interval and core-call bound
	runner batchRunner // phase-A lanes for this CLAM's own batch loops (zero = serial)
	insert metrics.Histogram
	lookup metrics.Histogram
	del    metrics.Histogram
	write  metrics.Histogram // per-request device write service (see Stats.WriteLatency)

	batchRes []core.LookupResult    // GetBatch scratch, guarded by mu
	batchReq []storage.ValueReadReq // GetBatch value-log scratch, guarded by mu
	batchIdx []int                  // GetBatch scatter scratch, guarded by mu

	putOffs  []int64           // PutBatch value-log pointer scratch, guarded by mu
	putNs    []int             // PutBatch value-log pointer scratch, guarded by mu
	putPtrs  []uint64          // PutBatch encoded-pointer scratch, guarded by mu
	deadSeen map[uint64]uint64 // PutBatch/DeleteBatch per-chunk dup tracking, guarded by mu
}

// effectiveEntryBytes is s in the §6 analysis: 16-byte entries at 50%
// cuckoo utilization occupy 32 bytes of buffer/flash per stored entry.
const effectiveEntryBytes = 32.0

// openCLAM builds a single CLAM from a resolved config.
func openCLAM(cfg config) (*CLAM, error) {
	clock := cfg.clock
	if clock == nil {
		clock = vclock.New()
	}
	c := &CLAM{
		clock: clock,
		chunk: cfg.batchChunk,
	}
	if w := min(cfg.shardPar, runtime.GOMAXPROCS(0)); w > 1 {
		// A standalone CLAM has no worker pool to borrow from, so its
		// batch chunks spread phase A over spawned lanes instead, clamped
		// to the schedulable cores (beyond them, spawns are pure
		// overhead). Shard CLAMs inside a Sharded never take this path —
		// the router binds its cooperative runner per chunk.
		c.runner = batchRunner{width: w, run: core.GoRunner}
	}
	dev := cfg.customDevice
	vdev := cfg.customVLogDev
	if dev == nil {
		var err error
		if dev, err = newKindDevice(cfg.device, cfg.flashBytes, clock); err != nil {
			return nil, err
		}
		vbytes := cfg.valueLogBytes
		if vbytes == 0 {
			vbytes = cfg.flashBytes
		}
		if vdev, err = newKindDevice(cfg.device, vbytes, clock); err != nil {
			return nil, err
		}
		// Both slow-storage write streams — incarnation images and value-log
		// pages — feed one write-latency histogram (Stats.WriteLatency).
		dev = timeWrites(dev, &c.write)
		vdev = timeWrites(vdev, &c.write)
	}
	coreCfg, err := deriveConfig(cfg, dev, clock)
	if err != nil {
		return nil, err
	}
	bh, err := core.New(coreCfg)
	if err != nil {
		return nil, err
	}
	c.bh = bh
	c.dev = dev
	c.fpSeed = coreCfg.Seed
	if vdev != nil {
		if c.vlog, err = storage.NewValueLog(vdev); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// deriveConfig applies §6.4: choose B′ (≈ flash block), the number of super
// tables from B_opt, k = F/(nt·B′), and give all remaining memory to Bloom
// filters.
func deriveConfig(cfg config, dev storage.Device, clock *vclock.Clock) (core.Config, error) {
	g := dev.Geometry()
	bufBytes := cfg.bufferKB << 10
	if bufBytes == 0 {
		bufBytes = 128 << 10
		if _, erasable := dev.(storage.Eraser); erasable && g.BlockSize > 0 {
			bufBytes = g.BlockSize
		}
	}
	maxK := cfg.maxIncarnations
	if maxK == 0 {
		maxK = 16
	}
	if maxK > 64 {
		return core.Config{}, fmt.Errorf("clam: WithMaxIncarnations(%d) > 64", maxK)
	}

	// Total buffer allocation: B_opt, clamped to at most half the memory
	// budget, and at least one buffer.
	bOpt := costmodel.OptimalBufferBytes(cfg.flashBytes, effectiveEntryBytes)
	if cfg.memoryBytes > 0 && bOpt > cfg.memoryBytes/2 {
		bOpt = cfg.memoryBytes / 2
	}
	nt := bOpt / int64(bufBytes)
	// k = F/(nt·B′) must stay ≤ maxK; widen the partitioning if needed.
	for nt == 0 || cfg.flashBytes/(nt*int64(bufBytes)) > int64(maxK) {
		if nt == 0 {
			nt = 1
			continue
		}
		nt *= 2
	}
	partitionBits := uint(bits.Len64(uint64(nt)) - 1) // floor(log2)
	nt = 1 << partitionBits
	k := int(cfg.flashBytes / (nt * int64(bufBytes)))
	if k < 1 {
		k = 1
	}
	if k > maxK {
		k = maxK
	}

	fbe := cfg.filterBitsPerEntry
	if fbe == 0 {
		if cfg.memoryBytes == 0 {
			fbe = 16 // the paper's candidate configuration
		} else {
			bloomBytes := cfg.memoryBytes - nt*int64(bufBytes)
			if bloomBytes <= 0 {
				return core.Config{}, fmt.Errorf(
					"clam: memory budget %d leaves no room for Bloom filters after %d of buffers",
					cfg.memoryBytes, nt*int64(bufBytes))
			}
			entries := nt * int64(k) * int64(bufBytes/32) // n′ per incarnation × all
			fbe = int(bloomBytes * 8 / entries)
			if fbe < 1 {
				fbe = 1
			}
			if fbe > 64 {
				fbe = 64
			}
		}
	}
	seed := cfg.seed
	if seed == 0 {
		seed = 1
	}
	return core.Config{
		Device:             dev,
		Clock:              clock,
		PartitionBits:      partitionBits,
		BufferBytes:        bufBytes,
		NumIncarnations:    k,
		FilterBitsPerEntry: fbe,
		FilterHashes:       0,
		Policy:             cfg.policy,
		Retain:             cfg.retain,
		Seed:               seed,
		DisableBloom:       cfg.disableBloom,
		DisableBitslice:    cfg.disableBitslice,
	}, nil
}

// --- U64 fast path ---

// PutU64 adds or updates a (key, value) mapping on the inline fast path.
func (c *CLAM) PutU64(key, value uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	err := c.bh.Insert(key, value)
	c.insert.Observe(w.Elapsed())
	return err
}

// UpdateU64 is an alias of PutU64 with the paper's lazy-update semantics
// (§5.1.1): the new version shadows older ones because lookups probe
// newest-first; there is no existence check and no read-modify-write.
func (c *CLAM) UpdateU64(key, value uint64) error { return c.PutU64(key, value) }

// GetU64 returns the latest value stored under key.
func (c *CLAM) GetU64(key uint64) (value uint64, found bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	res, err := c.bh.Lookup(key)
	c.lookup.Observe(w.Elapsed())
	return res.Value, res.Found, err
}

// DeleteU64 lazily removes key (§5.1.1).
func (c *CLAM) DeleteU64(key uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	err := c.bh.Delete(key)
	c.del.Observe(w.Elapsed())
	return err
}

// PutBatchU64 applies len(keys) fast-path inserts through the core batched
// insert pipeline (see internal/core: in-order buffer application with
// deferred CPU charges, then every triggered flush issued as one
// address-sorted overlapped write submission). State and structural
// counters match a loop of PutU64 calls key-for-key; each chunk holds the
// lock once and its flush writes overlap in virtual time. ctx is checked
// between chunks.
//
// Latency accounting: a chunk's virtual elapsed time is spread evenly over
// its keys, so the insert histogram records amortized per-key latency —
// flush costs no longer land on one unlucky insert — and its count stays
// equal to the number of inserts performed.
func (c *CLAM) PutBatchU64(ctx context.Context, keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("clam: PutBatchU64 length mismatch: %d keys, %d values", len(keys), len(values))
	}
	for lo := 0; lo < len(keys); lo += c.chunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := min(lo+c.chunk, len(keys))
		if err := c.putBatchU64Chunk(keys[lo:hi], values[lo:hi], c.runner); err != nil {
			return err
		}
	}
	return nil
}

// putBatchU64Chunk is one locked batched-insert call running phase A on
// br's lanes. The sharded batch router calls this chunk-by-chunk with
// per-worker gather buffers and its cooperative runner.
func (c *CLAM) putBatchU64Chunk(keys, values []uint64, br batchRunner) error {
	if len(keys) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bh.SetParallel(br.width, br.run)
	w := c.clock.StartWatch()
	if err := c.bh.InsertBatch(keys, values); err != nil {
		return err
	}
	c.insert.ObserveN(w.Elapsed()/time.Duration(len(keys)), len(keys))
	return nil
}

// GetBatchU64 looks up len(keys) keys through the core batched pipeline
// (see internal/core: in-memory phase, coalesced overlapped flash phase,
// serial-identical resolution) and returns per-key results in input order.
// The structural counters match a loop of GetU64 calls key-for-key; each
// chunk holds the lock once and its flash reads overlap in virtual time.
// ctx is checked between chunks.
//
// Latency accounting: a chunk's virtual elapsed time is spread evenly over
// its keys, so the lookup histogram records amortized per-key latency and
// its count stays equal to the number of lookups performed.
func (c *CLAM) GetBatchU64(ctx context.Context, keys []uint64) (values []uint64, found []bool, err error) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	results := make([]core.LookupResult, len(keys))
	for lo := 0; lo < len(keys); lo += c.chunk {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		hi := min(lo+c.chunk, len(keys))
		if err := c.getBatchU64Into(keys[lo:hi], results[lo:hi], c.runner); err != nil {
			return nil, nil, err
		}
	}
	for i, r := range results {
		values[i], found[i] = r.Value, r.Found
	}
	return values, found, nil
}

// getBatchU64Into is one locked batched-lookup call without the output
// allocation: results must have len(keys), and phase A runs on br's lanes.
// The sharded batch router calls this chunk-by-chunk with per-worker
// scratch buffers and its cooperative runner.
func (c *CLAM) getBatchU64Into(keys []uint64, results []core.LookupResult, br batchRunner) error {
	if len(keys) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bh.SetParallel(br.width, br.run)
	w := c.clock.StartWatch()
	if err := c.bh.LookupBatch(keys, results); err != nil {
		return err
	}
	c.lookup.ObserveN(w.Elapsed()/time.Duration(len(keys)), len(keys))
	return nil
}

// DeleteBatchU64 applies len(keys) fast-path deletes, checking ctx between
// chunks. Deletes perform no I/O; batching amortizes lock and clock
// traffic, with counters identical to a DeleteU64 loop.
func (c *CLAM) DeleteBatchU64(ctx context.Context, keys []uint64) error {
	for lo := 0; lo < len(keys); lo += c.chunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := min(lo+c.chunk, len(keys))
		if err := c.deleteBatchU64Chunk(keys[lo:hi], c.runner); err != nil {
			return err
		}
	}
	return nil
}

// deleteBatchU64Chunk is one locked batched-delete call.
func (c *CLAM) deleteBatchU64Chunk(keys []uint64, br batchRunner) error {
	if len(keys) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bh.SetParallel(br.width, br.run)
	w := c.clock.StartWatch()
	if err := c.bh.DeleteBatch(keys); err != nil {
		return err
	}
	c.del.ObserveN(w.Elapsed()/time.Duration(len(keys)), len(keys))
	return nil
}

// --- byte-keyed operations ---

// Put adds or updates a key → value mapping: the record is appended to the
// value log and the key's fingerprint maps to its pointer.
func (c *CLAM) Put(key, value []byte) error {
	return c.putRecord(fingerprint(key, c.fpSeed), key, value)
}

// Update is an alias of Put with the paper's lazy-update semantics
// (§5.1.1); see Store.
func (c *CLAM) Update(key, value []byte) error { return c.Put(key, value) }

func (c *CLAM) putRecord(fp uint64, key, value []byte) error {
	if c.vlog == nil {
		return ErrNoValueLog
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	c.markDeadIfBuffered(fp)
	off, n, err := c.vlog.Append(key, value)
	if err != nil {
		return err
	}
	ptr, ok := core.EncodeValuePtr(off, n)
	if !ok {
		return fmt.Errorf("clam: value-log pointer (%d, %d) not encodable", off, n)
	}
	err = c.bh.Insert(fp, ptr)
	c.insert.Observe(w.Elapsed())
	return err
}

// markDeadIfBuffered moves fp's value-log record to the dead side of the
// log's space accounting if its pointer is still in the DRAM buffer — the
// only place an overwrite or delete is observable without extra probes.
// Records whose pointer already flushed to an incarnation die silently and
// are only accounted when the log laps them (ValueLogStats.LappedBytes).
// On a store mixing the key families, an inline U64 value whose bit 63 is
// set and whose key collides with fp decodes as a bogus pointer here; the
// mis-debit is bounded by MarkDead's range and region clamping, the same
// approximation class as silent deaths. Accounting only: no counters, CPU
// charges or I/O are touched.
func (c *CLAM) markDeadIfBuffered(fp uint64) {
	if c.vlog == nil {
		return
	}
	if old, ok := c.bh.BufferedValue(fp); ok {
		if off, n, ok := core.DecodeValuePtr(old); ok {
			c.vlog.MarkDead(off, n)
		}
	}
}

// Get returns the latest value stored under key, verified against the full
// key bytes in the value-log record.
func (c *CLAM) Get(key []byte) (value []byte, found bool, err error) {
	return c.getRecord(fingerprint(key, c.fpSeed), key)
}

func (c *CLAM) getRecord(fp uint64, key []byte) (value []byte, found bool, err error) {
	if c.vlog == nil {
		return nil, false, ErrNoValueLog
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	defer func() { c.lookup.Observe(w.Elapsed()) }()
	res, err := c.bh.Lookup(fp)
	if err != nil || !res.Found {
		return nil, false, err
	}
	off, n, ok := res.ValuePointer()
	if !ok {
		return nil, false, nil // inline (U64-keyed) entry under this fingerprint
	}
	rec, ok, err := c.vlog.ReadRecord(off, n)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil // stale pointer: record region wrapped over
	}
	v, ok := storage.VerifyRecord(rec, key)
	if !ok {
		return nil, false, nil // fingerprint collision or overwritten record
	}
	return bytes.Clone(v), true, nil
}

// Delete lazily removes key (§5.1.1). The value-log record is reclaimed by
// the log's circular overwrite.
func (c *CLAM) Delete(key []byte) error {
	return c.deleteFP(fingerprint(key, c.fpSeed))
}

func (c *CLAM) deleteFP(fp uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	c.markDeadIfBuffered(fp)
	err := c.bh.Delete(fp)
	c.del.Observe(w.Elapsed())
	return err
}

// PutBatch applies len(keys) Put operations, chunk by chunk: each chunk's
// records are appended to the value log as one tail-buffered multi-record
// append (its full pages reach the device as one sequential submission),
// then the chunk's fingerprints and record pointers run through the core
// batched insert pipeline, whose flush writes are issued as one overlapped
// submission — the write-side mirror of GetBatch's two read streams. Final
// state matches a Put loop exactly (record offsets depend only on append
// order). ctx is checked between chunks.
func (c *CLAM) PutBatch(ctx context.Context, keys, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("clam: PutBatch length mismatch: %d keys, %d values", len(keys), len(values))
	}
	if len(keys) == 0 {
		return nil
	}
	if c.vlog == nil {
		return ErrNoValueLog
	}
	fps := make([]uint64, len(keys))
	for i, k := range keys {
		fps[i] = fingerprint(k, c.fpSeed)
	}
	for lo := 0; lo < len(keys); lo += c.chunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := min(lo+c.chunk, len(keys))
		if err := c.putBatchRecords(fps[lo:hi], keys[lo:hi], values[lo:hi], c.runner); err != nil {
			return err
		}
	}
	return nil
}

// putBatchRecords applies one chunk under the lock: one multi-record
// value-log append, dead-record accounting, then one core insert batch on
// br's phase-A lanes. The sharded router calls this with per-shard chunks.
func (c *CLAM) putBatchRecords(fps []uint64, keys, values [][]byte, br batchRunner) error {
	if len(fps) == 0 {
		return nil
	}
	if c.vlog == nil {
		return ErrNoValueLog
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bh.SetParallel(br.width, br.run)
	w := c.clock.StartWatch()
	if cap(c.putOffs) < len(fps) {
		c.putOffs = make([]int64, len(fps))
		c.putNs = make([]int, len(fps))
		c.putPtrs = make([]uint64, len(fps))
	}
	offs, ns, ptrs := c.putOffs[:len(fps)], c.putNs[:len(fps)], c.putPtrs[:len(fps)]
	if err := c.vlog.AppendBatch(keys, values, offs, ns); err != nil {
		return err
	}
	if c.deadSeen == nil {
		c.deadSeen = make(map[uint64]uint64, len(fps))
	} else {
		clear(c.deadSeen)
	}
	for i, fp := range fps {
		ptr, ok := core.EncodeValuePtr(offs[i], ns[i])
		if !ok {
			return fmt.Errorf("clam: value-log pointer (%d, %d) not encodable", offs[i], ns[i])
		}
		// Space accounting: the first occurrence of a fingerprint may kill a
		// pre-chunk record still in the buffer; later occurrences kill the
		// previous occurrence's record within this chunk.
		if prev, dup := c.deadSeen[fp]; dup {
			if off, n, ok := core.DecodeValuePtr(prev); ok {
				c.vlog.MarkDead(off, n)
			}
		} else {
			c.markDeadIfBuffered(fp)
		}
		c.deadSeen[fp] = ptr
		ptrs[i] = ptr
	}
	if err := c.bh.InsertBatch(fps, ptrs); err != nil {
		return err
	}
	c.insert.ObserveN(w.Elapsed()/time.Duration(len(fps)), len(fps))
	return nil
}

// GetBatch looks up len(keys) keys, chunk by chunk: each chunk runs the
// core batched index pipeline (overlapped page probes) and then fetches
// the surviving value-log records as one overlapped batched read — the
// second I/O stream. ctx is checked between chunks.
func (c *CLAM) GetBatch(ctx context.Context, keys [][]byte) (values [][]byte, found []bool, err error) {
	values = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return values, found, nil
	}
	if c.vlog == nil {
		return nil, nil, ErrNoValueLog
	}
	fps := make([]uint64, len(keys))
	for i, k := range keys {
		fps[i] = fingerprint(k, c.fpSeed)
	}
	for lo := 0; lo < len(keys); lo += c.chunk {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		hi := min(lo+c.chunk, len(keys))
		if err := c.getBatchRecords(fps[lo:hi], keys[lo:hi], values[lo:hi], found[lo:hi], c.runner); err != nil {
			return nil, nil, err
		}
	}
	return values, found, nil
}

// getBatchRecords resolves one chunk under the lock: batched index lookup
// on br's phase-A lanes, then one batched value-log read for every key
// that resolved to a record pointer, then per-key verification. The
// sharded router calls this with gathered per-shard chunks.
func (c *CLAM) getBatchRecords(fps []uint64, keys [][]byte, values [][]byte, found []bool, br batchRunner) error {
	if len(fps) == 0 {
		return nil
	}
	if c.vlog == nil {
		return ErrNoValueLog
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bh.SetParallel(br.width, br.run)
	w := c.clock.StartWatch()
	if cap(c.batchRes) < len(fps) {
		c.batchRes = make([]core.LookupResult, len(fps))
	}
	results := c.batchRes[:len(fps)]
	if err := c.bh.LookupBatch(fps, results); err != nil {
		return err
	}
	reqs := c.batchReq[:0]
	idxs := c.batchIdx[:0]
	for i := range results {
		if off, n, ok := results[i].ValuePointer(); ok {
			reqs = append(reqs, storage.ValueReadReq{Off: off, N: n})
			idxs = append(idxs, i)
		}
	}
	c.batchReq, c.batchIdx = reqs, idxs
	if err := c.vlog.ReadRecordsBatch(reqs); err != nil {
		return err
	}
	for j, req := range reqs {
		i := idxs[j]
		if req.Rec == nil {
			continue
		}
		if v, ok := storage.VerifyRecord(req.Rec, keys[i]); ok {
			values[i] = bytes.Clone(v)
			found[i] = true
		}
	}
	c.lookup.ObserveN(w.Elapsed()/time.Duration(len(fps)), len(fps))
	return nil
}

// DeleteBatch applies len(keys) Delete operations through the batched core
// delete path, checking ctx between chunks.
func (c *CLAM) DeleteBatch(ctx context.Context, keys [][]byte) error {
	if len(keys) == 0 {
		return nil
	}
	fps := make([]uint64, len(keys))
	for i, k := range keys {
		fps[i] = fingerprint(k, c.fpSeed)
	}
	for lo := 0; lo < len(keys); lo += c.chunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := min(lo+c.chunk, len(keys))
		if err := c.deleteBatchFPs(fps[lo:hi], c.runner); err != nil {
			return err
		}
	}
	return nil
}

// deleteBatchFPs applies one chunk of byte-key deletes under the lock,
// accounting each fingerprint's buffered record dead once.
func (c *CLAM) deleteBatchFPs(fps []uint64, br batchRunner) error {
	if len(fps) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bh.SetParallel(br.width, br.run)
	w := c.clock.StartWatch()
	if c.deadSeen == nil {
		c.deadSeen = make(map[uint64]uint64, len(fps))
	} else {
		clear(c.deadSeen)
	}
	for _, fp := range fps {
		if _, dup := c.deadSeen[fp]; dup {
			continue
		}
		c.deadSeen[fp] = 0
		c.markDeadIfBuffered(fp)
	}
	if err := c.bh.DeleteBatch(fps); err != nil {
		return err
	}
	c.del.ObserveN(w.Elapsed()/time.Duration(len(fps)), len(fps))
	return nil
}

// --- existence probes ---

// ContainsU64 reports whether key is present on the fast path. It is
// GetU64 without returning the value: same probes, same counters.
func (c *CLAM) ContainsU64(key uint64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	res, err := c.bh.Lookup(key)
	c.lookup.Observe(w.Elapsed())
	return res.Found, err
}

// Contains reports whether a record is indexed under key's fingerprint,
// stopping at the index hit: unlike Get, it skips the value-log record
// read that would verify the full key bytes, so a duplicate probe costs
// only the index lookup. The price is the fingerprint-collision false
// positive rate the paper itself accepts at 32–64-bit fingerprints — a
// colliding key, or a key whose record the circular log has lapped, can
// report true. Workloads that need exactness read through Get.
func (c *CLAM) Contains(key []byte) (bool, error) {
	return c.containsFP(fingerprint(key, c.fpSeed))
}

func (c *CLAM) containsFP(fp uint64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.clock.StartWatch()
	res, err := c.bh.Lookup(fp)
	c.lookup.Observe(w.Elapsed())
	if err != nil || !res.Found {
		return false, err
	}
	_, _, ok := res.ValuePointer()
	return ok, nil // an inline (U64-keyed) entry is not a byte-keyed record
}

// ContainsBatch probes len(keys) keys through the batched index pipeline
// and returns per-key existence in input order, with Contains's
// fingerprint-collision tradeoff: no value-log records are read, so a
// chunk costs exactly its overlapped index probes. ctx is checked between
// chunks.
func (c *CLAM) ContainsBatch(ctx context.Context, keys [][]byte) ([]bool, error) {
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return found, nil
	}
	fps := make([]uint64, len(keys))
	for i, k := range keys {
		fps[i] = fingerprint(k, c.fpSeed)
	}
	for lo := 0; lo < len(keys); lo += c.chunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := min(lo+c.chunk, len(keys))
		if err := c.containsBatchFPs(fps[lo:hi], found[lo:hi], c.runner); err != nil {
			return nil, err
		}
	}
	return found, nil
}

// containsBatchFPs resolves one chunk of existence probes under the lock.
// The sharded router calls this with gathered per-shard chunks.
func (c *CLAM) containsBatchFPs(fps []uint64, found []bool, br batchRunner) error {
	if len(fps) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bh.SetParallel(br.width, br.run)
	w := c.clock.StartWatch()
	if cap(c.batchRes) < len(fps) {
		c.batchRes = make([]core.LookupResult, len(fps))
	}
	results := c.batchRes[:len(fps)]
	if err := c.bh.LookupBatch(fps, results); err != nil {
		return err
	}
	for i := range results {
		_, _, ok := results[i].ValuePointer()
		found[i] = ok
	}
	c.lookup.ObserveN(w.Elapsed()/time.Duration(len(fps)), len(fps))
	return nil
}

// --- maintenance and introspection ---

// Flush forces all buffered entries to flash.
func (c *CLAM) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bh.Flush()
}

// Clock returns the virtual clock (for building workloads that pace
// arrivals in virtual time).
func (c *CLAM) Clock() *vclock.Clock { return c.clock }

// Device returns the underlying index storage device.
func (c *CLAM) Device() storage.Device { return c.dev }

// ValueDevice returns the value-log device, or nil when the store has no
// value log.
func (c *CLAM) ValueDevice() storage.Device {
	if c.vlog == nil {
		return nil
	}
	return c.vlog.Device()
}

// Core exposes the underlying BufferHash for the experiment harness.
// Callers must not use it concurrently with CLAM methods.
func (c *CLAM) Core() *core.BufferHash { return c.bh }

// Stats is a point-in-time summary of a Store's behaviour.
type Stats struct {
	Core   core.Stats
	Device storage.Counters
	// ValueDevice counts the value log's own I/O (zero when the store has
	// no value log or the byte API was never used).
	ValueDevice storage.Counters
	// ValueLog counts record appends and log wraps.
	ValueLog storage.ValueLogStats

	InsertLatency metrics.Summary
	LookupLatency metrics.Summary
	DeleteLatency metrics.Summary
	// WriteLatency distributes the per-request virtual service time of the
	// slow-storage write stream (incarnation image flushes and value-log
	// page appends, on kind-opened stores): a serial flush pays one full
	// write per image, while a batched insert's images share command setup
	// and overlap across the device's queue lanes, each request recording
	// its share of the submission. Empty on WithCustomDevice stores.
	WriteLatency metrics.Summary

	Memory core.MemoryFootprint

	// Router describes the sharded batch router's cooperative scheduling
	// activity. Zero on single CLAMs and when WithShardParallelism is off.
	Router RouterStats
}

// RouterStats is the per-shard co-worker occupancy of the batch router
// (see WithShardParallelism): CoopJoins[sh] counts idle workers that
// attached to shard sh as phase-A co-workers, CoopLanes[sh] the phase-A
// lanes they executed on its behalf. Heavily skewed batch streams show the
// hot shards' entries dominating both.
type RouterStats struct {
	CoopJoins []uint64
	CoopLanes []uint64
}

// Stats snapshots the operation counters and latency summaries.
func (c *CLAM) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Core:          c.bh.Stats(),
		Device:        c.dev.Counters(),
		InsertLatency: c.insert.Summarize(),
		LookupLatency: c.lookup.Summarize(),
		DeleteLatency: c.del.Summarize(),
		WriteLatency:  c.write.Summarize(),
		Memory:        c.bh.MemoryFootprint(),
	}
	if c.vlog != nil {
		st.ValueDevice = c.vlog.Device().Counters()
		st.ValueLog = c.vlog.Stats()
	}
	return st
}

// InsertHistogram returns the insert latency histogram (callers must not
// race it against operations; quiesce first).
func (c *CLAM) InsertHistogram() *metrics.Histogram { return &c.insert }

// LookupHistogram returns the lookup latency histogram.
func (c *CLAM) LookupHistogram() *metrics.Histogram { return &c.lookup }

// ResetMetrics clears latency histograms and core counters, typically after
// a warm-up phase.
func (c *CLAM) ResetMetrics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert.Reset()
	c.lookup.Reset()
	c.del.Reset()
	c.write.Reset()
	c.bh.ResetStats()
}

// Elapse advances the virtual clock by d, modeling host idle time (during
// which SSDs perform background garbage collection).
func (c *CLAM) Elapse(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock.Advance(d)
}
