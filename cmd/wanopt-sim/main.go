// Command wanopt-sim runs the §8 WAN optimizer simulation: a synthetic
// object trace with configurable redundancy is replayed through a
// CLAM-backed or Berkeley-DB-backed optimizer over a link of configurable
// speed, reporting effective bandwidth improvement (Figure 9) or per-object
// improvements under load (Figure 10).
//
// Example:
//
//	wanopt-sim -index clam -link 200 -redundancy 0.5 -scenario throughput
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/clam"
	"repro/internal/bdb"
	"repro/internal/ssd"
	"repro/internal/vclock"
	"repro/internal/wanopt"
	"repro/internal/workload"
)

func main() {
	indexFlag := flag.String("index", "clam", "fingerprint index: clam or bdb")
	linkMbps := flag.Int64("link", 100, "link speed in Mbps")
	redundancy := flag.Float64("redundancy", 0.5, "trace redundancy fraction")
	objects := flag.Int("objects", 40, "objects in the trace")
	meanKB := flag.Int("mean-kb", 512, "mean object size in KB")
	flashMB := flag.Int64("flash", 64, "index flash capacity in MB")
	scenario := flag.String("scenario", "throughput", "throughput or load")
	seed := flag.Int64("seed", 97, "trace seed")
	flag.Parse()

	clock := vclock.New()
	var idx wanopt.Index
	switch *indexFlag {
	case "clam":
		// The byte-keyed Store serves full SHA-1 fingerprints directly;
		// the value log holds the chunk cache references.
		c, err := clam.Open(
			clam.WithDevice(clam.TranscendSSD),
			clam.WithFlash(*flashMB<<20),
			clam.WithMemory(*flashMB<<20/8),
			clam.WithClock(clock))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		idx = c
	case "bdb":
		dev := ssd.New(ssd.TranscendTS32(), *flashMB<<20, clock)
		h, err := bdb.NewHashIndex(bdb.Options{
			Device:          dev,
			CapacityEntries: *flashMB << 20 / 32,
			Seed:            1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		idx = wanopt.Truncated{U64: h}
	default:
		fmt.Fprintf(os.Stderr, "unknown index %q\n", *indexFlag)
		os.Exit(2)
	}

	tr := workload.GenerateTrace(workload.TraceConfig{
		Objects:         *objects,
		MeanObjectBytes: *meanKB << 10,
		Redundancy:      *redundancy,
		Seed:            *seed,
	})
	o, err := wanopt.New(wanopt.Config{
		Index:          idx,
		Clock:          clock,
		LinkBitsPerSec: *linkMbps * 1e6,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("index=%s link=%dMbps trace: %d objects, %.1f MB, %.0f%% redundancy\n",
		*indexFlag, *linkMbps, len(tr.Objects),
		float64(tr.TotalBytes)/(1<<20), tr.MeasuredRedundancy()*100)

	switch *scenario {
	case "throughput":
		res, err := wanopt.RunThroughputTest(o, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("raw transfer:       %v\n", res.RawTime)
		fmt.Printf("optimized makespan: %v\n", res.OptTime)
		fmt.Printf("compression:        %.2fx (%d -> %d bytes)\n",
			float64(res.RawBytes)/float64(res.CompressedBytes), res.RawBytes, res.CompressedBytes)
		fmt.Printf("effective bandwidth improvement: %.2fx\n", res.Improvement())
	case "load":
		objs, err := wanopt.RunLoadTest(o, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		worsened := 0
		for _, p := range objs {
			if p.Improvement() < 1 {
				worsened++
			}
		}
		fmt.Printf("mean per-object throughput improvement: %.2fx (%d/%d objects worsened)\n",
			wanopt.MeanImprovement(objs), worsened, len(objs))
		for i, p := range objs {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(objs)-10)
				break
			}
			fmt.Printf("  obj %2d %7.2f MB: %.2fx\n", i, float64(p.Size)/(1<<20), p.Improvement())
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	st := o.Stats()
	fmt.Printf("chunks: %d total, %d matched; index: %d lookups, %d inserts\n",
		st.ChunksTotal, st.ChunksMatched, st.IndexLookups, st.IndexInserts)
}
