// Command clam-figures regenerates every table and figure of the paper's
// evaluation (Figures 3–10, Tables 2–3, the §7.3.1 ablations and the
// §7.2.1/§7.4 headline numbers) on the simulated device substrate.
//
// Usage:
//
//	clam-figures [-scale small|medium|large] [-only fig6,table2,...]
//
// Each report prints the paper's claim next to the measured rows so the
// qualitative comparison (who wins, by what factor, where crossovers fall)
// is direct. EXPERIMENTS.md records a full paper-vs-measured index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "experiment scale: small, medium, or large")
	onlyFlag := flag.String("only", "", "comma-separated report ids (default: all)")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleFlag {
	case "small":
		sc = experiments.Small
	case "medium":
		sc = experiments.Medium
	case "large":
		sc = experiments.Large
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	type driver struct {
		id  string
		run func() (experiments.Report, error)
	}
	drivers := []driver{
		{"fig3", func() (experiments.Report, error) { return experiments.Fig3(), nil }},
		{"fig4", func() (experiments.Report, error) { return experiments.Fig4(), nil }},
		{"tuning", func() (experiments.Report, error) { return experiments.TuningTable(), nil }},
		{"fig5", func() (experiments.Report, error) { return experiments.Fig5(sc) }},
		{"table2", func() (experiments.Report, error) { return experiments.Table2(sc) }},
		{"fig6", func() (experiments.Report, error) { return experiments.Fig6(sc) }},
		{"fig7", func() (experiments.Report, error) { return experiments.Fig7(sc) }},
		{"table3", func() (experiments.Report, error) { return experiments.Table3(sc) }},
		{"fig8", func() (experiments.Report, error) { return experiments.Fig8(sc) }},
		{"fig9", func() (experiments.Report, error) { return experiments.Fig9(sc) }},
		{"fig10", func() (experiments.Report, error) { return experiments.Fig10(sc) }},
		{"ablations", func() (experiments.Report, error) { return experiments.Ablations(sc) }},
		{"headline", func() (experiments.Report, error) { return experiments.Headline(sc) }},
	}

	selected := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}

	fmt.Printf("BufferHash/CLAM evaluation reproduction — scale %q (flash %d MB, DRAM %d MB)\n\n",
		sc.Name, sc.FlashMB, sc.MemMB)
	for _, d := range drivers {
		if len(selected) > 0 && !selected[d.id] {
			continue
		}
		rep, err := d.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", d.id, err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
	}
}
