// Command clam-tune applies the §6.4 parameter-tuning analysis: given a
// flash size, it prints the optimal total buffer allocation B_opt, the
// Bloom filter memory required for a target lookup I/O overhead, and the
// derived CLAM geometry (super tables, incarnations, bits per entry) for a
// given DRAM budget.
//
// Example:
//
//	clam-tune -flash-gb 32 -mem-gb 4 -target-ms 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/clam"
	"repro/internal/costmodel"
)

func main() {
	flashGB := flag.Float64("flash-gb", 32, "flash capacity in GB")
	memGB := flag.Float64("mem-gb", 4, "DRAM budget in GB")
	targetMs := flag.Float64("target-ms", 1, "target expected lookup I/O overhead in ms")
	flag.Parse()

	const s = 32.0 // effective bytes per entry (16 B at 50% utilization)
	flash := int64(*flashGB * (1 << 30))
	mem := int64(*memGB * (1 << 30))
	cr := costmodel.PageReadCost(costmodel.IntelSSDCosts())

	fmt.Printf("flash F = %.1f GB, entry s = %.0f B effective, page read c_r = %v\n\n", *flashGB, s, cr)

	bopt := costmodel.OptimalBufferBytes(flash, s)
	fmt.Printf("B_opt (total buffers)      = %d MB   [= 2F/s bits, §6.4]\n", bopt>>20)

	target := time.Duration(*targetMs * float64(time.Millisecond))
	bloom := costmodel.RequiredBloomBytes(flash, s, cr, target)
	fmt.Printf("Bloom for %.2f ms overhead = %d MB\n", *targetMs, bloom>>20)
	fmt.Printf("memory needed (B_opt + b') = %d MB (budget: %d MB)\n\n", (bopt+bloom)>>20, mem>>20)

	fmt.Println("flush cost decomposition at B' = 128 KB:")
	for _, fc := range []struct {
		name  string
		costs costmodel.FlashCosts
	}{{"flash chip", costmodel.ChipCosts()}, {"intel ssd", costmodel.IntelSSDCosts()}} {
		ic := costmodel.FlushCost(fc.costs, 128<<10)
		fmt.Printf("  %-10s C1=%v C2=%v C3=%v  worst=%v  amortized=%v\n",
			fc.name, ic.C1, ic.C2, ic.C3, ic.Flush(),
			costmodel.AmortizedInsert(fc.costs, 128<<10, s))
	}

	// Show what the clam facade would derive for this budget (scaled down
	// if the host cannot hold it; derivation is pure arithmetic).
	showFlash, showMem := flash, mem
	if flash > 1<<30 {
		// Derivation only: use a scaled geometry with identical ratios.
		scale := float64(1<<30) / float64(flash)
		showFlash = 1 << 30
		showMem = int64(float64(mem) * scale)
		fmt.Printf("\n(derived geometry shown at 1 GB scale with identical ratios)\n")
	}
	st, err := clam.Open(clam.WithDevice(clam.IntelSSD), clam.WithFlash(showFlash), clam.WithMemory(showMem))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := st.(*clam.CLAM).Core().Config()
	fmt.Printf("derived CLAM geometry: %d super tables × %d incarnations × %d KB buffers, %d Bloom bits/entry\n",
		cfg.NumSuperTables(), cfg.NumIncarnations, cfg.BufferBytes>>10, cfg.FilterBitsPerEntry)
}
