// Command clam-bench runs a configurable hash-table workload against a
// CLAM and prints latency distributions, core counters and device
// statistics — the tool behind ad-hoc exploration of the §7.2 design space.
//
// With -shards > 1 the workload runs against a sharded CLAM instead: the
// key space is partitioned across independent shards and the measured
// phase is driven by -workers concurrent goroutines, reporting wall-clock
// throughput next to the merged virtual-time latency distributions.
//
// With -batch > 0 the measured phase issues lookups through the batched
// pipeline (LookupBatch) in batches of that size instead of per-key calls;
// -zipf replaces the uniform key draw with a Zipf(s) popularity
// distribution (hot keys concentrate on few shards, exercising the batch
// router's stealing). With -json FILE the tool instead runs a head-to-head
// lookup comparison — per-key loop vs batched pipeline over the identical
// key stream — and writes the throughput and virtual p50/p99 latency of
// both sides as JSON (the perf-trajectory artifact; CI emits
// BENCH_pr2.json this way).
//
// Examples:
//
//	clam-bench -device ssd-transcend -flash 64 -mem 12 -ops 200000 \
//	           -lsr 0.4 -lookups 0.5 -policy lru
//	clam-bench -shards 8 -workers 8 -flash 64 -mem 12 -ops 400000
//	clam-bench -shards 8 -workers 8 -batch 4096 -zipf 1.2 \
//	           -ops 100000 -json BENCH_pr2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/clam"
	"repro/internal/hashutil"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// table is the operation surface shared by clam.CLAM and clam.Sharded.
type table interface {
	Insert(key, value uint64) error
	Lookup(key uint64) (uint64, bool, error)
	LookupBatch(keys []uint64) ([]uint64, []bool, error)
	ResetMetrics()
	Stats() clam.Stats
}

// phaseResult is one side of the -json serial-vs-batched comparison.
type phaseResult struct {
	Mode        string  `json:"mode"`
	Ops         int     `json:"ops"`
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	HitRate     float64 `json:"hit_rate"`
	VirtualP50  float64 `json:"virtual_p50_ms"`
	VirtualP99  float64 `json:"virtual_p99_ms"`
}

// benchReport is the -json artifact (BENCH_pr2.json in CI).
type benchReport struct {
	Device      string      `json:"device"`
	FlashMB     int64       `json:"flash_mb"`
	MemMB       int64       `json:"mem_mb"`
	Shards      int         `json:"shards"`
	Workers     int         `json:"workers"`
	Batch       int         `json:"batch"`
	Zipf        float64     `json:"zipf"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Serial      phaseResult `json:"serial"`
	Batched     phaseResult `json:"batched"`
	SpeedupWall float64     `json:"speedup_wall"`
}

func main() {
	deviceFlag := flag.String("device", "ssd-intel", "ssd-intel, ssd-transcend, flash-chip, or disk")
	flashMB := flag.Int64("flash", 64, "flash capacity in MB (total across shards)")
	memMB := flag.Int64("mem", 12, "DRAM budget in MB (total across shards)")
	ops := flag.Int("ops", 100000, "measured operations")
	lsr := flag.Float64("lsr", 0.4, "target lookup success ratio")
	lookups := flag.Float64("lookups", 0.5, "lookup fraction of the workload")
	policyFlag := flag.String("policy", "fifo", "fifo, lru, or update")
	seed := flag.Int64("seed", 1, "workload seed")
	shards := flag.Int("shards", 1, "number of shards (power of two); 1 = the paper's single instance")
	workers := flag.Int("workers", 0, "concurrent driver goroutines for the sharded measured phase (default: shards)")
	batch := flag.Int("batch", 0, "lookup batch size for the batched pipeline (0 = per-key lookups)")
	zipfS := flag.Float64("zipf", 0, "Zipf exponent for skewed keys (0 = uniform; try 1.2)")
	jsonPath := flag.String("json", "", "run a serial-vs-batched lookup comparison and write JSON here")
	flag.Parse()

	var kind clam.DeviceKind
	switch *deviceFlag {
	case "ssd-intel":
		kind = clam.IntelSSD
	case "ssd-transcend":
		kind = clam.TranscendSSD
	case "flash-chip":
		kind = clam.FlashChip
	case "disk":
		kind = clam.MagneticDisk
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *deviceFlag)
		os.Exit(2)
	}
	var policy clam.Policy
	switch *policyFlag {
	case "fifo":
		policy = clam.FIFO
	case "lru":
		policy = clam.LRU
	case "update":
		policy = clam.UpdateBased
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyFlag)
		os.Exit(2)
	}

	opts := clam.Options{
		Device:      kind,
		FlashBytes:  *flashMB << 20,
		MemoryBytes: *memMB << 20,
		Policy:      policy,
		Seed:        uint64(*seed),
	}
	var (
		t        table
		sharded  *clam.Sharded
		nWorkers = 1
	)
	if *shards > 1 {
		s, err := clam.OpenSharded(clam.ShardedOptions{Options: opts, Shards: *shards, Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t, sharded = s, s
		nWorkers = s.Workers()
	} else {
		c, err := clam.Open(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t = c
	}

	flashEntries := uint64(*flashMB) << 20 / 32
	keyRange := workload.RangeForLSR(flashEntries, *lsr)
	// The workload draws small integers; hashutil.Mix64 (a 64-bit
	// bijection) turns them into uniform fingerprints, as sharding (and
	// the paper's workloads) assume. The mapping preserves the LSR
	// exactly.
	warm := int(flashEntries * 5 / 4)
	fmt.Printf("device=%s flash=%dMB mem=%dMB policy=%s shards=%d workers=%d | warm-up: %d inserts\n",
		kind, *flashMB, *memMB, policy, max(*shards, 1), nWorkers, warm)
	rng := rand.New(rand.NewSource(*seed))
	if sharded != nil {
		// Warm up through the batch API in flush-friendly chunks.
		const chunk = 8192
		keys := make([]uint64, 0, chunk)
		vals := make([]uint64, 0, chunk)
		for i := 0; i < warm; i++ {
			keys = append(keys, hashutil.Mix64(uint64(rng.Int63n(int64(keyRange)))+1))
			vals = append(vals, uint64(i))
			if len(keys) == chunk || i == warm-1 {
				if err := sharded.InsertBatch(keys, vals); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				keys, vals = keys[:0], vals[:0]
			}
		}
	} else {
		for i := 0; i < warm; i++ {
			if err := t.Insert(hashutil.Mix64(uint64(rng.Int63n(int64(keyRange)))+1), uint64(i)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	t.ResetMetrics()
	// Shard clocks are monotonic and not reset; remember the post-warm-up
	// readings so the reported makespan covers only the measured phase.
	var warmClocks []time.Duration
	if sharded != nil {
		warmClocks = make([]time.Duration, sharded.NumShards())
		for i := range warmClocks {
			warmClocks[i] = sharded.Shard(i).Clock().Now()
		}
	}

	// newDraw returns a per-worker deterministic key generator: uniform
	// over the LSR-derived range, or Zipf-skewed when -zipf is set (hot
	// ranks map to the same fingerprints the warm-up inserted).
	newDraw := func(w int64) func() uint64 {
		if *zipfS > 0 {
			z := workload.NewZipfStream(*seed+w+1, *zipfS, keyRange)
			return z.Next
		}
		rng := rand.New(rand.NewSource(*seed + w + 1))
		return func() uint64 {
			return hashutil.Mix64(uint64(rng.Int63n(int64(keyRange))) + 1)
		}
	}

	if *jsonPath != "" {
		if policy == clam.LRU {
			// LRU lookups re-insert flash hits into the buffer, so the
			// first measured phase would warm the store for the second and
			// bias the comparison.
			fmt.Fprintln(os.Stderr, "-json requires a policy whose lookups don't mutate state (fifo or update)")
			os.Exit(2)
		}
		runComparison(t, *jsonPath, benchReport{
			Device: kind.String(), FlashMB: *flashMB, MemMB: *memMB,
			Shards: max(*shards, 1), Workers: nWorkers, Batch: *batch, Zipf: *zipfS,
		}, *ops, nWorkers, newDraw)
		return
	}

	// Measured phase: nWorkers goroutines, each with an independent
	// deterministic stream over the same key range. With -batch > 0 each
	// worker accumulates its lookups and issues them through the batched
	// pipeline.
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, nWorkers)
	perWorker := *ops / nWorkers
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			draw := newDraw(int64(w))
			rng := rand.New(rand.NewSource(^(*seed) + int64(w)))
			var pending []uint64
			if *batch > 0 {
				pending = make([]uint64, 0, *batch)
			}
			flush := func() error {
				if len(pending) == 0 {
					return nil
				}
				_, _, err := t.LookupBatch(pending)
				pending = pending[:0]
				return err
			}
			for i := 0; i < perWorker; i++ {
				k := draw()
				if rng.Float64() < *lookups {
					if *batch > 0 {
						pending = append(pending, k)
						if len(pending) == *batch {
							if err := flush(); err != nil {
								errCh <- err
								return
							}
						}
						continue
					}
					if _, _, err := t.Lookup(k); err != nil {
						errCh <- err
						return
					}
				} else {
					if err := flush(); err != nil { // keep lookup/insert order
						errCh <- err
						return
					}
					if err := t.Insert(k, uint64(i)); err != nil {
						errCh <- err
						return
					}
				}
			}
			if err := flush(); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	st := t.Stats()
	fmt.Printf("\nwall-clock: %d ops in %v (%.0f ops/s across %d workers)\n",
		perWorker*nWorkers, elapsed.Round(time.Millisecond),
		float64(perWorker*nWorkers)/elapsed.Seconds(), nWorkers)
	fmt.Printf("inserts: %s\n", st.InsertLatency)
	fmt.Printf("lookups: %s (hit rate %.2f)\n", st.LookupLatency, st.Core.HitRate())
	fmt.Printf("core: flushes=%d evictions=%d flash-probes=%d spurious=%d\n",
		st.Core.Flushes, st.Core.Evictions, st.Core.FlashProbes, st.Core.SpuriousProbes)
	fmt.Printf("lookup flash-I/O histogram: ")
	for i, c := range st.Core.LookupIOHist {
		if c > 0 {
			fmt.Printf("[%d io: %d] ", i, c)
		}
	}
	fmt.Println()
	fmt.Printf("device: reads=%d writes=%d erases=%d moved=%d busy=%v\n",
		st.Device.Reads, st.Device.Writes, st.Device.Erases, st.Device.PagesMoved, st.Device.BusyTime)
	fmt.Printf("memory: buffers=%dKB bloom=%dKB total=%dKB\n",
		st.Memory.BufferBytes>>10, st.Memory.BloomBytes>>10, st.Memory.Total()>>10)
	if sharded != nil {
		fmt.Printf("shard balance (inserts+lookups per shard):")
		for i := 0; i < sharded.NumShards(); i++ {
			ss := sharded.Shard(i).Stats()
			fmt.Printf(" %d", ss.Core.Inserts+ss.Core.Lookups)
		}
		var makespan time.Duration
		for i := 0; i < sharded.NumShards(); i++ {
			if d := sharded.Shard(i).Clock().Now() - warmClocks[i]; d > makespan {
				makespan = d
			}
		}
		fmt.Printf("\nvirtual makespan: %v (max shard clock advance, measured phase only)\n",
			makespan.Round(time.Microsecond))
	}
	_ = metrics.Ms
}

// runComparison is the -json mode: the same lookup stream driven twice —
// per-key Lookup calls across the worker goroutines, then the batched
// pipeline — reporting wall throughput and virtual latency percentiles of
// both, plus the wall speedup. Lookups don't mutate FIFO/update stores, so
// both phases see an identical structure.
func runComparison(t table, path string, rep benchReport, ops, nWorkers int, newDraw func(int64) func() uint64) {
	probes := make([]uint64, ops)
	draw := newDraw(0)
	for i := range probes {
		probes[i] = draw()
	}
	if rep.Batch <= 0 {
		rep.Batch = 4096
	}
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)

	measure := func(mode string, run func() error) phaseResult {
		t.ResetMetrics()
		start := time.Now()
		if err := run(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		st := t.Stats()
		return phaseResult{
			Mode:        mode,
			Ops:         ops,
			WallSeconds: wall.Seconds(),
			OpsPerSec:   float64(ops) / wall.Seconds(),
			HitRate:     st.Core.HitRate(),
			VirtualP50:  metrics.Ms(st.LookupLatency.P50),
			VirtualP99:  metrics.Ms(st.LookupLatency.P99),
		}
	}

	rep.Serial = measure("per-key", func() error {
		var wg sync.WaitGroup
		errCh := make(chan error, nWorkers)
		per := (ops + nWorkers - 1) / nWorkers
		for w := 0; w < nWorkers; w++ {
			lo := w * per
			hi := min(lo+per, ops)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(part []uint64) {
				defer wg.Done()
				for _, k := range part {
					if _, _, err := t.Lookup(k); err != nil {
						errCh <- err
						return
					}
				}
			}(probes[lo:hi])
		}
		wg.Wait()
		close(errCh)
		return <-errCh
	})
	rep.Batched = measure("batched", func() error {
		for at := 0; at < ops; at += rep.Batch {
			if _, _, err := t.LookupBatch(probes[at:min(at+rep.Batch, ops)]); err != nil {
				return err
			}
		}
		return nil
	})
	rep.SpeedupWall = rep.Serial.WallSeconds / rep.Batched.WallSeconds

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serial:  %8.0f ops/s  p50 %.4f ms  p99 %.4f ms (virtual)\n",
		rep.Serial.OpsPerSec, rep.Serial.VirtualP50, rep.Serial.VirtualP99)
	fmt.Printf("batched: %8.0f ops/s  p50 %.4f ms  p99 %.4f ms (virtual)\n",
		rep.Batched.OpsPerSec, rep.Batched.VirtualP50, rep.Batched.VirtualP99)
	fmt.Printf("wall speedup: %.2fx (gomaxprocs %d) -> %s\n", rep.SpeedupWall, rep.GOMAXPROCS, path)
}
