// Command clam-bench runs a configurable hash-table workload against a
// CLAM and prints latency distributions, core counters and device
// statistics — the tool behind ad-hoc exploration of the §7.2 design space.
//
// With -shards > 1 the workload runs against a sharded CLAM instead: the
// key space is partitioned across independent shards and the measured
// phase is driven by -workers concurrent goroutines, reporting wall-clock
// throughput next to the merged virtual-time latency distributions.
//
// Examples:
//
//	clam-bench -device ssd-transcend -flash 64 -mem 12 -ops 200000 \
//	           -lsr 0.4 -lookups 0.5 -policy lru
//	clam-bench -shards 8 -workers 8 -flash 64 -mem 12 -ops 400000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/clam"
	"repro/internal/hashutil"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// table is the operation surface shared by clam.CLAM and clam.Sharded.
type table interface {
	Insert(key, value uint64) error
	Lookup(key uint64) (uint64, bool, error)
	ResetMetrics()
	Stats() clam.Stats
}

func main() {
	deviceFlag := flag.String("device", "ssd-intel", "ssd-intel, ssd-transcend, flash-chip, or disk")
	flashMB := flag.Int64("flash", 64, "flash capacity in MB (total across shards)")
	memMB := flag.Int64("mem", 12, "DRAM budget in MB (total across shards)")
	ops := flag.Int("ops", 100000, "measured operations")
	lsr := flag.Float64("lsr", 0.4, "target lookup success ratio")
	lookups := flag.Float64("lookups", 0.5, "lookup fraction of the workload")
	policyFlag := flag.String("policy", "fifo", "fifo, lru, or update")
	seed := flag.Int64("seed", 1, "workload seed")
	shards := flag.Int("shards", 1, "number of shards (power of two); 1 = the paper's single instance")
	workers := flag.Int("workers", 0, "concurrent driver goroutines for the sharded measured phase (default: shards)")
	flag.Parse()

	var kind clam.DeviceKind
	switch *deviceFlag {
	case "ssd-intel":
		kind = clam.IntelSSD
	case "ssd-transcend":
		kind = clam.TranscendSSD
	case "flash-chip":
		kind = clam.FlashChip
	case "disk":
		kind = clam.MagneticDisk
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *deviceFlag)
		os.Exit(2)
	}
	var policy clam.Policy
	switch *policyFlag {
	case "fifo":
		policy = clam.FIFO
	case "lru":
		policy = clam.LRU
	case "update":
		policy = clam.UpdateBased
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyFlag)
		os.Exit(2)
	}

	opts := clam.Options{
		Device:      kind,
		FlashBytes:  *flashMB << 20,
		MemoryBytes: *memMB << 20,
		Policy:      policy,
		Seed:        uint64(*seed),
	}
	var (
		t        table
		sharded  *clam.Sharded
		nWorkers = 1
	)
	if *shards > 1 {
		s, err := clam.OpenSharded(clam.ShardedOptions{Options: opts, Shards: *shards, Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t, sharded = s, s
		nWorkers = s.Workers()
	} else {
		c, err := clam.Open(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t = c
	}

	flashEntries := uint64(*flashMB) << 20 / 32
	keyRange := workload.RangeForLSR(flashEntries, *lsr)
	// The workload draws small integers; hashutil.Mix64 (a 64-bit
	// bijection) turns them into uniform fingerprints, as sharding (and
	// the paper's workloads) assume. The mapping preserves the LSR
	// exactly.
	warm := int(flashEntries * 5 / 4)
	fmt.Printf("device=%s flash=%dMB mem=%dMB policy=%s shards=%d workers=%d | warm-up: %d inserts\n",
		kind, *flashMB, *memMB, policy, max(*shards, 1), nWorkers, warm)
	rng := rand.New(rand.NewSource(*seed))
	if sharded != nil {
		// Warm up through the batch API in flush-friendly chunks.
		const chunk = 8192
		keys := make([]uint64, 0, chunk)
		vals := make([]uint64, 0, chunk)
		for i := 0; i < warm; i++ {
			keys = append(keys, hashutil.Mix64(uint64(rng.Int63n(int64(keyRange)))+1))
			vals = append(vals, uint64(i))
			if len(keys) == chunk || i == warm-1 {
				if err := sharded.InsertBatch(keys, vals); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				keys, vals = keys[:0], vals[:0]
			}
		}
	} else {
		for i := 0; i < warm; i++ {
			if err := t.Insert(hashutil.Mix64(uint64(rng.Int63n(int64(keyRange)))+1), uint64(i)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	t.ResetMetrics()
	// Shard clocks are monotonic and not reset; remember the post-warm-up
	// readings so the reported makespan covers only the measured phase.
	var warmClocks []time.Duration
	if sharded != nil {
		warmClocks = make([]time.Duration, sharded.NumShards())
		for i := range warmClocks {
			warmClocks[i] = sharded.Shard(i).Clock().Now()
		}
	}

	// Measured phase: nWorkers goroutines, each with an independent
	// deterministic stream over the same key range.
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, nWorkers)
	perWorker := *ops / nWorkers
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w) + 1))
			for i := 0; i < perWorker; i++ {
				k := hashutil.Mix64(uint64(rng.Int63n(int64(keyRange))) + 1)
				if rng.Float64() < *lookups {
					if _, _, err := t.Lookup(k); err != nil {
						errCh <- err
						return
					}
				} else if err := t.Insert(k, uint64(i)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	st := t.Stats()
	fmt.Printf("\nwall-clock: %d ops in %v (%.0f ops/s across %d workers)\n",
		perWorker*nWorkers, elapsed.Round(time.Millisecond),
		float64(perWorker*nWorkers)/elapsed.Seconds(), nWorkers)
	fmt.Printf("inserts: %s\n", st.InsertLatency)
	fmt.Printf("lookups: %s (hit rate %.2f)\n", st.LookupLatency, st.Core.HitRate())
	fmt.Printf("core: flushes=%d evictions=%d flash-probes=%d spurious=%d\n",
		st.Core.Flushes, st.Core.Evictions, st.Core.FlashProbes, st.Core.SpuriousProbes)
	fmt.Printf("lookup flash-I/O histogram: ")
	for i, c := range st.Core.LookupIOHist {
		if c > 0 {
			fmt.Printf("[%d io: %d] ", i, c)
		}
	}
	fmt.Println()
	fmt.Printf("device: reads=%d writes=%d erases=%d moved=%d busy=%v\n",
		st.Device.Reads, st.Device.Writes, st.Device.Erases, st.Device.PagesMoved, st.Device.BusyTime)
	fmt.Printf("memory: buffers=%dKB bloom=%dKB total=%dKB\n",
		st.Memory.BufferBytes>>10, st.Memory.BloomBytes>>10, st.Memory.Total()>>10)
	if sharded != nil {
		fmt.Printf("shard balance (inserts+lookups per shard):")
		for i := 0; i < sharded.NumShards(); i++ {
			ss := sharded.Shard(i).Stats()
			fmt.Printf(" %d", ss.Core.Inserts+ss.Core.Lookups)
		}
		var makespan time.Duration
		for i := 0; i < sharded.NumShards(); i++ {
			if d := sharded.Shard(i).Clock().Now() - warmClocks[i]; d > makespan {
				makespan = d
			}
		}
		fmt.Printf("\nvirtual makespan: %v (max shard clock advance, measured phase only)\n",
			makespan.Round(time.Microsecond))
	}
	_ = metrics.Ms
}
