// Command clam-bench runs a configurable hash-table workload against a
// CLAM and prints latency distributions, core counters and device
// statistics — the tool behind ad-hoc exploration of the §7.2 design space.
//
// With -shards > 1 the workload runs against a sharded CLAM instead: the
// key space is partitioned across independent shards and the measured
// phase is driven by -workers concurrent goroutines, reporting wall-clock
// throughput next to the merged virtual-time latency distributions.
//
// With -batch > 0 the measured phase issues lookups through the batched
// pipeline (GetBatchU64 / GetBatch) in batches of that size instead of
// per-key calls; -zipf replaces the uniform key draw with a Zipf(s)
// popularity distribution (hot keys concentrate on few shards, exercising
// the batch router's stealing). With -valsize > 0 the workload runs on the
// byte-keyed API instead of the uint64 fast path: keys are 20-byte
// fingerprints and every key maps to a -valsize-byte value living in the
// page-aligned value log, so lookups pay an index probe plus a (batched:
// overlapped) value-log record read.
//
// With -json FILE the tool instead runs a head-to-head lookup comparison —
// per-key loop vs batched pipeline over the identical key stream — and
// writes the throughput and virtual p50/p99 latency of both sides as JSON
// (the perf-trajectory artifact; CI emits BENCH_pr2.json from the u64
// workload and BENCH_pr3.json from the -valsize value-log workload).
//
// With -skew -json FILE the tool runs the hot-shard Zipf batch scenario
// instead, at WithShardParallelism 1, 2 and 4 on identically warmed
// stores: a pure 1-shard-hot stream (single-shard fast path, spawned
// phase-A lanes) and a mixed stream with a 1/8 uniform spread (grouped
// router path with co-scheduled workers). The wall speedups isolate the
// phase-A lane parallelism (bounded by physical cores — the JSON records
// gomaxprocs and num_cpu); the run aborts unless every stream's core
// counters are byte-identical across parallelism settings.
//
// Examples:
//
//	clam-bench -device ssd-transcend -flash 64 -mem 12 -ops 200000 \
//	           -lsr 0.4 -lookups 0.5 -policy lru
//	clam-bench -shards 8 -workers 8 -flash 64 -mem 12 -ops 400000
//	clam-bench -shards 8 -workers 8 -batch 4096 -zipf 1.2 \
//	           -ops 100000 -json BENCH_pr2.json
//	clam-bench -shards 8 -workers 8 -batch 4096 -valsize 256 \
//	           -ops 60000 -json BENCH_pr3.json
//	clam-bench -skew -shards 8 -workers 4 -batch 4096 -zipf 1.1 \
//	           -ops 60000 -json BENCH_pr5.json
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math/bits"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/clam"
	"repro/internal/hashutil"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// phaseResult is one side of the -json serial-vs-batched comparison.
type phaseResult struct {
	Mode        string  `json:"mode"`
	Ops         int     `json:"ops"`
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	HitRate     float64 `json:"hit_rate"`
	VirtualP50  float64 `json:"virtual_p50_ms"`
	VirtualP99  float64 `json:"virtual_p99_ms"`
}

// insertPhase is one side of the -putbatch serial-vs-batched comparison.
// The write percentiles come from Stats.WriteLatency: per-request device
// write service, with batched submissions amortized over their requests —
// the tail the insert pipeline exists to flatten.
type insertPhase struct {
	Mode            string  `json:"mode"`
	Ops             int     `json:"ops"`
	WallSeconds     float64 `json:"wall_seconds"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	VirtualP50      float64 `json:"virtual_insert_p50_ms"`
	VirtualP99      float64 `json:"virtual_insert_p99_ms"`
	VirtualWriteP50 float64 `json:"virtual_write_p50_ms"`
	VirtualWriteP99 float64 `json:"virtual_write_p99_ms"`
	Flushes         uint64  `json:"flushes"`
}

// insertComparison is one workload's serial-vs-batched insert pair.
type insertComparison struct {
	Serial      insertPhase `json:"serial"`
	Batched     insertPhase `json:"batched"`
	SpeedupWall float64     `json:"speedup_wall"`
}

// insertReport is the -putbatch -json artifact (BENCH_pr4.json in CI):
// the same insert stream driven per-key and through the batched insert
// pipeline, on a uniform and a Zipf-skewed key draw.
type insertReport struct {
	Device     string           `json:"device"`
	FlashMB    int64            `json:"flash_mb"`
	MemMB      int64            `json:"mem_mb"`
	Shards     int              `json:"shards"`
	Workers    int              `json:"workers"`
	Batch      int              `json:"batch"`
	BufferKB   int              `json:"buffer_kb"`
	ZipfS      float64          `json:"zipf_s"`
	ValSize    int              `json:"valsize"`
	Warm       int              `json:"warm_inserts"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Uniform    insertComparison `json:"uniform"`
	Zipf       insertComparison `json:"zipf"`
}

// skewStream is one measured key stream of a -skew phase.
type skewStream struct {
	Ops         int     `json:"ops"`
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	HitRate     float64 `json:"hit_rate"`
	VirtualP50  float64 `json:"virtual_p50_ms"`
	VirtualP99  float64 `json:"virtual_p99_ms"`
}

// skewPhase is one parallelism setting's measurement in the -skew
// hot-shard scenario: the pure 1-shard-hot stream (single-shard fast
// path, spawned phase-A lanes) and the mixed stream with a stray spread
// (grouped router path — idle workers co-schedule onto the hot shard, the
// coop counters record their occupancy).
type skewPhase struct {
	Parallelism int        `json:"parallelism"`
	Hot         skewStream `json:"hot"`
	Mixed       skewStream `json:"mixed"`
	CoopJoins   uint64     `json:"coop_joins"`
	CoopLanes   uint64     `json:"coop_lanes"`
}

// skewReport is the -skew -json artifact (BENCH_pr5.json in CI): the
// hot-shard Zipf batch lookup scenario at shard parallelism 1, 2 and 4.
// The phase-A lanes are the parallel component, so the wall speedups are
// bounded by physical cores (gomaxprocs/num_cpu record the budget); the
// core counters must be identical across parallelism settings —
// cooperation changes wall-clock time only.
type skewReport struct {
	Device           string      `json:"device"`
	FlashMB          int64       `json:"flash_mb"`
	MemMB            int64       `json:"mem_mb"`
	Shards           int         `json:"shards"`
	Workers          int         `json:"workers"`
	Batch            int         `json:"batch"`
	ZipfS            float64     `json:"zipf_s"`
	Warm             int         `json:"warm_inserts"`
	GOMAXPROCS       int         `json:"gomaxprocs"`
	NumCPU           int         `json:"num_cpu"`
	Phases           []skewPhase `json:"phases"`
	SpeedupPar2      float64     `json:"hot_speedup_par2_vs_par1"`
	SpeedupPar4      float64     `json:"hot_speedup_par4_vs_par1"`
	MixedSpeedupPar2 float64     `json:"mixed_speedup_par2_vs_par1"`
	MixedSpeedupPar4 float64     `json:"mixed_speedup_par4_vs_par1"`
	CountersEqual    bool        `json:"counters_equal_across_parallelism"`
}

// benchReport is the -json artifact (BENCH_pr2.json / BENCH_pr3.json in CI).
type benchReport struct {
	Device      string      `json:"device"`
	FlashMB     int64       `json:"flash_mb"`
	MemMB       int64       `json:"mem_mb"`
	Shards      int         `json:"shards"`
	Workers     int         `json:"workers"`
	Batch       int         `json:"batch"`
	Zipf        float64     `json:"zipf"`
	ValSize     int         `json:"valsize"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Serial      phaseResult `json:"serial"`
	Batched     phaseResult `json:"batched"`
	SpeedupWall float64     `json:"speedup_wall"`
}

// byteKey expands a 64-bit draw into the 20-byte fingerprint the byte
// workload keys on (deterministic, collision-free per draw).
func byteKey(k uint64) []byte {
	fp := make([]byte, 20)
	binary.LittleEndian.PutUint64(fp[0:8], k)
	binary.LittleEndian.PutUint64(fp[8:16], hashutil.Mix64(k))
	binary.LittleEndian.PutUint32(fp[16:20], uint32(hashutil.Mix64(k^0xbeef)))
	return fp
}

// byteVal builds the valsize-byte value stored under a key.
func byteVal(k uint64, n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte(k >> (uint(i) % 8 * 8))
	}
	return v
}

func main() {
	deviceFlag := flag.String("device", "ssd-intel", "ssd-intel, ssd-transcend, flash-chip, or disk")
	flashMB := flag.Int64("flash", 64, "flash capacity in MB (total across shards)")
	memMB := flag.Int64("mem", 12, "DRAM budget in MB (total across shards)")
	ops := flag.Int("ops", 100000, "measured operations")
	lsr := flag.Float64("lsr", 0.4, "target lookup success ratio")
	lookups := flag.Float64("lookups", 0.5, "lookup fraction of the workload")
	policyFlag := flag.String("policy", "fifo", "fifo, lru, or update")
	seed := flag.Int64("seed", 1, "workload seed")
	shards := flag.Int("shards", 1, "number of shards (power of two); 1 = the paper's single instance")
	workers := flag.Int("workers", 0, "concurrent driver goroutines for the sharded measured phase (default: shards)")
	batch := flag.Int("batch", 0, "lookup batch size for the batched pipeline (0 = per-key lookups)")
	zipfS := flag.Float64("zipf", 0, "Zipf exponent for skewed keys (0 = uniform; try 1.2)")
	valsize := flag.Int("valsize", 0, "byte-API value size (0 = uint64 fast path)")
	bufferKB := flag.Int("bufferkb", 0, "override the per-super-table buffer size in KB (0 = derived default)")
	fbe := flag.Int("fbe", 0, "override the Bloom filter bits per entry (0 = derived from the memory budget; 16 = the paper's candidate configuration)")
	jsonPath := flag.String("json", "", "run a serial-vs-batched lookup comparison and write JSON here")
	putbatch := flag.Bool("putbatch", false, "with -json: compare serial vs batched INSERTS (uniform + Zipf) instead of lookups")
	skew := flag.Bool("skew", false, "with -json: run the 1-shard-hot Zipf batch scenario at shard parallelism 1/2/4 instead")
	flag.Parse()

	var kind clam.DeviceKind
	switch *deviceFlag {
	case "ssd-intel":
		kind = clam.IntelSSD
	case "ssd-transcend":
		kind = clam.TranscendSSD
	case "flash-chip":
		kind = clam.FlashChip
	case "disk":
		kind = clam.MagneticDisk
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *deviceFlag)
		os.Exit(2)
	}
	var policy clam.Policy
	switch *policyFlag {
	case "fifo":
		policy = clam.FIFO
	case "lru":
		policy = clam.LRU
	case "update":
		policy = clam.UpdateBased
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyFlag)
		os.Exit(2)
	}

	opts := []clam.Option{
		clam.WithDevice(kind),
		clam.WithFlash(*flashMB << 20),
		clam.WithMemory(*memMB << 20),
		clam.WithPolicy(policy),
		clam.WithSeed(uint64(*seed)),
	}
	if *bufferKB > 0 {
		opts = append(opts, clam.WithBufferKB(*bufferKB))
	}
	if *fbe > 0 {
		opts = append(opts, clam.WithFilterBitsPerEntry(*fbe))
	}
	nWorkers := 1
	if *shards > 1 {
		opts = append(opts, clam.WithShards(*shards))
		if *workers > 0 {
			opts = append(opts, clam.WithWorkers(*workers))
		}
	}
	st, err := clam.Open(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sharded, _ := st.(*clam.Sharded)
	if sharded != nil {
		nWorkers = sharded.Workers()
	}

	ctx := context.Background()
	flashEntries := uint64(*flashMB) << 20 / 32
	keyRange := workload.RangeForLSR(flashEntries, *lsr)
	if *skew && *jsonPath == "" {
		fmt.Fprintln(os.Stderr, "-skew requires -json FILE (it is a comparison artifact)")
		os.Exit(2)
	}
	if *jsonPath != "" && *skew {
		if *shards < 2 {
			fmt.Fprintln(os.Stderr, "-skew needs -shards > 1 (the scenario is one hot shard of many)")
			os.Exit(2)
		}
		zs := *zipfS
		if zs <= 1 {
			zs = 1.1
		}
		runSkewComparison(opts, *jsonPath, skewReport{
			Device: kind.String(), FlashMB: *flashMB, MemMB: *memMB,
			Shards: *shards, Workers: nWorkers, Batch: *batch, ZipfS: zs,
		}, *ops, *seed, flashEntries, *lsr)
		return
	}
	if *jsonPath != "" && *putbatch {
		// Insert comparison: opens its own fresh store per phase, since
		// inserts mutate state and both sides must start identical. The
		// byte workload (-valsize) warms less: its records are much larger
		// and the index only needs full buffers to reach the flushing
		// regime.
		warm := int(flashEntries)
		if *valsize > 0 {
			warm = int(flashEntries / 4)
		}
		runInsertComparison(opts, *jsonPath, insertReport{
			Device: kind.String(), FlashMB: *flashMB, MemMB: *memMB,
			Shards: max(*shards, 1), Workers: nWorkers, Batch: *batch, BufferKB: *bufferKB,
			ZipfS: *zipfS, ValSize: *valsize, Warm: warm,
		}, *ops, *seed, keyRange)
		return
	}
	// The workload draws small integers; hashutil.Mix64 (a 64-bit
	// bijection) turns them into uniform fingerprints, as sharding (and
	// the paper's workloads) assume. The mapping preserves the LSR
	// exactly. The byte workload expands the same draws to 20-byte keys.
	warm := int(flashEntries * 5 / 4)
	if *valsize > 0 {
		// The byte workload also fills the value log; keep the warm set at
		// the index capacity (the log wraps FIFO on its own schedule).
		warm = int(flashEntries)
	}
	fmt.Printf("device=%s flash=%dMB mem=%dMB policy=%s shards=%d workers=%d valsize=%d | warm-up: %d inserts\n",
		kind, *flashMB, *memMB, policy, max(*shards, 1), nWorkers, *valsize, warm)
	rng := rand.New(rand.NewSource(*seed))
	// Warm up through the batch APIs in flush-friendly chunks.
	{
		const chunk = 8192
		if *valsize > 0 {
			keys := make([][]byte, 0, chunk)
			vals := make([][]byte, 0, chunk)
			for i := 0; i < warm; i++ {
				k := hashutil.Mix64(uint64(rng.Int63n(int64(keyRange))) + 1)
				keys = append(keys, byteKey(k))
				vals = append(vals, byteVal(k, *valsize))
				if len(keys) == chunk || i == warm-1 {
					if err := st.PutBatch(ctx, keys, vals); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					keys, vals = keys[:0], vals[:0]
				}
			}
		} else {
			keys := make([]uint64, 0, chunk)
			vals := make([]uint64, 0, chunk)
			for i := 0; i < warm; i++ {
				keys = append(keys, hashutil.Mix64(uint64(rng.Int63n(int64(keyRange)))+1))
				vals = append(vals, uint64(i))
				if len(keys) == chunk || i == warm-1 {
					if err := st.PutBatchU64(ctx, keys, vals); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					keys, vals = keys[:0], vals[:0]
				}
			}
		}
	}
	st.ResetMetrics()
	// Shard clocks are monotonic and not reset; remember the post-warm-up
	// readings so the reported makespan covers only the measured phase.
	var warmClocks []time.Duration
	if sharded != nil {
		warmClocks = make([]time.Duration, sharded.NumShards())
		for i := range warmClocks {
			warmClocks[i] = sharded.Shard(i).Clock().Now()
		}
	}

	// newDraw returns a per-worker deterministic key generator: uniform
	// over the LSR-derived range, or Zipf-skewed when -zipf is set (hot
	// ranks map to the same fingerprints the warm-up inserted).
	newDraw := func(w int64) func() uint64 {
		if *zipfS > 0 {
			z := workload.NewZipfStream(*seed+w+1, *zipfS, keyRange)
			return z.Next
		}
		rng := rand.New(rand.NewSource(*seed + w + 1))
		return func() uint64 {
			return hashutil.Mix64(uint64(rng.Int63n(int64(keyRange))) + 1)
		}
	}

	if *jsonPath != "" {
		if policy == clam.LRU {
			// LRU lookups re-insert flash hits into the buffer, so the
			// first measured phase would warm the store for the second and
			// bias the comparison.
			fmt.Fprintln(os.Stderr, "-json requires a policy whose lookups don't mutate state (fifo or update)")
			os.Exit(2)
		}
		runComparison(st, *jsonPath, benchReport{
			Device: kind.String(), FlashMB: *flashMB, MemMB: *memMB,
			Shards: max(*shards, 1), Workers: nWorkers, Batch: *batch, Zipf: *zipfS,
			ValSize: *valsize,
		}, *ops, nWorkers, newDraw)
		return
	}

	// Measured phase: nWorkers goroutines, each with an independent
	// deterministic stream over the same key range. With -batch > 0 each
	// worker accumulates its lookups and issues them through the batched
	// pipeline.
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, nWorkers)
	perWorker := *ops / nWorkers
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			draw := newDraw(int64(w))
			rng := rand.New(rand.NewSource(^(*seed) + int64(w)))
			var pendU []uint64
			var pendB [][]byte
			if *batch > 0 {
				pendU = make([]uint64, 0, *batch)
				pendB = make([][]byte, 0, *batch)
			}
			flush := func() error {
				var err error
				if len(pendU) > 0 {
					_, _, err = st.GetBatchU64(ctx, pendU)
					pendU = pendU[:0]
				} else if len(pendB) > 0 {
					_, _, err = st.GetBatch(ctx, pendB)
					pendB = pendB[:0]
				}
				return err
			}
			lookupOne := func(k uint64) error {
				if *valsize > 0 {
					_, _, err := st.Get(byteKey(k))
					return err
				}
				_, _, err := st.GetU64(k)
				return err
			}
			insertOne := func(k uint64, i int) error {
				if *valsize > 0 {
					return st.Put(byteKey(k), byteVal(k, *valsize))
				}
				return st.PutU64(k, uint64(i))
			}
			for i := 0; i < perWorker; i++ {
				k := draw()
				if rng.Float64() < *lookups {
					if *batch > 0 {
						if *valsize > 0 {
							pendB = append(pendB, byteKey(k))
						} else {
							pendU = append(pendU, k)
						}
						if len(pendU) == *batch || len(pendB) == *batch {
							if err := flush(); err != nil {
								errCh <- err
								return
							}
						}
						continue
					}
					if err := lookupOne(k); err != nil {
						errCh <- err
						return
					}
				} else {
					if err := flush(); err != nil { // keep lookup/insert order
						errCh <- err
						return
					}
					if err := insertOne(k, i); err != nil {
						errCh <- err
						return
					}
				}
			}
			if err := flush(); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	stats := st.Stats()
	fmt.Printf("\nwall-clock: %d ops in %v (%.0f ops/s across %d workers)\n",
		perWorker*nWorkers, elapsed.Round(time.Millisecond),
		float64(perWorker*nWorkers)/elapsed.Seconds(), nWorkers)
	fmt.Printf("inserts: %s\n", stats.InsertLatency)
	fmt.Printf("lookups: %s (hit rate %.2f)\n", stats.LookupLatency, stats.Core.HitRate())
	fmt.Printf("core: flushes=%d evictions=%d flash-probes=%d spurious=%d\n",
		stats.Core.Flushes, stats.Core.Evictions, stats.Core.FlashProbes, stats.Core.SpuriousProbes)
	fmt.Printf("lookup flash-I/O histogram: ")
	for i, c := range stats.Core.LookupIOHist {
		if c > 0 {
			fmt.Printf("[%d io: %d] ", i, c)
		}
	}
	fmt.Println()
	fmt.Printf("device: reads=%d writes=%d erases=%d moved=%d busy=%v\n",
		stats.Device.Reads, stats.Device.Writes, stats.Device.Erases, stats.Device.PagesMoved, stats.Device.BusyTime)
	if *valsize > 0 {
		fmt.Printf("value log: records=%d appended=%dKB wraps=%d | device reads=%d writes=%d busy=%v\n",
			stats.ValueLog.Records, stats.ValueLog.AppendedBytes>>10, stats.ValueLog.Wraps,
			stats.ValueDevice.Reads, stats.ValueDevice.Writes, stats.ValueDevice.BusyTime)
	}
	fmt.Printf("memory: buffers=%dKB bloom=%dKB total=%dKB\n",
		stats.Memory.BufferBytes>>10, stats.Memory.BloomBytes>>10, stats.Memory.Total()>>10)
	if sharded != nil {
		fmt.Printf("shard balance (inserts+lookups per shard):")
		for i := 0; i < sharded.NumShards(); i++ {
			ss := sharded.Shard(i).Stats()
			fmt.Printf(" %d", ss.Core.Inserts+ss.Core.Lookups)
		}
		var makespan time.Duration
		for i := 0; i < sharded.NumShards(); i++ {
			if d := sharded.Shard(i).Clock().Now() - warmClocks[i]; d > makespan {
				makespan = d
			}
		}
		fmt.Printf("\nvirtual makespan: %v (max shard clock advance, measured phase only)\n",
			makespan.Round(time.Microsecond))
	}
	_ = metrics.Ms
}

// runComparison is the -json mode: the same lookup stream driven twice —
// per-key calls across the worker goroutines, then the batched pipeline —
// reporting wall throughput and virtual latency percentiles of both, plus
// the wall speedup. Lookups don't mutate FIFO/update stores, so both
// phases see an identical structure. With a -valsize workload the batched
// side additionally overlaps the value-log record reads (the second I/O
// stream); the per-key side pays them serially.
func runComparison(st clam.Store, path string, rep benchReport, ops, nWorkers int, newDraw func(int64) func() uint64) {
	draws := make([]uint64, ops)
	draw := newDraw(0)
	for i := range draws {
		draws[i] = draw()
	}
	var bprobes [][]byte
	if rep.ValSize > 0 {
		bprobes = make([][]byte, ops)
		for i, k := range draws {
			bprobes[i] = byteKey(k)
		}
	}
	if rep.Batch <= 0 {
		rep.Batch = 4096
	}
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	ctx := context.Background()

	measure := func(mode string, run func() error) phaseResult {
		st.ResetMetrics()
		start := time.Now()
		if err := run(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		s := st.Stats()
		return phaseResult{
			Mode:        mode,
			Ops:         ops,
			WallSeconds: wall.Seconds(),
			OpsPerSec:   float64(ops) / wall.Seconds(),
			HitRate:     s.Core.HitRate(),
			VirtualP50:  metrics.Ms(s.LookupLatency.P50),
			VirtualP99:  metrics.Ms(s.LookupLatency.P99),
		}
	}

	rep.Serial = measure("per-key", func() error {
		var wg sync.WaitGroup
		errCh := make(chan error, nWorkers)
		per := (ops + nWorkers - 1) / nWorkers
		for w := 0; w < nWorkers; w++ {
			lo := w * per
			hi := min(lo+per, ops)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					var err error
					if rep.ValSize > 0 {
						_, _, err = st.Get(bprobes[i])
					} else {
						_, _, err = st.GetU64(draws[i])
					}
					if err != nil {
						errCh <- err
						return
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		close(errCh)
		return <-errCh
	})
	rep.Batched = measure("batched", func() error {
		for at := 0; at < ops; at += rep.Batch {
			hi := min(at+rep.Batch, ops)
			var err error
			if rep.ValSize > 0 {
				_, _, err = st.GetBatch(ctx, bprobes[at:hi])
			} else {
				_, _, err = st.GetBatchU64(ctx, draws[at:hi])
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	rep.SpeedupWall = rep.Serial.WallSeconds / rep.Batched.WallSeconds

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serial:  %8.0f ops/s  p50 %.4f ms  p99 %.4f ms (virtual)\n",
		rep.Serial.OpsPerSec, rep.Serial.VirtualP50, rep.Serial.VirtualP99)
	fmt.Printf("batched: %8.0f ops/s  p50 %.4f ms  p99 %.4f ms (virtual)\n",
		rep.Batched.OpsPerSec, rep.Batched.VirtualP50, rep.Batched.VirtualP99)
	fmt.Printf("wall speedup: %.2fx (gomaxprocs %d, valsize %d) -> %s\n",
		rep.SpeedupWall, rep.GOMAXPROCS, rep.ValSize, path)
}

// runSkewComparison is the -skew -json mode (BENCH_pr5.json in CI): the
// skew regimes the cooperative batch machinery exists for, driven through
// the batched lookup pipeline at WithShardParallelism 1, 2 and 4 against
// freshly opened, identically warmed stores. Two streams per setting:
//
//   - hot: every key routes to shard 0 with Zipf popularity — the
//     single-shard fast path (no grouping) with spawned phase-A lanes;
//   - mixed: 7/8 of keys hot, 1/8 spread uniformly — the grouped router
//     path, where workers that drain the cold shards co-schedule onto the
//     hot shard's phase-A lanes (coop_joins/coop_lanes record occupancy,
//     though on few cores helpers rarely win a lane).
//
// The parallel component is phase A of the core pipeline (memory
// resolution on lanes), so the wall speedups are bounded by physical
// cores; the core counters of every stream must be byte-identical across
// parallelism settings — cooperation is a wall-clock optimization only,
// and the run aborts if they diverge.
func runSkewComparison(opts []clam.Option, path string, rep skewReport, ops int, seed int64, flashEntries uint64, lsr float64) {
	if rep.Batch <= 0 {
		rep.Batch = 4096
	}
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	ctx := context.Background()

	// Hot-shard keys: clear the top shard-index bits so every key routes
	// to shard 0 while ranks keep their Zipf popularity.
	shardBits := bits.Len(uint(rep.Shards)) - 1
	mask := ^uint64(0) >> shardBits
	hotRange := workload.RangeForLSR(flashEntries/uint64(rep.Shards), lsr)
	hotKey := func(rank uint64) uint64 { return hashutil.Mix64(rank+1) & mask }

	// The hot shard warms past eviction onset; the other shards stay cold
	// (the scenario is pathological skew, not a balanced fleet).
	warm := int(flashEntries / uint64(rep.Shards) * 5 / 4)
	rep.Warm = warm

	hotDraws := make([]uint64, ops)
	z := rand.NewZipf(rand.New(rand.NewSource(seed+5)), rep.ZipfS, 1, hotRange-1)
	for i := range hotDraws {
		hotDraws[i] = hotKey(z.Uint64())
	}
	mixedDraws := make([]uint64, ops)
	mrng := rand.New(rand.NewSource(seed + 6))
	mz := rand.NewZipf(rand.New(rand.NewSource(seed+7)), rep.ZipfS, 1, hotRange-1)
	for i := range mixedDraws {
		if i%8 == 7 {
			mixedDraws[i] = mrng.Uint64() // stray: uniform across all shards
		} else {
			mixedDraws[i] = hotKey(mz.Uint64())
		}
	}

	// Chunk at a quarter batch: big enough that phase-A lanes amortize
	// their handoff (hundreds of keys per lane), small enough that the
	// mixed stream's hot shard holds several pending chunks — the depth
	// signal idle workers need before they attach as co-workers.
	opts = append(opts[:len(opts):len(opts)], clam.WithBatchChunk(max(256, rep.Batch/8)))

	// measure runs one stream best-of-three: FIFO lookups don't mutate
	// state, and the counters of every (deterministic) pass are identical,
	// so the repeats only de-noise the wall clock.
	measure := func(st clam.Store, draws []uint64) (skewStream, clam.Stats) {
		var wall time.Duration
		for pass := 0; pass < 3; pass++ {
			st.ResetMetrics()
			start := time.Now()
			for at := 0; at < len(draws); at += rep.Batch {
				hi := min(at+rep.Batch, len(draws))
				if _, _, err := st.GetBatchU64(ctx, draws[at:hi]); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			if d := time.Since(start); pass == 0 || d < wall {
				wall = d
			}
		}
		s := st.Stats()
		return skewStream{
			Ops:         len(draws),
			WallSeconds: wall.Seconds(),
			OpsPerSec:   float64(len(draws)) / wall.Seconds(),
			HitRate:     s.Core.HitRate(),
			VirtualP50:  metrics.Ms(s.LookupLatency.P50),
			VirtualP99:  metrics.Ms(s.LookupLatency.P99),
		}, s
	}

	var hotCores, mixedCores []clam.Stats
	for _, par := range []int{1, 2, 4} {
		po := append(opts[:len(opts):len(opts)], clam.WithShardParallelism(par))
		st, err := clam.Open(po...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Identical deterministic warm-up per phase.
		rng := rand.New(rand.NewSource(seed))
		const chunk = 8192
		keys := make([]uint64, 0, chunk)
		vals := make([]uint64, 0, chunk)
		for i := 0; i < warm; i++ {
			keys = append(keys, hotKey(uint64(rng.Int63n(int64(hotRange)))))
			vals = append(vals, uint64(i))
			if len(keys) == chunk || i == warm-1 {
				if err := st.PutBatchU64(ctx, keys, vals); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				keys, vals = keys[:0], vals[:0]
			}
		}
		hot, hs := measure(st, hotDraws)
		mixed, ms := measure(st, mixedDraws)
		hotCores, mixedCores = append(hotCores, hs), append(mixedCores, ms)
		var joins, lanes uint64
		for i := range ms.Router.CoopJoins {
			joins += ms.Router.CoopJoins[i]
			lanes += ms.Router.CoopLanes[i]
		}
		rep.Phases = append(rep.Phases, skewPhase{
			Parallelism: par,
			Hot:         hot,
			Mixed:       mixed,
			CoopJoins:   joins,
			CoopLanes:   lanes,
		})
		fmt.Printf("par=%d: hot %8.0f ops/s  mixed %8.0f ops/s (wall)  hot p99 %.4f ms (virtual)  coop joins=%d lanes=%d\n",
			par, hot.OpsPerSec, mixed.OpsPerSec, hot.VirtualP99, joins, lanes)
	}
	rep.SpeedupPar2 = rep.Phases[1].Hot.OpsPerSec / rep.Phases[0].Hot.OpsPerSec
	rep.SpeedupPar4 = rep.Phases[2].Hot.OpsPerSec / rep.Phases[0].Hot.OpsPerSec
	rep.MixedSpeedupPar2 = rep.Phases[1].Mixed.OpsPerSec / rep.Phases[0].Mixed.OpsPerSec
	rep.MixedSpeedupPar4 = rep.Phases[2].Mixed.OpsPerSec / rep.Phases[0].Mixed.OpsPerSec
	rep.CountersEqual = true
	for _, cs := range [][]clam.Stats{hotCores, mixedCores} {
		if cs[0].Core != cs[1].Core || cs[1].Core != cs[2].Core {
			rep.CountersEqual = false
			fmt.Fprintf(os.Stderr, "core counters diverge across parallelism settings:\npar1 %+v\npar2 %+v\npar4 %+v\n",
				cs[0].Core, cs[1].Core, cs[2].Core)
		}
	}
	if !rep.CountersEqual {
		os.Exit(1)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("hot-shard speedup: hot par2 %.2fx par4 %.2fx, mixed par2 %.2fx par4 %.2fx (gomaxprocs %d, %d cpus, counters equal) -> %s\n",
		rep.SpeedupPar2, rep.SpeedupPar4, rep.MixedSpeedupPar2, rep.MixedSpeedupPar4,
		rep.GOMAXPROCS, rep.NumCPU, path)
}

// runInsertComparison is the -putbatch -json mode: the same insert stream
// driven twice against freshly opened, identically warmed stores — per-key
// PutU64 across the worker goroutines, then the batched insert pipeline —
// on a uniform and a Zipf-skewed key draw. The pipeline's promise is that
// only time changes, so the comparison reports wall throughput, virtual
// insert p50/p99 (batched chunks amortize flush writes over their keys and
// overlap them in the device's queue lanes) and the flush counts, which
// must match between the two sides of each workload.
func runInsertComparison(opts []clam.Option, path string, rep insertReport, ops int, seed int64, keyRange uint64) {
	if rep.Batch <= 0 {
		rep.Batch = 4096
	}
	if rep.ZipfS <= 0 {
		rep.ZipfS = 1.2
	}
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	ctx := context.Background()
	// One core insert-batch call per shard per batch: the router chunk is
	// what bounds how many flush writes share one overlapped submission, so
	// splitting a batch into small chunks would hide the write overlap the
	// comparison is measuring.
	opts = append(opts[:len(opts):len(opts)], clam.WithBatchChunk(rep.Batch))

	openWarm := func() (clam.Store, int) {
		st, err := clam.Open(opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		nWorkers := 1
		if sh, ok := st.(*clam.Sharded); ok {
			nWorkers = sh.Workers()
		}
		// Identical deterministic warm-up per phase: fill the buffers and a
		// few incarnations so measured inserts run in the steady flushing
		// regime (and, on the byte workload, a value log past its first
		// page flushes).
		rng := rand.New(rand.NewSource(seed))
		const chunk = 8192
		if rep.ValSize > 0 {
			keys := make([][]byte, 0, chunk)
			vals := make([][]byte, 0, chunk)
			for i := 0; i < rep.Warm; i++ {
				k := hashutil.Mix64(uint64(rng.Int63n(int64(keyRange))) + 1)
				keys = append(keys, byteKey(k))
				vals = append(vals, byteVal(k, rep.ValSize))
				if len(keys) == chunk || i == rep.Warm-1 {
					if err := st.PutBatch(ctx, keys, vals); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					keys, vals = keys[:0], vals[:0]
				}
			}
		} else {
			keys := make([]uint64, 0, chunk)
			vals := make([]uint64, 0, chunk)
			for i := 0; i < rep.Warm; i++ {
				keys = append(keys, hashutil.Mix64(uint64(rng.Int63n(int64(keyRange)))+1))
				vals = append(vals, uint64(i))
				if len(keys) == chunk || i == rep.Warm-1 {
					if err := st.PutBatchU64(ctx, keys, vals); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					keys, vals = keys[:0], vals[:0]
				}
			}
		}
		st.ResetMetrics()
		return st, nWorkers
	}

	vals := make([]uint64, ops)
	for i := range vals {
		vals[i] = uint64(i)
	}
	measure := func(mode string, draws []uint64, batched bool) insertPhase {
		// The byte workload expands the same draws to 20-byte fingerprints
		// and valsize-byte values; each serial Put pays the value-log append
		// (including its page flushes) plus the index insert, while the
		// batched side groups the chunk's records into one multi-record
		// append and one core insert batch.
		var bkeys, bvals [][]byte
		if rep.ValSize > 0 {
			bkeys = make([][]byte, len(draws))
			bvals = make([][]byte, len(draws))
			for i, k := range draws {
				bkeys[i] = byteKey(k)
				bvals[i] = byteVal(k, rep.ValSize)
			}
		}
		st, nWorkers := openWarm()
		start := time.Now()
		if batched {
			for at := 0; at < len(draws); at += rep.Batch {
				hi := min(at+rep.Batch, len(draws))
				var err error
				if rep.ValSize > 0 {
					err = st.PutBatch(ctx, bkeys[at:hi], bvals[at:hi])
				} else {
					err = st.PutBatchU64(ctx, draws[at:hi], vals[at:hi])
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		} else {
			var wg sync.WaitGroup
			errCh := make(chan error, nWorkers)
			per := (len(draws) + nWorkers - 1) / nWorkers
			for w := 0; w < nWorkers; w++ {
				lo := w * per
				hi := min(lo+per, len(draws))
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						var err error
						if rep.ValSize > 0 {
							err = st.Put(bkeys[i], bvals[i])
						} else {
							err = st.PutU64(draws[i], vals[i])
						}
						if err != nil {
							errCh <- err
							return
						}
					}
				}(lo, hi)
			}
			wg.Wait()
			close(errCh)
			if err := <-errCh; err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		wall := time.Since(start)
		s := st.Stats()
		return insertPhase{
			Mode:            mode,
			Ops:             len(draws),
			WallSeconds:     wall.Seconds(),
			OpsPerSec:       float64(len(draws)) / wall.Seconds(),
			VirtualP50:      metrics.Ms(s.InsertLatency.P50),
			VirtualP99:      metrics.Ms(s.InsertLatency.P99),
			VirtualWriteP50: metrics.Ms(s.WriteLatency.P50),
			VirtualWriteP99: metrics.Ms(s.WriteLatency.P99),
			Flushes:         s.Core.Flushes,
		}
	}
	runWorkload := func(name string, draws []uint64) insertComparison {
		c := insertComparison{
			Serial:  measure("per-key", draws, false),
			Batched: measure("batched", draws, true),
		}
		c.SpeedupWall = c.Serial.WallSeconds / c.Batched.WallSeconds
		fmt.Printf("%-7s serial:  %8.0f inserts/s  insert p99 %.4f ms  write p99 %.4f ms (virtual, %d flushes)\n",
			name, c.Serial.OpsPerSec, c.Serial.VirtualP99, c.Serial.VirtualWriteP99, c.Serial.Flushes)
		fmt.Printf("%-7s batched: %8.0f inserts/s  insert p99 %.4f ms  write p99 %.4f ms (virtual, %d flushes)  %.2fx wall\n",
			name, c.Batched.OpsPerSec, c.Batched.VirtualP99, c.Batched.VirtualWriteP99, c.Batched.Flushes, c.SpeedupWall)
		return c
	}

	uniform := make([]uint64, ops)
	rng := rand.New(rand.NewSource(seed + 101))
	for i := range uniform {
		uniform[i] = hashutil.Mix64(uint64(rng.Int63n(int64(keyRange))) + 1)
	}
	rep.Uniform = runWorkload("uniform", uniform)
	zipf := make([]uint64, ops)
	z := workload.NewZipfStream(seed+202, rep.ZipfS, keyRange)
	for i := range zipf {
		zipf[i] = z.Next()
	}
	rep.Zipf = runWorkload("zipf", zipf)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("insert comparison (gomaxprocs %d) -> %s\n", rep.GOMAXPROCS, path)
}
