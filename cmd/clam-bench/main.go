// Command clam-bench runs a configurable hash-table workload against a
// CLAM and prints latency distributions, core counters and device
// statistics — the tool behind ad-hoc exploration of the §7.2 design space.
//
// Example:
//
//	clam-bench -device ssd-transcend -flash 64 -mem 12 -ops 200000 \
//	           -lsr 0.4 -lookups 0.5 -policy lru
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/clam"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	deviceFlag := flag.String("device", "ssd-intel", "ssd-intel, ssd-transcend, flash-chip, or disk")
	flashMB := flag.Int64("flash", 64, "flash capacity in MB")
	memMB := flag.Int64("mem", 12, "DRAM budget in MB")
	ops := flag.Int("ops", 100000, "measured operations")
	lsr := flag.Float64("lsr", 0.4, "target lookup success ratio")
	lookups := flag.Float64("lookups", 0.5, "lookup fraction of the workload")
	policyFlag := flag.String("policy", "fifo", "fifo, lru, or update")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	var kind clam.DeviceKind
	switch *deviceFlag {
	case "ssd-intel":
		kind = clam.IntelSSD
	case "ssd-transcend":
		kind = clam.TranscendSSD
	case "flash-chip":
		kind = clam.FlashChip
	case "disk":
		kind = clam.MagneticDisk
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *deviceFlag)
		os.Exit(2)
	}
	var policy clam.Policy
	switch *policyFlag {
	case "fifo":
		policy = clam.FIFO
	case "lru":
		policy = clam.LRU
	case "update":
		policy = clam.UpdateBased
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyFlag)
		os.Exit(2)
	}

	c, err := clam.Open(clam.Options{
		Device:      kind,
		FlashBytes:  *flashMB << 20,
		MemoryBytes: *memMB << 20,
		Policy:      policy,
		Seed:        uint64(*seed),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	flashEntries := uint64(*flashMB) << 20 / 32
	keyRange := workload.RangeForLSR(flashEntries, *lsr)
	rng := rand.New(rand.NewSource(*seed))

	warm := int(flashEntries * 5 / 4)
	fmt.Printf("device=%s flash=%dMB mem=%dMB policy=%s | warm-up: %d inserts\n",
		kind, *flashMB, *memMB, policy, warm)
	for i := 0; i < warm; i++ {
		if err := c.Insert(uint64(rng.Int63n(int64(keyRange)))+1, uint64(i)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	c.ResetMetrics()

	for i := 0; i < *ops; i++ {
		k := uint64(rng.Int63n(int64(keyRange))) + 1
		if rng.Float64() < *lookups {
			if _, _, err := c.Lookup(k); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else if err := c.Insert(k, uint64(i)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	st := c.Stats()
	fmt.Printf("\ninserts: %s\n", st.InsertLatency)
	fmt.Printf("lookups: %s (hit rate %.2f)\n", st.LookupLatency, st.Core.HitRate())
	fmt.Printf("core: flushes=%d evictions=%d flash-probes=%d spurious=%d\n",
		st.Core.Flushes, st.Core.Evictions, st.Core.FlashProbes, st.Core.SpuriousProbes)
	fmt.Printf("lookup flash-I/O histogram: ")
	for i, c := range st.Core.LookupIOHist {
		if c > 0 {
			fmt.Printf("[%d io: %d] ", i, c)
		}
	}
	fmt.Println()
	fmt.Printf("device: reads=%d writes=%d erases=%d moved=%d busy=%v\n",
		st.Device.Reads, st.Device.Writes, st.Device.Erases, st.Device.PagesMoved, st.Device.BusyTime)
	fmt.Printf("memory: buffers=%dKB bloom=%dKB total=%dKB\n",
		st.Memory.BufferBytes>>10, st.Memory.BloomBytes>>10, st.Memory.Total()>>10)
	_ = metrics.Ms
}
