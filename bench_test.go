// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation (one benchmark per artifact; see DESIGN.md §4)
// plus raw data-structure benchmarks for the hot paths.
//
// The experiment benchmarks measure the real CPU cost of running each
// simulation and report the paper's quantities — simulated latencies in
// milliseconds, improvement factors — via b.ReportMetric, so
// `go test -bench=. -benchmem` prints paper-vs-measured numbers next to
// real throughput.
package repro

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/clam"
	"repro/internal/dedup"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/vclock"
)

// reportAll exports a Report's metrics on the benchmark.
func reportAll(b *testing.B, r experiments.Report) {
	b.Helper()
	for name, v := range r.Metrics {
		b.ReportMetric(v, name)
	}
}

func BenchmarkFig3BloomSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3()
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig4InsertCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4()
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig5SpuriousRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkTable2LookupIOs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig6LatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig7BDBLatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkTable3MixSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig8PartialDiscard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig9WANThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig10PerObject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkEvictionPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Headline(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkDedupMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clock := vclock.New()
		c, err := clam.Open(
			clam.WithDevice(clam.IntelSSD),
			clam.WithFlash(32<<20), clam.WithMemory(8<<20), clam.WithClock(clock))
		if err != nil {
			b.Fatal(err)
		}
		base := dedup.NewFingerprintSet(1, 50000)
		if err := dedup.Populate(c, base); err != nil {
			b.Fatal(err)
		}
		res, err := dedup.MergeOverlapping(c, dedup.NewOverlappingSet(base, 2, 20000, 0.3), clock)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Rate(), "fps/s(virtual)")
			b.ReportMetric(metrics.Ms(res.Elapsed), "merge_ms(virtual)")
		}
	}
}

// --- raw data-structure throughput (real CPU time) ---

func BenchmarkCLAMInsert(b *testing.B) {
	c, err := clam.Open(
		clam.WithDevice(clam.IntelSSD), clam.WithFlash(64<<20), clam.WithMemory(12<<20))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.PutU64(rng.Uint64()|1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := c.Stats()
	b.ReportMetric(metrics.Ms(st.InsertLatency.Mean), "insert_ms(virtual)")
}

// --- sharded parallel throughput (wall-clock) ---
//
// These benchmarks compare the paper's single-instance design point
// (Shards: 1, every operation behind one mutex) against the sharded
// scaling path at a fixed offered concurrency of 8 goroutines. Virtual
// time plays no role in the measurement: the metric is real wall-clock
// throughput of the in-memory hot path, which is what sharding buys.
// Speedup tracks available parallelism — expect ~1x at GOMAXPROCS=1 and
// ≥2x once a few cores are available.

const benchGoroutines = 8

func openShardedBench(b *testing.B, shards int) clam.Store {
	b.Helper()
	s, err := clam.Open(
		clam.WithDevice(clam.IntelSSD), clam.WithFlash(256<<20), clam.WithMemory(64<<20),
		clam.WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchKeys pre-generates one uniform key stream per goroutine so key
// generation stays off the measured path.
func benchKeys(goroutines, per int, seed int64) [][]uint64 {
	keys := make([][]uint64, goroutines)
	for g := range keys {
		rng := rand.New(rand.NewSource(seed + int64(g)))
		keys[g] = make([]uint64, per)
		for i := range keys[g] {
			keys[g][i] = rng.Uint64()
		}
	}
	return keys
}

func runParallelInserts(b *testing.B, s clam.Store, keys [][]uint64) {
	var wg sync.WaitGroup
	for g := range keys {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, k := range keys[g] {
				if err := s.PutU64(k, uint64(i)); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func benchParallelInsert(b *testing.B, shards int) {
	s := openShardedBench(b, shards)
	per := b.N/benchGoroutines + 1
	keys := benchKeys(benchGoroutines, per, 10)
	b.ResetTimer()
	runParallelInserts(b, s, keys)
	b.StopTimer()
	b.ReportMetric(float64(benchGoroutines*per)/b.Elapsed().Seconds(), "ops/s(wall)")
}

func BenchmarkParallelInsert1Shard(b *testing.B)  { benchParallelInsert(b, 1) }
func BenchmarkParallelInsert8Shards(b *testing.B) { benchParallelInsert(b, 8) }

func benchParallelLookup(b *testing.B, shards int) {
	s := openShardedBench(b, shards)
	warm := benchKeys(benchGoroutines, 100000, 20)
	runParallelInserts(b, s, warm)
	per := b.N/benchGoroutines + 1
	keys := make([][]uint64, benchGoroutines)
	for g := range keys {
		rng := rand.New(rand.NewSource(30 + int64(g)))
		keys[g] = make([]uint64, per)
		for i := range keys[g] {
			// ~50% hits: half from the warmed set, half random.
			if i%2 == 0 {
				keys[g][i] = warm[g][rng.Intn(len(warm[g]))]
			} else {
				keys[g][i] = rng.Uint64()
			}
		}
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := range keys {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, k := range keys[g] {
				if _, _, err := s.GetU64(k); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(benchGoroutines*per)/b.Elapsed().Seconds(), "ops/s(wall)")
}

func BenchmarkParallelLookup1Shard(b *testing.B)  { benchParallelLookup(b, 1) }
func BenchmarkParallelLookup8Shards(b *testing.B) { benchParallelLookup(b, 8) }

func BenchmarkShardedInsertBatch(b *testing.B) {
	s := openShardedBench(b, 8)
	rng := rand.New(rand.NewSource(40))
	keys := make([]uint64, 4096)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i], vals[i] = rng.Uint64(), uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PutBatchU64(context.Background(), keys, vals); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(keys))/b.Elapsed().Seconds(), "ops/s(wall)")
}

// BenchmarkShardedSpeedup runs the same 8-goroutine insert workload
// against a 1-shard baseline and an 8-shard instance and reports the
// wall-clock speedup directly, the headline number for the sharding
// tentpole. GOMAXPROCS bounds the achievable factor.
func BenchmarkShardedSpeedup(b *testing.B) {
	const totalOps = 200000
	keys := benchKeys(benchGoroutines, totalOps/benchGoroutines, 50)
	// Best-of-3 on a fresh instance each time: a single 0.3s region is at
	// the mercy of scheduler and CPU-steal noise, and the min is the
	// standard robust estimator for wall-clock comparisons.
	measure := func(shards int) time.Duration {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			s := openShardedBench(b, shards)
			// Collect the previous instance's heap (tens of MB of buffers
			// and Bloom banks) so GC work is not charged to the region.
			runtime.GC()
			start := time.Now()
			runParallelInserts(b, s, keys)
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		base := measure(1)
		sharded := measure(8)
		speedup = base.Seconds() / sharded.Seconds()
	}
	b.ReportMetric(speedup, "speedup_x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

func BenchmarkCLAMLookup(b *testing.B) {
	c, err := clam.Open(
		clam.WithDevice(clam.IntelSSD), clam.WithFlash(64<<20), clam.WithMemory(12<<20))
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 20
	for i := uint64(1); i <= n; i++ {
		if err := c.PutU64(i, i); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	c.ResetMetrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.GetU64(uint64(rng.Int63n(n*2)) + 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := c.Stats()
	b.ReportMetric(metrics.Ms(st.LookupLatency.Mean), "lookup_ms(virtual)")
	b.ReportMetric(st.Core.HitRate(), "hit_rate")
}

// --- batched lookup pipeline (wall-clock) ---
//
// These benchmarks compare Sharded.GetBatchU64 — the PR 2 batched pipeline:
// phase-A memory resolution, page-deduped address-sorted flash probes
// overlapped through storage.BatchReader, chunked shard-affine dispatch —
// against the plain per-key Lookup loop, across shard counts and key
// distributions. As with BenchmarkShardedSpeedup, the parallel component
// of the win is bounded by GOMAXPROCS; the batching component (lock, clock
// and histogram amortization, duplicate-key memoization, same-page read
// dedupe) is visible at any core count and is largest on skewed keys.

// openBatchedLookupBench warms a sharded instance past eviction onset
// (700k distinct keys into 512k entries of capacity) so lookups are
// flash-heavy, and returns the warm universe.
func openBatchedLookupBench(b *testing.B, shards int) (clam.Store, []uint64) {
	b.Helper()
	s, err := clam.Open(
		clam.WithDevice(clam.IntelSSD), clam.WithFlash(16<<20), clam.WithMemory(4<<20),
		clam.WithSeed(7), clam.WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(70))
	const nKeys = 700000
	universe := make([]uint64, nKeys)
	vals := make([]uint64, nKeys)
	for i := range universe {
		universe[i] = rng.Uint64()
		vals[i] = uint64(i)
	}
	const chunk = 16384
	for at := 0; at < nKeys; at += chunk {
		end := at + chunk
		if end > nKeys {
			end = nKeys
		}
		if err := s.PutBatchU64(context.Background(), universe[at:end], vals[at:end]); err != nil {
			b.Fatal(err)
		}
	}
	if s.Stats().Core.Evictions == 0 {
		b.Fatal("warm-up did not reach the eviction regime")
	}
	return s, universe
}

func benchBatchedVsSerialLookup(b *testing.B, shards int, zipf bool) {
	s, universe := openBatchedLookupBench(b, shards)
	rng := rand.New(rand.NewSource(71))
	probes := make([]uint64, 65536)
	if zipf {
		zr := rand.NewZipf(rng, 1.2, 1, uint64(len(universe)-1))
		for i := range probes {
			probes[i] = universe[zr.Uint64()]
		}
	} else {
		for i := range probes {
			probes[i] = universe[rng.Intn(len(universe))]
		}
	}
	measure := func(fn func()) time.Duration {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			fn()
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		serial := measure(func() {
			for _, k := range probes {
				if _, _, err := s.GetU64(k); err != nil {
					b.Fatal(err)
				}
			}
		})
		batched := measure(func() {
			if _, _, err := s.GetBatchU64(context.Background(), probes); err != nil {
				b.Fatal(err)
			}
		})
		speedup = serial.Seconds() / batched.Seconds()
		b.ReportMetric(float64(len(probes))/batched.Seconds(), "batched_ops/s(wall)")
		b.ReportMetric(float64(len(probes))/serial.Seconds(), "serial_ops/s(wall)")
	}
	b.ReportMetric(speedup, "speedup_x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

func BenchmarkBatchedLookup1Shard(b *testing.B)      { benchBatchedVsSerialLookup(b, 1, false) }
func BenchmarkBatchedLookup8Shards(b *testing.B)     { benchBatchedVsSerialLookup(b, 8, false) }
func BenchmarkBatchedLookup8ShardsZipf(b *testing.B) { benchBatchedVsSerialLookup(b, 8, true) }
