// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation (one benchmark per artifact; see DESIGN.md §4)
// plus raw data-structure benchmarks for the hot paths.
//
// The experiment benchmarks measure the real CPU cost of running each
// simulation and report the paper's quantities — simulated latencies in
// milliseconds, improvement factors — via b.ReportMetric, so
// `go test -bench=. -benchmem` prints paper-vs-measured numbers next to
// real throughput.
package repro

import (
	"math/rand"
	"testing"

	"repro/clam"
	"repro/internal/dedup"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/vclock"
)

// reportAll exports a Report's metrics on the benchmark.
func reportAll(b *testing.B, r experiments.Report) {
	b.Helper()
	for name, v := range r.Metrics {
		b.ReportMetric(v, name)
	}
}

func BenchmarkFig3BloomSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3()
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig4InsertCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4()
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig5SpuriousRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkTable2LookupIOs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig6LatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig7BDBLatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkTable3MixSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig8PartialDiscard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig9WANThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkFig10PerObject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkEvictionPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Headline(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportAll(b, r)
		}
	}
}

func BenchmarkDedupMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clock := vclock.New()
		c, err := clam.Open(clam.Options{
			Device: clam.IntelSSD, FlashBytes: 32 << 20, MemoryBytes: 8 << 20, Clock: clock,
		})
		if err != nil {
			b.Fatal(err)
		}
		base := dedup.NewFingerprintSet(1, 50000)
		if err := dedup.Populate(c, base); err != nil {
			b.Fatal(err)
		}
		res, err := dedup.MergeOverlapping(c, dedup.NewOverlappingSet(base, 2, 20000, 0.3), clock)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Rate(), "fps/s(virtual)")
			b.ReportMetric(metrics.Ms(res.Elapsed), "merge_ms(virtual)")
		}
	}
}

// --- raw data-structure throughput (real CPU time) ---

func BenchmarkCLAMInsert(b *testing.B) {
	c, err := clam.Open(clam.Options{
		Device: clam.IntelSSD, FlashBytes: 64 << 20, MemoryBytes: 12 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert(rng.Uint64()|1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := c.Stats()
	b.ReportMetric(metrics.Ms(st.InsertLatency.Mean), "insert_ms(virtual)")
}

func BenchmarkCLAMLookup(b *testing.B) {
	c, err := clam.Open(clam.Options{
		Device: clam.IntelSSD, FlashBytes: 64 << 20, MemoryBytes: 12 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 20
	for i := uint64(1); i <= n; i++ {
		if err := c.Insert(i, i); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	c.ResetMetrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Lookup(uint64(rng.Int63n(n*2)) + 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := c.Stats()
	b.ReportMetric(metrics.Ms(st.LookupLatency.Mean), "lookup_ms(virtual)")
	b.ReportMetric(st.Core.HitRate(), "hit_rate")
}
