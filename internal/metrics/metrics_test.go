package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if pts := h.CDF(); len(pts) != 0 {
		t.Fatalf("empty CDF has %d points", len(pts))
	}
}

func TestBasicStats(t *testing.T) {
	var h Histogram
	for _, ms := range []int{1, 2, 3, 4, 5} {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Mean() != 3*time.Millisecond {
		t.Fatalf("Mean = %v, want 3ms", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 5*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestNegativeClampedToZero(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample not clamped: min=%v max=%v", h.Min(), h.Max())
	}
}

func TestQuantileAccuracy(t *testing.T) {
	// Quantiles of a known uniform distribution must be within the ~5%
	// bucket resolution.
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		rel := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if rel > 0.10 {
			t.Errorf("Quantile(%.2f) = %v, exact %v, rel err %.3f", q, got, exact, rel)
		}
	}
}

func TestQuantileExtremes(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	if h.Quantile(0) != time.Millisecond {
		t.Fatalf("Quantile(0) = %v", h.Quantile(0))
	}
	if h.Quantile(1) != time.Second {
		t.Fatalf("Quantile(1) = %v", h.Quantile(1))
	}
}

func TestCDFMonotonic(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		h.Observe(time.Duration(rng.ExpFloat64() * float64(time.Millisecond)))
	}
	pts := h.CDF()
	if len(pts) == 0 {
		t.Fatal("no CDF points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Fraction < pts[i-1].Fraction || pts[i].Latency < pts[i-1].Latency {
			t.Fatalf("CDF not monotonic at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	if last := pts[len(pts)-1].Fraction; math.Abs(last-1.0) > 1e-9 {
		t.Fatalf("CDF does not reach 1.0: %f", last)
	}
}

func TestCCDFComplement(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	cdf, ccdf := h.CDF(), h.CCDF()
	if len(cdf) != len(ccdf) {
		t.Fatalf("point count mismatch: %d vs %d", len(cdf), len(ccdf))
	}
	for i := range cdf {
		if math.Abs(cdf[i].Fraction+ccdf[i].Fraction-1.0) > 1e-9 {
			t.Fatalf("CDF+CCDF != 1 at %d", i)
		}
	}
}

func TestFractionAtMost(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.FractionAtMost(20 * time.Millisecond); got != 1.0 {
		t.Fatalf("FractionAtMost(20ms) = %f, want 1", got)
	}
	got := h.FractionAtMost(5 * time.Millisecond)
	if got < 0.4 || got > 0.65 {
		t.Fatalf("FractionAtMost(5ms) = %f, want ~0.5", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	b.Observe(5 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("Count = %d, want 3", a.Count())
	}
	if a.Mean() != 3*time.Millisecond {
		t.Fatalf("Mean = %v, want 3ms", a.Mean())
	}
	if a.Min() != time.Millisecond || a.Max() != 5*time.Millisecond {
		t.Fatalf("Min/Max wrong after merge: %v/%v", a.Min(), a.Max())
	}
}

func TestMergeEmpty(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	a.Merge(&b) // no-op
	if a.Count() != 1 {
		t.Fatal("merging empty histogram changed count")
	}
	b.Merge(&a)
	if b.Count() != 1 || b.Min() != time.Millisecond {
		t.Fatal("merging into empty histogram lost stats")
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(1000 * time.Hour) // beyond the bucket range
	if h.Count() != 1 {
		t.Fatal("overflow sample dropped")
	}
	if h.Quantile(0.5) != 1000*time.Hour {
		// Quantile clamps to max.
		t.Fatalf("Quantile(0.5) = %v", h.Quantile(0.5))
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.Summarize()
	if s.Count != 1 {
		t.Fatalf("Count = %d", s.Count)
	}
	if str := s.String(); str == "" {
		t.Fatal("empty summary string")
	}
}

func TestMs(t *testing.T) {
	if Ms(1500*time.Microsecond) != 1.5 {
		t.Fatalf("Ms(1.5ms) = %f", Ms(1500*time.Microsecond))
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc("reads", 3)
	c.Inc("writes", 1)
	c.Inc("reads", 2)
	if c.Get("reads") != 5 || c.Get("writes") != 1 {
		t.Fatalf("counter values wrong: %s", c.String())
	}
	if c.Get("absent") != 0 {
		t.Fatal("absent counter non-zero")
	}
	if s := c.String(); s != "reads=5 writes=1" {
		t.Fatalf("String() = %q", s)
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for d := time.Duration(1); d < 10*time.Second; d = d*3/2 + 1 {
		i := bucketIndex(d)
		if i < prev {
			t.Fatalf("bucketIndex not monotonic at %v", d)
		}
		prev = i
	}
}

func TestMergedAggregatesShardHistograms(t *testing.T) {
	// Three "shards" with disjoint latency ranges; the merged distribution
	// must match a single histogram fed all samples.
	var want Histogram
	parts := make([]*Histogram, 3)
	rng := rand.New(rand.NewSource(42))
	for s := range parts {
		parts[s] = &Histogram{}
		base := time.Duration(1+s) * time.Millisecond
		for i := 0; i < 1000; i++ {
			d := base + time.Duration(rng.Int63n(int64(time.Millisecond)))
			parts[s].Observe(d)
			want.Observe(d)
		}
	}
	got := Merged(parts[0], nil, parts[1], parts[2]) // nils are skipped
	if got.Count() != want.Count() || got.Sum() != want.Sum() {
		t.Fatalf("merged count/sum = %d/%v, want %d/%v", got.Count(), got.Sum(), want.Count(), want.Sum())
	}
	if got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("merged min/max = %v/%v, want %v/%v", got.Min(), got.Max(), want.Min(), want.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got.Quantile(q) != want.Quantile(q) {
			t.Errorf("q%.2f: merged %v, single %v", q, got.Quantile(q), want.Quantile(q))
		}
	}
	// Inputs must be untouched.
	if parts[0].Count() != 1000 {
		t.Fatal("Merged modified an input histogram")
	}
}

func TestMergedEmpty(t *testing.T) {
	if m := Merged(); m.Count() != 0 {
		t.Fatal("Merged() of nothing should be empty")
	}
	if m := Merged(nil, &Histogram{}); m.Count() != 0 {
		t.Fatal("Merged of empties should be empty")
	}
}
