// Package metrics provides latency histograms and distribution summaries for
// the experiment harness. The paper reports latency CDFs (Figures 6, 7),
// CCDFs (Figure 8a), averages and worst cases (§7.2); Histogram captures all
// of these from a stream of virtual-time durations.
//
// Buckets are log-spaced with ~5% relative width between 100 ns and 1000 s,
// so percentile estimates carry at most a few percent of relative error —
// far below the order-of-magnitude differences the paper's claims rest on.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

const (
	bucketMin   = 100 * time.Nanosecond
	growth      = 1.05
	numBuckets  = 475                     // growth^475 * 100ns ≈ 1.1e12 ns ≈ 18 minutes
	invLnGrowth = 1 / 0.04879016416943205 // 1/ln(1.05)
)

// Histogram accumulates a latency distribution. The zero value is ready to
// use.
type Histogram struct {
	buckets [numBuckets + 2]uint64 // [0]: < bucketMin, [last]: overflow
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	if d < bucketMin {
		return 0
	}
	i := 1 + int(math.Log(float64(d)/float64(bucketMin))*invLnGrowth)
	if i > numBuckets {
		return numBuckets + 1
	}
	return i
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return bucketMin
	}
	return time.Duration(float64(bucketMin) * math.Pow(growth, float64(i)))
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// ObserveN records n samples of the same duration — the amortized per-key
// latency of a batched operation — with one bucket computation instead of n.
func (h *Histogram) ObserveN(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)] += uint64(n)
	h.count += uint64(n)
	h.sum += d * time.Duration(n)
	if h.count == uint64(n) || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the average sample, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1). The estimate
// is the upper bound of the bucket containing the quantile, except that the
// exact Min and Max are returned at the extremes.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i]
		if cum >= target {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// FractionAtMost returns the fraction of samples ≤ d (bucket-resolution).
func (h *Histogram) FractionAtMost(d time.Duration) float64 {
	if h.count == 0 {
		return 0
	}
	idx := bucketIndex(d)
	var cum uint64
	for i := 0; i <= idx; i++ {
		cum += h.buckets[i]
	}
	return float64(cum) / float64(h.count)
}

// Point is one (latency, fraction) point of a CDF or CCDF curve.
type Point struct {
	Latency  time.Duration
	Fraction float64
}

// CDF returns the cumulative distribution as a sequence of points over the
// non-empty buckets, suitable for plotting against the paper's Figures 6–7.
func (h *Histogram) CDF() []Point {
	var pts []Point
	if h.count == 0 {
		return pts
	}
	var cum uint64
	for i := range h.buckets {
		if h.buckets[i] == 0 {
			continue
		}
		cum += h.buckets[i]
		pts = append(pts, Point{bucketUpper(i), float64(cum) / float64(h.count)})
	}
	return pts
}

// CCDF returns the complementary CDF (fraction of samples strictly greater
// than each latency), as used in Figure 8(a).
func (h *Histogram) CCDF() []Point {
	pts := h.CDF()
	for i := range pts {
		pts[i].Fraction = 1 - pts[i].Fraction
	}
	return pts
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Merged returns a fresh histogram holding the union of all samples in hs.
// It is the aggregation primitive for sharded deployments: each shard
// records latencies into its own histogram (avoiding cross-core write
// sharing on the hot path) and a global distribution is assembled on
// demand. Nil histograms are skipped. The inputs are not modified, but the
// caller must ensure they are quiescent (or pass snapshot copies).
func Merged(hs ...*Histogram) *Histogram {
	m := &Histogram{}
	for _, h := range hs {
		if h != nil {
			m.Merge(h)
		}
	}
	return m
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	*h = Histogram{}
}

// Summary is a compact snapshot of a distribution.
type Summary struct {
	Count          uint64
	Mean, Min, Max time.Duration
	P50, P90, P99  time.Duration
	P999           time.Duration
}

// Summarize extracts a Summary from the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		Min:   h.min,
		Max:   h.max,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// String formats the summary in milliseconds, the paper's unit.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4fms p50=%.4fms p90=%.4fms p99=%.4fms max=%.4fms",
		s.Count, Ms(s.Mean), Ms(s.P50), Ms(s.P90), Ms(s.P99), Ms(s.Max))
}

// Ms converts a duration to float milliseconds (the unit used throughout the
// paper's tables and figures).
func Ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// Counter is a monotonically increasing event counter grouped by label.
type Counter struct {
	counts map[string]uint64
}

// Inc adds n to the named counter.
func (c *Counter) Inc(name string, n uint64) {
	if c.counts == nil {
		c.counts = make(map[string]uint64)
	}
	c.counts[name] += n
}

// Get returns the value of the named counter.
func (c *Counter) Get(name string) uint64 {
	return c.counts[name]
}

// String lists counters in sorted order.
func (c *Counter) String() string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c.counts[n])
	}
	return b.String()
}
