// Package vclock provides a virtual clock for deterministic simulation.
//
// All device models in this repository operate in virtual time: an I/O
// operation computes its service latency from a cost model and advances a
// shared Clock by that amount instead of sleeping. Experiments then read
// latency distributions that are independent of the host machine, which is
// what makes the paper's latency figures reproducible without the authors'
// hardware (see DESIGN.md §3).
//
// A Clock is safe for concurrent use. Durations are measured from an
// arbitrary epoch (zero at construction).
package vclock

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a monotonically advancing virtual clock.
type Clock struct {
	now atomic.Int64 // nanoseconds since epoch
}

// New returns a clock positioned at the epoch (t = 0).
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time as an offset from the epoch.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.now.Load())
}

// Advance moves the clock forward by d and returns the new time.
// Advancing by a negative duration panics: virtual time is monotonic,
// and a negative advance always indicates a cost-model bug.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	return time.Duration(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock forward to t if t is in the future and reports
// whether the clock moved. It never moves the clock backwards, so concurrent
// callers may safely race.
func (c *Clock) AdvanceTo(t time.Duration) bool {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return false
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return true
		}
	}
}

// Stopwatch measures virtual-time intervals against a Clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartWatch returns a stopwatch anchored at the clock's current time.
func (c *Clock) StartWatch() Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed returns the virtual time elapsed since the stopwatch was started.
func (s Stopwatch) Elapsed() time.Duration {
	return s.clock.Now() - s.start
}
