package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestNewStartsAtEpoch(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	if got := c.Advance(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("Advance returned %v, want 5ms", got)
	}
	c.Advance(10 * time.Microsecond)
	if got := c.Now(); got != 5*time.Millisecond+10*time.Microsecond {
		t.Fatalf("Now() = %v, want 5.01ms", got)
	}
}

func TestAdvanceZero(t *testing.T) {
	c := New()
	c.Advance(0)
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-1)
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	if moved := c.AdvanceTo(500 * time.Millisecond); moved {
		t.Fatal("AdvanceTo moved the clock backwards")
	}
	if got := c.Now(); got != time.Second {
		t.Fatalf("Now() = %v, want 1s", got)
	}
	if moved := c.AdvanceTo(2 * time.Second); !moved {
		t.Fatal("AdvanceTo did not move the clock forwards")
	}
	if got := c.Now(); got != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", got)
	}
}

func TestStopwatch(t *testing.T) {
	c := New()
	c.Advance(time.Millisecond)
	w := c.StartWatch()
	c.Advance(3 * time.Millisecond)
	if got := w.Elapsed(); got != 3*time.Millisecond {
		t.Fatalf("Elapsed() = %v, want 3ms", got)
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	const (
		workers = 8
		perW    = 1000
	)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perW; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), time.Duration(workers*perW)*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestConcurrentAdvanceToMonotonic(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 1; i <= 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.AdvanceTo(time.Duration(i) * time.Millisecond)
		}(i)
	}
	wg.Wait()
	if got := c.Now(); got != 100*time.Millisecond {
		t.Fatalf("Now() = %v, want 100ms", got)
	}
}
