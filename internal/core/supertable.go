package core

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/cuckoo"
)

// entry is a (key, value) pair staged for re-insertion during partial
// discard.
type entry struct {
	k, v uint64
}

// incarnation is the in-memory metadata for one in-flash incarnation: its
// flash address (kept "along with their Bloom filters", §5.2) and a global
// sequence number used by the shared-log layout to match log slots to
// incarnations.
type incarnation struct {
	addr int64
	seq  uint64
}

// superTable is one partition of BufferHash (§5.1): an in-memory buffer, k
// in-flash incarnations, their Bloom filters, and a delete list.
type superTable struct {
	owner *BufferHash
	idx   int

	buf  *cuckoo.Table
	bank filterBank // nil when Bloom filters are disabled

	// incs[j] is the incarnation at Bloom-bank window offset j; only
	// offsets j ≥ k-live hold live incarnations (j = k-live is the
	// oldest, j = k-1 the newest).
	incs []incarnation
	live int

	// deleteList implements lazy deletion (§5.1.1): key → flush
	// generation at deletion time. Entries older than k flushes cannot
	// exist in any incarnation and are pruned.
	deleteList map[uint64]uint64
	flushGen   uint64
}

func newSuperTable(owner *BufferHash, idx int) *superTable {
	st := &superTable{
		owner: owner,
		idx:   idx,
		buf:   cuckoo.New(owner.tableParams(idx)),
		incs:  make([]incarnation, owner.cfg.NumIncarnations),
	}
	if !owner.cfg.DisableBloom {
		m := owner.cfg.FilterBits()
		h := owner.cfg.filterHashes()
		if owner.cfg.DisableBitslice {
			st.bank = newNaiveBank(m, owner.cfg.NumIncarnations, h)
		} else {
			st.bank = owner.newSliceBank(m, h)
		}
	}
	return st
}

// validMask returns the bitmask of window offsets holding live incarnations.
func (st *superTable) validMask() uint64 {
	k := st.owner.cfg.NumIncarnations
	if st.live == 0 {
		return 0
	}
	var all uint64
	if k == 64 {
		all = ^uint64(0)
	} else {
		all = 1<<k - 1
	}
	return all &^ (1<<(k-st.live) - 1)
}

// oldest returns the window offset of the oldest live incarnation.
func (st *superTable) oldest() int { return st.owner.cfg.NumIncarnations - st.live }

// evictOldestExternal is called by the shared-log layout when the log head
// overwrites this super table's oldest incarnation (global FIFO, §5.2).
// seq identifies the slot being reclaimed; a mismatch means the incarnation
// was already rotated out locally and nothing remains to do.
func (st *superTable) evictOldestExternal(seq uint64) {
	if st.live == 0 {
		return
	}
	if st.incs[st.oldest()].seq != seq {
		return
	}
	st.live--
	st.owner.stats.Evictions++
}

// lookupMem is the in-memory phase of a lookup (phase A of the pipeline):
// every step that needs no flash I/O. It charges the CPU costs, consults
// the delete list, the buffer and the Bloom bank, and returns the
// candidate-incarnation mask for the flash phase (bit j set = window offset
// j may hold the key). done reports the lookup resolved without I/O; a zero
// mask with done == false is a clean miss (Bloom filters excluded every
// incarnation). Serial lookups and LookupBatch share this path exactly, so
// CPU charges and Bloom behaviour cannot drift apart.
func (st *superTable) lookupMem(kh uint64) (res LookupResult, mask uint64, done bool) {
	return st.lookupMemWith(kh, nil)
}

// lookupMemWith is lookupMem with caller-owned Bloom-query scratch: every
// step is a pure read of the super table (delete list, buffer, filter
// bank), so parallel phase-A lanes may run it concurrently on one table as
// long as each lane passes its own scratch. qs == nil uses the bank's
// internal scratch (the single-caller serial path).
func (st *superTable) lookupMemWith(kh uint64, qs *[]uint64) (res LookupResult, mask uint64, done bool) {
	cfg := &st.owner.cfg
	st.owner.chargeCPU(cfg.CPU.BufferLookup)

	if _, deleted := st.deleteList[kh]; deleted {
		return res, 0, true
	}
	if v, ok := st.buf.Get(kh); ok {
		return LookupResult{Value: v, Found: true}, 0, true
	}
	if st.live == 0 {
		return res, 0, true
	}
	valid := st.validMask()
	if cfg.DisableBloom {
		return res, valid, false
	}
	if cfg.DisableBitslice {
		st.owner.chargeCPU(cfg.CPU.BloomQueryNaive)
	} else {
		st.owner.chargeCPU(cfg.CPU.BloomQuery)
	}
	if qs != nil {
		return res, st.bank.QueryWith(kh, qs) & valid, false
	}
	return res, st.bank.Query(kh) & valid, false
}

// resolveProbe is the probe-resolution step shared by the serial and
// batched lookup paths (phase C of the pipeline): account one incarnation
// page probe, search the page image for kh, and on a hit apply the
// LRU re-insertion semantics. It reports whether the key was found.
func (st *superTable) resolveProbe(res *LookupResult, pageImage []byte, kh uint64) bool {
	st.owner.stats.FlashProbes++
	res.FlashReads++
	v, ok := st.owner.tableParams(st.idx).LookupInPage(pageImage, kh)
	if !ok {
		res.Spurious++
		return false
	}
	res.Value, res.Found = v, true
	if st.owner.cfg.Policy == LRU {
		st.reinsertLRU(kh, v)
	}
	return true
}

// lookup implements §5.1.1: buffer first, then incarnations newest-first,
// reading one flash page per probed incarnation. It is lookupMem followed
// by a serial walk over the candidate mask through resolveProbe — the same
// two helpers the batched pipeline composes with overlapped I/O.
func (st *superTable) lookup(kh uint64) (LookupResult, error) {
	res, mask, done := st.lookupMem(kh)
	if done {
		return res, nil
	}
	for mask != 0 {
		j := bits.Len64(mask) - 1 // newest remaining candidate
		mask &^= 1 << j
		page, err := st.owner.readProbe(st, st.incs[j], kh)
		if err != nil {
			return res, err
		}
		if st.resolveProbe(&res, page, kh) {
			return res, nil
		}
	}
	return res, nil
}

// reinsertLRU re-inserts an item used from flash so it survives the next
// FIFO eviction (§5.1.2). Per the paper this happens asynchronously without
// blocking lookups, so no latency is charged here; the cost materializes as
// more frequent buffer flushes. If the buffer is full the re-insertion is
// skipped (the item merely loses its recency boost).
func (st *superTable) reinsertLRU(kh, v uint64) {
	if st.buf.Full() {
		return
	}
	if st.buf.Insert(kh, v) == nil {
		if st.bank != nil {
			st.bank.AddStaging(kh)
		}
		st.owner.stats.LRUReinserts++
	}
}

// insert implements §5.1.1: values go to the buffer; a full buffer is
// flushed to flash as a new incarnation first.
func (st *superTable) insert(kh, v uint64) error {
	cfg := &st.owner.cfg
	st.owner.chargeCPU(cfg.CPU.BufferInsert)
	delete(st.deleteList, kh) // a fresh insert revives a deleted key

	err := st.buf.Insert(kh, v)
	if err == cuckoo.ErrFull {
		if err := st.flush(); err != nil {
			return err
		}
		err = st.buf.Insert(kh, v)
	}
	if err != nil {
		return fmt.Errorf("core: buffer insert: %w", err)
	}
	if st.bank != nil {
		st.owner.chargeCPU(cfg.CPU.BloomAdd)
		st.bank.AddStaging(kh)
	}
	return nil
}

// del implements lazy deletion (§5.1.1): remove from the buffer if still
// there, and record the key in the in-memory delete list consulted before
// every lookup.
func (st *superTable) del(kh uint64) {
	cfg := &st.owner.cfg
	st.owner.chargeCPU(cfg.CPU.BufferInsert)
	st.buf.Delete(kh)
	if st.deleteList == nil {
		st.deleteList = make(map[uint64]uint64)
	}
	st.deleteList[kh] = st.flushGen
}

// pruneDeletes drops delete-list entries old enough that no incarnation can
// still hold the key (the flash space was "reclaimed during incarnation
// eviction", §5.1.1).
func (st *superTable) pruneDeletes() {
	if len(st.deleteList) == 0 {
		return
	}
	k := uint64(st.owner.cfg.NumIncarnations)
	for key, gen := range st.deleteList {
		if st.flushGen-gen >= k {
			delete(st.deleteList, key)
		}
	}
}

// flush writes the full buffer to flash as a new incarnation, evicting the
// oldest incarnation if the super table already holds k (§5.1.2). Partial
// discard policies re-insert retained entries into the fresh buffer, which
// can cascade into further evictions (§7.4); after trying all k
// incarnations the oldest is force-discarded wholesale, exactly as the
// paper specifies.
func (st *superTable) flush() error {
	cfg := &st.owner.cfg
	var pending []entry
	forceFull := false
	tried := 0
	for iter := 0; ; iter++ {
		if iter > 2*cfg.NumIncarnations+4 {
			return fmt.Errorf("core: flush did not converge after %d iterations", iter)
		}
		if st.live == cfg.NumIncarnations {
			scanned, err := st.evictOldest(forceFull)
			if err != nil {
				return err
			}
			pending = append(pending, scanned...)
			tried++
			if tried >= cfg.NumIncarnations {
				forceFull = true
			}
		}
		if err := st.writeBufferAsIncarnation(); err != nil {
			return err
		}
		// Refill the fresh buffer with retained entries. Entries whose key
		// already has a newer version in the buffer are dropped.
		n := 0
		for n < len(pending) && !st.buf.Full() {
			e := pending[n]
			if _, ok := st.buf.Get(e.k); !ok {
				if err := st.buf.Insert(e.k, e.v); err != nil {
					break
				}
				if st.bank != nil {
					st.bank.AddStaging(e.k)
				}
				st.owner.stats.Reinserted++
			}
			n++
		}
		pending = pending[n:]
		// Done only when nothing is left to re-insert AND the buffer has
		// room for the insert that triggered this flush; a buffer exactly
		// filled by retained entries cascades into evicting the next
		// oldest incarnation (§7.4).
		if len(pending) == 0 && !st.buf.Full() {
			if tried > 0 {
				st.owner.stats.recordCascade(tried)
			}
			return nil
		}
		st.owner.stats.Cascades++
	}
}

// evictOldest removes the oldest incarnation. With full discard (FIFO, LRU,
// or a forced cascade cutoff) this is free of I/O. Partial discard reads
// the incarnation image back from flash, scans every entry, and returns the
// ones to retain (§5.1.2).
func (st *superTable) evictOldest(forceFull bool) ([]entry, error) {
	cfg := &st.owner.cfg
	j0 := st.oldest()
	inc := st.incs[j0]
	st.live--
	st.owner.stats.Evictions++

	full := forceFull || cfg.Policy == FIFO || cfg.Policy == LRU
	if full {
		return nil, nil
	}

	image, err := st.owner.readImage(inc.addr)
	if err != nil {
		return nil, err
	}
	defer st.owner.releaseImage(image)
	params := st.owner.tableParams(st.idx)
	newerMask := st.validMask() // offsets newer than j0 (live already decremented)
	var retained []entry
	entries := 0
	params.DecodeImage(image, func(k, v uint64) bool {
		entries++
		switch cfg.Policy {
		case UpdateBased:
			// Live = not deleted and not superseded by a newer version.
			if _, deleted := st.deleteList[k]; deleted {
				return true
			}
			if _, inBuf := st.buf.Get(k); inBuf {
				return true
			}
			if st.bank != nil {
				st.owner.chargeCPU(cfg.CPU.BloomQuery)
				if st.bank.Query(k)&newerMask != 0 || st.bank.QueryStaging(k) {
					// Possibly updated; discard. False positives evict a
					// live item (paper footnote 2) — semantically FIFO-safe.
					return true
				}
			}
			retained = append(retained, entry{k, v})
		case PriorityBased:
			if cfg.Retain(k, v) {
				retained = append(retained, entry{k, v})
			}
		}
		return true
	})
	st.owner.chargeCPU(time.Duration(entries) * cfg.CPU.EvictScanEntry)
	st.owner.stats.PartialScans++
	return retained, nil
}

// writeBufferAsIncarnation serializes the buffer into a pooled image
// buffer, writes it to the device at a layout-chosen address — or stages
// the write for the batch-end overlapped submission when the owner is in a
// batched insert — rotates the Bloom bank, and resets the buffer.
func (st *superTable) writeBufferAsIncarnation() error {
	cfg := &st.owner.cfg
	st.owner.chargeCPU(cfg.CPU.FlushSerialize)
	addr, seq, err := st.owner.placeImage(st)
	if err != nil {
		return err
	}
	img := st.owner.acquireImage()
	st.buf.Serialize(img)
	if st.owner.deferWrites {
		st.owner.stageWrite(img, addr)
	} else {
		_, werr := cfg.Device.WriteAt(img, addr)
		st.owner.releaseImage(img)
		if werr != nil {
			return fmt.Errorf("core: incarnation write: %w", werr)
		}
	}
	if st.bank != nil {
		st.bank.Rotate()
	}
	copy(st.incs, st.incs[1:])
	st.incs[cfg.NumIncarnations-1] = incarnation{addr: addr, seq: seq}
	if st.live < cfg.NumIncarnations {
		st.live++
	}
	st.buf.Reset()
	st.flushGen++
	st.owner.stats.Flushes++
	st.pruneDeletes()
	return nil
}
