package core

import (
	"math/rand"
	"testing"
)

// Twin tests for the phase-A partitioner: a parallel-lane instance must be
// indistinguishable from a serial instance in everything but wall-clock
// time — per-key results, every core counter, and (transitively, through
// the shared clock-charge accounting) virtual time.

func TestLaneRangeCovers(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 512, 4097} {
		for lanes := 1; lanes <= 8; lanes++ {
			next := 0
			for i := 0; i < lanes; i++ {
				lo, hi := laneRange(n, lanes, i)
				if lo != next {
					t.Fatalf("n=%d lanes=%d lane %d starts at %d, want %d", n, lanes, i, lo, next)
				}
				if hi < lo || hi > n {
					t.Fatalf("n=%d lanes=%d lane %d has bad range [%d,%d)", n, lanes, i, lo, hi)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d lanes=%d covers only %d keys", n, lanes, next)
			}
		}
	}
}

func TestGoRunnerRunsEveryLane(t *testing.T) {
	for lanes := 1; lanes <= 6; lanes++ {
		hit := make([]int32, lanes)
		GoRunner(lanes, func(i int) { hit[i]++ })
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("lanes=%d: lane %d ran %d times", lanes, i, h)
			}
		}
	}
}

// loadedPair builds two byte-identical instances from the same seeded
// insert stream (each on its own device and clock).
func loadedPair(t *testing.T, n int) (serial, par *BufferHash) {
	t.Helper()
	build := func() *BufferHash {
		cfg, _ := testConfig(t)
		b := mustNew(t, cfg)
		rng := rand.New(rand.NewSource(71))
		for i := 0; i < n; i++ {
			if err := b.Insert(rng.Uint64(), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		b.ResetStats()
		return b
	}
	return build(), build()
}

func TestParallelLookupBatchMatchesSerial(t *testing.T) {
	serial, par := loadedPair(t, 30000)
	par.SetParallel(4, GoRunner)

	// Probe stream: present keys, absent keys, and heavy duplication (the
	// hot keys of a skewed batch), so lanes recompute keys the serial memo
	// would have replayed.
	rng := rand.New(rand.NewSource(71))
	present := make([]uint64, 30000)
	for i := range present {
		present[i] = rng.Uint64()
	}
	prng := rand.New(rand.NewSource(99))
	hot := present[:16]
	keys := make([]uint64, 8192)
	for i := range keys {
		switch prng.Intn(4) {
		case 0:
			keys[i] = hot[prng.Intn(len(hot))] // duplicates across lanes
		case 1:
			keys[i] = prng.Uint64() // almost surely absent
		default:
			keys[i] = present[prng.Intn(len(present))]
		}
	}

	results := make([]LookupResult, len(keys))
	if err := par.LookupBatch(keys, results); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, k := range keys {
		want, err := serial.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if results[i] != want {
			t.Fatalf("key %d (%#x): parallel %+v, serial %+v", i, k, results[i], want)
		}
		if want.Found {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("degenerate probe stream: no hits")
	}
	if ss, ps := serial.Stats(), par.Stats(); ss != ps {
		t.Fatalf("core counters diverge:\nserial   %+v\nparallel %+v", ss, ps)
	}
}

func TestParallelInsertBatchMatchesSerial(t *testing.T) {
	cfgS, _ := testConfig(t)
	cfgP, _ := testConfig(t)
	serial := mustNew(t, cfgS)
	par := mustNew(t, cfgP)
	par.SetParallel(4, GoRunner)

	// Enough inserts to wrap the incarnation ring (evictions), with
	// duplicate-heavy windows exercising the last-write-wins memo under
	// precomputed routes.
	rng := rand.New(rand.NewSource(401))
	universe := make([]uint64, 30000)
	for i := range universe {
		universe[i] = rng.Uint64()
	}
	const window = 1500
	keys := make([]uint64, window)
	vals := make([]uint64, window)
	seq := uint64(0)
	for round := 0; round < 80; round++ {
		for i := range keys {
			keys[i] = universe[rng.Intn(len(universe))]
			seq++
			vals[i] = seq
		}
		for i := range keys {
			if err := serial.Insert(keys[i], vals[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := par.InsertBatch(keys, vals); err != nil {
			t.Fatal(err)
		}
		// Interleave batched deletes through the same parallel route path.
		if round%5 == 4 {
			del := keys[:97]
			for _, k := range del {
				if err := serial.Delete(k); err != nil {
					t.Fatal(err)
				}
			}
			if err := par.DeleteBatch(del); err != nil {
				t.Fatal(err)
			}
		}
	}
	ss, ps := serial.Stats(), par.Stats()
	if ss != ps {
		t.Fatalf("core counters diverge:\nserial   %+v\nparallel %+v", ss, ps)
	}
	if ss.Evictions == 0 || ss.Flushes == 0 {
		t.Fatalf("degenerate stream (flushes=%d evictions=%d); retune the test", ss.Flushes, ss.Evictions)
	}
	// Post-state equivalence: every universe key answers identically.
	for _, k := range universe {
		sres, err := serial.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := par.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if sres != pres {
			t.Fatalf("post-state lookup(%#x): serial %+v, parallel %+v", k, sres, pres)
		}
	}
}
