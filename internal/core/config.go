// Package core implements BufferHash, the paper's primary contribution
// (§5): a flash-friendly hash table built from partitioned super tables,
// each holding an in-DRAM cuckoo-hash buffer, a circular table of k in-flash
// incarnations, and per-incarnation Bloom filters organized bit-sliced with
// a sliding window.
//
// The package operates in virtual time: CPU costs and device I/O advance
// the configured vclock.Clock, so callers measure operation latencies by
// reading the clock around calls (the clam package does exactly that).
//
// BufferHash is not safe for concurrent use; the clam facade serializes
// access. This mirrors the paper's design point that flash I/Os are
// blocking operations (§5.2).
//
// Lookups come in two shapes sharing one probe-resolution path. Lookup is
// the paper's serial walk: buffer, Bloom filters, then one blocking page
// read per candidate incarnation, newest first. LookupBatch runs the same
// logic as a three-phase pipeline — phase A answers every key's in-memory
// portion with zero I/O, phase B gathers each probing round's page reads,
// dedupes same-page keys, sorts by device address and submits them through
// storage.BatchReader so their virtual latency overlaps across the
// device's queue lanes, and phase C resolves pages with exactly the serial
// path's newest-first, stop-on-hit semantics. Counters are identical
// between the two paths; only time (and physical read count, via dedupe)
// differs. See batch.go.
//
// Inserts mirror that shape. Insert is the serial path: buffer update,
// with a full buffer flushed to flash as a blocking incarnation write.
// InsertBatch applies a whole batch with flush writes deferred into pooled
// image buffers, then issues them as one address-sorted storage.BatchWriter
// submission whose service overlaps across the device's queue lanes —
// state and structural counters stay byte-identical to the serial loop.
// See insertbatch.go.
package core

import (
	"fmt"
	"time"

	"repro/internal/bloom"
	"repro/internal/hashutil"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// EvictionPolicy selects what happens to the oldest incarnation when space
// is needed (§5.1.2).
type EvictionPolicy int

// Eviction policies.
const (
	// FIFO evicts the oldest incarnation wholesale (full discard). This is
	// the paper's default and the policy commercial WAN optimizers use.
	FIFO EvictionPolicy = iota
	// LRU is FIFO plus re-insertion of items on every flash hit, so
	// recently used items survive in newer incarnations.
	LRU
	// UpdateBased is partial discard retaining only live entries: those
	// not deleted and not superseded by a newer version (checked against
	// the delete list and the in-memory Bloom filters).
	UpdateBased
	// PriorityBased is partial discard retaining entries the Retain
	// callback approves (e.g. priority above a threshold).
	PriorityBased
)

// String returns the policy name.
func (p EvictionPolicy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LRU:
		return "lru"
	case UpdateBased:
		return "update"
	case PriorityBased:
		return "priority"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Layout selects how incarnations are placed on the device (§5.2).
type Layout int

// Layouts.
const (
	// AutoLayout picks SharedLog for devices without an Eraser interface
	// (SSDs, disks) and PartitionedRegions for raw flash chips.
	AutoLayout Layout = iota
	// SharedLog writes incarnations from all super tables sequentially
	// into one device-wide circular log, the paper's SSD strategy: it
	// avoids interleaving per-partition write streams, which SSD FTLs
	// handle poorly. Eviction is FIFO over the whole key space.
	SharedLog
	// PartitionedRegions statically assigns each super table a circular
	// region, the paper's flash-chip strategy; erase blocks are recycled
	// within the region.
	PartitionedRegions
)

// CPUCosts models the in-memory computation costs charged to the virtual
// clock. Defaults are calibrated so that the paper's headline averages
// (≈0.006 ms inserts, ≈0.06 ms lookups at 40% LSR on the Intel SSD, §7.2.1)
// are reproduced.
type CPUCosts struct {
	BufferInsert    time.Duration // cuckoo insert incl. partition hashing
	BufferLookup    time.Duration // cuckoo get + delete-list check
	BloomAdd        time.Duration // staging filter update
	BloomQuery      time.Duration // bit-sliced query over all incarnations
	BloomQueryNaive time.Duration // query without bit-slicing (§7.3.1 ablation)
	FlushSerialize  time.Duration // serialize + reset one buffer
	EvictScanEntry  time.Duration // per-entry partial-discard scan work
}

// DefaultCPUCosts returns the calibrated cost model.
func DefaultCPUCosts() CPUCosts {
	return CPUCosts{
		BufferInsert:    3 * time.Microsecond,
		BufferLookup:    1500 * time.Nanosecond,
		BloomAdd:        300 * time.Nanosecond,
		BloomQuery:      500 * time.Nanosecond,
		BloomQueryNaive: 2500 * time.Nanosecond,
		FlushSerialize:  1500 * time.Microsecond,
		EvictScanEntry:  150 * time.Nanosecond,
	}
}

// Config assembles a BufferHash instance.
type Config struct {
	// Device stores the incarnation tables. Its capacity must hold
	// NumSuperTables() × NumIncarnations images of BufferBytes each.
	Device storage.Device
	// Clock is the shared virtual clock.
	Clock *vclock.Clock

	// PartitionBits is k1: the number of super tables is 2^k1 (§5.2).
	PartitionBits uint
	// BufferBytes is B′, the per-super-table buffer size. It must be a
	// multiple of the device page size; the paper's default is 128 KB
	// (§6.4: match the flash block size).
	BufferBytes int
	// NumIncarnations is k, the incarnations per super table; the paper's
	// configuration yields k = F/B = 16 (§7.1.1).
	NumIncarnations int

	// FilterBitsPerEntry sizes each incarnation's Bloom filter as
	// FilterBitsPerEntry × (entries per buffer). 16 bits/entry matches the
	// paper's candidate configuration. Ignored if DisableBloom.
	FilterBitsPerEntry int
	// FilterHashes overrides the number of hash functions; 0 = optimal
	// h = (m/n)·ln2 (§6.2).
	FilterHashes int

	// Policy is the eviction policy; Retain is consulted by
	// PriorityBased eviction (return true to keep the entry).
	Policy EvictionPolicy
	Retain func(key, value uint64) bool

	// Layout selects device placement; AutoLayout is recommended.
	Layout Layout

	// Seed makes hashing deterministic.
	Seed uint64

	// CPU is the in-memory cost model; zero value = DefaultCPUCosts.
	CPU CPUCosts

	// DisableBloom turns off Bloom filters (§7.3.1 ablation): every live
	// incarnation is probed until the key is found.
	DisableBloom bool
	// DisableBitslice replaces the bit-sliced bank with k+1 separate
	// filters (§7.3.1 ablation); answers are identical, CPU cost higher.
	DisableBitslice bool
}

// NumSuperTables returns 2^PartitionBits.
func (c Config) NumSuperTables() int { return 1 << c.PartitionBits }

// EntriesPerBuffer returns n′, the entry capacity of one buffer at the 50%
// cuckoo utilization cap.
func (c Config) EntriesPerBuffer() int {
	return c.BufferBytes / hashutil.EntrySize / 2
}

// FilterBits returns m′, the Bloom bits per incarnation filter.
func (c Config) FilterBits() uint64 {
	return uint64(c.FilterBitsPerEntry) * uint64(c.EntriesPerBuffer())
}

// filterHashes resolves the hash count.
func (c Config) filterHashes() int {
	if c.FilterHashes > 0 {
		return c.FilterHashes
	}
	return bloom.OptimalHashes(c.FilterBits(), c.EntriesPerBuffer())
}

func (c *Config) validate() error {
	if c.Device == nil || c.Clock == nil {
		return fmt.Errorf("core: Device and Clock are required")
	}
	if c.PartitionBits > 24 {
		return fmt.Errorf("core: PartitionBits %d too large", c.PartitionBits)
	}
	if c.NumIncarnations < 1 || c.NumIncarnations > 64 {
		return fmt.Errorf("core: NumIncarnations %d out of [1,64]", c.NumIncarnations)
	}
	g := c.Device.Geometry()
	if c.BufferBytes <= 0 || c.BufferBytes%g.PageSize != 0 {
		return fmt.Errorf("core: BufferBytes %d must be a positive multiple of the device page size %d",
			c.BufferBytes, g.PageSize)
	}
	if !c.DisableBloom && c.FilterBitsPerEntry <= 0 {
		return fmt.Errorf("core: FilterBitsPerEntry must be positive (got %d)", c.FilterBitsPerEntry)
	}
	if c.Policy == PriorityBased && c.Retain == nil {
		return fmt.Errorf("core: PriorityBased eviction requires a Retain callback")
	}
	need := int64(c.NumSuperTables()) * int64(c.NumIncarnations) * int64(c.BufferBytes)
	if need > g.Capacity {
		return fmt.Errorf("core: device capacity %d < required %d (%d super tables × %d incarnations × %d B)",
			g.Capacity, need, c.NumSuperTables(), c.NumIncarnations, c.BufferBytes)
	}
	_, erasable := c.Device.(storage.Eraser)
	if erasable && c.layout() == PartitionedRegions && g.BlockSize > 0 && c.BufferBytes%g.BlockSize != 0 {
		// Sub-block incarnations would force the C3 valid-page copying of
		// §6.1; the paper's own tuning (§6.4) concludes the buffer should
		// match the erase block, so the implementation requires it and the
		// sub-block regime is covered analytically by costmodel.
		return fmt.Errorf("core: on raw flash, BufferBytes %d must be a multiple of the erase block %d",
			c.BufferBytes, g.BlockSize)
	}
	if c.CPU == (CPUCosts{}) {
		c.CPU = DefaultCPUCosts()
	}
	return nil
}

// layout resolves AutoLayout. Raw flash chips always use per-super-table
// regions. On SSDs and disks, FIFO/LRU use the shared circular log of §5.2;
// the partial-discard policies use per-partition rings, because their
// eviction scan must run in the evicting super table — this matches the
// paper's actual implementation, which kept "each partition in a separate
// file with all its incarnations" (§7.1).
func (c Config) layout() Layout {
	if c.Layout != AutoLayout {
		return c.Layout
	}
	if _, ok := c.Device.(storage.Eraser); ok {
		return PartitionedRegions
	}
	if c.Policy == UpdateBased || c.Policy == PriorityBased {
		return PartitionedRegions
	}
	return SharedLog
}
