package core

import "testing"

func TestValuePtrRoundTrip(t *testing.T) {
	cases := []struct {
		off int64
		n   int
	}{
		{0, 0},
		{0, 1},
		{1, 16},
		{4096, 8 + 20 + 4096},
		{MaxValuePtrOff, MaxValuePtrLen},
		{MaxValuePtrOff - 1, 1},
	}
	for _, c := range cases {
		word, ok := EncodeValuePtr(c.off, c.n)
		if !ok {
			t.Fatalf("EncodeValuePtr(%d, %d) rejected", c.off, c.n)
		}
		off, n, ok := DecodeValuePtr(word)
		if !ok || off != c.off || n != c.n {
			t.Fatalf("round trip (%d, %d) -> %#x -> (%d, %d, %v)", c.off, c.n, word, off, n, ok)
		}
	}
}

func TestValuePtrRejectsOutOfRange(t *testing.T) {
	for _, c := range []struct {
		off int64
		n   int
	}{
		{-1, 0},
		{0, -1},
		{MaxValuePtrOff + 1, 0},
		{0, MaxValuePtrLen + 1},
	} {
		if _, ok := EncodeValuePtr(c.off, c.n); ok {
			t.Errorf("EncodeValuePtr(%d, %d) accepted out-of-range location", c.off, c.n)
		}
	}
}

func TestValuePtrInlineValuesDecodeAsNotPointers(t *testing.T) {
	for _, v := range []uint64{0, 1, 42, 1<<63 - 1} {
		if _, _, ok := DecodeValuePtr(v); ok {
			t.Errorf("inline value %#x decoded as pointer", v)
		}
	}
	// A value with the tag bit set decodes as a pointer even if it was
	// stored through the U64 path; the byte path's key verification is what
	// keeps that safe, not the decoder.
	if _, _, ok := DecodeValuePtr(valuePtrTag | 7); !ok {
		t.Error("tagged word did not decode")
	}
}

func TestLookupResultValuePointer(t *testing.T) {
	word, _ := EncodeValuePtr(512, 64)
	r := LookupResult{Value: word, Found: true}
	off, n, ok := r.ValuePointer()
	if !ok || off != 512 || n != 64 {
		t.Fatalf("ValuePointer = (%d, %d, %v)", off, n, ok)
	}
	r.Found = false
	if _, _, ok := r.ValuePointer(); ok {
		t.Fatal("missed lookup produced a pointer")
	}
	r = LookupResult{Value: 99, Found: true}
	if _, _, ok := r.ValuePointer(); ok {
		t.Fatal("inline value produced a pointer")
	}
}
