package core

import (
	"fmt"
	"time"

	"repro/internal/bitslice"
	"repro/internal/cuckoo"
	"repro/internal/hashutil"
	"repro/internal/storage"
)

// LookupResult reports the outcome of a lookup and its flash I/O footprint,
// the quantity behind Table 2 of the paper.
type LookupResult struct {
	Value uint64
	Found bool
	// FlashReads is the number of incarnation pages read from flash.
	FlashReads int
	// Spurious counts reads that found nothing (Bloom false positives).
	Spurious int
}

// BufferHash is the partitioned data structure of §5.2: 2^k1 super tables,
// each owning a buffer, k incarnations and Bloom filters. Not safe for
// concurrent use.
type BufferHash struct {
	cfg    Config
	layout Layout
	parts  []*superTable
	params []cuckoo.Params // per-partition cuckoo parameters
	stats  Stats

	// Shared-log layout state (§5.2: "uses the entire SSD as a single
	// circular list"): slot i holds the image written at seq slotSeq[i] by
	// partition slotOwner[i].
	slotOwner []int32
	slotSeq   []uint64
	nextSlot  int64
	seq       uint64

	imageSize int
	scratch   []byte // flush serialization buffer (live during flush)
	imageBuf  []byte // partial-discard image scan buffer (live during evictOldest)
	pageBuf   []byte
	batch     batchScratch

	// deferCPU batches chargeCPU calls into cpuDebt (see LookupBatch).
	deferCPU bool
	cpuDebt  time.Duration
}

// New builds a BufferHash over the configured device. The configuration is
// validated eagerly.
func New(cfg Config) (*BufferHash, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := &BufferHash{
		cfg:       cfg,
		layout:    cfg.layout(),
		imageSize: cfg.BufferBytes,
	}
	nt := cfg.NumSuperTables()
	b.params = make([]cuckoo.Params, nt)
	pageSlots := cfg.Device.Geometry().PageSize / hashutil.EntrySize
	for i := range b.params {
		b.params[i] = cuckoo.Params{
			NSlots:    cfg.BufferBytes / hashutil.EntrySize,
			PageSlots: pageSlots,
			Seed:      hashutil.Hash64Seed(uint64(i), cfg.Seed),
		}
		if err := b.params[i].Validate(); err != nil {
			return nil, err
		}
	}
	b.parts = make([]*superTable, nt)
	for i := range b.parts {
		b.parts[i] = newSuperTable(b, i)
	}
	if b.layout == SharedLog {
		slots := int64(nt) * int64(cfg.NumIncarnations)
		b.slotOwner = make([]int32, slots)
		b.slotSeq = make([]uint64, slots)
		for i := range b.slotOwner {
			b.slotOwner[i] = -1
		}
	}
	b.scratch = make([]byte, b.imageSize)
	b.pageBuf = make([]byte, cfg.Device.Geometry().PageSize)
	return b, nil
}

// Config returns the (validated) configuration.
func (b *BufferHash) Config() Config { return b.cfg }

// tableParams returns the cuckoo parameters of partition idx.
func (b *BufferHash) tableParams(idx int) cuckoo.Params { return b.params[idx] }

// newSliceBank builds the bit-sliced Bloom bank for one super table.
func (b *BufferHash) newSliceBank(m uint64, h int) filterBank {
	return bitslice.NewBank(m, b.cfg.NumIncarnations, h)
}

// scratchImage returns the shared serialization buffer.
func (b *BufferHash) scratchImage() []byte { return b.scratch }

// chargeCPU advances the virtual clock by a CPU cost. During the batched
// lookup pipeline's memory phase the charges accrue into one deferred
// advance (same virtual total, far fewer clock atomics).
func (b *BufferHash) chargeCPU(d time.Duration) {
	if d <= 0 {
		return
	}
	if b.deferCPU {
		b.cpuDebt += d
		return
	}
	b.cfg.Clock.Advance(d)
}

// route hashes a user key to (super table, in-partition key). The first k1
// bits of the hash select the partition; the rest form the in-partition key
// (§5.2), normalized to be non-zero for the cuckoo tables.
func (b *BufferHash) route(key uint64) (*superTable, uint64) {
	h := hashutil.Mix64(key ^ hashutil.Mix64(b.cfg.Seed))
	p, rest := hashutil.Split(h, b.cfg.PartitionBits)
	if rest == 0 {
		rest = 1
	}
	return b.parts[p], rest
}

// Insert adds or updates a (key, value) mapping.
func (b *BufferHash) Insert(key, value uint64) error {
	st, kh := b.route(key)
	b.stats.Inserts++
	return st.insert(kh, value)
}

// Update is insertion with lazy-update semantics (§5.1.1): the new value
// shadows older versions because lookups probe incarnations newest-first.
// It is an alias of Insert; both are provided to mirror the paper's API.
func (b *BufferHash) Update(key, value uint64) error {
	return b.Insert(key, value)
}

// Delete lazily removes a key (§5.1.1): it is dropped from the buffer if
// still there and recorded in the in-memory delete list; flash space is
// reclaimed at eviction time.
func (b *BufferHash) Delete(key uint64) error {
	st, kh := b.route(key)
	b.stats.Deletes++
	st.del(kh)
	return nil
}

// Lookup returns the latest value for key.
func (b *BufferHash) Lookup(key uint64) (LookupResult, error) {
	st, kh := b.route(key)
	res, err := st.lookup(kh)
	if err != nil {
		return res, err
	}
	b.stats.recordLookup(res)
	return res, nil
}

// Flush forces every super table with buffered entries to write its buffer
// to flash. Mainly useful in tests and when quiescing.
func (b *BufferHash) Flush() error {
	for _, st := range b.parts {
		if st.buf.Len() > 0 {
			if err := st.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// probeAddr returns the device address and length of the single flash page
// that can hold kh within an incarnation of st (§5.1.1). Both the serial
// and batched lookup paths compute probe targets through here.
func (b *BufferHash) probeAddr(st *superTable, inc incarnation, kh uint64) (addr int64, n int) {
	params := b.params[st.idx]
	page := params.PageIndex(kh)
	off, n := params.PageByteRange(page)
	return inc.addr + int64(off), n
}

// readProbe reads kh's page of one incarnation image into the shared page
// buffer (serial lookup path; the batched path reads through a
// storage.BatchReader instead).
func (b *BufferHash) readProbe(st *superTable, inc incarnation, kh uint64) ([]byte, error) {
	addr, n := b.probeAddr(st, inc, kh)
	buf := b.pageBuf[:n]
	if _, err := b.cfg.Device.ReadAt(buf, addr); err != nil {
		return nil, fmt.Errorf("core: incarnation read: %w", err)
	}
	return buf, nil
}

// readImage reads a whole incarnation image (partial-discard scan path)
// into a per-BufferHash scratch buffer. The buffer is distinct from
// `scratch`, which is live during flush — the caller scans the image while
// the flush path may still serialize into `scratch` — and is only valid
// until the next readImage call.
func (b *BufferHash) readImage(addr int64) ([]byte, error) {
	if b.imageBuf == nil {
		b.imageBuf = make([]byte, b.imageSize)
	}
	img := b.imageBuf
	if _, err := b.cfg.Device.ReadAt(img, addr); err != nil {
		return nil, fmt.Errorf("core: image read: %w", err)
	}
	return img, nil
}

// placeImage allocates the flash address for a new incarnation of st.
func (b *BufferHash) placeImage(st *superTable) (addr int64, seq uint64, err error) {
	b.seq++
	switch b.layout {
	case SharedLog:
		slot := b.nextSlot
		b.nextSlot = (b.nextSlot + 1) % int64(len(b.slotOwner))
		// Reclaim the slot from its previous owner: global FIFO eviction.
		if prev := b.slotOwner[slot]; prev >= 0 {
			b.parts[prev].evictOldestExternal(b.slotSeq[slot])
		}
		b.slotOwner[slot] = int32(st.idx)
		b.slotSeq[slot] = b.seq
		return slot * int64(b.imageSize), b.seq, nil
	case PartitionedRegions:
		k := int64(b.cfg.NumIncarnations)
		region := int64(st.idx) * k * int64(b.imageSize)
		slot := int64(st.flushGen) % k
		addr = region + slot*int64(b.imageSize)
		// Recycle the region circularly. Raw flash requires an erase
		// before rewrite once the ring has wrapped; SSDs and disks are
		// simply overwritten in place (the paper's file-per-partition
		// implementation, §7.1).
		if st.flushGen >= uint64(k) {
			if eraser, ok := b.cfg.Device.(storage.Eraser); ok {
				if _, err := eraser.Erase(addr, int64(b.imageSize)); err != nil {
					return 0, 0, fmt.Errorf("core: region erase: %w", err)
				}
			}
		}
		return addr, b.seq, nil
	default:
		return 0, 0, fmt.Errorf("core: unknown layout %d", b.layout)
	}
}

// Len returns the total number of entries currently buffered in DRAM (the
// in-flash population is bounded by super tables × k × entries/incarnation).
func (b *BufferHash) Len() int {
	n := 0
	for _, st := range b.parts {
		n += st.buf.Len()
	}
	return n
}

// MemoryFootprint reports the DRAM consumed by the structure, split by
// component (used to validate the §6.4 memory budget).
type MemoryFootprint struct {
	BufferBytes     int64 // all cuckoo buffers
	BloomBytes      int64 // all filter banks (incl. sliding-window padding)
	DeleteListBytes int64 // approximate
	MetadataBytes   int64 // incarnation bookkeeping
}

// Total returns the footprint sum.
func (m MemoryFootprint) Total() int64 {
	return m.BufferBytes + m.BloomBytes + m.DeleteListBytes + m.MetadataBytes
}

// Add accumulates another footprint into m (sharded aggregation).
func (m *MemoryFootprint) Add(o MemoryFootprint) {
	m.BufferBytes += o.BufferBytes
	m.BloomBytes += o.BloomBytes
	m.DeleteListBytes += o.DeleteListBytes
	m.MetadataBytes += o.MetadataBytes
}

// MemoryFootprint computes the current DRAM footprint.
func (b *BufferHash) MemoryFootprint() MemoryFootprint {
	var m MemoryFootprint
	for _, st := range b.parts {
		m.BufferBytes += int64(b.cfg.BufferBytes)
		if st.bank != nil {
			m.BloomBytes += int64(st.bank.MemoryBits() / 8)
		}
		m.DeleteListBytes += int64(len(st.deleteList)) * 16
		m.MetadataBytes += int64(len(st.incs)) * 16
	}
	return m
}

// Stats returns a snapshot of operation counters.
func (b *BufferHash) Stats() Stats { return b.stats }

// ResetStats zeroes the counters (latency histograms are owned by callers).
func (b *BufferHash) ResetStats() { b.stats = Stats{} }
