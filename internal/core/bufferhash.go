package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/bitslice"
	"repro/internal/cuckoo"
	"repro/internal/hashutil"
	"repro/internal/storage"
)

// LookupResult reports the outcome of a lookup and its flash I/O footprint,
// the quantity behind Table 2 of the paper.
type LookupResult struct {
	Value uint64
	Found bool
	// FlashReads is the number of incarnation pages read from flash.
	FlashReads int
	// Spurious counts reads that found nothing (Bloom false positives).
	Spurious int
}

// BufferHash is the partitioned data structure of §5.2: 2^k1 super tables,
// each owning a buffer, k incarnations and Bloom filters. Not safe for
// concurrent use.
type BufferHash struct {
	cfg    Config
	layout Layout
	parts  []*superTable
	params []cuckoo.Params // per-partition cuckoo parameters
	stats  Stats

	// Shared-log layout state (§5.2: "uses the entire SSD as a single
	// circular list"): slot i holds the image written at seq slotSeq[i] by
	// partition slotOwner[i].
	slotOwner []int32
	slotSeq   []uint64
	nextSlot  int64
	seq       uint64

	imageSize int
	imgPool   [][]byte // free image-sized buffers (flush serialization, eviction scans)
	pageBuf   []byte
	batch     batchScratch
	insert    insertScratch

	// deferWrites redirects incarnation writes into `staged` instead of the
	// device (InsertBatch phase B); staged images are address-sorted and
	// issued as one overlapped BatchWriter submission at the end of the
	// batch. While a write is staged, readImage serves its address from the
	// staged buffer, so partial-discard scans inside the same batch see the
	// bytes the device will eventually hold.
	deferWrites bool
	staged      []stagedWrite

	// deferCPU batches chargeCPU calls into cpuDebt (see LookupBatch).
	// cpuDebt is atomic — the "deferred-clock accumulator" — because a
	// parallel phase A charges it from several lanes at once; the serial
	// paths pay an uncontended atomic add for the same code.
	deferCPU bool
	cpuDebt  atomic.Int64

	// Phase-A partitioner state (see phasea.go): an optional runner that
	// spreads a batch's memory-resolution phase over cooperating workers,
	// and the per-lane private scratch.
	parWidth int
	parRun   PhaseRunner
	lanes    []*phaseLane
}

// stagedWrite is one deferred incarnation write.
type stagedWrite struct {
	buf  []byte
	addr int64
}

// New builds a BufferHash over the configured device. The configuration is
// validated eagerly.
func New(cfg Config) (*BufferHash, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := &BufferHash{
		cfg:       cfg,
		layout:    cfg.layout(),
		imageSize: cfg.BufferBytes,
	}
	nt := cfg.NumSuperTables()
	b.params = make([]cuckoo.Params, nt)
	pageSlots := cfg.Device.Geometry().PageSize / hashutil.EntrySize
	for i := range b.params {
		b.params[i] = cuckoo.Params{
			NSlots:    cfg.BufferBytes / hashutil.EntrySize,
			PageSlots: pageSlots,
			Seed:      hashutil.Hash64Seed(uint64(i), cfg.Seed),
		}
		if err := b.params[i].Validate(); err != nil {
			return nil, err
		}
	}
	b.parts = make([]*superTable, nt)
	for i := range b.parts {
		b.parts[i] = newSuperTable(b, i)
	}
	if b.layout == SharedLog {
		slots := int64(nt) * int64(cfg.NumIncarnations)
		b.slotOwner = make([]int32, slots)
		b.slotSeq = make([]uint64, slots)
		for i := range b.slotOwner {
			b.slotOwner[i] = -1
		}
	}
	b.pageBuf = make([]byte, cfg.Device.Geometry().PageSize)
	return b, nil
}

// Config returns the (validated) configuration.
func (b *BufferHash) Config() Config { return b.cfg }

// tableParams returns the cuckoo parameters of partition idx.
func (b *BufferHash) tableParams(idx int) cuckoo.Params { return b.params[idx] }

// newSliceBank builds the bit-sliced Bloom bank for one super table.
func (b *BufferHash) newSliceBank(m uint64, h int) filterBank {
	return bitslice.NewBank(m, b.cfg.NumIncarnations, h)
}

// maxPooledImages caps how many free image buffers are retained between
// batches; beyond that, buffers are dropped to the garbage collector so a
// pathological cascade's high-water mark is not held forever.
const maxPooledImages = 16

// acquireImage returns an image-sized buffer from the pool (or a fresh
// one). Flush serialization and eviction scans each own a distinct buffer
// until they release it, so a flush can never alias a scan in progress.
func (b *BufferHash) acquireImage() []byte {
	if n := len(b.imgPool); n > 0 {
		img := b.imgPool[n-1]
		b.imgPool = b.imgPool[:n-1]
		return img
	}
	return make([]byte, b.imageSize)
}

// releaseImage returns an image buffer to the pool.
func (b *BufferHash) releaseImage(img []byte) {
	if len(b.imgPool) < maxPooledImages {
		b.imgPool = append(b.imgPool, img)
	}
}

// stageWrite defers an incarnation write until the end of the insert
// batch. A second image staged at the same address replaces the first: the
// slot was recycled within the batch, so the earlier image is dead, nothing
// can read it anymore, and on raw flash the slot's erase has already been
// issued for the newer image.
func (b *BufferHash) stageWrite(img []byte, addr int64) {
	for i := range b.staged {
		if b.staged[i].addr == addr {
			b.releaseImage(b.staged[i].buf)
			b.staged[i].buf = img
			return
		}
	}
	b.staged = append(b.staged, stagedWrite{buf: img, addr: addr})
}

// flushStaged issues every staged incarnation write as one address-sorted
// overlapped submission through the device's BatchWriter (plain devices
// fall back to a sorted serial loop) and recycles the image buffers.
func (b *BufferHash) flushStaged() error {
	if len(b.staged) == 0 {
		return nil
	}
	is := &b.insert
	is.reqs = is.reqs[:0]
	for _, s := range b.staged {
		is.reqs = append(is.reqs, storage.WriteReq{P: s.buf, Off: s.addr})
	}
	var err error
	if bw, ok := b.cfg.Device.(storage.BatchWriter); ok {
		_, err = bw.WriteBatch(is.reqs)
	} else {
		_, err = storage.WriteBatchFallback(b.cfg.Device, is.reqs)
	}
	for _, s := range b.staged {
		b.releaseImage(s.buf)
	}
	b.staged = b.staged[:0]
	if err != nil {
		return fmt.Errorf("core: batched incarnation write: %w", err)
	}
	return nil
}

// chargeCPU advances the virtual clock by a CPU cost. During a batched
// pipeline's memory phase the charges accrue into one deferred advance
// (same virtual total, far fewer clock advances). The accumulator is
// atomic so a parallel phase A's lanes can charge concurrently; addition
// commutes, so the settled total is byte-identical to the serial order.
func (b *BufferHash) chargeCPU(d time.Duration) {
	if d <= 0 {
		return
	}
	if b.deferCPU {
		b.cpuDebt.Add(int64(d))
		return
	}
	b.cfg.Clock.Advance(d)
}

// settleCPUDebt lands the accumulated deferred CPU charges on the clock in
// one advance (the batched pipelines' phase-C closing step).
func (b *BufferHash) settleCPUDebt() {
	if d := b.cpuDebt.Swap(0); d > 0 {
		b.cfg.Clock.Advance(time.Duration(d))
	}
}

// routeHash is the pure half of route: it hashes a user key to (partition
// index, in-partition key) without touching the structure. The first k1
// bits of the hash select the partition; the rest form the in-partition key
// (§5.2), normalized to be non-zero for the cuckoo tables. Being a pure
// bijection, it is safe to precompute from parallel phase-A lanes.
func (b *BufferHash) routeHash(key uint64) (part int, kh uint64) {
	h := hashutil.Mix64(key ^ hashutil.Mix64(b.cfg.Seed))
	p, rest := hashutil.Split(h, b.cfg.PartitionBits)
	if rest == 0 {
		rest = 1
	}
	return int(p), rest
}

// route hashes a user key to (super table, in-partition key).
func (b *BufferHash) route(key uint64) (*superTable, uint64) {
	p, kh := b.routeHash(key)
	return b.parts[p], kh
}

// Insert adds or updates a (key, value) mapping.
func (b *BufferHash) Insert(key, value uint64) error {
	st, kh := b.route(key)
	b.stats.Inserts++
	return st.insert(kh, value)
}

// Update is insertion with lazy-update semantics (§5.1.1): the new value
// shadows older versions because lookups probe incarnations newest-first.
// It is an alias of Insert; both are provided to mirror the paper's API.
func (b *BufferHash) Update(key, value uint64) error {
	return b.Insert(key, value)
}

// Delete lazily removes a key (§5.1.1): it is dropped from the buffer if
// still there and recorded in the in-memory delete list; flash space is
// reclaimed at eviction time.
func (b *BufferHash) Delete(key uint64) error {
	st, kh := b.route(key)
	b.stats.Deletes++
	st.del(kh)
	return nil
}

// Lookup returns the latest value for key.
func (b *BufferHash) Lookup(key uint64) (LookupResult, error) {
	st, kh := b.route(key)
	res, err := st.lookup(kh)
	if err != nil {
		return res, err
	}
	b.stats.recordLookup(res)
	return res, nil
}

// Flush forces every super table with buffered entries to write its buffer
// to flash. Mainly useful in tests and when quiescing.
func (b *BufferHash) Flush() error {
	for _, st := range b.parts {
		if st.buf.Len() > 0 {
			if err := st.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// probeAddr returns the device address and length of the single flash page
// that can hold kh within an incarnation of st (§5.1.1). Both the serial
// and batched lookup paths compute probe targets through here.
func (b *BufferHash) probeAddr(st *superTable, inc incarnation, kh uint64) (addr int64, n int) {
	params := b.params[st.idx]
	page := params.PageIndex(kh)
	off, n := params.PageByteRange(page)
	return inc.addr + int64(off), n
}

// readProbe reads kh's page of one incarnation image into the shared page
// buffer (serial lookup path; the batched path reads through a
// storage.BatchReader instead).
func (b *BufferHash) readProbe(st *superTable, inc incarnation, kh uint64) ([]byte, error) {
	addr, n := b.probeAddr(st, inc, kh)
	buf := b.pageBuf[:n]
	if _, err := b.cfg.Device.ReadAt(buf, addr); err != nil {
		return nil, fmt.Errorf("core: incarnation read: %w", err)
	}
	return buf, nil
}

// readImage reads a whole incarnation image (partial-discard scan path)
// into a pooled buffer owned by the caller, who returns it with
// releaseImage when the scan is done. Each call gets a distinct buffer, so
// an image stays valid across interleaved flushes and further reads.
// During a batched insert, an address whose write is still staged is
// served from the staged buffer — the bytes the device will hold once the
// batch issues — without a device read.
func (b *BufferHash) readImage(addr int64) ([]byte, error) {
	img := b.acquireImage()
	if b.deferWrites {
		for i := range b.staged {
			if b.staged[i].addr == addr {
				copy(img, b.staged[i].buf)
				return img, nil
			}
		}
	}
	if _, err := b.cfg.Device.ReadAt(img, addr); err != nil {
		b.releaseImage(img)
		return nil, fmt.Errorf("core: image read: %w", err)
	}
	return img, nil
}

// placeImage allocates the flash address for a new incarnation of st.
func (b *BufferHash) placeImage(st *superTable) (addr int64, seq uint64, err error) {
	b.seq++
	switch b.layout {
	case SharedLog:
		slot := b.nextSlot
		b.nextSlot = (b.nextSlot + 1) % int64(len(b.slotOwner))
		// Reclaim the slot from its previous owner: global FIFO eviction.
		if prev := b.slotOwner[slot]; prev >= 0 {
			b.parts[prev].evictOldestExternal(b.slotSeq[slot])
		}
		b.slotOwner[slot] = int32(st.idx)
		b.slotSeq[slot] = b.seq
		return slot * int64(b.imageSize), b.seq, nil
	case PartitionedRegions:
		k := int64(b.cfg.NumIncarnations)
		region := int64(st.idx) * k * int64(b.imageSize)
		slot := int64(st.flushGen) % k
		addr = region + slot*int64(b.imageSize)
		// Recycle the region circularly. Raw flash requires an erase
		// before rewrite once the ring has wrapped; SSDs and disks are
		// simply overwritten in place (the paper's file-per-partition
		// implementation, §7.1).
		if st.flushGen >= uint64(k) {
			if eraser, ok := b.cfg.Device.(storage.Eraser); ok {
				if _, err := eraser.Erase(addr, int64(b.imageSize)); err != nil {
					return 0, 0, fmt.Errorf("core: region erase: %w", err)
				}
			}
		}
		return addr, b.seq, nil
	default:
		return 0, 0, fmt.Errorf("core: unknown layout %d", b.layout)
	}
}

// Len returns the total number of entries currently buffered in DRAM (the
// in-flash population is bounded by super tables × k × entries/incarnation).
func (b *BufferHash) Len() int {
	n := 0
	for _, st := range b.parts {
		n += st.buf.Len()
	}
	return n
}

// MemoryFootprint reports the DRAM consumed by the structure, split by
// component (used to validate the §6.4 memory budget).
type MemoryFootprint struct {
	BufferBytes     int64 // all cuckoo buffers
	BloomBytes      int64 // all filter banks (incl. sliding-window padding)
	DeleteListBytes int64 // approximate
	MetadataBytes   int64 // incarnation bookkeeping
}

// Total returns the footprint sum.
func (m MemoryFootprint) Total() int64 {
	return m.BufferBytes + m.BloomBytes + m.DeleteListBytes + m.MetadataBytes
}

// Add accumulates another footprint into m (sharded aggregation).
func (m *MemoryFootprint) Add(o MemoryFootprint) {
	m.BufferBytes += o.BufferBytes
	m.BloomBytes += o.BloomBytes
	m.DeleteListBytes += o.DeleteListBytes
	m.MetadataBytes += o.MetadataBytes
}

// MemoryFootprint computes the current DRAM footprint.
func (b *BufferHash) MemoryFootprint() MemoryFootprint {
	var m MemoryFootprint
	for _, st := range b.parts {
		m.BufferBytes += int64(b.cfg.BufferBytes)
		if st.bank != nil {
			m.BloomBytes += int64(st.bank.MemoryBits() / 8)
		}
		m.DeleteListBytes += int64(len(st.deleteList)) * 16
		m.MetadataBytes += int64(len(st.incs)) * 16
	}
	return m
}

// Stats returns a snapshot of operation counters.
func (b *BufferHash) Stats() Stats { return b.stats }

// ResetStats zeroes the counters (latency histograms are owned by callers).
func (b *BufferHash) ResetStats() { b.stats = Stats{} }
