package core

import (
	"repro/internal/bitslice"
	"repro/internal/bloom"
)

// filterBank is the per-super-table Bloom filter state: one filter per
// incarnation plus a staging filter for the in-memory buffer. Query returns
// a bitmask over window offsets 0..k-1 (0 = oldest position, k-1 = newest);
// offsets holding no live incarnation never match (their columns are zero).
//
// Two implementations exist so the §7.3.1 bit-slicing ablation can compare
// them: bitslice.Bank (the paper's design) and naiveBank (k+1 plain
// filters).
type filterBank interface {
	AddStaging(keyHash uint64)
	QueryStaging(keyHash uint64) bool
	Query(keyHash uint64) uint64
	// QueryWith is Query against caller-owned hash scratch: with distinct
	// scratch per caller it is safe to run concurrently while no writer
	// mutates the bank, which is how parallel phase-A lanes query one hot
	// super table's filters without striped locks.
	QueryWith(keyHash uint64, scratch *[]uint64) uint64
	Rotate()
	MemoryBits() uint64
}

// bitslice.Bank satisfies filterBank directly.
var _ filterBank = (*bitslice.Bank)(nil)

// naiveBank is the non-bit-sliced reference organization: k separate
// incarnation filters plus a staging filter.
type naiveBank struct {
	k       int
	m       uint64
	h       int
	filters []*bloom.Filter // len k, oldest first; nil = empty column
	staging *bloom.Filter
	// spare recycles the evicted filter to avoid reallocating.
	spare *bloom.Filter
}

func newNaiveBank(m uint64, k, h int) *naiveBank {
	return &naiveBank{
		k:       k,
		m:       m,
		h:       h,
		filters: make([]*bloom.Filter, k),
		staging: bloom.New(m, h),
	}
}

func (n *naiveBank) AddStaging(kh uint64) { n.staging.Add(kh) }

func (n *naiveBank) QueryStaging(kh uint64) bool { return n.staging.MayContain(kh) }

func (n *naiveBank) Query(kh uint64) uint64 {
	var mask uint64
	for j, f := range n.filters {
		if f != nil && f.MayContain(kh) {
			mask |= 1 << j
		}
	}
	return mask
}

// QueryWith ignores the scratch: plain Bloom probes keep no per-query
// state, so Query is already safe for concurrent readers.
func (n *naiveBank) QueryWith(kh uint64, _ *[]uint64) uint64 { return n.Query(kh) }

func (n *naiveBank) Rotate() {
	evicted := n.filters[0]
	copy(n.filters, n.filters[1:])
	n.filters[n.k-1] = n.staging
	if evicted != nil {
		evicted.Reset()
		n.spare = evicted
	}
	if n.spare != nil {
		n.staging, n.spare = n.spare, nil
	} else {
		n.staging = bloom.New(n.m, n.h)
	}
}

func (n *naiveBank) MemoryBits() uint64 {
	return uint64(n.k+1) * n.m
}
