package core

import "sync"

// Phase-A partitioning: the intra-batch parallelism seam of the batched
// pipelines.
//
// Both batched engines (batch.go, insertbatch.go) open with a phase A whose
// work is read-mostly memory resolution — route hashing, buffer probes,
// Bloom queries — and close with phases that mutate shared state (probe
// gather and resolution, buffer application, flush staging, the clock
// advance). Phase A is the only part that admits parallelism without
// touching the serial-equivalence contract, and this file provides the
// partitioning machinery:
//
//   - The batch's keys are split into contiguous sub-ranges (one per
//     "lane"), and a PhaseRunner executes the per-lane tasks — inline, on
//     fresh goroutines (GoRunner), or on a cooperating caller's idle
//     workers (the clam batch router's co-scheduling).
//   - Each lane owns private scratch (memo table, pending work list, local
//     counters), so the sub-ranges synchronize by disjointness — striping
//     by sub-range instead of locking shared structures. The one shared
//     accumulator, the deferred CPU charge, is atomic (see
//     BufferHash.chargeCPU).
//   - The drain that follows (phases B/C) is single-sequenced: it settles
//     the CPU debt in one clock advance, merges the lanes' counters (pure
//     sums, so order cannot matter) and concatenates their work lists in
//     lane order, which — lanes being contiguous input sub-ranges — is
//     exactly the input order the serial phase A would have produced.
//
// The contract that makes this exact rather than approximate: phase A of a
// lookup batch performs no mutation, and its per-key outcome is a pure
// function of the structure's state at batch entry. Duplicate keys that
// land in different lanes are recomputed instead of memoized; recomputation
// returns byte-identical results and charges byte-identical CPU costs, by
// the same invariant the serial memo replay relies on. Insert batches keep
// all mutation in the sequenced drain and only lift the route hashing —
// a pure bijection per key — into parallel phase A.

// PhaseRunner executes the lane tasks of a parallel phase A: task(lane)
// for every lane in [0, lanes), in any order and on any goroutines, and
// returns only when all invocations have completed. Implementations must
// establish the usual happens-before edges (the caller's writes before the
// run are visible to tasks; task writes are visible to the caller after).
type PhaseRunner func(lanes int, task func(lane int))

// GoRunner is the self-contained PhaseRunner: lanes-1 fresh goroutines
// plus the calling goroutine. It is what a single CLAM uses when opened
// with parallelism; the sharded batch router substitutes a runner backed
// by its idle workers instead of spawning.
func GoRunner(lanes int, task func(lane int)) {
	if lanes <= 1 {
		if lanes == 1 {
			task(0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(lanes - 1)
	for i := 1; i < lanes; i++ {
		go func(lane int) {
			defer wg.Done()
			task(lane)
		}(i)
	}
	task(0)
	wg.Wait()
}

// phaseLane is one lane's private phase-A scratch, reused across batches.
type phaseLane struct {
	memo    []memoEntry // direct-mapped, memoSlots entries; lane-local
	epoch   uint32
	pending []batchKey
	stats   Stats
	qs      []uint64 // Bloom-query hash scratch (filterBank.QueryWith)
}

// minLaneKeys is the smallest sub-range worth a lane: below this the
// synchronization overhead of handing a lane to another worker exceeds the
// memory-resolution work inside it.
const minLaneKeys = 64

// SetParallel configures the phase-A partitioner: up to width lanes, run by
// runner. width <= 1 or a nil runner restores the serial phase A. The
// BufferHash single-caller contract is unchanged — one batch runs at a
// time; the runner only spreads that batch's phase A over helpers.
func (b *BufferHash) SetParallel(width int, runner PhaseRunner) {
	if width <= 1 || runner == nil {
		b.parWidth, b.parRun = 1, nil
		return
	}
	b.parWidth, b.parRun = width, runner
}

// phaseLanes returns the lane count for an n-key batch: bounded by the
// configured width and by one lane per minLaneKeys keys, 1 when parallel
// phase A is off or not worth it.
func (b *BufferHash) phaseLanes(n int) int {
	if b.parRun == nil || b.parWidth <= 1 {
		return 1
	}
	lanes := n / minLaneKeys
	if lanes > b.parWidth {
		lanes = b.parWidth
	}
	if lanes < 1 {
		lanes = 1
	}
	return lanes
}

// lane returns lane i's scratch, growing the lane set on demand.
func (b *BufferHash) lane(i int) *phaseLane {
	for len(b.lanes) <= i {
		b.lanes = append(b.lanes, &phaseLane{memo: make([]memoEntry, memoSlots)})
	}
	return b.lanes[i]
}

// laneRange returns lane i's contiguous sub-range of an n-key batch split
// into lanes parts: [lo, hi).
func laneRange(n, lanes, i int) (lo, hi int) {
	per := (n + lanes - 1) / lanes
	lo = i * per
	hi = lo + per
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}
