package core

import (
	"fmt"

	"repro/internal/storage"
)

// The batched insert pipeline — the write-side twin of the batched lookup
// pipeline in batch.go. A serial insert loop pays one blocking incarnation
// write per flush, serialized through a single scratch buffer; a batch runs
// in three phases instead:
//
//	A (apply):   every key's buffer update — delete-list revival, cuckoo
//	             insert, Bloom staging — and every flush's *bookkeeping*
//	             (eviction cascades, slot placement, filter-bank rotation,
//	             buffer reset, counters) run exactly as the serial path
//	             would, in input order, with CPU charges accrued into one
//	             deferred clock advance. Only the flush's device write is
//	             withheld: the image is serialized into a pooled buffer and
//	             staged. Duplicate keys whose first occurrence is still in
//	             the buffer are memoized: the occurrence collapses to a
//	             last-write-wins value overwrite, skipping the delete-list
//	             probe and the (idempotent) Bloom staging add while still
//	             charging the serial path's CPU costs and counters.
//	B (write):   the staged images — every flush the batch triggered — are
//	             address-sorted and issued as one storage.BatchWriter
//	             submission, overlapping their service across the device's
//	             queue lanes (SSD NCQ channels, NAND planes, disk elevator;
//	             plain devices fall back to a sorted serial loop). Shared-log
//	             layouts allocate consecutive slots, so a batch's flushes
//	             form sequential runs that pay the fixed write cost once.
//	C (finalize): the deferred CPU debt lands on the clock in one advance
//	             and the image buffers return to the pool.
//
// Phase A applies keys in *input order* rather than super-table order, and
// that is a correctness requirement, not a convenience: the shared-log
// layout assigns flush slots from one global cursor and reclaims them FIFO
// across all super tables, so the global interleaving of flushes decides
// which incarnations survive. Reordering keys by super table would replay
// the same per-table flush sequences against a different global slot
// history and diverge from the serial loop in both eviction counters and
// post-state lookups. Applying in input order makes every structural
// counter and every subsequent lookup byte-identical to a serial Insert
// loop over the same keys (the differential oracle pins this); only the
// device time model — and the physical write pattern, via sorting and
// same-slot collapsing — improves.
//
// Partial-discard policies may need to scan an incarnation whose write is
// still staged (the slot ring wrapped within one batch); readImage serves
// those addresses from the staged buffers, so the scan sees exactly the
// bytes the device will eventually hold.

// insertMemo caches one distinct key's buffer residency so duplicates
// collapse to a value overwrite. An entry is valid only while its super
// table's flushGen is unchanged — a flush moves the buffered entry into an
// incarnation, and the next occurrence must take the full insert path.
type insertMemo struct {
	key      uint64
	epoch    uint32
	table    int32
	flushGen uint64
}

// routedKey is one key's precomputed route: its super-table index and
// in-partition key. Routing is a pure bijection (BufferHash.routeHash), so
// a parallel phase A can fill a batch's route table from sub-range lanes
// while the mutating apply stays strictly sequenced.
type routedKey struct {
	table int32
	kh    uint64
}

// insertScratch is reusable InsertBatch state, grown on demand and reused
// across calls (BufferHash is single-caller by contract).
type insertScratch struct {
	memo   []insertMemo // direct-mapped, memoSlots entries
	epoch  uint32
	reqs   []storage.WriteReq // flushStaged submission scratch
	routes []routedKey        // parallel phase-A route precompute
}

// precomputeRoutes fills is.routes for keys on parallel phase-A lanes and
// reports whether it did; with no runner (or a batch too small to split)
// the apply loop hashes inline as before. Mutation order is untouched —
// only the per-key route hashing moves off the sequenced drain.
func (b *BufferHash) precomputeRoutes(keys []uint64) bool {
	lanes := b.phaseLanes(len(keys))
	if lanes <= 1 {
		return false
	}
	is := &b.insert
	if cap(is.routes) < len(keys) {
		is.routes = make([]routedKey, len(keys))
	}
	routes := is.routes[:len(keys)]
	b.parRun(lanes, func(li int) {
		lo, hi := laneRange(len(keys), lanes, li)
		for i := lo; i < hi; i++ {
			p, kh := b.routeHash(keys[i])
			routes[i] = routedKey{table: int32(p), kh: kh}
		}
	})
	return true
}

// InsertBatch applies len(keys) inserts through the batched pipeline.
// State, structural counters and all subsequent lookups match a serial
// Insert loop over the same (key, value) sequence exactly; virtual time is
// lower because the batch's flush writes are issued as one address-sorted
// overlapped submission and its CPU charges land on the clock in one
// advance. On error the batch may be partially applied (like a failed
// serial loop); any writes already staged are still issued so the device
// matches the structure's bookkeeping.
func (b *BufferHash) InsertBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("core: InsertBatch: %d keys, %d values", len(keys), len(values))
	}
	is := &b.insert
	if is.memo == nil {
		is.memo = make([]insertMemo, memoSlots)
	}
	is.epoch++
	if is.epoch == 0 { // wrapped: stale entries could look current
		clear(is.memo)
		is.epoch = 1
	}
	cfg := &b.cfg

	// Phase A: apply every key in input order with writes deferred. When a
	// phase runner is configured, the read-mostly half — route hashing —
	// is precomputed on parallel lanes first; the mutating apply below is
	// the sequenced drain and consumes the routes in input order.
	b.deferCPU = true
	b.deferWrites = true
	routed := b.precomputeRoutes(keys)
	var applyErr error
	for i, key := range keys {
		var st *superTable
		var kh uint64
		if routed {
			r := b.insert.routes[i]
			st, kh = b.parts[r.table], r.kh
		} else {
			st, kh = b.route(key)
		}
		b.stats.Inserts++
		slot := &is.memo[key&(memoSlots-1)]
		if slot.epoch == is.epoch && slot.key == key &&
			int(slot.table) == st.idx && slot.flushGen == st.flushGen {
			// Duplicate within the current flush epoch: the key is still in
			// the buffer, so this occurrence is a pure last-write-wins
			// overwrite — it cannot fill the buffer, its delete-list entry
			// was removed by the first occurrence, and re-adding it to the
			// Bloom staging filter would set the same bits. Charge what the
			// serial path would and overwrite the value.
			b.chargeCPU(cfg.CPU.BufferInsert)
			if err := st.buf.Insert(kh, values[i]); err != nil {
				applyErr = fmt.Errorf("core: buffer insert: %w", err)
				break
			}
			if st.bank != nil {
				b.chargeCPU(cfg.CPU.BloomAdd)
			}
			continue
		}
		if err := st.insert(kh, values[i]); err != nil {
			applyErr = err
			break
		}
		*slot = insertMemo{key: key, epoch: is.epoch, table: int32(st.idx), flushGen: st.flushGen}
	}
	b.deferWrites = false

	// Phase C (CPU): one clock advance for the whole batch's memory work.
	b.deferCPU = false
	b.settleCPUDebt()

	// Phase B: issue every staged flush write, overlapped.
	writeErr := b.flushStaged()
	if applyErr != nil {
		return applyErr
	}
	return writeErr
}

// DeleteBatch applies len(keys) lazy deletes (§5.1.1). Deletes perform no
// I/O, so batching only amortizes the CPU clock charges into one advance;
// counters and state match a serial Delete loop exactly.
func (b *BufferHash) DeleteBatch(keys []uint64) error {
	b.deferCPU = true
	routed := b.precomputeRoutes(keys)
	for i := range keys {
		var st *superTable
		var kh uint64
		if routed {
			r := b.insert.routes[i]
			st, kh = b.parts[r.table], r.kh
		} else {
			st, kh = b.route(keys[i])
		}
		b.stats.Deletes++
		st.del(kh)
	}
	b.deferCPU = false
	b.settleCPUDebt()
	return nil
}

// BufferedValue returns the value word currently buffered in DRAM for key,
// if any. It is an accounting peek — no CPU charge, no counter movement,
// no I/O — used by the clam facade to detect a value-log record dying when
// its pointer is overwritten or deleted while still buffered. It is not
// part of the paper's cost model and must not be used as a lookup.
func (b *BufferHash) BufferedValue(key uint64) (uint64, bool) {
	st, kh := b.route(key)
	return st.buf.Get(kh)
}
