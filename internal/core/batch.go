package core

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/storage"
)

// The batched lookup pipeline (the flip side of §5.1.1's one-page-per-probe
// property): instead of paying one blocking device round-trip per probed
// incarnation per key, a batch runs in three phases —
//
//	A (memory):  every key's delete-list check, buffer probe and Bloom
//	             query run back to back with zero I/O, producing a
//	             candidate-incarnation mask per unresolved key. Duplicate
//	             keys within the batch are memoized: the in-memory work
//	             runs once per distinct key, while CPU charges and counters
//	             are still accounted per occurrence, exactly as the serial
//	             path would.
//	B (gather):  each probing round collects every unresolved key's single
//	             newest-candidate page probe, dedupes keys that land on the
//	             same flash page, sorts the probes by device address, and
//	             issues them as one storage.BatchReader submission whose
//	             virtual latency overlaps across the device's queue lanes.
//	C (resolve): each key searches its page image with the same
//	             resolveProbe helper the serial path uses — newest-first,
//	             stop on hit, identical probe and spurious accounting.
//
// Keys still probe incarnations newest-first and stop at the first hit, so
// the per-key probe sequence — and therefore FlashProbes, SpuriousProbes,
// Lookups, Hits and LookupIOHist — is exactly what the serial path would
// produce; only the device time model (and the physical read count, via
// page dedupe) improves.

// batchKey is the per-key state of an in-flight batched lookup.
type batchKey struct {
	idx  int // index into the caller's keys/results
	st   *superTable
	kh   uint64
	mask uint64 // candidate window offsets not yet probed
}

// memoEntry caches one distinct key's phase-A outcome so duplicates skip
// the buffer and Bloom computation (their charges are still applied). The
// cache is direct-mapped: a collision merely recomputes, so hit rate is a
// pure optimization with no correctness weight.
type memoEntry struct {
	key   uint64
	epoch uint32
	done  bool
	mask  uint64
	res   LookupResult
}

const memoSlots = 512 // power of two

// pendBits is the width of the pending-index field packed into a sorted
// probe word; segments are capped at 2^pendBits keys so the field fits.
const pendBits = 20

// batchScratch is reusable LookupBatch state. BufferHash is single-caller
// by contract (the clam facade serializes), so one scratch per instance
// suffices; everything is grown on demand and reused across calls.
type batchScratch struct {
	pending []batchKey
	memo    []memoEntry // direct-mapped, memoSlots entries
	epoch   uint32      // invalidates memo entries between segments
	packed  []uint64    // probe words: pageNo<<pendBits | pendingIndex
	reqs    []storage.ReadReq
	arena   []byte
}

// LookupBatch looks up len(keys) keys through the batched pipeline, writing
// per-key outcomes into results (which must have the same length). Results
// and the structural counters match a serial Lookup loop over the same keys
// key-for-key; virtual time is lower because each probing round's flash
// reads are deduped, sorted and overlapped through storage.BatchReader
// (devices without BatchReader fall back to serial reads and still benefit
// from dedupe and address ordering).
//
// One semantic carve-out, documented rather than hidden: under the LRU
// policy, re-insertions triggered by flash hits land in the buffer only as
// each round resolves, so a key appearing twice in one batch may probe
// flash twice where a serial loop would hit the buffer on its second
// occurrence. The paper performs LRU re-insertion asynchronously (§5.1.2),
// so both interleavings are legal; FIFO/UpdateBased/PriorityBased batches
// are exactly serial-equivalent.
//
// On error the contents of results are unspecified.
func (b *BufferHash) LookupBatch(keys []uint64, results []LookupResult) error {
	if len(keys) != len(results) {
		return fmt.Errorf("core: LookupBatch: %d keys, %d results", len(keys), len(results))
	}
	// Segment so a pending index always fits its packed probe word.
	const maxSegment = 1 << pendBits
	for at := 0; at < len(keys); at += maxSegment {
		end := min(at+maxSegment, len(keys))
		if err := b.lookupBatchSegment(keys[at:end], results[at:end]); err != nil {
			return err
		}
	}
	return nil
}

func (b *BufferHash) lookupBatchSegment(keys []uint64, results []LookupResult) error {
	bs := &b.batch
	bs.pending = bs.pending[:0]

	// Phase A: resolve everything the DRAM side can answer. CPU costs are
	// accrued into one deferred charge and applied to the clock in a single
	// advance — the virtual total is identical to the serial path's
	// per-key charges, without several clock advances per key. Phase A
	// performs no mutation, so a distinct key's outcome is computed once
	// and replayed for duplicates (hot keys of a skewed batch) — and, when
	// a phase runner is configured, contiguous sub-ranges of the segment
	// resolve on parallel lanes whose work lists the drain below merges
	// back in input order (see phasea.go for why this stays exact).
	b.deferCPU = true
	if lanes := b.phaseLanes(len(keys)); lanes > 1 {
		b.lookupPhaseALanes(keys, results, lanes)
	} else {
		b.lookupPhaseASerial(keys, results)
	}
	b.deferCPU = false
	b.settleCPUDebt()
	if len(bs.pending) == 0 {
		return nil
	}

	// All partitions share one probe length (pages are sized by the device
	// geometry), so a probe is fully described by its page number.
	_, probeN := b.params[0].PageByteRange(0)
	if b.cfg.Device.Geometry().Capacity/int64(probeN) >= 1<<(64-pendBits) {
		// Absurdly large device: packed probe words would overflow. Keep
		// correctness with the serial path (unreachable in any real config).
		return b.lookupPendingSerial(results)
	}

	// Phases B+C: probing rounds. Every round reads at most one page per
	// pending key (its newest remaining candidate), so the per-key probe
	// order is the serial newest-first order.
	br, overlapped := b.cfg.Device.(storage.BatchReader)
	for len(bs.pending) > 0 {
		// Phase B: gather, sort, dedupe, issue.
		bs.packed = bs.packed[:0]
		for pi := range bs.pending {
			p := &bs.pending[pi]
			j := bits.Len64(p.mask) - 1
			addr, _ := b.probeAddr(p.st, p.st.incs[j], p.kh)
			bs.packed = append(bs.packed, uint64(addr)/uint64(probeN)<<pendBits|uint64(pi))
		}
		slices.Sort(bs.packed)
		bs.reqs = bs.reqs[:0]
		used := 0
		lastPage := uint64(1)<<63 | 1 // sentinel no page number reaches
		for _, w := range bs.packed {
			page := w >> pendBits
			if page == lastPage {
				continue
			}
			lastPage = page
			if used+probeN > len(bs.arena) {
				// Requests already carved out of the old arena keep
				// pointing into it; only future carving moves.
				bs.arena = make([]byte, len(bs.pending)*probeN)
				used = 0
			}
			bs.reqs = append(bs.reqs, storage.ReadReq{
				P:   bs.arena[used : used+probeN],
				Off: int64(page) * int64(probeN),
			})
			used += probeN
		}
		if overlapped {
			if _, err := br.ReadBatch(bs.reqs); err != nil {
				return fmt.Errorf("core: batched incarnation read: %w", err)
			}
		} else if _, err := storage.ReadBatchFallback(b.cfg.Device, bs.reqs); err != nil {
			return fmt.Errorf("core: incarnation read: %w", err)
		}

		// Phase C: resolve each probe against its (deduped) page image.
		// bs.packed and bs.reqs share the address sort, so a linear merge
		// pairs them without a map.
		ri := 0
		for _, w := range bs.packed {
			addr := int64(w>>pendBits) * int64(probeN)
			for bs.reqs[ri].Off != addr {
				ri++
			}
			p := &bs.pending[w&(1<<pendBits-1)]
			j := bits.Len64(p.mask) - 1
			p.mask &^= 1 << j
			if p.st.resolveProbe(&results[p.idx], bs.reqs[ri].P, p.kh) {
				p.mask = 0 // found: stop probing this key
			}
		}
		// Retire resolved keys, keep the rest for the next round.
		live := bs.pending[:0]
		for _, p := range bs.pending {
			if p.mask != 0 {
				live = append(live, p)
				continue
			}
			b.stats.recordLookup(results[p.idx])
		}
		bs.pending = live
	}
	return nil
}

// lookupPhaseASerial is the single-lane memory-resolution phase, using the
// segment-shared duplicate memo.
func (b *BufferHash) lookupPhaseASerial(keys []uint64, results []LookupResult) {
	bs := &b.batch
	if bs.memo == nil {
		bs.memo = make([]memoEntry, memoSlots)
	}
	bs.epoch++
	if bs.epoch == 0 { // wrapped: stale entries could look current
		clear(bs.memo)
		bs.epoch = 1
	}
	b.lookupMemRange(keys, results, 0, len(keys), bs.memo, bs.epoch, &bs.pending, &b.stats, nil)
}

// lookupPhaseALanes is the parallel memory-resolution phase: contiguous
// sub-ranges resolve on lanes run by the configured PhaseRunner, each
// against private scratch. Keys duplicated across lanes recompute instead
// of sharing the memo; recomputation is byte-identical in results and CPU
// charges because phase A performs no mutation (the invariant the serial
// memo replay itself relies on). The drain that follows merges the lanes'
// pending lists in lane order — exactly the input order a serial pass
// would have produced — and their counters, which are pure sums.
func (b *BufferHash) lookupPhaseALanes(keys []uint64, results []LookupResult, lanes int) {
	bs := &b.batch
	for i := 0; i < lanes; i++ {
		b.lane(i) // grow before the runner: lanes are owner-allocated
	}
	b.parRun(lanes, func(li int) {
		ln := b.lanes[li]
		ln.pending = ln.pending[:0]
		ln.epoch++
		if ln.epoch == 0 { // wrapped: stale entries could look current
			clear(ln.memo)
			ln.epoch = 1
		}
		lo, hi := laneRange(len(keys), lanes, li)
		b.lookupMemRange(keys, results, lo, hi, ln.memo, ln.epoch, &ln.pending, &ln.stats, &ln.qs)
	})
	// Sequenced drain: lane order = input order (contiguous sub-ranges).
	for i := 0; i < lanes; i++ {
		ln := b.lanes[i]
		bs.pending = append(bs.pending, ln.pending...)
		b.stats.Merge(ln.stats)
		ln.stats = Stats{}
	}
}

// lookupMemRange resolves keys[lo:hi] against DRAM state: duplicates replay
// from the direct-mapped memo, fresh keys run lookupMem, keys resolved
// without I/O are recorded into stats, unresolved ones appended to pending
// with their candidate masks. It mutates only the caller-owned
// memo/pending/stats/qs — plus the atomic CPU accumulator — so disjoint
// ranges with disjoint scratch may run concurrently (qs is the lane's
// Bloom-query scratch; nil selects the banks' internal scratch, legal only
// single-caller).
func (b *BufferHash) lookupMemRange(keys []uint64, results []LookupResult, lo, hi int, memo []memoEntry, epoch uint32, pending *[]batchKey, stats *Stats, qs *[]uint64) {
	cfg := &b.cfg
	for i := lo; i < hi; i++ {
		key := keys[i]
		slot := &memo[key&(memoSlots-1)]
		if slot.epoch == epoch && slot.key == key {
			// Duplicate: replay the outcome, charge what lookupMem would.
			b.chargeCPU(cfg.CPU.BufferLookup)
			if !slot.done && !cfg.DisableBloom {
				if cfg.DisableBitslice {
					b.chargeCPU(cfg.CPU.BloomQueryNaive)
				} else {
					b.chargeCPU(cfg.CPU.BloomQuery)
				}
			}
			results[i] = slot.res
			if !slot.done && slot.mask != 0 {
				st, kh := b.route(key)
				*pending = append(*pending, batchKey{idx: i, st: st, kh: kh, mask: slot.mask})
				continue
			}
			stats.recordLookup(results[i])
			continue
		}
		st, kh := b.route(key)
		res, mask, done := st.lookupMemWith(kh, qs)
		*slot = memoEntry{key: key, epoch: epoch, done: done, mask: mask, res: res}
		results[i] = res
		if !done && mask != 0 {
			*pending = append(*pending, batchKey{idx: i, st: st, kh: kh, mask: mask})
			continue
		}
		stats.recordLookup(res)
	}
}

// lookupPendingSerial drains the pending set with serial page reads — the
// degenerate fallback for devices too large for packed probe words.
func (b *BufferHash) lookupPendingSerial(results []LookupResult) error {
	for _, p := range b.batch.pending {
		res := &results[p.idx]
		for mask := p.mask; mask != 0; {
			j := bits.Len64(mask) - 1
			mask &^= 1 << j
			page, err := b.readProbe(p.st, p.st.incs[j], p.kh)
			if err != nil {
				return err
			}
			if p.st.resolveProbe(res, page, p.kh) {
				break
			}
		}
		b.stats.recordLookup(*res)
	}
	b.batch.pending = b.batch.pending[:0]
	return nil
}
