package core

// Stats counts BufferHash events. Latency distributions are measured by the
// caller (the clam facade) around the virtual clock; these counters capture
// the structural quantities the paper reports: flash I/Os per lookup
// (Table 2), spurious reads (Figure 5), cascaded evictions (Figure 8b).
type Stats struct {
	Inserts uint64
	Deletes uint64
	Lookups uint64
	Hits    uint64

	// FlashProbes counts incarnation page reads; SpuriousProbes counts the
	// subset that found nothing (Bloom false positives).
	FlashProbes    uint64
	SpuriousProbes uint64

	// LookupIOHist[i] counts lookups that needed exactly i flash reads,
	// with the last bucket collecting ≥ len-1 (Table 2's distribution).
	LookupIOHist [8]uint64

	Flushes      uint64
	Evictions    uint64
	PartialScans uint64
	Reinserted   uint64
	LRUReinserts uint64
	Cascades     uint64

	// CascadeHist[i] counts flushes that tried exactly i incarnations
	// (Figure 8b); the last bucket collects ≥ len-1.
	CascadeHist [65]uint64
}

func (s *Stats) recordLookup(res LookupResult) {
	s.Lookups++
	if res.Found {
		s.Hits++
	}
	s.SpuriousProbes += uint64(res.Spurious)
	i := res.FlashReads
	if i >= len(s.LookupIOHist) {
		i = len(s.LookupIOHist) - 1
	}
	s.LookupIOHist[i]++
}

func (s *Stats) recordCascade(tried int) {
	if tried >= len(s.CascadeHist) {
		tried = len(s.CascadeHist) - 1
	}
	s.CascadeHist[tried]++
}

// Merge accumulates the counters of o into s. It is the aggregation step
// behind sharded deployments, where each shard owns an independent
// BufferHash and a global view is assembled by summing per-shard snapshots.
func (s *Stats) Merge(o Stats) {
	s.Inserts += o.Inserts
	s.Deletes += o.Deletes
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.FlashProbes += o.FlashProbes
	s.SpuriousProbes += o.SpuriousProbes
	for i := range s.LookupIOHist {
		s.LookupIOHist[i] += o.LookupIOHist[i]
	}
	s.Flushes += o.Flushes
	s.Evictions += o.Evictions
	s.PartialScans += o.PartialScans
	s.Reinserted += o.Reinserted
	s.LRUReinserts += o.LRUReinserts
	s.Cascades += o.Cascades
	for i := range s.CascadeHist {
		s.CascadeHist[i] += o.CascadeHist[i]
	}
}

// SpuriousRate returns the fraction of lookups that performed at least one
// wasted flash read (the paper's "spurious lookup rate", Figure 5).
func (s Stats) SpuriousRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	var spuriousLookups uint64
	// A lookup is spurious if it read flash but every read missed, or it
	// read more pages than needed. Approximate with lookups whose probes
	// included at least one miss: hits with extra reads and misses with
	// any reads. Tracked exactly via SpuriousProbes > 0 per lookup would
	// need per-op state; we report the probe-weighted rate instead, which
	// is what Figure 5 plots (wasted I/Os per lookup).
	spuriousLookups = s.SpuriousProbes
	return float64(spuriousLookups) / float64(s.Lookups)
}

// HitRate returns the lookup success rate.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}
