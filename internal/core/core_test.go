package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/flashchip"
	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// testConfig builds a small CLAM-shaped instance on an Intel-profile SSD:
// 4 super tables × 4 incarnations × 64 KB buffers (2048 entries each).
// Total flash capacity: 1 MiB = 32768 flushed entries.
func testConfig(t testing.TB) (Config, *vclock.Clock) {
	t.Helper()
	clock := vclock.New()
	dev := ssd.New(ssd.IntelX18M(), 1<<20, clock)
	return Config{
		Device:             dev,
		Clock:              clock,
		PartitionBits:      2,
		BufferBytes:        64 << 10,
		NumIncarnations:    4,
		FilterBitsPerEntry: 16,
		Seed:               42,
	}, clock
}

func mustNew(t testing.TB, cfg Config) *BufferHash {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	good, _ := testConfig(t)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil device", func(c *Config) { c.Device = nil }},
		{"nil clock", func(c *Config) { c.Clock = nil }},
		{"zero buffer", func(c *Config) { c.BufferBytes = 0 }},
		{"unaligned buffer", func(c *Config) { c.BufferBytes = 1000 }},
		{"zero incarnations", func(c *Config) { c.NumIncarnations = 0 }},
		{"too many incarnations", func(c *Config) { c.NumIncarnations = 65 }},
		{"no filter bits", func(c *Config) { c.FilterBitsPerEntry = 0 }},
		{"capacity too small", func(c *Config) { c.NumIncarnations = 64 }},
		{"priority without retain", func(c *Config) { c.Policy = PriorityBased }},
		{"huge partitions", func(c *Config) { c.PartitionBits = 30 }},
	}
	for _, tc := range cases {
		cfg := good
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	if _, err := New(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestInsertLookupInBuffer(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	if err := b.Insert(1, 100); err != nil {
		t.Fatal(err)
	}
	res, err := b.Lookup(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Value != 100 {
		t.Fatalf("Lookup = %+v", res)
	}
	if res.FlashReads != 0 {
		t.Fatalf("buffer hit needed %d flash reads", res.FlashReads)
	}
	res, _ = b.Lookup(2)
	if res.Found {
		t.Fatal("phantom key found")
	}
}

func TestValuesSurviveFlushes(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	// Insert enough to force several flushes per super table but stay
	// well within FIFO capacity (32768 flushed + 8192 buffered).
	const n = 16000
	for i := uint64(0); i < n; i++ {
		if err := b.Insert(i, i*10); err != nil {
			t.Fatal(err)
		}
	}
	if b.Stats().Flushes == 0 {
		t.Fatal("no flushes occurred; test ineffective")
	}
	for i := uint64(0); i < n; i++ {
		res, err := b.Lookup(i)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != i*10 {
			t.Fatalf("key %d: %+v", i, res)
		}
	}
}

func TestLatestValueWins(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	b.Insert(7, 1)
	// Push the first version to flash.
	for i := uint64(100); i < 12000; i++ {
		b.Insert(i, i)
	}
	b.Update(7, 2)
	// Push the second version to flash too.
	for i := uint64(20000); i < 32000; i++ {
		b.Insert(i, i)
	}
	res, err := b.Lookup(7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Value != 2 {
		t.Fatalf("lazy update: got %+v, want value 2", res)
	}
}

func TestDeleteSemantics(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	b.Insert(5, 50)
	// Version in flash.
	for i := uint64(100); i < 10000; i++ {
		b.Insert(i, i)
	}
	if err := b.Delete(5); err != nil {
		t.Fatal(err)
	}
	if res, _ := b.Lookup(5); res.Found {
		t.Fatal("deleted key still visible (flash version resurrected)")
	}
	// Re-insert revives.
	b.Insert(5, 51)
	if res, _ := b.Lookup(5); !res.Found || res.Value != 51 {
		t.Fatalf("revived key: %+v", res)
	}
}

func TestDeleteInBufferOnly(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	b.Insert(9, 90)
	b.Delete(9)
	if res, _ := b.Lookup(9); res.Found {
		t.Fatal("deleted buffered key visible")
	}
}

func TestFIFOEvictsOldest(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	// Total capacity ≈ 32768 flushed + 8192 buffered. Insert 4× that.
	const n = 160000
	for i := uint64(0); i < n; i++ {
		if err := b.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	// The earliest keys must be gone...
	gone := 0
	for i := uint64(0); i < 1000; i++ {
		if res, _ := b.Lookup(i); !res.Found {
			gone++
		}
	}
	if gone < 990 {
		t.Errorf("only %d/1000 oldest keys evicted", gone)
	}
	// ...and the most recent ones all present with correct values.
	for i := uint64(n - 3000); i < n; i++ {
		res, err := b.Lookup(i)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != i {
			t.Fatalf("recent key %d: %+v", i, res)
		}
	}
	if b.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestSharedLogWrapsManyTimes(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	// 10× device capacity worth of inserts exercises repeated wrap-around
	// of the shared circular log.
	const n = 400000
	rng := rand.New(rand.NewSource(3))
	latest := map[uint64]uint64{}
	var order []uint64
	for i := 0; i < n; i++ {
		k := uint64(rng.Intn(200000)) + 1
		v := uint64(i)
		if err := b.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		latest[k] = v
		order = append(order, k)
	}
	// Recently inserted keys: found with the latest value.
	seen := map[uint64]bool{}
	for i := len(order) - 1; i > len(order)-2000; i-- {
		k := order[i]
		if seen[k] {
			continue
		}
		seen[k] = true
		res, err := b.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("recently inserted key %d missing", k)
		}
		if res.Value != latest[k] {
			t.Fatalf("key %d: value %d, want %d (stale version returned)", k, res.Value, latest[k])
		}
	}
}

// TestNoWrongValues is the model-based safety property: any found value
// must be the latest inserted value for that key, under random interleaved
// inserts, updates, deletes and lookups across flushes and evictions.
func TestNoWrongValues(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(11))
	latest := map[uint64]uint64{}
	deleted := map[uint64]bool{}
	never := map[uint64]bool{}
	for i := 0; i < 120000; i++ {
		k := uint64(rng.Intn(40000)) + 1
		switch rng.Intn(10) {
		case 0:
			if err := b.Delete(k); err != nil {
				t.Fatal(err)
			}
			deleted[k] = true
		case 1, 2:
			res, err := b.Lookup(k)
			if err != nil {
				t.Fatal(err)
			}
			if res.Found {
				if deleted[k] {
					t.Fatalf("op %d: deleted key %d found", i, k)
				}
				if res.Value != latest[k] {
					t.Fatalf("op %d: key %d = %d, want %d", i, k, res.Value, latest[k])
				}
			}
			// Keys never inserted must never be found.
			phantom := uint64(rng.Intn(1000)) + 1000000
			never[phantom] = true
			if res, _ := b.Lookup(phantom); res.Found {
				t.Fatalf("op %d: phantom key %d found", i, phantom)
			}
		default:
			v := uint64(i) + 1
			if err := b.Insert(k, v); err != nil {
				t.Fatal(err)
			}
			latest[k] = v
			delete(deleted, k)
		}
	}
}

func TestLookupIOHistogramTable2Shape(t *testing.T) {
	// Table 2: >99% of lookups need at most one flash read.
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(5))
	const n = 60000
	for i := uint64(0); i < n; i++ {
		b.Insert(i, i)
	}
	b.ResetStats()
	// ~40% LSR: probe keys from a range 2.5x the inserted span, drawn from
	// the most recent window to avoid FIFO misses polluting the rate.
	hits := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		k := uint64(rng.Intn(n * 5 / 2))
		res, err := b.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			hits++
		}
	}
	st := b.Stats()
	atMost1 := float64(st.LookupIOHist[0]+st.LookupIOHist[1]) / float64(st.Lookups)
	t.Logf("hit rate %.2f, P[0 io]=%.4f P[1 io]=%.4f P[2 io]=%.4f, spurious=%d",
		float64(hits)/probes,
		float64(st.LookupIOHist[0])/float64(st.Lookups),
		float64(st.LookupIOHist[1])/float64(st.Lookups),
		float64(st.LookupIOHist[2])/float64(st.Lookups), st.SpuriousProbes)
	if atMost1 < 0.99 {
		t.Errorf("P[≤1 flash read] = %.4f, want > 0.99 (Table 2)", atMost1)
	}
}

func TestBloomDisabledAblation(t *testing.T) {
	// §7.3.1: without Bloom filters, unsuccessful lookups probe every live
	// incarnation.
	cfg, _ := testConfig(t)
	cfg.DisableBloom = true
	b := mustNew(t, cfg)
	for i := uint64(0); i < 40000; i++ {
		b.Insert(i, i)
	}
	b.ResetStats()
	for i := uint64(1 << 40); i < 1<<40+1000; i++ {
		b.Lookup(i) // guaranteed misses
	}
	st := b.Stats()
	perLookup := float64(st.FlashProbes) / float64(st.Lookups)
	t.Logf("flash reads per missed lookup without Bloom: %.2f", perLookup)
	if perLookup < 3.5 {
		t.Errorf("expected ≈ k=4 probes per miss without Bloom, got %.2f", perLookup)
	}

	// Control: with Bloom filters, misses rarely touch flash.
	cfg2, _ := testConfig(t)
	b2 := mustNew(t, cfg2)
	for i := uint64(0); i < 40000; i++ {
		b2.Insert(i, i)
	}
	b2.ResetStats()
	for i := uint64(1 << 40); i < 1<<40+1000; i++ {
		b2.Lookup(i)
	}
	st2 := b2.Stats()
	if st2.FlashProbes*20 > st.FlashProbes {
		t.Errorf("Bloom filters saved too few probes: %d vs %d", st2.FlashProbes, st.FlashProbes)
	}
}

func TestBitsliceAndNaiveAgree(t *testing.T) {
	run := func(disableBitslice bool) (found int, stats Stats) {
		cfg, _ := testConfig(t)
		cfg.DisableBitslice = disableBitslice
		b := mustNew(t, cfg)
		for i := uint64(0); i < 30000; i++ {
			b.Insert(i, i^0xFF)
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 10000; i++ {
			k := uint64(rng.Intn(60000))
			res, err := b.Lookup(k)
			if err != nil {
				t.Fatal(err)
			}
			if res.Found {
				if res.Value != k^0xFF {
					t.Fatalf("wrong value for %d", k)
				}
				found++
			}
		}
		return found, b.Stats()
	}
	f1, s1 := run(false)
	f2, s2 := run(true)
	if f1 != f2 {
		t.Fatalf("bit-sliced found %d, naive found %d", f1, f2)
	}
	if s1.FlashProbes != s2.FlashProbes {
		t.Fatalf("probe counts differ: %d vs %d (filters should be identical)", s1.FlashProbes, s2.FlashProbes)
	}
}

func TestLRUKeepsHotKeys(t *testing.T) {
	runPolicy := func(policy EvictionPolicy) bool {
		cfg, _ := testConfig(t)
		cfg.Policy = policy
		b := mustNew(t, cfg)
		hot := uint64(777777)
		b.Insert(hot, 1)
		// Churn 5× total capacity while touching the hot key regularly.
		for i := uint64(0); i < 200000; i++ {
			b.Insert(i+1000000, i)
			if i%2000 == 0 {
				b.Lookup(hot)
			}
		}
		res, err := b.Lookup(hot)
		if err != nil {
			t.Fatal(err)
		}
		return res.Found
	}
	if !runPolicy(LRU) {
		t.Error("LRU evicted a hot key")
	}
	if runPolicy(FIFO) {
		t.Error("FIFO retained a cold key past capacity (eviction broken)")
	}
}

func TestUpdateBasedRetainsLiveEntries(t *testing.T) {
	// §5.1.2: update-based partial discard drops superseded versions and
	// retains live entries, so stable keys survive churn that would evict
	// them under FIFO.
	run := func(policy EvictionPolicy) (alive int) {
		cfg, _ := testConfig(t)
		cfg.Policy = policy
		b := mustNew(t, cfg)
		const stable = 2000
		for i := uint64(0); i < stable; i++ {
			b.Insert(i, i+1)
		}
		// Churn: repeated updates over a 20k-key set (≈8 versions per key),
		// 4× total capacity, so most flushed entries are superseded while
		// the live set (20k churn + 2k stable) still fits in flash — the
		// regime where update-based eviction can retain everything live
		// (§5.1.2: forced FIFO eviction of live items only happens when
		// flash is too small for the live set).
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 160000; i++ {
			k := uint64(rng.Intn(20000)) + 10000000
			b.Insert(k, uint64(i))
		}
		for i := uint64(0); i < stable; i++ {
			if res, _ := b.Lookup(i); res.Found {
				alive++
			}
		}
		return alive
	}
	fifoAlive := run(FIFO)
	updAlive := run(UpdateBased)
	t.Logf("stable keys alive: FIFO %d/2000, UpdateBased %d/2000", fifoAlive, updAlive)
	if updAlive < 1600 {
		t.Errorf("update-based eviction kept only %d/2000 live keys", updAlive)
	}
	if fifoAlive >= updAlive {
		t.Errorf("FIFO (%d) retained as much as UpdateBased (%d); policy has no effect", fifoAlive, updAlive)
	}
}

func TestPriorityBasedEviction(t *testing.T) {
	cfg, _ := testConfig(t)
	cfg.Policy = PriorityBased
	// Values encode priority: retain values ≥ 1000.
	cfg.Retain = func(key, value uint64) bool { return value >= 1000 }
	b := mustNew(t, cfg)
	for i := uint64(0); i < 500; i++ {
		b.Insert(i, 1000+i)       // high priority
		b.Insert(100000+i, i%999) // low priority
	}
	for i := uint64(0); i < 150000; i++ {
		b.Insert(i+1000000, 1) // churn (low priority)
	}
	hi, lo := 0, 0
	for i := uint64(0); i < 500; i++ {
		if res, _ := b.Lookup(i); res.Found {
			hi++
		}
		if res, _ := b.Lookup(100000 + i); res.Found {
			lo++
		}
	}
	t.Logf("priority survival: high %d/500, low %d/500", hi, lo)
	if hi < 400 {
		t.Errorf("high-priority survival %d/500 too low", hi)
	}
	if lo > hi/2 {
		t.Errorf("low-priority keys (%d) survived nearly as well as high (%d)", lo, hi)
	}
}

func TestCascadeHistogramPopulated(t *testing.T) {
	// Figure 8(b): partial discard with mostly-live incarnations cascades.
	cfg, _ := testConfig(t)
	cfg.Policy = UpdateBased
	b := mustNew(t, cfg)
	for i := uint64(0); i < 120000; i++ {
		b.Insert(i, i) // unique keys: everything stays live -> cascades
	}
	st := b.Stats()
	var tried uint64
	for i, c := range st.CascadeHist {
		if i >= 2 {
			tried += c
		}
	}
	t.Logf("cascades: %d flushes tried >=2 incarnations (total cascade events %d, reinserted %d)",
		tried, st.Cascades, st.Reinserted)
	if st.Cascades == 0 {
		t.Error("no cascaded evictions under all-live churn")
	}
	if st.Reinserted == 0 {
		t.Error("partial discard retained nothing")
	}
}

func TestDeleteListPruned(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	for i := uint64(0); i < 2000; i++ {
		b.Insert(i, i)
		b.Delete(i)
	}
	// Push k+1 flush generations through every super table.
	for i := uint64(0); i < 60000; i++ {
		b.Insert(1000000+i, i)
	}
	fp := b.MemoryFootprint()
	if fp.DeleteListBytes > 1000 {
		t.Errorf("delete lists not pruned: %d bytes", fp.DeleteListBytes)
	}
}

func TestChipLayoutPartitionedRegions(t *testing.T) {
	clock := vclock.New()
	chip := flashchip.New(flashchip.DefaultConfig(2<<20), clock)
	cfg := Config{
		Device:             chip,
		Clock:              clock,
		PartitionBits:      2,
		BufferBytes:        128 << 10, // one erase block
		NumIncarnations:    4,
		FilterBitsPerEntry: 16,
		Seed:               1,
	}
	b := mustNew(t, cfg)
	if b.layout != PartitionedRegions {
		t.Fatalf("layout = %d, want PartitionedRegions", b.layout)
	}
	const n = 120000 // ~2x chip capacity in entries
	for i := uint64(0); i < n; i++ {
		if err := b.Insert(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(n - 3000); i < n; i++ {
		res, err := b.Lookup(i)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != i*3 {
			t.Fatalf("chip: recent key %d -> %+v", i, res)
		}
	}
	if chip.Counters().Erases == 0 {
		t.Fatal("region recycling never erased")
	}
}

func TestChipRequiresBlockMultiple(t *testing.T) {
	clock := vclock.New()
	chip := flashchip.New(flashchip.DefaultConfig(2<<20), clock)
	cfg := Config{
		Device:             chip,
		Clock:              clock,
		BufferBytes:        64 << 10, // half a block: rejected
		NumIncarnations:    4,
		FilterBitsPerEntry: 16,
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("sub-block buffer accepted on raw flash")
	}
}

func TestDeviceFaultPropagates(t *testing.T) {
	cfg, _ := testConfig(t)
	dev := cfg.Device.(*ssd.SSD)
	b := mustNew(t, cfg)
	boom := errors.New("boom")
	dev.SetFault(func(op storage.Op, off int64, n int) error {
		if op == storage.OpWrite {
			return boom
		}
		return nil
	})
	var err error
	for i := uint64(0); i < 10000; i++ {
		if err = b.Insert(i, i); err != nil {
			break
		}
	}
	if !errors.Is(err, boom) {
		t.Fatalf("flush error not propagated: %v", err)
	}
}

func TestHeadlineLatencies(t *testing.T) {
	// §7.2.1 calibration: on the Intel profile, average insert ≈ 0.006 ms
	// and average lookup ≈ 0.06 ms at ~40% LSR.
	cfg, clock := testConfig(t)
	b := mustNew(t, cfg)
	const warm = 60000
	for i := uint64(0); i < warm; i++ {
		b.Insert(i, i)
	}
	// Measured phase: interleaved lookup-then-insert, like the paper's
	// workload (§7.2).
	var insTotal, lookTotal time.Duration
	const ops = 20000
	rng := rand.New(rand.NewSource(2))
	hits := 0
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(warm * 5 / 2))
		w := clock.StartWatch()
		res, err := b.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		lookTotal += w.Elapsed()
		if res.Found {
			hits++
		}
		w = clock.StartWatch()
		if err := b.Insert(uint64(warm)+uint64(i), 1); err != nil {
			t.Fatal(err)
		}
		insTotal += w.Elapsed()
	}
	insMs := float64(insTotal/ops) / float64(time.Millisecond)
	lookMs := float64(lookTotal/ops) / float64(time.Millisecond)
	t.Logf("avg insert %.4f ms (paper 0.006), avg lookup %.4f ms at %.0f%% LSR (paper 0.06)",
		insMs, lookMs, 100*float64(hits)/ops)
	if insMs > 0.03 {
		t.Errorf("insert latency %.4f ms too high", insMs)
	}
	if lookMs < 0.01 || lookMs > 0.2 {
		t.Errorf("lookup latency %.4f ms out of band", lookMs)
	}
}

func TestFlushForces(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	b.Insert(1, 10)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after Flush", b.Len())
	}
	res, _ := b.Lookup(1)
	if !res.Found || res.Value != 10 {
		t.Fatalf("flushed key: %+v", res)
	}
	if res.FlashReads == 0 {
		t.Fatal("lookup after flush should hit flash")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		cfg, _ := testConfig(t)
		b := mustNew(t, cfg)
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 50000; i++ {
			k := uint64(rng.Intn(30000))
			if rng.Intn(3) == 0 {
				b.Lookup(k)
			} else {
				b.Insert(k, uint64(i))
			}
		}
		return b.Stats()
	}
	a, bb := run(), run()
	if a != bb {
		t.Fatalf("replay diverged:\n%+v\n%+v", a, bb)
	}
}

func TestMemoryFootprint(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	fp := b.MemoryFootprint()
	if fp.BufferBytes != 4*64<<10 {
		t.Fatalf("BufferBytes = %d, want %d", fp.BufferBytes, 4*64<<10)
	}
	if fp.BloomBytes == 0 {
		t.Fatal("BloomBytes = 0")
	}
	if fp.Total() <= fp.BufferBytes {
		t.Fatal("Total() must exceed buffers alone")
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[EvictionPolicy]string{FIFO: "fifo", LRU: "lru", UpdateBased: "update", PriorityBased: "priority"} {
		if p.String() != want {
			t.Errorf("String(%d) = %q", p, p.String())
		}
	}
	if EvictionPolicy(99).String() == "" {
		t.Error("unknown policy should format")
	}
}

func TestStatsHitRate(t *testing.T) {
	s := Stats{Lookups: 10, Hits: 4}
	if s.HitRate() != 0.4 {
		t.Fatalf("HitRate = %f", s.HitRate())
	}
	var zero Stats
	if zero.HitRate() != 0 || zero.SpuriousRate() != 0 {
		t.Fatal("zero stats rates should be 0")
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Inserts: 1, Deletes: 2, Lookups: 10, Hits: 4, FlashProbes: 5,
		SpuriousProbes: 6, Flushes: 7, Evictions: 8, PartialScans: 9,
		Reinserted: 10, LRUReinserts: 11, Cascades: 12}
	a.LookupIOHist[0], a.LookupIOHist[7] = 3, 1
	a.CascadeHist[1] = 2
	b := Stats{Inserts: 100, Deletes: 200, Lookups: 1000, Hits: 400, FlashProbes: 500,
		SpuriousProbes: 600, Flushes: 700, Evictions: 800, PartialScans: 900,
		Reinserted: 1000, LRUReinserts: 1100, Cascades: 1200}
	b.LookupIOHist[0], b.LookupIOHist[2] = 30, 7
	b.CascadeHist[1], b.CascadeHist[64] = 20, 5
	a.Merge(b)
	if a.Inserts != 101 || a.Deletes != 202 || a.Lookups != 1010 || a.Hits != 404 {
		t.Fatalf("op counters wrong after merge: %+v", a)
	}
	if a.FlashProbes != 505 || a.SpuriousProbes != 606 || a.Flushes != 707 ||
		a.Evictions != 808 || a.PartialScans != 909 || a.Reinserted != 1010 ||
		a.LRUReinserts != 1111 || a.Cascades != 1212 {
		t.Fatalf("structural counters wrong after merge: %+v", a)
	}
	if a.LookupIOHist[0] != 33 || a.LookupIOHist[2] != 7 || a.LookupIOHist[7] != 1 {
		t.Fatalf("LookupIOHist wrong: %v", a.LookupIOHist)
	}
	if a.CascadeHist[1] != 22 || a.CascadeHist[64] != 5 {
		t.Fatalf("CascadeHist wrong: %v", a.CascadeHist)
	}
	// HitRate must reflect the pooled counts.
	if got, want := a.HitRate(), 404.0/1010.0; got != want {
		t.Fatalf("merged HitRate = %v, want %v", got, want)
	}
}

func TestMemoryFootprintAdd(t *testing.T) {
	a := MemoryFootprint{BufferBytes: 1, BloomBytes: 2, DeleteListBytes: 3, MetadataBytes: 4}
	a.Add(MemoryFootprint{BufferBytes: 10, BloomBytes: 20, DeleteListBytes: 30, MetadataBytes: 40})
	if a.Total() != 11+22+33+44 {
		t.Fatalf("footprint add: %+v", a)
	}
}

// --- batched lookup pipeline ---

// twinConfigs returns two structurally identical configs on independent
// devices and clocks, so a serial and a batched instance can be driven in
// lockstep and compared counter-for-counter.
func twinConfigs(t testing.TB) (Config, Config) {
	t.Helper()
	a, _ := testConfig(t)
	b, _ := testConfig(t)
	return a, b
}

// populateTwin inserts the same stream into both instances: nKeys keys from
// a fixed universe, enough to wrap the incarnation ring when heavy is set.
func populateTwin(t *testing.T, a, b *BufferHash, seed int64, nOps, nKeys int) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	universe := make([]uint64, nKeys)
	for i := range universe {
		universe[i] = rng.Uint64()
	}
	for i := 0; i < nOps; i++ {
		k := universe[rng.Intn(nKeys)]
		v := rng.Uint64()
		if err := a.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(20) == 0 {
			if err := a.Delete(k); err != nil {
				t.Fatal(err)
			}
			if err := b.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	return universe
}

func checkBatchAgainstSerial(t *testing.T, serial, batched *BufferHash, universe []uint64, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const batchSize = 64
	keys := make([]uint64, batchSize)
	results := make([]LookupResult, batchSize)
	for round := 0; round < 40; round++ {
		for i := range keys {
			if rng.Intn(3) == 0 {
				keys[i] = rng.Uint64() // mostly-absent key
			} else {
				keys[i] = universe[rng.Intn(len(universe))]
			}
		}
		if err := batched.LookupBatch(keys, results); err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			want, err := serial.Lookup(k)
			if err != nil {
				t.Fatal(err)
			}
			if results[i] != want {
				t.Fatalf("round %d key %#x: batch %+v, serial %+v", round, k, results[i], want)
			}
		}
	}
	ss, bs := serial.Stats(), batched.Stats()
	if ss != bs {
		t.Fatalf("stats diverge:\nserial  %+v\nbatched %+v", ss, bs)
	}
	// The batched device must have performed no more physical reads than
	// the serial one (page dedupe can only reduce them) while probing the
	// same pages logically.
	sr := serial.Config().Device.Counters().Reads
	brr := batched.Config().Device.Counters().Reads
	if brr > sr {
		t.Fatalf("batched device reads %d > serial %d", brr, sr)
	}
}

func TestLookupBatchMatchesSerial(t *testing.T) {
	ca, cb := twinConfigs(t)
	serial, batched := mustNew(t, ca), mustNew(t, cb)
	universe := populateTwin(t, serial, batched, 301, 80000, 60000)
	checkBatchAgainstSerial(t, serial, batched, universe, 302)
	if batched.Stats().Evictions == 0 {
		t.Fatal("workload too small: want the eviction regime")
	}
}

func TestLookupBatchMatchesSerialNoBloom(t *testing.T) {
	ca, cb := twinConfigs(t)
	ca.DisableBloom, cb.DisableBloom = true, true
	ca.FilterBitsPerEntry, cb.FilterBitsPerEntry = 0, 0
	serial, batched := mustNew(t, ca), mustNew(t, cb)
	universe := populateTwin(t, serial, batched, 303, 6000, 2000)
	checkBatchAgainstSerial(t, serial, batched, universe, 304)
}

func TestLookupBatchMatchesSerialUpdatePolicy(t *testing.T) {
	ca, cb := twinConfigs(t)
	ca.Policy, cb.Policy = UpdateBased, UpdateBased
	serial, batched := mustNew(t, ca), mustNew(t, cb)
	universe := populateTwin(t, serial, batched, 305, 12000, 4000)
	checkBatchAgainstSerial(t, serial, batched, universe, 306)
}

func TestLookupBatchFlashChipFallbackEquivalence(t *testing.T) {
	// The raw chip path exercises PartitionedRegions placement; wrapping it
	// in a plain-Device shim also exercises the non-BatchReader fallback.
	mk := func(wrap bool) *BufferHash {
		clock := vclock.New()
		cfg := Config{
			Clock:              clock,
			PartitionBits:      1,
			BufferBytes:        128 << 10,
			NumIncarnations:    4,
			FilterBitsPerEntry: 16,
			Seed:               42,
		}
		var dev storage.Device = flashchip.New(flashchip.DefaultConfig(1<<20), clock)
		if wrap {
			dev = plainDevice{dev}
		}
		cfg.Device = dev
		return mustNew(t, cfg)
	}
	serial, batched := mk(false), mk(true)
	universe := populateTwin(t, serial, batched, 307, 9000, 3000)
	checkBatchAgainstSerial(t, serial, batched, universe, 308)
}

// plainDevice hides every optional interface except Eraser (which the
// PartitionedRegions layout requires), forcing the ReadAt fallback.
type plainDevice struct{ d storage.Device }

func (p plainDevice) ReadAt(b []byte, off int64) (time.Duration, error)  { return p.d.ReadAt(b, off) }
func (p plainDevice) WriteAt(b []byte, off int64) (time.Duration, error) { return p.d.WriteAt(b, off) }
func (p plainDevice) Geometry() storage.Geometry                         { return p.d.Geometry() }
func (p plainDevice) Counters() storage.Counters                         { return p.d.Counters() }
func (p plainDevice) Erase(off, n int64) (time.Duration, error) {
	return p.d.(storage.Eraser).Erase(off, n)
}

func TestLookupBatchVirtualTimeOverlap(t *testing.T) {
	// On a queued device the batch must finish sooner in virtual time than
	// the serial loop, while answering identically (checked above).
	ca, cb := twinConfigs(t)
	serial, batched := mustNew(t, ca), mustNew(t, cb)
	universe := populateTwin(t, serial, batched, 309, 12000, 4000)

	rng := rand.New(rand.NewSource(310))
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = universe[rng.Intn(len(universe))]
	}
	results := make([]LookupResult, len(keys))

	st0 := serial.cfg.Clock.Now()
	for _, k := range keys {
		if _, err := serial.Lookup(k); err != nil {
			t.Fatal(err)
		}
	}
	serialTime := serial.cfg.Clock.Now() - st0

	bt0 := batched.cfg.Clock.Now()
	if err := batched.LookupBatch(keys, results); err != nil {
		t.Fatal(err)
	}
	batchTime := batched.cfg.Clock.Now() - bt0

	if batched.Stats().FlashProbes == 0 {
		t.Fatal("workload has no flash probes; overlap untested")
	}
	if batchTime >= serialTime {
		t.Fatalf("batch virtual time %v not below serial %v", batchTime, serialTime)
	}
	t.Logf("virtual time: serial %v, batched %v (%.1fx)", serialTime, batchTime,
		float64(serialTime)/float64(batchTime))
}

func TestLookupBatchLengthMismatch(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	if err := b.LookupBatch(make([]uint64, 3), make([]LookupResult, 2)); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

// --- batched insert pipeline ---

// driveInsertTwin feeds the same insert/delete stream into both instances:
// serial per-key calls on one, windowed InsertBatch/DeleteBatch calls of
// varying size on the other. The window sizes are deliberately ragged so
// flush points land both inside and at the edges of batches.
func driveInsertTwin(t *testing.T, serial, batched *BufferHash, seed int64, nOps, nKeys int, pDelete float64) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	universe := make([]uint64, nKeys)
	for i := range universe {
		universe[i] = rng.Uint64()
	}
	var (
		insKeys, insVals []uint64
		delKeys          []uint64
	)
	flushIns := func() {
		if len(insKeys) == 0 {
			return
		}
		if err := batched.InsertBatch(insKeys, insVals); err != nil {
			t.Fatal(err)
		}
		insKeys, insVals = insKeys[:0], insVals[:0]
	}
	flushDel := func() {
		if len(delKeys) == 0 {
			return
		}
		if err := batched.DeleteBatch(delKeys); err != nil {
			t.Fatal(err)
		}
		delKeys = delKeys[:0]
	}
	window := 1 + rng.Intn(700)
	for i := 0; i < nOps; i++ {
		k := universe[rng.Intn(nKeys)]
		if rng.Float64() < pDelete {
			if err := serial.Delete(k); err != nil {
				t.Fatal(err)
			}
			flushIns() // preserve order across op kinds
			delKeys = append(delKeys, k)
			continue
		}
		v := rng.Uint64()
		if err := serial.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		flushDel()
		insKeys, insVals = append(insKeys, k), append(insVals, v)
		if len(insKeys) >= window {
			flushIns()
			window = 1 + rng.Intn(700)
		}
	}
	flushIns()
	flushDel()
	return universe
}

// checkInsertTwin asserts the two instances ended byte-identical in every
// observable way: exact core-counter equality and identical results for
// every universe key plus a sample of absent keys.
func checkInsertTwin(t *testing.T, serial, batched *BufferHash, universe []uint64, seed int64) {
	t.Helper()
	if ss, bs := serial.Stats(), batched.Stats(); ss != bs {
		t.Fatalf("core counters diverge after inserts:\nserial  %+v\nbatched %+v", ss, bs)
	}
	rng := rand.New(rand.NewSource(seed))
	probe := func(k uint64) {
		sw, err := serial.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		bw, err := batched.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if sw != bw {
			t.Fatalf("post-state lookup(%#x): serial %+v, batched %+v", k, sw, bw)
		}
	}
	for _, k := range universe {
		probe(k)
	}
	for i := 0; i < 2000; i++ {
		probe(rng.Uint64())
	}
	if ss, bs := serial.Stats(), batched.Stats(); ss != bs {
		t.Fatalf("core counters diverge after post-state lookups:\nserial  %+v\nbatched %+v", ss, bs)
	}
}

func TestInsertBatchMatchesSerial(t *testing.T) {
	// SharedLog on the Intel SSD, eviction regime: the global slot cursor
	// and cross-partition reclamation must interleave exactly as serial.
	ca, cb := twinConfigs(t)
	serial, batched := mustNew(t, ca), mustNew(t, cb)
	universe := driveInsertTwin(t, serial, batched, 401, 90000, 30000, 0.08)
	checkInsertTwin(t, serial, batched, universe, 402)
	if batched.Stats().Evictions == 0 {
		t.Fatal("workload too small: want the eviction regime")
	}
}

func TestInsertBatchMatchesSerialUpdatePolicy(t *testing.T) {
	// Partial discard on PartitionedRegions with a single tiny super table:
	// one batch triggers enough flushes to wrap the incarnation ring, so
	// eviction scans must read images whose writes are still staged.
	mk := func() *BufferHash {
		clock := vclock.New()
		return mustNew(t, Config{
			Device:             ssd.New(ssd.IntelX18M(), 1<<20, clock),
			Clock:              clock,
			PartitionBits:      0,
			BufferBytes:        8 << 10,
			NumIncarnations:    3,
			FilterBitsPerEntry: 16,
			Policy:             UpdateBased,
			Seed:               42,
		})
	}
	serial, batched := mk(), mk()
	universe := driveInsertTwin(t, serial, batched, 403, 20000, 3000, 0.10)
	checkInsertTwin(t, serial, batched, universe, 404)
	if batched.Stats().PartialScans == 0 {
		t.Fatal("update policy never scanned an incarnation; retune the test")
	}
}

func TestInsertBatchFlashChipEquivalence(t *testing.T) {
	// Raw NAND: erase-before-write slot recycling, program-order frontiers,
	// and the same-slot staged-write replacement within one batch.
	mk := func() *BufferHash {
		clock := vclock.New()
		return mustNew(t, Config{
			Device:             flashchip.New(flashchip.DefaultConfig(1<<20), clock),
			Clock:              clock,
			PartitionBits:      1,
			BufferBytes:        128 << 10,
			NumIncarnations:    2,
			FilterBitsPerEntry: 16,
			Seed:               42,
		})
	}
	serial, batched := mk(), mk()
	universe := driveInsertTwin(t, serial, batched, 405, 60000, 20000, 0.05)
	checkInsertTwin(t, serial, batched, universe, 406)
	if batched.Stats().Evictions == 0 {
		t.Fatal("chip ring never wrapped; retune the test")
	}
}

func TestInsertBatchPlainDeviceFallback(t *testing.T) {
	// Hiding BatchWriter forces the sorted WriteAt fallback; results and
	// counters must not change.
	mk := func(wrap bool) *BufferHash {
		clock := vclock.New()
		var dev storage.Device = flashchip.New(flashchip.DefaultConfig(1<<20), clock)
		if wrap {
			dev = plainDevice{dev}
		}
		return mustNew(t, Config{
			Device:             dev,
			Clock:              clock,
			PartitionBits:      1,
			BufferBytes:        128 << 10,
			NumIncarnations:    2,
			FilterBitsPerEntry: 16,
			Seed:               42,
		})
	}
	serial, batched := mk(false), mk(true)
	universe := driveInsertTwin(t, serial, batched, 407, 30000, 10000, 0.05)
	checkInsertTwin(t, serial, batched, universe, 408)
}

func TestInsertBatchDuplicateKeysMemoized(t *testing.T) {
	// A heavily skewed batch: most occurrences hit the last-write-wins
	// memo, and the outcome must still match serial exactly.
	ca, cb := twinConfigs(t)
	serial, batched := mustNew(t, ca), mustNew(t, cb)
	rng := rand.New(rand.NewSource(409))
	hot := make([]uint64, 16)
	for i := range hot {
		hot[i] = rng.Uint64()
	}
	keys := make([]uint64, 20000)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = hot[rng.Intn(len(hot))]
		vals[i] = rng.Uint64()
	}
	for i := range keys {
		if err := serial.Insert(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := batched.InsertBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	checkInsertTwin(t, serial, batched, hot, 410)
	if got := serial.cfg.Clock.Now(); got != batched.cfg.Clock.Now() {
		t.Fatalf("virtual clocks diverge on a flush-free duplicate stream: serial %v, batched %v",
			got, batched.cfg.Clock.Now())
	}
}

func TestInsertBatchVirtualTimeOverlap(t *testing.T) {
	// Once flushes happen, the batch's overlapped sequential writes must
	// finish sooner in virtual time than the serial per-flush writes.
	ca, cb := twinConfigs(t)
	serial, batched := mustNew(t, ca), mustNew(t, cb)
	rng := rand.New(rand.NewSource(411))
	keys := make([]uint64, 60000)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = rng.Uint64()
		vals[i] = uint64(i)
	}
	st0 := serial.cfg.Clock.Now()
	for i := range keys {
		if err := serial.Insert(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	serialTime := serial.cfg.Clock.Now() - st0
	bt0 := batched.cfg.Clock.Now()
	if err := batched.InsertBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	batchTime := batched.cfg.Clock.Now() - bt0
	if batched.Stats().Flushes == 0 {
		t.Fatal("workload has no flushes; overlap untested")
	}
	if batchTime >= serialTime {
		t.Fatalf("batch virtual time %v not below serial %v", batchTime, serialTime)
	}
	t.Logf("virtual time: serial %v, batched %v (%.2fx), %d flushes",
		serialTime, batchTime, float64(serialTime)/float64(batchTime), batched.Stats().Flushes)
}

func TestInsertBatchLengthMismatch(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	if err := b.InsertBatch(make([]uint64, 3), make([]uint64, 2)); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

// TestReadImageStableAcrossFlushes pins the fix for the old scratch-buffer
// hazard: an image returned by readImage must stay intact across
// interleaved flushes (which serialize fresh images) and further reads,
// because every caller now owns a distinct pooled buffer.
func TestReadImageStableAcrossFlushes(t *testing.T) {
	cfg, _ := testConfig(t)
	b := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(412))
	// Fill until at least two incarnations exist somewhere.
	var st *superTable
	for i := 0; st == nil; i++ {
		if err := b.Insert(rng.Uint64(), uint64(i)); err != nil {
			t.Fatal(err)
		}
		for _, p := range b.parts {
			if p.live >= 2 {
				st = p
				break
			}
		}
		if i > 1<<20 {
			t.Fatal("never flushed twice")
		}
	}
	a1 := st.incs[st.oldest()].addr
	a2 := st.incs[st.oldest()+1].addr
	img1, err := b.readImage(a1)
	if err != nil {
		t.Fatal(err)
	}
	snap := append([]byte(nil), img1...)
	// Interleave: another image read, then enough inserts to force more
	// flush serializations.
	img2, err := b.readImage(a2)
	if err != nil {
		t.Fatal(err)
	}
	flushes := b.Stats().Flushes
	for b.Stats().Flushes < flushes+3 {
		if err := b.Insert(rng.Uint64(), 1); err != nil {
			t.Fatal(err)
		}
	}
	if string(img1) != string(snap) {
		t.Fatal("readImage buffer was clobbered by interleaved reads/flushes")
	}
	b.releaseImage(img2)
	b.releaseImage(img1)
}

func TestDeleteBatchMatchesSerial(t *testing.T) {
	ca, cb := twinConfigs(t)
	serial, batched := mustNew(t, ca), mustNew(t, cb)
	universe := populateTwin(t, serial, batched, 413, 20000, 8000)
	dels := make([]uint64, 0, len(universe)/2)
	for i, k := range universe {
		if i%2 == 0 {
			dels = append(dels, k)
		}
	}
	for _, k := range dels {
		if err := serial.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := batched.DeleteBatch(dels); err != nil {
		t.Fatal(err)
	}
	checkInsertTwin(t, serial, batched, universe, 414)
	if got := serial.cfg.Clock.Now(); got != batched.cfg.Clock.Now() {
		t.Fatalf("delete batch clock diverges: serial %v, batched %v", got, batched.cfg.Clock.Now())
	}
}
