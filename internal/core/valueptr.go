package core

// Value-pointer encoding: the 64-bit value slot of a hash entry either
// holds an inline value (the paper's fingerprint → address workloads, the
// clam U64 fast path) or a tagged pointer into a value log holding a
// variable-length (key, value) record (the clam byte-key path). The
// encoding is a property of the slot format shared by the cuckoo buffers
// and the serialized incarnation images, so it lives here next to them:
//
//	bit  63     tag: 1 = value-log pointer, 0 = inline value
//	bits 62..38 record length in bytes (25 bits, ≤ 32 MB - 1)
//	bits 37..0  record byte offset in the log (38 bits, < 256 GB)
//
// BufferHash itself treats values as opaque 64-bit words — inline values
// with bit 63 set are legal and the structure never decodes them. The tag
// only acquires meaning on the byte-key path, where every read is verified
// against the full key bytes stored in the record, so even an inline value
// that happens to look like a pointer can never surface a wrong value.
const (
	valuePtrTag = uint64(1) << 63

	valuePtrLenBits = 25
	valuePtrOffBits = 38

	// MaxValuePtrLen is the largest encodable record length in bytes.
	MaxValuePtrLen = 1<<valuePtrLenBits - 1
	// MaxValuePtrOff is the largest encodable record offset.
	MaxValuePtrOff = int64(1)<<valuePtrOffBits - 1
)

// EncodeValuePtr packs a value-log record location into a tagged value
// word. It reports ok=false when the location exceeds the encodable range
// (offset ≥ 256 GB or record ≥ 32 MB).
func EncodeValuePtr(off int64, n int) (word uint64, ok bool) {
	if off < 0 || off > MaxValuePtrOff || n < 0 || n > MaxValuePtrLen {
		return 0, false
	}
	return valuePtrTag | uint64(n)<<valuePtrOffBits | uint64(off), true
}

// DecodeValuePtr unpacks a value word as a value-log pointer. ok=false
// means the word is an untagged inline value.
func DecodeValuePtr(word uint64) (off int64, n int, ok bool) {
	if word&valuePtrTag == 0 {
		return 0, 0, false
	}
	off = int64(word & (1<<valuePtrOffBits - 1))
	n = int(word >> valuePtrOffBits & (1<<valuePtrLenBits - 1))
	return off, n, true
}

// ValuePointer decodes the result's value word as a value-log pointer.
// ok=false means the lookup missed or the value is inline.
func (r LookupResult) ValuePointer() (off int64, n int, ok bool) {
	if !r.Found {
		return 0, 0, false
	}
	return DecodeValuePtr(r.Value)
}
