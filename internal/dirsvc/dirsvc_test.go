package dirsvc

import (
	"fmt"
	"testing"

	"repro/clam"
	"repro/internal/vclock"
)

func newDir(t testing.TB) (*Directory, *vclock.Clock) {
	t.Helper()
	clock := vclock.New()
	c, err := clam.Open(
		clam.WithDevice(clam.IntelSSD),
		clam.WithFlash(16<<20), clam.WithMemory(4<<20), clam.WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	return New(c, clock), clock
}

func hostAddr(h HostID) string { return fmt.Sprintf("10.%d.%d.%d:7654", h>>16, h>>8&0xff, h&0xff) }

func TestRegisterResolve(t *testing.T) {
	d, _ := newDir(t)
	if err := d.Register([]byte("chunk-abc"), 42, hostAddr(42)); err != nil {
		t.Fatal(err)
	}
	loc, ok, err := d.Resolve([]byte("chunk-abc"))
	if err != nil || !ok || loc.Host != 42 {
		t.Fatalf("Resolve = %+v %v %v", loc, ok, err)
	}
	if loc.Addr != hostAddr(42) {
		t.Fatalf("Resolve addr = %q, want %q", loc.Addr, hostAddr(42))
	}
	if loc.Gen != 0 {
		t.Fatalf("first registration gen = %d", loc.Gen)
	}
	if _, ok, _ := d.Resolve([]byte("chunk-xyz")); ok {
		t.Fatal("phantom resolution")
	}
}

func TestReRegistrationWins(t *testing.T) {
	d, _ := newDir(t)
	d.Register([]byte("n"), 1, hostAddr(1))
	d.Register([]byte("n"), 2, hostAddr(2))
	loc, ok, _ := d.Resolve([]byte("n"))
	if !ok || loc.Host != 2 || loc.Addr != hostAddr(2) {
		t.Fatalf("Resolve = %+v %v, want newest host 2", loc, ok)
	}
	if loc.Gen != 1 {
		t.Fatalf("re-registration gen = %d, want 1", loc.Gen)
	}
}

func TestUnregister(t *testing.T) {
	d, _ := newDir(t)
	d.Register([]byte("gone"), 7, hostAddr(7))
	if err := d.Unregister([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Resolve([]byte("gone")); ok {
		t.Fatal("unregistered name still resolves")
	}
	// Re-registration after departure works.
	d.Register([]byte("gone"), 9, hostAddr(9))
	if loc, ok, _ := d.Resolve([]byte("gone")); !ok || loc.Host != 9 {
		t.Fatal("re-registration failed")
	}
}

func TestChurnAtScale(t *testing.T) {
	d, _ := newDir(t)
	// Register 30k names across 100 hosts, then churn.
	name := func(i int) []byte { return []byte(fmt.Sprintf("content-%d", i)) }
	for i := 0; i < 30000; i++ {
		h := HostID(i % 100)
		if err := d.Register(name(i), h, hostAddr(h)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5000; i++ {
		if i%3 == 0 {
			d.Unregister(name(i))
		} else {
			h := HostID(i%100 + 200)
			d.Register(name(i), h, hostAddr(h))
		}
	}
	missing, stale := 0, 0
	for i := 0; i < 5000; i++ {
		loc, ok, err := d.Resolve(name(i))
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if ok {
				stale++
			}
			continue
		}
		want := HostID(i%100 + 200)
		if !ok {
			missing++
		} else if loc.Host != want || loc.Addr != hostAddr(want) {
			stale++
		}
	}
	if missing > 0 || stale > 0 {
		t.Fatalf("%d missing, %d stale resolutions after churn", missing, stale)
	}
	st := d.Stats()
	if st.Registers == 0 || st.Resolves == 0 || st.Unregisters == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if d.MeanOpLatency() <= 0 {
		t.Fatal("no latency recorded")
	}
	t.Logf("directory mean op latency: %v over %d ops",
		d.MeanOpLatency(), st.Registers+st.Resolves+st.Unregisters)
}

func TestStatsHitRate(t *testing.T) {
	d, _ := newDir(t)
	d.Register([]byte("x"), 1, hostAddr(1))
	d.Resolve([]byte("x"))
	d.Resolve([]byte("y"))
	st := d.Stats()
	if st.Resolves != 2 || st.ResolveHits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMeanLatencyEmptyDirectory(t *testing.T) {
	d, _ := newDir(t)
	if d.MeanOpLatency() != 0 {
		t.Fatal("empty directory should report zero latency")
	}
}

func TestLocationRoundTrip(t *testing.T) {
	for _, l := range []Location{
		{Host: 0, Gen: 0, Addr: ""},
		{Host: 1<<32 - 1, Gen: 77, Addr: "host-77.rack9.dc2.example.com:65535"},
	} {
		got, err := decodeLocation(encodeLocation(l))
		if err != nil || got != l {
			t.Fatalf("round trip %+v -> %+v (%v)", l, got, err)
		}
	}
	if _, err := decodeLocation([]byte{1, 2}); err == nil {
		t.Fatal("short record decoded")
	}
}
