package dirsvc

import (
	"fmt"
	"testing"

	"repro/clam"
	"repro/internal/vclock"
)

func newDir(t testing.TB) (*Directory, *vclock.Clock) {
	t.Helper()
	clock := vclock.New()
	c, err := clam.Open(clam.Options{
		Device: clam.IntelSSD, FlashBytes: 16 << 20, MemoryBytes: 4 << 20, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, clock), clock
}

func TestRegisterResolve(t *testing.T) {
	d, _ := newDir(t)
	if err := d.Register([]byte("chunk-abc"), 42); err != nil {
		t.Fatal(err)
	}
	host, ok, err := d.Resolve([]byte("chunk-abc"))
	if err != nil || !ok || host != 42 {
		t.Fatalf("Resolve = %d %v %v", host, ok, err)
	}
	if _, ok, _ := d.Resolve([]byte("chunk-xyz")); ok {
		t.Fatal("phantom resolution")
	}
}

func TestReRegistrationWins(t *testing.T) {
	d, _ := newDir(t)
	d.Register([]byte("n"), 1)
	d.Register([]byte("n"), 2)
	host, ok, _ := d.Resolve([]byte("n"))
	if !ok || host != 2 {
		t.Fatalf("Resolve = %d %v, want newest host 2", host, ok)
	}
}

func TestUnregister(t *testing.T) {
	d, _ := newDir(t)
	d.Register([]byte("gone"), 7)
	if err := d.Unregister([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Resolve([]byte("gone")); ok {
		t.Fatal("unregistered name still resolves")
	}
	// Re-registration after departure works.
	d.Register([]byte("gone"), 9)
	if host, ok, _ := d.Resolve([]byte("gone")); !ok || host != 9 {
		t.Fatal("re-registration failed")
	}
}

func TestChurnAtScale(t *testing.T) {
	d, _ := newDir(t)
	// Register 30k names across 100 hosts, then churn.
	name := func(i int) []byte { return []byte(fmt.Sprintf("content-%d", i)) }
	for i := 0; i < 30000; i++ {
		if err := d.Register(name(i), HostID(i%100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5000; i++ {
		if i%3 == 0 {
			d.Unregister(name(i))
		} else {
			d.Register(name(i), HostID(i%100+200))
		}
	}
	missing, stale := 0, 0
	for i := 0; i < 5000; i++ {
		host, ok, err := d.Resolve(name(i))
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if ok {
				stale++
			}
			continue
		}
		if !ok {
			missing++
		} else if host != HostID(i%100+200) {
			stale++
		}
	}
	if missing > 0 || stale > 0 {
		t.Fatalf("%d missing, %d stale resolutions after churn", missing, stale)
	}
	st := d.Stats()
	if st.Registers == 0 || st.Resolves == 0 || st.Unregisters == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if d.MeanOpLatency() <= 0 {
		t.Fatal("no latency recorded")
	}
	t.Logf("directory mean op latency: %v over %d ops",
		d.MeanOpLatency(), st.Registers+st.Resolves+st.Unregisters)
}

func TestStatsHitRate(t *testing.T) {
	d, _ := newDir(t)
	d.Register([]byte("x"), 1)
	d.Resolve([]byte("x"))
	d.Resolve([]byte("y"))
	st := d.Stats()
	if st.Resolves != 2 || st.ResolveHits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMeanLatencyEmptyDirectory(t *testing.T) {
	d, _ := newDir(t)
	if d.MeanOpLatency() != 0 {
		t.Fatal("empty directory should report zero latency")
	}
}
