// Package dirsvc implements the third motivating application of §3: a
// central directory for a data-oriented network architecture, mapping
// content names (hashes of content chunks) to host locations. "As new
// sources of data arise or as old sources leave the network, the
// resolution infrastructure should be updated accordingly... the
// centralized deployment should support fast inserts and efficient lookups
// of the mappings."
//
// Names are arbitrary byte strings (content hashes) and the stored
// location is a variable-length record — host id, registration generation
// and the host's network address — held directly in a byte-keyed
// CLAM-style store. Host departures are lazy deletes and re-registration
// is a lazy update, exactly the operations BufferHash supports (§5.1.1).
package dirsvc

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/vclock"
)

// Store is the underlying CAM: a byte-keyed clam.Store (or any baseline
// index with the same surface).
type Store interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, bool, error)
	Delete(key []byte) error
}

// HostID identifies a data source.
type HostID uint32

// Location is a directory entry: where the named content lives.
type Location struct {
	Host HostID
	// Gen counts re-registrations of the name (0 for the first).
	Gen uint32
	// Addr is the host's dialable address, e.g. "10.1.2.3:7654".
	Addr string
}

// locHeader is the fixed prefix of an encoded Location.
const locHeader = 8

// encodeLocation packs a Location into a variable-length record.
func encodeLocation(l Location) []byte {
	buf := make([]byte, locHeader+len(l.Addr))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(l.Host))
	binary.LittleEndian.PutUint32(buf[4:8], l.Gen)
	copy(buf[locHeader:], l.Addr)
	return buf
}

// decodeLocation unpacks a record written by encodeLocation.
func decodeLocation(rec []byte) (Location, error) {
	if len(rec) < locHeader {
		return Location{}, fmt.Errorf("dirsvc: malformed location record (%d bytes)", len(rec))
	}
	return Location{
		Host: HostID(binary.LittleEndian.Uint32(rec[0:4])),
		Gen:  binary.LittleEndian.Uint32(rec[4:8]),
		Addr: string(rec[locHeader:]),
	}, nil
}

// Directory resolves content names to host locations. Not safe for
// concurrent use (wrap externally, as the clam facade does internally).
type Directory struct {
	store Store
	clock *vclock.Clock
	stats Stats
}

// Stats counts directory operations and their virtual-time cost.
type Stats struct {
	Registers   uint64
	Unregisters uint64
	Resolves    uint64
	ResolveHits uint64
	TotalTime   time.Duration
}

// New builds a directory over the given store.
func New(store Store, clock *vclock.Clock) *Directory {
	return &Directory{store: store, clock: clock}
}

// Stats returns operation counters.
func (d *Directory) Stats() Stats { return d.stats }

// Register announces that host serves the named content at addr.
// Re-registration bumps the generation (a lazy update in the store).
func (d *Directory) Register(name []byte, host HostID, addr string) error {
	w := d.clock.StartWatch()
	defer func() { d.stats.TotalTime += w.Elapsed() }()
	d.stats.Registers++
	loc := Location{Host: host, Addr: addr}
	if rec, ok, err := d.store.Get(name); err != nil {
		return fmt.Errorf("dirsvc: register lookup: %w", err)
	} else if ok {
		prev, err := decodeLocation(rec)
		if err != nil {
			return err
		}
		loc.Gen = prev.Gen + 1
	}
	return d.store.Put(name, encodeLocation(loc))
}

// Unregister removes the mapping for name (the source left the network).
func (d *Directory) Unregister(name []byte) error {
	w := d.clock.StartWatch()
	defer func() { d.stats.TotalTime += w.Elapsed() }()
	d.stats.Unregisters++
	return d.store.Delete(name)
}

// Resolve returns the current location for the named content.
func (d *Directory) Resolve(name []byte) (Location, bool, error) {
	w := d.clock.StartWatch()
	defer func() { d.stats.TotalTime += w.Elapsed() }()
	d.stats.Resolves++
	rec, ok, err := d.store.Get(name)
	if err != nil || !ok {
		return Location{}, false, err
	}
	loc, err := decodeLocation(rec)
	if err != nil {
		return Location{}, false, err
	}
	d.stats.ResolveHits++
	return loc, true, nil
}

// MeanOpLatency returns the average virtual-time cost per directory
// operation.
func (d *Directory) MeanOpLatency() time.Duration {
	n := d.stats.Registers + d.stats.Unregisters + d.stats.Resolves
	if n == 0 {
		return 0
	}
	return d.stats.TotalTime / time.Duration(n)
}
