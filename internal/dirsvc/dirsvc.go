// Package dirsvc implements the third motivating application of §3: a
// central directory for a data-oriented network architecture, mapping
// content names (hashes of content chunks) to host locations. "As new
// sources of data arise or as old sources leave the network, the
// resolution infrastructure should be updated accordingly... the
// centralized deployment should support fast inserts and efficient lookups
// of the mappings."
//
// The directory stores name → (host, generation) mappings in a CLAM-style
// index, with host departures handled by lazy deletion and re-registration
// by lazy update — exactly the operations BufferHash supports (§5.1.1).
package dirsvc

import (
	"fmt"
	"time"

	"repro/internal/hashutil"
	"repro/internal/vclock"
)

// Store is the underlying CAM (CLAM or a baseline index with deletes).
type Store interface {
	Insert(key, value uint64) error
	Lookup(key uint64) (uint64, bool, error)
	Delete(key uint64) error
}

// HostID identifies a data source.
type HostID uint32

// Directory resolves content names to hosts. Not safe for concurrent use
// (wrap externally, as the clam facade does internally).
type Directory struct {
	store Store
	clock *vclock.Clock
	stats Stats
}

// Stats counts directory operations and their virtual-time cost.
type Stats struct {
	Registers   uint64
	Unregisters uint64
	Resolves    uint64
	ResolveHits uint64
	TotalTime   time.Duration
}

// New builds a directory over the given store.
func New(store Store, clock *vclock.Clock) *Directory {
	return &Directory{store: store, clock: clock}
}

// Stats returns operation counters.
func (d *Directory) Stats() Stats { return d.stats }

// nameKey hashes a content name to a 64-bit key.
func nameKey(name []byte) uint64 {
	k := hashutil.HashBytes(name, 0xD12C)
	if k == 0 {
		k = 1
	}
	return k
}

// encode packs (host, generation) into a value.
func encode(host HostID, gen uint32) uint64 {
	return uint64(host)<<32 | uint64(gen)
}

// decode unpacks a value.
func decode(v uint64) (HostID, uint32) {
	return HostID(v >> 32), uint32(v)
}

// Register announces that host serves the named content. Re-registration
// bumps the generation (a lazy update in the store).
func (d *Directory) Register(name []byte, host HostID) error {
	w := d.clock.StartWatch()
	defer func() { d.stats.TotalTime += w.Elapsed() }()
	d.stats.Registers++
	key := nameKey(name)
	gen := uint32(0)
	if v, ok, err := d.store.Lookup(key); err != nil {
		return fmt.Errorf("dirsvc: register lookup: %w", err)
	} else if ok {
		_, g := decode(v)
		gen = g + 1
	}
	return d.store.Insert(key, encode(host, gen))
}

// Unregister removes the mapping for name (the source left the network).
func (d *Directory) Unregister(name []byte) error {
	w := d.clock.StartWatch()
	defer func() { d.stats.TotalTime += w.Elapsed() }()
	d.stats.Unregisters++
	return d.store.Delete(nameKey(name))
}

// Resolve returns the current host for the named content.
func (d *Directory) Resolve(name []byte) (HostID, bool, error) {
	w := d.clock.StartWatch()
	defer func() { d.stats.TotalTime += w.Elapsed() }()
	d.stats.Resolves++
	v, ok, err := d.store.Lookup(nameKey(name))
	if err != nil || !ok {
		return 0, false, err
	}
	d.stats.ResolveHits++
	host, _ := decode(v)
	return host, true, nil
}

// MeanOpLatency returns the average virtual-time cost per directory
// operation.
func (d *Directory) MeanOpLatency() time.Duration {
	n := d.stats.Registers + d.stats.Unregisters + d.stats.Resolves
	if n == 0 {
		return 0
	}
	return d.stats.TotalTime / time.Duration(n)
}
