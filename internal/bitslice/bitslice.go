// Package bitslice implements the bit-sliced Bloom filter organization with
// a sliding window described in §5.1.3 of the paper.
//
// A super table holds k incarnations plus the in-memory buffer, each with a
// Bloom filter of m bits. Instead of storing k+1 separate filters, the bank
// stores m *slices*: slice p concatenates bit p of every filter. A lookup
// that probes h bit positions then retrieves h slices, ANDs them, and the
// 1-bits of the result identify the incarnations that may contain the key —
// h word operations instead of (k+1)·h bit probes.
//
// Eviction uses the paper's sliding window: each slice carries w = 64 extra
// bits; the live window of k+1 bits slides one position per incarnation
// rotation, and stale bits are zeroed one whole machine word at a time when
// the window crosses a word boundary, so eviction costs O(m/k) amortized
// word writes instead of O(m) bit writes.
//
// Window layout (positions are modulo the slice length L):
//
//	[s, s+k)   bits of the k incarnations, oldest at s, newest at s+k-1
//	s+k        bit of the current buffer (staging column)
//	[s+k+1, L) free zone of ≥ 64 bits being recycled
package bitslice

import (
	"fmt"
	"math/bits"

	"repro/internal/hashutil"
)

// Bank is a bit-sliced bank of k incarnation Bloom filters plus one staging
// (buffer) filter. Not safe for concurrent use.
type Bank struct {
	k        int    // incarnations per super table
	h        int    // hash functions per filter
	m        uint64 // bits per filter (number of slices)
	sliceLen int    // L: bits per slice, multiple of 64, ≥ k+1+64
	words    int    // words per slice
	slices   []uint64
	start    int // s: window start bit position
	scratch  []uint64
}

// NewBank creates a bank for k incarnations with m-bit filters and h hash
// functions. k must be in [1, 64].
func NewBank(m uint64, k, h int) *Bank {
	if k < 1 || k > 64 {
		panic(fmt.Sprintf("bitslice: k=%d out of range [1,64]", k))
	}
	if m == 0 || h < 1 {
		panic("bitslice: non-positive filter parameters")
	}
	// L = k+1 live bits plus a free zone of at least one word, rounded up
	// to whole words.
	L := (k + 1 + 64 + 63) / 64 * 64
	b := &Bank{
		k:        k,
		h:        h,
		m:        m,
		sliceLen: L,
		words:    L / 64,
		slices:   make([]uint64, int(m)*(L/64)),
		scratch:  make([]uint64, 0, h),
	}
	return b
}

// K returns the number of incarnation columns.
func (b *Bank) K() int { return b.k }

// Hashes returns the number of hash functions per filter.
func (b *Bank) Hashes() int { return b.h }

// FilterBits returns m, the number of bits per filter.
func (b *Bank) FilterBits() uint64 { return b.m }

// MemoryBits returns the total memory consumed by the bank in bits
// (including the sliding-window padding).
func (b *Bank) MemoryBits() uint64 { return uint64(len(b.slices)) * 64 }

// setBit sets bit `pos` of slice `row`.
func (b *Bank) setBit(row uint64, pos int) {
	idx := int(row)*b.words + pos/64
	b.slices[idx] |= 1 << (pos % 64)
}

// getBit reads bit `pos` of slice `row`.
func (b *Bank) getBit(row uint64, pos int) bool {
	idx := int(row)*b.words + pos/64
	return b.slices[idx]&(1<<(pos%64)) != 0
}

// AddStaging adds a pre-hashed key to the staging (buffer) filter.
func (b *Bank) AddStaging(keyHash uint64) {
	pos := (b.start + b.k) % b.sliceLen
	b.scratch = hashutil.DoubleHash(keyHash, b.h, b.m, b.scratch[:0])
	for _, row := range b.scratch {
		b.setBit(row, pos)
	}
}

// QueryStaging reports whether the staging filter may contain the key.
func (b *Bank) QueryStaging(keyHash uint64) bool {
	pos := (b.start + b.k) % b.sliceLen
	b.scratch = hashutil.DoubleHash(keyHash, b.h, b.m, b.scratch[:0])
	for _, row := range b.scratch {
		if !b.getBit(row, pos) {
			return false
		}
	}
	return true
}

// window extracts the k incarnation bits [start, start+k) of slice row as a
// uint64 with bit j = window offset j (j=0 oldest ... k-1 newest).
func (b *Bank) window(row uint64) uint64 {
	base := int(row) * b.words
	s := b.start
	w0 := b.slices[base+s/64]
	v := w0 >> (s % 64)
	if rem := 64 - s%64; rem < 64 && b.k > rem {
		// The window continues into the next word (possibly wrapping).
		next := (s/64 + 1) % b.words
		v |= b.slices[base+next] << rem
	}
	if b.k == 64 {
		return v
	}
	return v & (1<<b.k - 1)
}

// Query returns a bitmask over the k incarnation columns: bit j set means
// the incarnation at window offset j (0 = oldest position, k-1 = newest)
// may contain the key. Columns that currently hold no incarnation are
// all-zero and thus never match.
func (b *Bank) Query(keyHash uint64) uint64 {
	return b.QueryWith(keyHash, &b.scratch)
}

// QueryWith is Query against caller-owned hash scratch (grown in place and
// reused across calls). The bank's slices are only read, so concurrent
// QueryWith calls with distinct scratch are safe while no writer runs —
// the property the parallel phase-A lanes of a batched lookup rely on;
// Query itself uses the bank's own scratch and stays single-caller.
func (b *Bank) QueryWith(keyHash uint64, scratch *[]uint64) uint64 {
	rows := hashutil.DoubleHash(keyHash, b.h, b.m, (*scratch)[:0])
	*scratch = rows
	mask := ^uint64(0)
	if b.k < 64 {
		mask = 1<<b.k - 1
	}
	for _, row := range rows {
		mask &= b.window(row)
		if mask == 0 {
			return 0
		}
	}
	return mask
}

// Rotate slides the window one position: the staging column becomes the
// newest incarnation, the oldest incarnation column falls out of the
// window, and a fresh zeroed staging column takes its place.
//
// Per §5.1.3, stale bits are not cleared individually: when the window
// start crosses a 64-bit word boundary, the vacated word of every slice is
// reset with a single store.
func (b *Bank) Rotate() {
	b.start = (b.start + 1) % b.sliceLen
	if b.start%64 != 0 {
		return
	}
	// Clear the word the window just vacated; the window will not reach
	// it again until it has wrapped past the ≥64-bit free zone.
	vacated := (b.start/64 - 1 + b.words) % b.words
	for row := 0; row < int(b.m); row++ {
		b.slices[row*b.words+vacated] = 0
	}
}

// MatchOffsets appends the window offsets of the set bits in mask to dst
// (ascending, i.e. oldest first), using the precomputed-table technique the
// paper describes (here: hardware ctz).
func MatchOffsets(mask uint64, dst []int) []int {
	for mask != 0 {
		j := bits.TrailingZeros64(mask)
		dst = append(dst, j)
		mask &= mask - 1
	}
	return dst
}
