package bitslice

import (
	"math/rand"
	"testing"

	"repro/internal/bloom"
)

// naiveBank is the straightforward implementation the bit-sliced bank must
// be equivalent to: k+1 separate Bloom filters rotated on eviction.
type naiveBank struct {
	k       int
	filters []*bloom.Filter // len k, oldest first; nil = empty column
	staging *bloom.Filter
	m       uint64
	h       int
}

func newNaive(m uint64, k, h int) *naiveBank {
	return &naiveBank{k: k, filters: make([]*bloom.Filter, k), staging: bloom.New(m, h), m: m, h: h}
}

func (n *naiveBank) AddStaging(kh uint64)        { n.staging.Add(kh) }
func (n *naiveBank) QueryStaging(kh uint64) bool { return n.staging.MayContain(kh) }

func (n *naiveBank) Rotate() {
	copy(n.filters, n.filters[1:])
	n.filters[n.k-1] = n.staging
	n.staging = bloom.New(n.m, n.h)
}

func (n *naiveBank) Query(kh uint64) uint64 {
	var mask uint64
	for j, f := range n.filters {
		if f != nil && f.MayContain(kh) {
			mask |= 1 << j
		}
	}
	return mask
}

func TestEquivalenceWithNaiveBank(t *testing.T) {
	// Property: under an arbitrary interleaving of inserts and rotations,
	// the bit-sliced bank answers every query identically to k+1 plain
	// Bloom filters.
	const (
		m = 1 << 10
		k = 16
		h = 4
	)
	for seed := int64(0); seed < 5; seed++ {
		bank := NewBank(m, k, h)
		ref := newNaive(m, k, h)
		rng := rand.New(rand.NewSource(seed))
		var keys []uint64
		for step := 0; step < 3000; step++ {
			switch rng.Intn(10) {
			case 0: // rotate (evict oldest, flush staging)
				bank.Rotate()
				ref.Rotate()
			default:
				kh := rng.Uint64()
				keys = append(keys, kh)
				bank.AddStaging(kh)
				ref.AddStaging(kh)
			}
			// Check a recent key, a random key, and an old key.
			probes := []uint64{rng.Uint64()}
			if len(keys) > 0 {
				probes = append(probes, keys[len(keys)-1], keys[rng.Intn(len(keys))])
			}
			for _, p := range probes {
				if got, want := bank.Query(p), ref.Query(p); got != want {
					t.Fatalf("seed %d step %d: Query(%#x) = %#x, want %#x", seed, step, p, got, want)
				}
				if got, want := bank.QueryStaging(p), ref.QueryStaging(p); got != want {
					t.Fatalf("seed %d step %d: QueryStaging(%#x) = %v, want %v", seed, step, p, got, want)
				}
			}
		}
	}
}

func TestLongRotationWrapsWindow(t *testing.T) {
	// Rotate far more times than the slice length to exercise wrap-around
	// and the word-batched clearing, verifying equivalence throughout.
	const (
		m = 256
		k = 16
		h = 3
	)
	bank := NewBank(m, k, h)
	ref := newNaive(m, k, h)
	rng := rand.New(rand.NewSource(42))
	for rot := 0; rot < 1000; rot++ {
		for i := 0; i < 8; i++ {
			kh := rng.Uint64()
			bank.AddStaging(kh)
			ref.AddStaging(kh)
		}
		bank.Rotate()
		ref.Rotate()
		for i := 0; i < 4; i++ {
			p := rng.Uint64()
			if got, want := bank.Query(p), ref.Query(p); got != want {
				t.Fatalf("rotation %d: Query(%#x) = %#x, want %#x", rot, p, got, want)
			}
		}
	}
}

func TestFreshKeyFoundInNewestColumn(t *testing.T) {
	bank := NewBank(1<<12, 16, 4)
	bank.AddStaging(0xABCD)
	if !bank.QueryStaging(0xABCD) {
		t.Fatal("staging lost the key")
	}
	if bank.Query(0xABCD) != 0 {
		// Might be a false positive, but with an empty bank all columns
		// are zero, so this must be exact.
		t.Fatal("key visible in incarnations before rotation")
	}
	bank.Rotate()
	mask := bank.Query(0xABCD)
	if mask&(1<<15) == 0 {
		t.Fatalf("key not in newest column after rotation: mask %#x", mask)
	}
	if bank.QueryStaging(0xABCD) {
		t.Fatal("fresh staging column not empty (false positive impossible on empty filter)")
	}
}

func TestKeyAgesOutAfterKRotations(t *testing.T) {
	const k = 8
	bank := NewBank(1<<12, k, 4)
	bank.AddStaging(0x1234)
	bank.Rotate()
	for i := 0; i < k-1; i++ {
		if bank.Query(0x1234) == 0 {
			t.Fatalf("key lost after only %d of %d rotations", i+1, k)
		}
		bank.Rotate()
	}
	// One more rotation evicts it.
	bank.Rotate()
	if bank.Query(0x1234) != 0 {
		t.Fatal("key still visible after k+1 rotations (stale bits not retired)")
	}
}

func TestMaskOffsetsShiftWithRotation(t *testing.T) {
	const k = 16
	bank := NewBank(1<<12, k, 4)
	bank.AddStaging(7)
	bank.Rotate() // key now at offset k-1 (newest)
	for age := 1; age < k; age++ {
		bank.Rotate()
		mask := bank.Query(7)
		want := uint64(1) << (k - 1 - age)
		if mask&want == 0 {
			t.Fatalf("after %d rotations mask = %#x, want bit %d", age+1, mask, k-1-age)
		}
	}
}

func TestK64Boundary(t *testing.T) {
	bank := NewBank(512, 64, 3)
	bank.AddStaging(99)
	bank.Rotate()
	if mask := bank.Query(99); mask&(1<<63) == 0 {
		t.Fatalf("k=64: mask = %#x, want bit 63", mask)
	}
	for i := 0; i < 64; i++ {
		bank.Rotate()
	}
	if mask := bank.Query(99); mask != 0 {
		t.Fatalf("k=64: key survived 65 rotations: %#x", mask)
	}
}

func TestK1Boundary(t *testing.T) {
	bank := NewBank(128, 1, 2)
	bank.AddStaging(5)
	bank.Rotate()
	if bank.Query(5)&1 == 0 {
		t.Fatal("k=1: key not found")
	}
	bank.Rotate()
	if bank.Query(5) != 0 {
		t.Fatal("k=1: key survived eviction")
	}
}

func TestMatchOffsets(t *testing.T) {
	got := MatchOffsets(0b1010010, nil)
	want := []int{1, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("MatchOffsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MatchOffsets = %v, want %v", got, want)
		}
	}
	if out := MatchOffsets(0, nil); len(out) != 0 {
		t.Fatal("MatchOffsets(0) should be empty")
	}
}

func TestAccessors(t *testing.T) {
	bank := NewBank(1000, 16, 5)
	if bank.K() != 16 || bank.Hashes() != 5 || bank.FilterBits() != 1000 {
		t.Fatal("accessors wrong")
	}
	if bank.MemoryBits() == 0 {
		t.Fatal("memory accounting missing")
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBank(0, 16, 4) },
		func() { NewBank(100, 0, 4) },
		func() { NewBank(100, 65, 4) },
		func() { NewBank(100, 16, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkBitslicedQuery(b *testing.B) {
	bank := NewBank(1<<16, 16, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 16; i++ {
		for j := 0; j < 4096; j++ {
			bank.AddStaging(rng.Uint64())
		}
		bank.Rotate()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Query(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkNaiveQuery(b *testing.B) {
	ref := newNaive(1<<16, 16, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 16; i++ {
		for j := 0; j < 4096; j++ {
			ref.AddStaging(rng.Uint64())
		}
		ref.Rotate()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref.Query(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

// BenchmarkBankQueryFastrange exercises the non-power-of-two filter size,
// where DoubleHash reduces probes with Lemire fastrange instead of %; the
// power-of-two BenchmarkBitslicedQuery above takes the mask path.
func BenchmarkBankQueryFastrange(b *testing.B) {
	bank := NewBank(65521, 16, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 16; i++ {
		for j := 0; j < 4096; j++ {
			bank.AddStaging(rng.Uint64())
		}
		bank.Rotate()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Query(uint64(i) * 0x9e3779b97f4a7c15)
	}
}
