package bdb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/ssd"
	"repro/internal/vclock"
)

func newHash(t testing.TB, capacity int64) (*HashIndex, *vclock.Clock) {
	t.Helper()
	clock := vclock.New()
	dev := ssd.New(ssd.IntelX18M(), 64<<20, clock)
	h, err := NewHashIndex(Options{Device: dev, CapacityEntries: capacity, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return h, clock
}

func TestHashInsertLookup(t *testing.T) {
	h, _ := newHash(t, 100000)
	if err := h.Insert(42, 420); err != nil {
		t.Fatal(err)
	}
	v, ok, err := h.Lookup(42)
	if err != nil || !ok || v != 420 {
		t.Fatalf("Lookup = %d %v %v", v, ok, err)
	}
	if _, ok, _ := h.Lookup(43); ok {
		t.Fatal("phantom key")
	}
}

func TestHashOverwrite(t *testing.T) {
	h, _ := newHash(t, 100000)
	h.Insert(1, 10)
	h.Insert(1, 20)
	if v, _, _ := h.Lookup(1); v != 20 {
		t.Fatalf("overwrite failed: %d", v)
	}
}

func TestHashZeroKey(t *testing.T) {
	h, _ := newHash(t, 1000)
	if err := h.Insert(0, 1); !errors.Is(err, ErrZeroKey) {
		t.Fatal("zero key accepted")
	}
	if _, _, err := h.Lookup(0); !errors.Is(err, ErrZeroKey) {
		t.Fatal("zero key lookup accepted")
	}
}

func TestHashManyKeysWithOverflow(t *testing.T) {
	h, _ := newHash(t, 50000)
	rng := rand.New(rand.NewSource(1))
	ref := map[uint64]uint64{}
	for i := 0; i < 60000; i++ { // 20% past sizing: overflow chains form
		k := rng.Uint64() | 1
		v := rng.Uint64()
		if err := h.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	if h.Stats().OverflowPages == 0 {
		t.Log("note: no overflow pages allocated")
	}
	n := 0
	for k, v := range ref {
		got, ok, err := h.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got != v {
			t.Fatalf("key %#x: got (%d,%v), want %d", k, got, ok, v)
		}
		if n++; n > 5000 {
			break
		}
	}
}

func TestHashDelete(t *testing.T) {
	h, _ := newHash(t, 10000)
	h.Insert(7, 70)
	h.Insert(8, 80)
	ok, err := h.Delete(7)
	if err != nil || !ok {
		t.Fatalf("Delete = %v %v", ok, err)
	}
	if _, found, _ := h.Lookup(7); found {
		t.Fatal("deleted key found")
	}
	if v, found, _ := h.Lookup(8); !found || v != 80 {
		t.Fatal("sibling key damaged by delete")
	}
	if ok, _ := h.Delete(7); ok {
		t.Fatal("double delete")
	}
}

func TestHashModelBasedQuick(t *testing.T) {
	h, _ := newHash(t, 20000)
	ref := map[uint64]uint64{}
	f := func(ops []struct {
		Kind uint8
		Key  uint16
		Val  uint64
	}) bool {
		for _, o := range ops {
			k := uint64(o.Key) + 1
			switch o.Kind % 3 {
			case 0:
				if err := h.Insert(k, o.Val); err != nil {
					return false
				}
				ref[k] = o.Val
			case 1:
				got, ok, err := h.Lookup(k)
				if err != nil {
					return false
				}
				want, wantOK := ref[k]
				if ok != wantOK || (ok && got != want) {
					return false
				}
			case 2:
				ok, err := h.Delete(k)
				if err != nil {
					return false
				}
				_, wantOK := ref[k]
				if ok != wantOK {
					return false
				}
				delete(ref, k)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHashEveryOpTouchesDevice(t *testing.T) {
	// The defining property of the baseline: inserts are in-place page
	// writes (one per insert), with no batching.
	h, _ := newHash(t, 1000000)
	dev := ssd.New(ssd.IntelX18M(), 64<<20, vclock.New())
	h2, err := NewHashIndex(Options{Device: dev, CapacityEntries: 1000000, Seed: 1, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	_ = h
	rng := rand.New(rand.NewSource(2))
	const n = 2000
	for i := 0; i < n; i++ {
		if err := h2.Insert(rng.Uint64()|1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if w := dev.Counters().Writes; w < n {
		t.Fatalf("only %d device writes for %d inserts: baseline is batching", w, n)
	}
}

func TestHashLatencyOnDiskMatchesPaper(t *testing.T) {
	// §7.2.2: DB+Disk averages 6.8 ms lookups / 7 ms inserts.
	clock := vclock.New()
	dev := disk.New(disk.Hitachi7K80(), 256<<20, clock)
	h, err := NewHashIndex(Options{Device: dev, CapacityEntries: 4000000, Seed: 5, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var insTotal, lookTotal time.Duration
	const ops = 1500
	for i := 0; i < ops; i++ {
		k := rng.Uint64() | 1
		w := clock.StartWatch()
		if err := h.Insert(k, 1); err != nil {
			t.Fatal(err)
		}
		insTotal += w.Elapsed()
		w = clock.StartWatch()
		h.Lookup(rng.Uint64() | 1)
		lookTotal += w.Elapsed()
	}
	insMs := float64(insTotal/ops) / float64(time.Millisecond)
	lookMs := float64(lookTotal/ops) / float64(time.Millisecond)
	t.Logf("DB+Disk: insert %.2f ms (paper 7), lookup %.2f ms (paper 6.8)", insMs, lookMs)
	if insMs < 4 || insMs > 14 {
		t.Errorf("insert latency %.2f ms out of band", insMs)
	}
	if lookMs < 3 || lookMs > 12 {
		t.Errorf("lookup latency %.2f ms out of band", lookMs)
	}
}

// --- BTree ---

func newBTree(t testing.TB) *BTree {
	t.Helper()
	clock := vclock.New()
	dev := ssd.New(ssd.IntelX18M(), 64<<20, clock)
	bt, err := NewBTree(Options{Device: dev, CapacityEntries: 100000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return bt
}

func TestBTreeInsertLookup(t *testing.T) {
	bt := newBTree(t)
	if err := bt.Insert(5, 50); err != nil {
		t.Fatal(err)
	}
	v, ok, err := bt.Lookup(5)
	if err != nil || !ok || v != 50 {
		t.Fatalf("Lookup = %d %v %v", v, ok, err)
	}
	if _, ok, _ := bt.Lookup(6); ok {
		t.Fatal("phantom key")
	}
}

func TestBTreeSortedAndRandomBulk(t *testing.T) {
	for name, gen := range map[string]func(i int) uint64{
		"sorted":  func(i int) uint64 { return uint64(i) + 1 },
		"reverse": func(i int) uint64 { return uint64(200000 - i) },
		"random":  func(i int) uint64 { return (uint64(i)*2654435761 + 1) | 1 },
	} {
		t.Run(name, func(t *testing.T) {
			bt := newBTree(t)
			const n = 100000
			for i := 0; i < n; i++ {
				if err := bt.Insert(gen(i), uint64(i)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if bt.Height() < 2 {
				t.Fatalf("height = %d: splits never happened", bt.Height())
			}
			for i := 0; i < n; i += 37 {
				v, ok, err := bt.Lookup(gen(i))
				if err != nil {
					t.Fatal(err)
				}
				if !ok || v != uint64(i) {
					t.Fatalf("key %d (%#x): got (%d, %v)", i, gen(i), v, ok)
				}
			}
		})
	}
}

func TestBTreeOverwrite(t *testing.T) {
	bt := newBTree(t)
	for i := uint64(1); i <= 1000; i++ {
		bt.Insert(i, i)
	}
	for i := uint64(1); i <= 1000; i++ {
		bt.Insert(i, i*2)
	}
	for i := uint64(1); i <= 1000; i++ {
		if v, ok, _ := bt.Lookup(i); !ok || v != i*2 {
			t.Fatalf("key %d: %d %v", i, v, ok)
		}
	}
}

func TestBTreeModelBasedQuick(t *testing.T) {
	bt := newBTree(t)
	ref := map[uint64]uint64{}
	f := func(keys []uint16, vals []uint64) bool {
		for i, k16 := range keys {
			k := uint64(k16) + 1
			v := uint64(i)
			if i < len(vals) {
				v = vals[i]
			}
			if err := bt.Insert(k, v); err != nil {
				return false
			}
			ref[k] = v
		}
		for k, v := range ref {
			got, ok, err := bt.Lookup(k)
			if err != nil || !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeZeroKey(t *testing.T) {
	bt := newBTree(t)
	if err := bt.Insert(0, 1); !errors.Is(err, ErrZeroKey) {
		t.Fatal("zero key accepted")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewHashIndex(Options{}); err == nil {
		t.Fatal("nil device accepted")
	}
	clock := vclock.New()
	dev := ssd.New(ssd.IntelX18M(), 1<<20, clock)
	if _, err := NewHashIndex(Options{Device: dev, CapacityEntries: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewHashIndex(Options{Device: dev, CapacityEntries: 100000000}); err == nil {
		t.Fatal("oversized index accepted")
	}
}

func TestPageCacheLRU(t *testing.T) {
	c := newPageCache(2)
	c.put(1, []byte{1})
	c.put(2, []byte{2})
	c.get(1)            // 1 is now most recent
	c.put(3, []byte{3}) // evicts 2
	if c.get(2) != nil {
		t.Fatal("LRU did not evict the oldest page")
	}
	if c.get(1) == nil || c.get(3) == nil {
		t.Fatal("cache lost live pages")
	}
}
