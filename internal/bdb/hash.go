package bdb

import (
	"fmt"

	"repro/internal/hashutil"
	"repro/internal/storage"
)

// HashIndex is a bucket-directory hash table on a block device: key → home
// bucket page, with overflow pages chained off full buckets. Inserts are
// in-place read-modify-writes — exactly the random small writes that flash
// punishes (§4, §7.2.2). Not safe for concurrent use.
type HashIndex struct {
	dev        *device
	seed       uint64
	nBuckets   int64
	nextFree   int64 // next unallocated page (overflow allocation)
	totalPages int64
	stats      Stats
}

// NewHashIndex lays out a hash index on the device. Buckets are sized for
// ~70% occupancy at CapacityEntries, mirroring a pre-sized BDB hash table.
func NewHashIndex(opts Options) (*HashIndex, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	nBuckets := opts.CapacityEntries * 10 / 7 / int64(entriesPerPage)
	if nBuckets < 1 {
		nBuckets = 1
	}
	totalPages := opts.Device.Geometry().Capacity / pageSize
	if nBuckets >= totalPages {
		return nil, fmt.Errorf("bdb: %d buckets exceed device (%d pages)", nBuckets, totalPages)
	}
	return &HashIndex{
		dev:        &device{dev: opts.Device, cache: newPageCache(opts.CachePages)},
		seed:       opts.Seed,
		nBuckets:   nBuckets,
		nextFree:   nBuckets,
		totalPages: totalPages,
	}, nil
}

// Stats returns operation counters.
func (h *HashIndex) Stats() Stats { return h.stats }

// Buckets returns the number of home bucket pages.
func (h *HashIndex) Buckets() int64 { return h.nBuckets }

func (h *HashIndex) bucketOf(key uint64) int64 {
	return int64(hashutil.Hash64Seed(key, h.seed) % uint64(h.nBuckets))
}

// Lookup returns the value stored under key, walking the overflow chain.
func (h *HashIndex) Lookup(key uint64) (uint64, bool, error) {
	if key == 0 {
		return 0, false, ErrZeroKey
	}
	h.stats.Lookups++
	pageID := h.bucketOf(key)
	for {
		p, err := h.dev.readPage(pageID)
		if err != nil {
			return 0, false, err
		}
		h.stats.PageReads++
		n := pageCount(p)
		for i := 0; i < n; i++ {
			k, v := pageEntry(p, i)
			if k == key {
				h.stats.Hits++
				return v, true, nil
			}
		}
		next := pageNext(p)
		if next == 0 {
			return 0, false, nil
		}
		pageID = next
	}
}

// Insert stores (key, value), overwriting an existing entry in place or
// appending to the bucket (allocating an overflow page if needed). Every
// path ends in a random in-place page write.
func (h *HashIndex) Insert(key, value uint64) error {
	if key == 0 {
		return ErrZeroKey
	}
	h.stats.Inserts++
	pageID := h.bucketOf(key)
	for {
		p, err := h.dev.readPage(pageID)
		if err != nil {
			return err
		}
		h.stats.PageReads++
		n := pageCount(p)
		// Overwrite in place if present.
		for i := 0; i < n; i++ {
			if k, _ := pageEntry(p, i); k == key {
				setPageEntry(p, i, key, value)
				h.stats.PageWrites++
				return h.dev.writePage(pageID, p)
			}
		}
		if n < entriesPerPage {
			setPageEntry(p, n, key, value)
			setPageHeader(p, pageNext(p), n+1)
			h.stats.PageWrites++
			return h.dev.writePage(pageID, p)
		}
		next := pageNext(p)
		if next != 0 {
			pageID = next
			continue
		}
		// Allocate a new overflow page, link it, and store there.
		if h.nextFree >= h.totalPages {
			return ErrFull
		}
		newID := h.nextFree
		h.nextFree++
		h.stats.OverflowPages++
		setPageHeader(p, newID, n)
		h.stats.PageWrites++
		if err := h.dev.writePage(pageID, p); err != nil {
			return err
		}
		np := make([]byte, pageSize)
		setPageEntry(np, 0, key, value)
		setPageHeader(np, 0, 1)
		h.stats.PageWrites++
		return h.dev.writePage(newID, np)
	}
}

// Delete removes key with an in-place rewrite (swap-with-last within the
// page), reporting whether it was present.
func (h *HashIndex) Delete(key uint64) (bool, error) {
	if key == 0 {
		return false, ErrZeroKey
	}
	h.stats.Deletes++
	pageID := h.bucketOf(key)
	for {
		p, err := h.dev.readPage(pageID)
		if err != nil {
			return false, err
		}
		h.stats.PageReads++
		n := pageCount(p)
		for i := 0; i < n; i++ {
			if k, _ := pageEntry(p, i); k == key {
				lk, lv := pageEntry(p, n-1)
				setPageEntry(p, i, lk, lv)
				setPageEntry(p, n-1, 0, 0)
				setPageHeader(p, pageNext(p), n-1)
				h.stats.PageWrites++
				return true, h.dev.writePage(pageID, p)
			}
		}
		next := pageNext(p)
		if next == 0 {
			return false, nil
		}
		pageID = next
	}
}

var _ Index = (*HashIndex)(nil)

// Index is the interface shared by HashIndex and BTree, and implemented by
// the CLAM adapter in the wanopt package, so applications can switch the
// fingerprint store between baselines.
type Index interface {
	Insert(key, value uint64) error
	Lookup(key uint64) (uint64, bool, error)
}

// ensure device errors surface: compile-time hook for fault tests.
var _ = storage.ErrOutOfRange
