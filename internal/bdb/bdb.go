// Package bdb implements the paper's principal baseline: a Berkeley-DB
// style on-device index (§7.2.2). Two index types are provided, matching
// the paper's evaluation:
//
//   - HashIndex — a bucket-directory hash table with overflow chains, the
//     structure behind "the hash table structure in Berkeley-DB (BDB)";
//   - BTree — a B+tree, which the paper also measured and found worse
//     ("We also considered the B-Tree index of BDB, but the performance
//     was worse than the hash table").
//
// What matters for the comparison with BufferHash is the access pattern,
// not BDB's exact code: every lookup is a random page read and every
// insert/update is an in-place read-modify-write of a 4 KB page with
// write-through to the device — no write batching. A small in-memory page
// cache (BDB's "buffer pool") absorbs repeated reads of hot pages but, as
// in the paper, is far too small to matter for uniformly random keys over
// a large table.
//
// Entries are fixed 16-byte (key, value) pairs, as in BufferHash, so the
// two systems store identical data.
package bdb

import (
	"errors"
	"fmt"

	"repro/internal/hashutil"
	"repro/internal/storage"
)

// Common errors.
var (
	// ErrFull is returned when the index cannot allocate another overflow
	// or node page.
	ErrFull = errors.New("bdb: index out of space")
	// ErrZeroKey is returned for the reserved key 0.
	ErrZeroKey = errors.New("bdb: zero key is reserved")
)

const (
	pageSize = 4096
	// pageHeaderBytes: next-overflow pointer (8) + entry count (8).
	pageHeaderBytes = 16
	entriesPerPage  = (pageSize - pageHeaderBytes) / hashutil.EntrySize // 255
)

// pageCache is a tiny write-through LRU page cache standing in for BDB's
// buffer pool.
type pageCache struct {
	capacity int
	pages    map[int64][]byte
	order    []int64 // LRU order, front = oldest; small caches only
}

func newPageCache(capacity int) *pageCache {
	return &pageCache{capacity: capacity, pages: make(map[int64][]byte)}
}

func (c *pageCache) get(id int64) []byte {
	if p, ok := c.pages[id]; ok {
		c.touch(id)
		return p
	}
	return nil
}

func (c *pageCache) touch(id int64) {
	for i, v := range c.order {
		if v == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, id)
}

func (c *pageCache) put(id int64, p []byte) {
	if c.capacity == 0 {
		return
	}
	if _, ok := c.pages[id]; !ok && len(c.pages) >= c.capacity {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.pages, oldest)
	}
	c.pages[id] = p
	c.touch(id)
}

// device wraps the storage device with page-granular cached I/O.
type device struct {
	dev   storage.Device
	cache *pageCache
}

func (d *device) readPage(id int64) ([]byte, error) {
	if p := d.cache.get(id); p != nil {
		return p, nil
	}
	p := make([]byte, pageSize)
	if _, err := d.dev.ReadAt(p, id*pageSize); err != nil {
		return nil, err
	}
	d.cache.put(id, p)
	return p, nil
}

// writePage writes through to the device and refreshes the cache.
func (d *device) writePage(id int64, p []byte) error {
	if _, err := d.dev.WriteAt(p, id*pageSize); err != nil {
		return err
	}
	d.cache.put(id, p)
	return nil
}

// Options configures an index.
type Options struct {
	// Device backs the index.
	Device storage.Device
	// CapacityEntries sizes the structure (bucket count / leaf space).
	CapacityEntries int64
	// CachePages bounds the in-memory page cache (default 256 = 1 MB).
	CachePages int
	// Seed makes hashing deterministic.
	Seed uint64
}

func (o *Options) validate() error {
	if o.Device == nil {
		return fmt.Errorf("bdb: Device is required")
	}
	if o.CapacityEntries <= 0 {
		return fmt.Errorf("bdb: CapacityEntries must be positive")
	}
	if o.Device.Geometry().PageSize != pageSize {
		return fmt.Errorf("bdb: device page size %d, need %d", o.Device.Geometry().PageSize, pageSize)
	}
	if o.CachePages == 0 {
		o.CachePages = 256
	}
	return nil
}

// Stats counts index operations.
type Stats struct {
	Inserts, Lookups, Hits, Deletes uint64
	PageReads, PageWrites           uint64
	CacheHits                       uint64
	OverflowPages                   uint64
}

// page layout helpers ------------------------------------------------------

func pageNext(p []byte) int64 {
	k, _ := hashutil.GetEntry(p[:16])
	return int64(k)
}

func pageCount(p []byte) int {
	_, v := hashutil.GetEntry(p[:16])
	return int(v)
}

func setPageHeader(p []byte, next int64, count int) {
	hashutil.PutEntry(p[:16], uint64(next), uint64(count))
}

func pageEntry(p []byte, i int) (uint64, uint64) {
	return hashutil.GetEntry(p[pageHeaderBytes+i*hashutil.EntrySize:])
}

func setPageEntry(p []byte, i int, k, v uint64) {
	hashutil.PutEntry(p[pageHeaderBytes+i*hashutil.EntrySize:], k, v)
}
