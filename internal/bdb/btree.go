package bdb

import (
	"encoding/binary"
	"fmt"
)

// BTree is an on-device B+tree over (uint64 key → uint64 value) with 4 KB
// nodes, the paper's second BDB baseline ("We also considered the B-Tree
// index of BDB, but the performance was worse than the hash table",
// §7.2.2). Inner nodes are cached in memory (as BDB's buffer pool would
// keep them hot); leaves are read and written through to the device, so
// every insert is again an in-place random page write — plus occasional
// splits. Deletes are not implemented: the baseline exists for the
// insert/lookup comparison, mirroring the paper's use.
//
// Node layout (4 KB):
//
//	[0]   kind (0 = leaf, 1 = inner)
//	[1:3] count n
//	leaf:  n × (key u64, value u64) pairs, sorted by key
//	inner: n × (sepKey u64, child u64): child covers keys ≥ sepKey of the
//	       previous separator; child[0]'s separator is the minimum key.
type BTree struct {
	dev      *device
	root     int64
	nextFree int64
	total    int64
	height   int
	stats    Stats
}

const (
	nodeHeader = 4
	leafCap    = (pageSize - nodeHeader) / 16 // 255
	innerCap   = (pageSize - nodeHeader) / 16
)

// NewBTree lays out an empty tree.
func NewBTree(opts Options) (*BTree, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	t := &BTree{
		dev:      &device{dev: opts.Device, cache: newPageCache(opts.CachePages)},
		root:     0,
		nextFree: 1,
		total:    opts.Device.Geometry().Capacity / pageSize,
		height:   1,
	}
	// Initialize the root as an empty leaf.
	p := make([]byte, pageSize)
	setNode(p, 0, 0)
	if err := t.dev.writePage(0, p); err != nil {
		return nil, err
	}
	return t, nil
}

func setNode(p []byte, kind byte, n int) {
	p[0] = kind
	binary.LittleEndian.PutUint16(p[1:3], uint16(n))
}

func nodeKind(p []byte) byte { return p[0] }
func nodeCount(p []byte) int { return int(binary.LittleEndian.Uint16(p[1:3])) }

func nodePair(p []byte, i int) (uint64, uint64) {
	off := nodeHeader + i*16
	return binary.LittleEndian.Uint64(p[off:]), binary.LittleEndian.Uint64(p[off+8:])
}

func setNodePair(p []byte, i int, a, b uint64) {
	off := nodeHeader + i*16
	binary.LittleEndian.PutUint64(p[off:], a)
	binary.LittleEndian.PutUint64(p[off+8:], b)
}

// search returns the index of the first pair with key ≥ k, in [0, n].
func search(p []byte, k uint64) int {
	lo, hi := 0, nodeCount(p)
	for lo < hi {
		mid := (lo + hi) / 2
		mk, _ := nodePair(p, mid)
		if mk < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Stats returns operation counters.
func (t *BTree) Stats() Stats { return t.stats }

// Height returns the tree height (1 = a single leaf).
func (t *BTree) Height() int { return t.height }

// Lookup returns the value stored under key.
func (t *BTree) Lookup(key uint64) (uint64, bool, error) {
	if key == 0 {
		return 0, false, ErrZeroKey
	}
	t.stats.Lookups++
	pageID := t.root
	for {
		p, err := t.dev.readPage(pageID)
		if err != nil {
			return 0, false, err
		}
		t.stats.PageReads++
		if nodeKind(p) == 0 {
			i := search(p, key)
			if i < nodeCount(p) {
				if k, v := nodePair(p, i); k == key {
					t.stats.Hits++
					return v, true, nil
				}
			}
			return 0, false, nil
		}
		i := search(p, key)
		// child i covers keys in [sep[i], sep[i+1]); search returns the
		// first sep ≥ key, so step back unless it equals key.
		if i == nodeCount(p) {
			i--
		} else if k, _ := nodePair(p, i); k != key && i > 0 {
			i--
		}
		_, child := nodePair(p, i)
		pageID = int64(child)
	}
}

// insertResult propagates a split: the new right sibling and its first key.
type insertResult struct {
	split    bool
	sepKey   uint64
	newChild int64
}

// Insert stores (key, value), splitting nodes bottom-up as needed.
func (t *BTree) Insert(key, value uint64) error {
	if key == 0 {
		return ErrZeroKey
	}
	t.stats.Inserts++
	res, err := t.insertAt(t.root, key, value)
	if err != nil {
		return err
	}
	if !res.split {
		return nil
	}
	// Grow a new root.
	if t.nextFree >= t.total {
		return ErrFull
	}
	oldRootCopyID := t.nextFree
	t.nextFree++
	oldRoot, err := t.dev.readPage(t.root)
	if err != nil {
		return err
	}
	cp := make([]byte, pageSize)
	copy(cp, oldRoot)
	if err := t.dev.writePage(oldRootCopyID, cp); err != nil {
		return err
	}
	t.stats.PageWrites++
	minKey := uint64(0)
	if nodeCount(cp) > 0 {
		minKey, _ = nodePair(cp, 0)
	}
	nr := make([]byte, pageSize)
	setNode(nr, 1, 2)
	setNodePair(nr, 0, minKey, uint64(oldRootCopyID))
	setNodePair(nr, 1, res.sepKey, uint64(res.newChild))
	t.stats.PageWrites++
	t.height++
	return t.dev.writePage(t.root, nr)
}

func (t *BTree) insertAt(pageID int64, key, value uint64) (insertResult, error) {
	p, err := t.dev.readPage(pageID)
	if err != nil {
		return insertResult{}, err
	}
	t.stats.PageReads++
	if nodeKind(p) == 0 {
		return t.insertLeaf(pageID, p, key, value)
	}
	n := nodeCount(p)
	i := search(p, key)
	if i == n {
		i--
	} else if k, _ := nodePair(p, i); k != key && i > 0 {
		i--
	}
	_, child := nodePair(p, i)
	res, err := t.insertAt(int64(child), key, value)
	if err != nil || !res.split {
		return insertResult{}, err
	}
	// Insert the new separator positionally, directly after the child
	// that split. (Binary search by key would be wrong here: child 0's
	// separator can be stale-high, since keys smaller than every
	// separator all descend into it.)
	type sep struct{ k, c uint64 }
	entries := make([]sep, 0, n+1)
	for m := 0; m < n; m++ {
		a, b := nodePair(p, m)
		entries = append(entries, sep{a, b})
	}
	entries = append(entries[:i+1], append([]sep{{res.sepKey, uint64(res.newChild)}}, entries[i+1:]...)...)
	if len(entries) <= innerCap {
		for m, e := range entries {
			setNodePair(p, m, e.k, e.c)
		}
		setNode(p, 1, len(entries))
		t.stats.PageWrites++
		return insertResult{}, t.dev.writePage(pageID, p)
	}
	// Split the inner node around the median.
	if t.nextFree >= t.total {
		return insertResult{}, ErrFull
	}
	rightID := t.nextFree
	t.nextFree++
	half := len(entries) / 2
	for m := 0; m < half; m++ {
		setNodePair(p, m, entries[m].k, entries[m].c)
	}
	setNode(p, 1, half)
	right := make([]byte, pageSize)
	for m := half; m < len(entries); m++ {
		setNodePair(right, m-half, entries[m].k, entries[m].c)
	}
	setNode(right, 1, len(entries)-half)
	t.stats.PageWrites += 2
	if err := t.dev.writePage(pageID, p); err != nil {
		return insertResult{}, err
	}
	if err := t.dev.writePage(rightID, right); err != nil {
		return insertResult{}, err
	}
	return insertResult{split: true, sepKey: entries[half].k, newChild: rightID}, nil
}

func (t *BTree) insertLeaf(pageID int64, p []byte, key, value uint64) (insertResult, error) {
	n := nodeCount(p)
	i := search(p, key)
	if i < n {
		if k, _ := nodePair(p, i); k == key {
			setNodePair(p, i, key, value)
			t.stats.PageWrites++
			return insertResult{}, t.dev.writePage(pageID, p)
		}
	}
	if n < leafCap {
		for m := n; m > i; m-- {
			a, b := nodePair(p, m-1)
			setNodePair(p, m, a, b)
		}
		setNodePair(p, i, key, value)
		setNode(p, 0, n+1)
		t.stats.PageWrites++
		return insertResult{}, t.dev.writePage(pageID, p)
	}
	// Split the leaf.
	if t.nextFree >= t.total {
		return insertResult{}, ErrFull
	}
	rightID := t.nextFree
	t.nextFree++
	half := n / 2
	right := make([]byte, pageSize)
	setNode(right, 0, n-half)
	for m := half; m < n; m++ {
		a, b := nodePair(p, m)
		setNodePair(right, m-half, a, b)
	}
	setNode(p, 0, half)
	// Insert into the proper half.
	rk, _ := nodePair(right, 0)
	if key >= rk {
		if _, err := t.insertLeaf(rightID, right, key, value); err != nil {
			return insertResult{}, err
		}
	} else {
		if _, err := t.insertLeaf(pageID, p, key, value); err != nil {
			return insertResult{}, err
		}
	}
	t.stats.PageWrites += 2
	if err := t.dev.writePage(pageID, p); err != nil {
		return insertResult{}, err
	}
	if err := t.dev.writePage(rightID, right); err != nil {
		return insertResult{}, err
	}
	rk, _ = nodePair(right, 0)
	return insertResult{split: true, sepKey: rk, newChild: rightID}, nil
}

var _ Index = (*BTree)(nil)

// String describes the tree shape for debugging.
func (t *BTree) String() string {
	return fmt.Sprintf("btree{height=%d, pages=%d}", t.height, t.nextFree)
}
