package workload

import (
	"bytes"
	"math"
	"testing"
)

func TestKeyStreamDeterministic(t *testing.T) {
	a, b := NewKeyStream(1, 1000), NewKeyStream(1, 1000)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams diverged")
		}
	}
}

func TestKeyStreamRange(t *testing.T) {
	s := NewKeyStream(2, 100)
	for i := 0; i < 10000; i++ {
		k := s.Next()
		if k < 1 || k > 100 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestKeyStreamValuesUnique(t *testing.T) {
	s := NewKeyStream(3, 10)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := s.NextValue()
		if seen[v] {
			t.Fatal("duplicate value")
		}
		seen[v] = true
	}
}

func TestRangeForLSR(t *testing.T) {
	if r := RangeForLSR(1000, 0.4); r != 2500 {
		t.Fatalf("RangeForLSR(1000, 0.4) = %d, want 2500", r)
	}
	if r := RangeForLSR(1000, 0); r < 1<<60 {
		t.Fatal("zero LSR should give a huge range")
	}
	if r := RangeForLSR(1000, 2); r != 1000 {
		t.Fatalf("LSR clamps at 1: %d", r)
	}
	if r := RangeForLSR(0, 0.5); r != 1 {
		t.Fatalf("zero store: %d", r)
	}
}

func TestMixedFractions(t *testing.T) {
	m := NewMixed(4, 10000, 0.7, 0.0)
	lookups := 0
	const n = 20000
	for i := 0; i < n; i++ {
		op := m.Next()
		if op.Kind == OpLookup {
			lookups++
		}
	}
	frac := float64(lookups) / n
	if math.Abs(frac-0.7) > 0.02 {
		t.Fatalf("lookup fraction %.3f, want 0.7", frac)
	}
}

func TestMixedValuesIncrease(t *testing.T) {
	m := NewMixed(5, 100, 0, 0.5)
	var prev uint64
	for i := 0; i < 100; i++ {
		op := m.Next()
		if op.Value <= prev {
			t.Fatal("values not strictly increasing")
		}
		prev = op.Value
	}
}

func TestTraceRedundancyTargets(t *testing.T) {
	for _, target := range []float64{0.15, 0.5} {
		tr := GenerateTrace(TraceConfig{
			Objects:         40,
			MeanObjectBytes: 256 << 10,
			Redundancy:      target,
			Seed:            7,
		})
		got := tr.MeasuredRedundancy()
		if math.Abs(got-target) > 0.08 {
			t.Errorf("redundancy %.3f, want ≈%.2f", got, target)
		}
		if tr.TotalBytes == 0 || len(tr.Objects) != 40 {
			t.Fatal("trace empty")
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	cfg := TraceConfig{Objects: 5, MeanObjectBytes: 64 << 10, Redundancy: 0.3, Seed: 9}
	a, b := GenerateTrace(cfg), GenerateTrace(cfg)
	if a.TotalBytes != b.TotalBytes || a.DupBytes != b.DupBytes {
		t.Fatal("traces differ")
	}
	for i := range a.Objects {
		if !bytes.Equal(a.Objects[i].Data, b.Objects[i].Data) {
			t.Fatal("object data differs")
		}
	}
}

func TestTraceZeroRedundancy(t *testing.T) {
	tr := GenerateTrace(TraceConfig{Objects: 10, MeanObjectBytes: 128 << 10, Redundancy: 0, Seed: 1})
	if tr.DupBytes != 0 {
		t.Fatalf("zero-redundancy trace has %d dup bytes", tr.DupBytes)
	}
}

func TestTraceObjectSizesVary(t *testing.T) {
	tr := GenerateTrace(TraceConfig{Objects: 50, MeanObjectBytes: 256 << 10, Redundancy: 0.2, Seed: 3})
	min, max := math.MaxInt, 0
	for _, o := range tr.Objects {
		if len(o.Data) < min {
			min = len(o.Data)
		}
		if len(o.Data) > max {
			max = len(o.Data)
		}
	}
	if max < 2*min {
		t.Fatalf("object sizes too uniform: [%d, %d]", min, max)
	}
}

func TestZipfStreamSkewAndDeterminism(t *testing.T) {
	a := NewZipfStream(9, 1.2, 1<<20)
	b := NewZipfStream(9, 1.2, 1<<20)
	counts := make(map[uint64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		ka, kb := a.Next(), b.Next()
		if ka != kb {
			t.Fatal("ZipfStream not deterministic per seed")
		}
		counts[ka]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// The hottest key of a Zipf(1.2) stream must dominate: far above the
	// uniform expectation, far below everything.
	if max < n/100 {
		t.Fatalf("hottest key drew %d/%d: not skewed", max, n)
	}
	if max == n {
		t.Fatal("stream collapsed to one key")
	}
	if len(counts) < 100 {
		t.Fatalf("only %d distinct keys", len(counts))
	}
}
