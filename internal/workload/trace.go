package workload

import (
	"math/rand"
)

// Object is one transfer of an object-level trace (§8: packet traces
// grouped into objects by connection 4-tuple).
type Object struct {
	ID   int
	Data []byte
}

// TraceConfig controls synthetic object-trace generation.
type TraceConfig struct {
	// Objects is the number of objects to generate.
	Objects int
	// MeanObjectBytes sets the object size scale; sizes follow a
	// heavy-tail-ish mixture between MeanObjectBytes/4 and
	// 4×MeanObjectBytes.
	MeanObjectBytes int
	// Redundancy is the fraction of bytes duplicated from earlier content
	// (the paper evaluates 50% and 15% redundancy traces).
	Redundancy float64
	// SegmentBytes is the granularity of duplicated regions; it should be
	// many chunk sizes so the content-defined chunker can resynchronize
	// inside each duplicate and rediscover most of it (default 128 KB).
	SegmentBytes int
	// Seed makes the trace reproducible.
	Seed int64
}

// Trace is a reproducible synthetic object trace.
type Trace struct {
	Objects    []Object
	TotalBytes int64
	// DupBytes counts bytes copied from earlier segments: the upper bound
	// a perfect deduplicator could remove.
	DupBytes int64
}

// GenerateTrace synthesizes a trace: each object is a concatenation of
// segments, where a segment is either fresh random bytes or a copy of a
// previously emitted segment (chosen uniformly). Because duplicated
// segments are byte-identical and larger than the chunk size,
// content-defined chunking rediscovers them wherever they appear.
func GenerateTrace(cfg TraceConfig) *Trace {
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 128 << 10
	}
	if cfg.MeanObjectBytes == 0 {
		cfg.MeanObjectBytes = 1 << 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{}
	var pool [][]byte // previously emitted segments
	for id := 0; id < cfg.Objects; id++ {
		// Object size: uniform in [mean/4, 4·mean] on a log-ish scale.
		lo := cfg.MeanObjectBytes / 4
		size := lo + rng.Intn(cfg.MeanObjectBytes*4-lo)
		data := make([]byte, 0, size)
		for len(data) < size {
			segLen := cfg.SegmentBytes
			if remaining := size - len(data); segLen > remaining {
				segLen = remaining
			}
			if len(pool) > 0 && rng.Float64() < cfg.Redundancy {
				src := pool[rng.Intn(len(pool))]
				if segLen > len(src) {
					segLen = len(src)
				}
				data = append(data, src[:segLen]...)
				tr.DupBytes += int64(segLen)
				continue
			}
			seg := make([]byte, segLen)
			rng.Read(seg)
			data = append(data, seg...)
			if segLen == cfg.SegmentBytes {
				pool = append(pool, seg)
			}
		}
		tr.Objects = append(tr.Objects, Object{ID: id, Data: data})
		tr.TotalBytes += int64(len(data))
	}
	return tr
}

// MeasuredRedundancy returns the duplicated-byte fraction of the trace.
func (t *Trace) MeasuredRedundancy() float64 {
	if t.TotalBytes == 0 {
		return 0
	}
	return float64(t.DupBytes) / float64(t.TotalBytes)
}
