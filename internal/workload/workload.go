// Package workload generates the synthetic workloads of the paper's
// evaluation: key streams with controlled lookup success ratio (§7.2,
// "keys are generated using random distribution with varying range; the
// range effects the lookup success rate"), mixed insert/lookup/update
// streams (Table 3, Figure 8), and object-level traces with controlled
// redundancy standing in for the UW-Madison packet traces (§8; the paper
// notes its synthetic-trace results are "qualitatively similar").
package workload

import (
	"math/rand"
)

// OpKind labels one operation of a key workload.
type OpKind int

// Operation kinds.
const (
	OpLookup OpKind = iota
	OpInsert
	OpUpdate
	OpDelete
)

// Op is one operation of a generated stream.
type Op struct {
	Kind  OpKind
	Key   uint64
	Value uint64
}

// KeyStream produces the paper's core workload: "every key is first looked
// up, and then inserted", with keys drawn uniformly from a range sized to
// hit a target lookup success ratio.
type KeyStream struct {
	rng      *rand.Rand
	keyRange uint64
	seq      uint64
}

// NewKeyStream builds a stream over keyRange distinct keys. With a store
// retaining the most recent W distinct keys, the steady-state LSR of
// lookup-then-insert is ≈ W/keyRange (clamped at 1).
func NewKeyStream(seed int64, keyRange uint64) *KeyStream {
	if keyRange == 0 {
		keyRange = 1
	}
	return &KeyStream{rng: rand.New(rand.NewSource(seed)), keyRange: keyRange}
}

// Next returns the next key.
func (s *KeyStream) Next() uint64 {
	return uint64(s.rng.Int63n(int64(s.keyRange))) + 1
}

// NextValue returns a unique value (sequence number), so staleness is
// detectable in tests.
func (s *KeyStream) NextValue() uint64 {
	s.seq++
	return s.seq
}

// ZipfStream draws keys from a Zipf popularity distribution over a fixed
// rank range — the skewed counterpart of KeyStream, used to exercise the
// sharded batch router under hot-key concentration. Rank r is mapped to a
// stable fingerprint with hashutil-style mixing so a hot rank stays one hot
// key (popularity skew is preserved) while distinct ranks spread uniformly
// over the key space (shard routing by high bits stays meaningful).
type ZipfStream struct {
	z   *rand.Zipf
	seq uint64
}

// NewZipfStream builds a stream over keyRange ranks with Zipf exponent
// s > 1 (larger = more skew; 1.2 concentrates ~1/3 of draws on the hottest
// few keys).
func NewZipfStream(seed int64, s float64, keyRange uint64) *ZipfStream {
	if keyRange == 0 {
		keyRange = 1
	}
	if s <= 1 {
		s = 1.01
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfStream{z: rand.NewZipf(rng, s, 1, keyRange-1)}
}

// Next returns the next key: a mixed fingerprint of the drawn rank.
func (s *ZipfStream) Next() uint64 {
	r := s.z.Uint64() + 1
	// SplitMix64 finalizer (hashutil.Mix64; duplicated to keep workload
	// dependency-free): a bijection, so rank popularity carries over.
	x := r
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NextValue returns a unique value (sequence number).
func (s *ZipfStream) NextValue() uint64 {
	s.seq++
	return s.seq
}

// RangeForLSR returns the key range that yields the target LSR for a store
// whose steady-state population is storeEntries.
func RangeForLSR(storeEntries uint64, lsr float64) uint64 {
	if lsr <= 0 {
		return 1 << 62 // effectively all misses
	}
	if lsr > 1 {
		lsr = 1
	}
	r := uint64(float64(storeEntries) / lsr)
	if r == 0 {
		r = 1
	}
	return r
}

// Mixed generates a stream with the given lookup fraction (Table 3) and
// update rate (Figure 8): non-lookup operations are inserts, of which
// updateRate draws keys from the already-inserted set.
type Mixed struct {
	rng        *rand.Rand
	keyRange   uint64
	lookupFrac float64
	updateRate float64
	seq        uint64
}

// NewMixed builds a mixed stream.
func NewMixed(seed int64, keyRange uint64, lookupFrac, updateRate float64) *Mixed {
	return &Mixed{
		rng:        rand.New(rand.NewSource(seed)),
		keyRange:   keyRange,
		lookupFrac: lookupFrac,
		updateRate: updateRate,
	}
}

// Next returns the next operation.
func (m *Mixed) Next() Op {
	m.seq++
	key := uint64(m.rng.Int63n(int64(m.keyRange))) + 1
	if m.rng.Float64() < m.lookupFrac {
		return Op{Kind: OpLookup, Key: key}
	}
	kind := OpInsert
	if m.rng.Float64() < m.updateRate {
		kind = OpUpdate // same key range: collisions are the updates
	}
	return Op{Kind: kind, Key: key, Value: m.seq}
}
