package rabin

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestBoundariesCoverData(t *testing.T) {
	c := Default()
	data := randomBytes(1<<20, 1)
	cuts := c.Boundaries(data)
	if len(cuts) == 0 || cuts[len(cuts)-1] != len(data) {
		t.Fatalf("boundaries do not cover data: %v", cuts[len(cuts)-1])
	}
	prev := 0
	for _, cut := range cuts {
		if cut <= prev {
			t.Fatalf("non-increasing cut %d after %d", cut, prev)
		}
		prev = cut
	}
}

func TestChunkSizeBounds(t *testing.T) {
	c := NewChunker(13, 2<<10, 64<<10, 1)
	data := randomBytes(4<<20, 2)
	prev := 0
	for i, cut := range c.Boundaries(data) {
		size := cut - prev
		if size > 64<<10 {
			t.Fatalf("chunk %d size %d > max", i, size)
		}
		// Only the final chunk may be under min.
		if size < 2<<10 && cut != len(data) {
			t.Fatalf("chunk %d size %d < min", i, size)
		}
		prev = cut
	}
}

func TestAverageChunkSize(t *testing.T) {
	c := Default()
	data := randomBytes(8<<20, 3)
	chunks := c.Split(data)
	avg := len(data) / len(chunks)
	// Expected ~8 KB (mask 13 bits) with min-size skew; accept 4–16 KB.
	if avg < 4<<10 || avg > 16<<10 {
		t.Fatalf("average chunk size %d, want ≈8 KB", avg)
	}
}

func TestDeterministic(t *testing.T) {
	c1, c2 := Default(), Default()
	data := randomBytes(1<<20, 4)
	a, b := c1.Boundaries(data), c2.Boundaries(data)
	if len(a) != len(b) {
		t.Fatal("non-deterministic chunk count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic boundaries")
		}
	}
}

func TestContentDefinedShiftResistance(t *testing.T) {
	// The core CDC property: inserting a prefix shifts content, but chunk
	// boundaries resynchronize, so most chunks of the shifted stream are
	// byte-identical to chunks of the original.
	c := Default()
	data := randomBytes(2<<20, 5)
	shifted := append(randomBytes(1234, 6), data...)

	orig := map[string]bool{}
	for _, ch := range c.Split(data) {
		orig[string(ch)] = true
	}
	matched, total := 0, 0
	for _, ch := range c.Split(shifted) {
		total++
		if orig[string(ch)] {
			matched++
		}
	}
	frac := float64(matched) / float64(total)
	t.Logf("resync: %d/%d chunks (%.0f%%) identical after a 1234-byte prefix insert", matched, total, 100*frac)
	if frac < 0.9 {
		t.Fatalf("only %.0f%% of chunks matched after shift; CDC broken", 100*frac)
	}
}

func TestIdenticalContentIdenticalChunks(t *testing.T) {
	// Redundancy detection depends on identical regions producing
	// identical chunks when embedded in different surroundings.
	c := Default()
	shared := randomBytes(256<<10, 7)
	obj1 := append(randomBytes(64<<10, 8), shared...)
	obj2 := append(randomBytes(96<<10, 9), shared...)
	set1 := map[string]bool{}
	for _, ch := range c.Split(obj1) {
		set1[string(ch)] = true
	}
	common := 0
	var commonBytes int
	for _, ch := range c.Split(obj2) {
		if set1[string(ch)] {
			common++
			commonBytes += len(ch)
		}
	}
	if commonBytes < len(shared)*8/10 {
		t.Fatalf("only %d of %d shared bytes deduplicated", commonBytes, len(shared))
	}
	if common == 0 {
		t.Fatal("no common chunks found")
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	c := Default()
	if cuts := c.Boundaries(nil); len(cuts) != 1 || cuts[0] != 0 {
		t.Fatalf("empty input: %v", cuts)
	}
	small := []byte("tiny")
	chunks := c.Split(small)
	if len(chunks) != 1 || !bytes.Equal(chunks[0], small) {
		t.Fatalf("tiny input chunks: %v", chunks)
	}
}

func TestSplitReassembles(t *testing.T) {
	c := Default()
	data := randomBytes(3<<20, 10)
	var re []byte
	for _, ch := range c.Split(data) {
		re = append(re, ch...)
	}
	if !bytes.Equal(re, data) {
		t.Fatal("chunks do not reassemble to the original")
	}
}

func BenchmarkChunking(b *testing.B) {
	c := Default()
	data := randomBytes(1<<20, 11)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Boundaries(data)
	}
}
