// Package rabin implements Rabin-Karp rolling fingerprints and the
// content-defined chunking used by the WAN optimizer's connection
// management front end (§8: "The buffered object data is divided into
// chunks by computing content-based chunk boundaries using Rabin-Karp
// fingerprints").
//
// A 48-byte window rolls over the data; positions where the fingerprint
// matches a mask-selected pattern become chunk boundaries, so identical
// content produces identical chunks regardless of its offset in the
// stream. Chunk sizes are bounded to [MinSize, MaxSize] with an expected
// size of ~2^MaskBits bytes; the paper's systems use ~4–8 KB chunks.
package rabin

import "repro/internal/hashutil"

// Window is the rolling-hash window size in bytes.
const Window = 48

// prime is the polynomial base (an odd 61-bit prime-ish multiplier).
const prime = 0x3B9ACA07

// Chunker splits byte streams into content-defined chunks.
type Chunker struct {
	minSize int
	maxSize int
	mask    uint64
	magic   uint64
	// pow = prime^Window, used to remove the byte leaving the window.
	pow uint64
	// table randomizes byte values before mixing, hardening the
	// polynomial hash against low-entropy input.
	table [256]uint64
}

// NewChunker builds a chunker with an expected chunk size of 2^maskBits
// bytes, bounded to [minSize, maxSize]. The paper's configuration is
// maskBits=13 (8 KB average), minSize=2 KB, maxSize=64 KB.
func NewChunker(maskBits uint, minSize, maxSize int, seed uint64) *Chunker {
	if minSize < Window {
		minSize = Window
	}
	if maxSize < minSize {
		maxSize = minSize
	}
	c := &Chunker{
		minSize: minSize,
		maxSize: maxSize,
		mask:    1<<maskBits - 1,
		magic:   hashutil.Mix64(seed) & (1<<maskBits - 1),
	}
	pow := uint64(1)
	for i := 0; i < Window; i++ {
		pow *= prime
	}
	c.pow = pow
	for i := range c.table {
		c.table[i] = hashutil.Hash64Seed(uint64(i), seed^0xFEED)
	}
	return c
}

// Default returns the paper-flavoured chunker: ~8 KB average chunks in
// [2 KB, 64 KB].
func Default() *Chunker {
	return NewChunker(13, 2<<10, 64<<10, 0xC0FFEE)
}

// AverageChunkSize returns the expected chunk size in bytes.
func (c *Chunker) AverageChunkSize() int { return int(c.mask) + 1 }

// Boundaries returns the chunk end offsets for data: each chunk is
// data[prev:off]. The final offset is always len(data).
func (c *Chunker) Boundaries(data []byte) []int {
	var cuts []int
	start := 0
	var h uint64
	for i := 0; i < len(data); i++ {
		h = h*prime + c.table[data[i]]
		if i-start >= Window {
			h -= c.pow * c.table[data[i-Window]]
		}
		size := i - start + 1
		if size < c.minSize {
			continue
		}
		if h&c.mask == c.magic || size >= c.maxSize {
			cuts = append(cuts, i+1)
			start = i + 1
			h = 0
		}
	}
	if start < len(data) || len(data) == 0 {
		cuts = append(cuts, len(data))
	}
	return cuts
}

// Split returns the chunks of data as sub-slices (no copying).
func (c *Chunker) Split(data []byte) [][]byte {
	cuts := c.Boundaries(data)
	chunks := make([][]byte, 0, len(cuts))
	prev := 0
	for _, cut := range cuts {
		chunks = append(chunks, data[prev:cut])
		prev = cut
	}
	return chunks
}
