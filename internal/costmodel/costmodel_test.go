package costmodel

import (
	"math"
	"testing"
	"time"
)

const (
	gb = int64(1) << 30
	s  = 32.0 // effective bytes per entry (16 B at 50% utilization, §7.1.1)
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func TestOptimalBufferMatchesPaper(t *testing.T) {
	// §6.4: B_opt = F/(s·ln²2) ≈ 2F/s with all sizes in bits, i.e.
	// F/(8·s·ln²2) bytes. §7.1.1 states the analytic optimum for the
	// 32 GB / 16 B-entry configuration is 266 MB.
	f := 32 * gb
	got := OptimalBufferBytes(f, s)
	wantMB := 266.0
	gotMB := float64(got) / (1 << 20)
	if math.Abs(gotMB-wantMB)/wantMB > 0.05 {
		t.Fatalf("B_opt = %.0f MB, want ≈ %.0f MB (§7.1.1)", gotMB, wantMB)
	}
	// And the "≈ 2F/s bits" phrasing.
	approxBits := 2 * float64(f) / s
	if math.Abs(float64(got)*8-approxBits)/approxBits > 0.05 {
		t.Fatalf("B_opt = %d bits, want ≈ 2F/s = %g bits", got*8, approxBits)
	}
}

func TestBoptMinimizesLookupCost(t *testing.T) {
	// The analytic optimum must beat nearby allocations under a fixed
	// total memory budget M (splitting M between buffers and filters).
	f := 32 * gb
	m := 4 * gb
	cr := PageReadCost(IntelSSDCosts())
	bOpt := OptimalBufferBytes(f, s)
	cost := func(b int64) time.Duration {
		return LookupCost(f, b, m-b, s, cr)
	}
	c0 := cost(bOpt)
	for _, factor := range []float64{0.25, 0.5, 2, 4} {
		b := int64(float64(bOpt) * factor)
		if cost(b) < c0 {
			t.Errorf("allocation %.2f×B_opt beats B_opt: %v < %v", factor, cost(b), c0)
		}
	}
}

func TestLookupCostMonotonicInBloom(t *testing.T) {
	f := 32 * gb
	cr := PageReadCost(IntelSSDCosts())
	bOpt := OptimalBufferBytes(f, s)
	prev := time.Duration(math.MaxInt64)
	for _, bloomMB := range []int64{10, 100, 1000, 10000} {
		c := LookupCost(f, bOpt, bloomMB<<20, s, cr)
		if c > prev {
			t.Fatalf("lookup cost not decreasing at %d MB", bloomMB)
		}
		prev = c
	}
}

func TestPaperFigure3Claim(t *testing.T) {
	// §6.4: "for BufferHash with 32GB flash and 16 bytes per entry
	// (effective 32 bytes at 50% utilization), allocating 1GB for all
	// Bloom filters is sufficient to limit the expected I/O overhead
	// below 1ms."
	f := 32 * gb
	cr := PageReadCost(IntelSSDCosts())
	c := LookupCost(f, OptimalBufferBytes(f, s), 1*gb, s, cr)
	if ms(c) >= 1.0 {
		t.Fatalf("1GB of filters gives %.3f ms overhead, paper says <1ms", ms(c))
	}
	// And far less memory does not suffice.
	c = LookupCost(f, OptimalBufferBytes(f, s), 100<<20, s, cr)
	if ms(c) < 1.0 {
		t.Fatalf("100MB of filters already gives %.3f ms: curve too flat", ms(c))
	}
}

func TestRequiredBloomBytesInvertsLookupCost(t *testing.T) {
	f := 64 * gb
	cr := PageReadCost(IntelSSDCosts())
	for _, targetMs := range []float64{0.1, 0.5, 1, 5} {
		target := time.Duration(targetMs * float64(time.Millisecond))
		b := RequiredBloomBytes(f, s, cr, target)
		if b <= 0 {
			t.Fatalf("target %.1f ms: no bloom required?", targetMs)
		}
		got := LookupCost(f, OptimalBufferBytes(f, s), b, s, cr)
		if got > target+target/20 {
			t.Errorf("target %v: %d bytes give %v", target, b, got)
		}
	}
	// At B_opt, k = 8·s·ln²2 ≈ 123 incarnations; k·c_r ≈ 19 ms, so only
	// targets above that need no filters.
	// A target above k·cr (no filters needed at all) returns 0.
	if b := RequiredBloomBytes(f, s, cr, time.Hour); b != 0 {
		t.Errorf("huge target should need 0 bloom bytes, got %d", b)
	}
}

func TestRequiredBloomPanicsOnZeroTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RequiredBloomBytes(gb, s, time.Millisecond, 0)
}

func TestFlushCostChipDecomposition(t *testing.T) {
	fc := ChipCosts()
	// Block-sized buffer (128 KB): C1 = write, C2 = full erase, C3 = 0.
	ic := FlushCost(fc, 128<<10)
	if ic.C3 != 0 {
		t.Fatalf("block-aligned buffer has C3 = %v", ic.C3)
	}
	if ic.C2 != fc.EraseFixed {
		t.Fatalf("C2 = %v, want full erase %v", ic.C2, fc.EraseFixed)
	}
	// Sub-block buffer (2 KB = 1 page): C2 scaled by ni/nb, C3 = copying
	// 63 pages.
	ic = FlushCost(fc, 2048)
	if ic.C3 == 0 {
		t.Fatal("sub-block buffer must pay C3 copying")
	}
	if ic.C2 >= fc.EraseFixed {
		t.Fatalf("C2 = %v not scaled down for sub-block buffer", ic.C2)
	}
	// Multi-block buffer (256 KB): no copying, two blocks erased.
	ic = FlushCost(fc, 256<<10)
	if ic.C3 != 0 {
		t.Fatalf("multi-block C3 = %v", ic.C3)
	}
}

func TestAmortizedInsertInverseInBufferSize(t *testing.T) {
	// §6.1: amortized cost is inversely proportional to B′ (for SSDs,
	// where C2=C3=0 and the per-byte term dominates at large B′).
	fc := IntelSSDCosts()
	a1 := AmortizedInsert(fc, 64<<10, s)
	a2 := AmortizedInsert(fc, 512<<10, s)
	if a2 >= a1 {
		t.Fatalf("amortized cost not decreasing: %v -> %v", a1, a2)
	}
}

func TestFigure4ChipOptimumAtBlockSize(t *testing.T) {
	// §6.4: "for the flash chip, both amortized and worst-case cost
	// minimize when the buffer size B′ matches the flash block size."
	// In the linear model the amortized curve flattens past the block
	// size (fixed costs amortize away); the operative claims are that
	// sub-block buffers are strictly worse (C3 copying + scaled C2) and
	// the block-size point is within a whisker of the global minimum.
	fc := ChipCosts()
	curve := Figure4Curve(fc, s, 4<<20, false, 200)
	best := ArgminBuffer(curve)
	atBlock := AmortizedInsert(fc, 128<<10, s)
	if float64(atBlock) > 1.3*float64(best.Cost) {
		t.Fatalf("block-size amortized cost %v far above minimum %v (at %.0f KB)",
			atBlock, best.Cost, best.X/1024)
	}
	subBlock := AmortizedInsert(fc, 8<<10, s)
	if float64(subBlock) < 1.5*float64(atBlock) {
		t.Fatalf("sub-block buffer (8KB: %v) not clearly worse than block-size (%v)", subBlock, atBlock)
	}
	// Worst-case cost is minimized at or below the block size and grows
	// linearly beyond it (Figure 4b).
	worstCurve := Figure4Curve(fc, s, 4<<20, true, 200)
	bestW := ArgminBuffer(worstCurve)
	if bestW.X > 256<<10 {
		t.Fatalf("worst-case optimum at %.0f KB, want ≤ block size", bestW.X/1024)
	}
	if WorstInsert(fc, 1<<20) <= WorstInsert(fc, 128<<10) {
		t.Fatal("worst-case cost should grow past the block size")
	}
}

func TestFigure4SSDTradeoff(t *testing.T) {
	// §6.4 (Figure 4c,d): on SSDs a larger buffer reduces average latency
	// but increases worst-case latency.
	fc := IntelSSDCosts()
	avg := Figure4Curve(fc, s, 16<<20, false, 100)
	if avg[0].Cost <= avg[len(avg)-1].Cost {
		t.Fatal("SSD amortized cost should fall with buffer size")
	}
	worst := Figure4Curve(fc, s, 16<<20, true, 100)
	if worst[0].Cost >= worst[len(worst)-1].Cost {
		t.Fatal("SSD worst-case cost should grow with buffer size")
	}
}

func TestFigure3CurveShape(t *testing.T) {
	pts := Figure3Curve(32*gb, s, PageReadCost(IntelSSDCosts()), 50)
	if len(pts) != 50 {
		t.Fatalf("len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Cost > pts[i-1].Cost {
			t.Fatalf("overhead increased at point %d", i)
		}
		if pts[i].X <= pts[i-1].X {
			t.Fatalf("x not increasing at %d", i)
		}
	}
	// Bigger flash needs more filter bits for the same overhead (the
	// F=64GB curve lies above the F=32GB curve, as in Figure 3).
	pts64 := Figure3Curve(64*gb, s, PageReadCost(IntelSSDCosts()), 50)
	for i := range pts {
		if pts64[i].Cost < pts[i].Cost {
			t.Fatalf("64GB curve below 32GB curve at %d", i)
		}
	}
}

func TestWorstInsertMatchesPaperScale(t *testing.T) {
	// Paper §7.2.1: worst-case insert (buffer flush) ≈ 2.72 ms on Intel.
	w := WorstInsert(IntelSSDCosts(), 128<<10)
	if ms(w) < 1.5 || ms(w) > 3.5 {
		t.Fatalf("worst insert = %.2f ms, want ≈2.5", ms(w))
	}
	// Amortized over 4096 entries ⇒ microseconds (paper: 0.006 ms incl.
	// CPU costs; pure I/O share is smaller).
	a := AmortizedInsert(IntelSSDCosts(), 128<<10, s)
	if a > 3*time.Microsecond {
		t.Fatalf("amortized insert I/O = %v, want ≤ 3µs", a)
	}
}

func TestPageReadCost(t *testing.T) {
	if c := PageReadCost(ChipCosts()); ms(c) < 0.2 || ms(c) > 0.3 {
		t.Fatalf("chip page read = %.3f ms, want ≈0.24 (Table 2)", ms(c))
	}
	if c := PageReadCost(IntelSSDCosts()); ms(c) < 0.1 || ms(c) > 0.2 {
		t.Fatalf("intel sector read = %.3f ms, want ≈0.15", ms(c))
	}
}

func TestLookupCostDegenerate(t *testing.T) {
	if LookupCost(0, 1, 1, s, time.Millisecond) != 0 {
		t.Fatal("zero flash should cost 0")
	}
	if LookupCost(gb, 0, 1, s, time.Millisecond) != 0 {
		t.Fatal("zero buffer should cost 0")
	}
}
