// Package costmodel implements the analytical I/O cost model of §6 of the
// paper: amortized and worst-case insertion costs (§6.1), expected lookup
// cost (§6.2), and the parameter-tuning rules of §6.4 (optimal total buffer
// size B_opt ≈ 2F/s, Bloom filter sizing for a target I/O overhead, and the
// per-buffer size B′ sweep behind Figure 4).
//
// All sizes are in bytes and all costs in time.Duration. The entry size s
// is the *effective* flash footprint per entry — 32 bytes in the paper's
// configuration (16-byte entries at 50% hash table utilization).
package costmodel

import (
	"math"
	"time"
)

// FlashCosts is the linear I/O cost model of §6.1: reading, writing, and
// erasing x bytes cost a_r + b_r·x, a_w + b_w·x, a_e + b_e·x.
type FlashCosts struct {
	ReadFixed    time.Duration // a_r
	ReadPerByte  time.Duration // b_r
	WriteFixed   time.Duration // a_w
	WritePerByte time.Duration // b_w
	EraseFixed   time.Duration // a_e
	ErasePerByte time.Duration // b_e

	PageSize  int64 // S_p: flash page or SSD sector
	BlockSize int64 // S_b: erase block (0 for SSDs: C2/C3 are inside the FTL)
}

// ChipCosts returns the §6 model for the raw flash chip, matching
// flashchip.DefaultCosts.
func ChipCosts() FlashCosts {
	return FlashCosts{
		ReadFixed:    100 * time.Microsecond,
		ReadPerByte:  70 * time.Nanosecond,
		WriteFixed:   150 * time.Microsecond,
		WritePerByte: 50 * time.Nanosecond,
		EraseFixed:   1500 * time.Microsecond,
		ErasePerByte: 0,
		PageSize:     2048,
		BlockSize:    128 << 10,
	}
}

// IntelSSDCosts returns the §6 model for the Intel X18-M profile. C2 and C3
// are handled by the FTL and folded into the write parameters (§6.1:
// "for an SSD, we can ignore the cost of C2 and C3").
func IntelSSDCosts() FlashCosts {
	return FlashCosts{
		ReadFixed:    120 * time.Microsecond,
		ReadPerByte:  8 * time.Nanosecond,
		WriteFixed:   200 * time.Microsecond,
		WritePerByte: 17 * time.Nanosecond,
		PageSize:     4096,
	}
}

// InsertCost is the decomposition of one buffer flush (§6.1).
type InsertCost struct {
	C1 time.Duration // sequential write of the buffer image
	C2 time.Duration // erase cost (chip only)
	C3 time.Duration // valid-page copying for sub-block buffers (chip only)
}

// Flush returns the total cost of one flush, C1+C2+C3 — also the
// worst-case insertion latency C_worst.
func (c InsertCost) Flush() time.Duration { return c.C1 + c.C2 + c.C3 }

// FlushCost computes C1, C2, C3 for flushing a buffer of bufBytes (§6.1).
func FlushCost(fc FlashCosts, bufBytes int64) InsertCost {
	ni := (bufBytes + fc.PageSize - 1) / fc.PageSize // pages per buffer
	var ic InsertCost
	ic.C1 = fc.WriteFixed + time.Duration(ni*fc.PageSize)*fc.WritePerByte
	if fc.BlockSize == 0 {
		return ic // SSD: FTL absorbs C2 and C3
	}
	nb := fc.BlockSize / fc.PageSize // pages per block
	// C2: erase cost, incurred on min(1, ni/nb) of flushes.
	frac := math.Min(1, float64(ni)/float64(nb))
	blocks := (ni + nb - 1) / nb
	erase := fc.EraseFixed + time.Duration(blocks*fc.BlockSize)*fc.ErasePerByte
	ic.C2 = time.Duration(frac * float64(erase))
	// C3: valid pages sharing the erased block must be copied out/back.
	pPrime := ((nb-ni)%nb + nb) % nb
	if pPrime > 0 {
		ic.C3 = fc.ReadFixed + time.Duration(pPrime*fc.PageSize)*fc.ReadPerByte +
			fc.WriteFixed + time.Duration(pPrime*fc.PageSize)*fc.WritePerByte
	}
	return ic
}

// AmortizedInsert returns C_amortized = (C1+C2+C3)·s/B′ (§6.1): the flush
// cost shared across the B′/s entries the buffer holds.
func AmortizedInsert(fc FlashCosts, bufBytes int64, entryBytes float64) time.Duration {
	flush := FlushCost(fc, bufBytes).Flush()
	return time.Duration(float64(flush) * entryBytes / float64(bufBytes))
}

// WorstInsert returns C_worst = C1+C2+C3 (§6.1).
func WorstInsert(fc FlashCosts, bufBytes int64) time.Duration {
	return FlushCost(fc, bufBytes).Flush()
}

// PageReadCost returns c_r, the cost of reading one page/sector, used by the
// lookup model.
func PageReadCost(fc FlashCosts) time.Duration {
	return fc.ReadFixed + time.Duration(fc.PageSize)*fc.ReadPerByte
}

// LookupCost returns the expected flash I/O cost of a lookup (§6.2):
//
//	C = (F/B) · (1/2)^(b·s·ln2/F) · c_r
//
// where F is total flash, B total buffer memory, b total Bloom filter
// memory (all bytes; b and F converted to bits internally as in the paper's
// formula), s the effective entry size in bytes, and c_r the page read
// cost. The formula assumes the optimal h = m′·ln2/n′ hash functions.
func LookupCost(flashBytes, bufBytes, bloomBytes int64, entryBytes float64, cr time.Duration) time.Duration {
	if bufBytes <= 0 || flashBytes <= 0 {
		return 0
	}
	k := float64(flashBytes) / float64(bufBytes) // incarnations per super table
	// h = b·s·ln2/F with b in bits and F in entries-equivalents: the
	// paper's expression uses bits of filter per entry stored on flash.
	// bits per entry = (bloomBytes·8) / (flashBytes/s).
	bitsPerEntry := float64(bloomBytes) * 8 * entryBytes / float64(flashBytes)
	h := bitsPerEntry * math.Ln2
	p := math.Pow(0.5, h) // Bloom hit probability per incarnation
	return time.Duration(k * p * float64(cr))
}

// OptimalBufferBytes returns B_opt, the total buffer allocation minimizing
// expected lookup cost (§6.4). The paper's formula B_opt = F/(s·(ln2)²) ≈
// 2F/s is stated with every quantity in bits; in bytes it reads
// F/(8·s·(ln2)²). Sanity anchor from §7.1.1: for F = 32 GB and s = 32 B the
// analytic optimum is 266 MB (and the measured optimum in Figure 5 is
// 256 MB). Remarkably B_opt does not depend on the total memory M — extra
// memory should go to Bloom filters, not buffers.
func OptimalBufferBytes(flashBytes int64, entryBytes float64) int64 {
	return int64(float64(flashBytes) / (8 * entryBytes * math.Ln2 * math.Ln2))
}

// RequiredBloomBytes returns the Bloom filter allocation b′ needed to keep
// the expected lookup I/O overhead at or below target (§6.4):
//
//	b′ ≥ F/(s·(ln2)²) · ln( s·(ln2)²·c_r / C_target )
//
// Returns 0 if the target is achievable with no filters at all.
func RequiredBloomBytes(flashBytes int64, entryBytes float64, cr, target time.Duration) int64 {
	if target <= 0 {
		panic("costmodel: non-positive target")
	}
	// The paper's expression with all sizes in bits:
	//   b′ ≥ F/(s·ln²2) · ln(s·ln²2·c_r / C_target).
	ln22 := math.Ln2 * math.Ln2
	sBits := entryBytes * 8
	fBits := float64(flashBytes) * 8
	arg := sBits * ln22 * float64(cr) / float64(target)
	if arg <= 1 {
		return 0 // k·c_r at B_opt already meets the target without filters
	}
	bits := fBits / (sBits * ln22) * math.Log(arg)
	return int64(bits / 8)
}

// Point is one (x, cost) sample of a model curve.
type Point struct {
	X    float64 // bytes (buffer size, filter size) — caller labels it
	Cost time.Duration
}

// Figure3Curve computes expected lookup I/O overhead versus total Bloom
// filter size for a given flash size (Figure 3). Buffer memory is held at
// B_opt, as in the paper's setup. Sizes are sampled log-uniformly between
// 10 MB and 10 GB as in the figure's x-axis.
func Figure3Curve(flashBytes int64, entryBytes float64, cr time.Duration, points int) []Point {
	bOpt := OptimalBufferBytes(flashBytes, entryBytes)
	out := make([]Point, 0, points)
	lo, hi := math.Log10(10e6), math.Log10(10e9)
	for i := 0; i < points; i++ {
		bloom := math.Pow(10, lo+(hi-lo)*float64(i)/float64(points-1))
		c := LookupCost(flashBytes, bOpt, int64(bloom), entryBytes, cr)
		out = append(out, Point{X: bloom, Cost: c})
	}
	return out
}

// Figure4Curve computes amortized or worst-case insert cost versus
// per-super-table buffer size B′ (Figure 4), sampled log-uniformly between
// 1 KB and maxBuf.
func Figure4Curve(fc FlashCosts, entryBytes float64, maxBuf int64, worst bool, points int) []Point {
	out := make([]Point, 0, points)
	lo, hi := math.Log10(1024), math.Log10(float64(maxBuf))
	for i := 0; i < points; i++ {
		buf := int64(math.Pow(10, lo+(hi-lo)*float64(i)/float64(points-1)))
		// Round to whole pages.
		if buf < fc.PageSize {
			buf = fc.PageSize
		}
		buf = (buf / fc.PageSize) * fc.PageSize
		var c time.Duration
		if worst {
			c = WorstInsert(fc, buf)
		} else {
			c = AmortizedInsert(fc, buf, entryBytes)
		}
		out = append(out, Point{X: float64(buf), Cost: c})
	}
	return out
}

// ArgminBuffer returns the buffer size minimizing the given curve.
func ArgminBuffer(points []Point) Point {
	best := points[0]
	for _, p := range points[1:] {
		if p.Cost < best.Cost {
			best = p
		}
	}
	return best
}
