package hashutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	const trials = 256
	var totalFlips, totalBits int
	for i := uint64(0); i < trials; i++ {
		x := Mix64(i * 0x9e3779b97f4a7c15)
		for b := uint(0); b < 64; b++ {
			y := x ^ (1 << b)
			diff := Mix64(x) ^ Mix64(y)
			totalFlips += popcount(diff)
			totalBits += 64
		}
	}
	ratio := float64(totalFlips) / float64(totalBits)
	if math.Abs(ratio-0.5) > 0.02 {
		t.Fatalf("avalanche ratio = %.4f, want ~0.5", ratio)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestMix64Injective(t *testing.T) {
	// Mix64 is a bijection; sample-check for collisions.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestHash64SeedIndependence(t *testing.T) {
	// Two seeds should agree on ~0 of many keys.
	same := 0
	for i := uint64(0); i < 10000; i++ {
		if Hash64Seed(i, 1) == Hash64Seed(i, 2) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d/10000 keys", same)
	}
}

func TestHashBytesMatchesLength(t *testing.T) {
	a := HashBytes([]byte("hello"), 0)
	b := HashBytes([]byte("hello!"), 0)
	if a == b {
		t.Fatal("different inputs hashed equal")
	}
	if HashBytes([]byte("hello"), 0) != a {
		t.Fatal("HashBytes not deterministic")
	}
	if HashBytes([]byte("hello"), 1) == a {
		t.Fatal("seed has no effect")
	}
	if HashBytes(nil, 7) != HashBytes([]byte{}, 7) {
		t.Fatal("nil and empty slice hash differently")
	}
}

func TestDoubleHashInRange(t *testing.T) {
	f := func(h uint64, n8 uint8, m64 uint16) bool {
		n := int(n8%16) + 1
		m := uint64(m64%1000) + 1
		out := DoubleHash(h, n, m, nil)
		if len(out) != n {
			return false
		}
		for _, v := range out {
			if v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleHashAppends(t *testing.T) {
	scratch := make([]uint64, 0, 8)
	a := DoubleHash(42, 3, 100, scratch)
	b := DoubleHash(42, 3, 100, scratch)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DoubleHash not deterministic with reused scratch")
		}
	}
}

func TestDoubleHashCoverage(t *testing.T) {
	// With an odd stride and power-of-two m, the probes must be distinct
	// until they wrap.
	m := uint64(1 << 10)
	out := DoubleHash(12345, 8, m, nil)
	seen := map[uint64]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate probe %d in %v", v, out)
		}
		seen[v] = true
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	f := func(key uint64, bits8 uint8) bool {
		bits := uint(bits8 % 20)
		p, r := Split(key, bits)
		if bits > 0 && p >= 1<<bits {
			return false
		}
		return Join(p, r, bits) == key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitZeroBits(t *testing.T) {
	p, r := Split(0xdeadbeef, 0)
	if p != 0 || r != 0xdeadbeef {
		t.Fatalf("Split(x, 0) = (%d, %#x), want (0, 0xdeadbeef)", p, r)
	}
}

func TestSplitPartitionRange(t *testing.T) {
	// All partitions reachable with 4 bits.
	seen := make(map[uint64]bool)
	for i := 0; i < 1<<16; i++ {
		p, _ := Split(Mix64(uint64(i)), 4)
		seen[p] = true
	}
	if len(seen) != 16 {
		t.Fatalf("4-bit split reached %d partitions, want 16", len(seen))
	}
}

func TestEntryRoundTrip(t *testing.T) {
	f := func(key, value uint64) bool {
		var buf [EntrySize]byte
		PutEntry(buf[:], key, value)
		k, v := GetEntry(buf[:])
		return k == key && v == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceInRange(t *testing.T) {
	f := func(x uint64, m64 uint32) bool {
		m := uint64(m64) + 1
		return Reduce(x, m) < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceMatchesMaskForPow2(t *testing.T) {
	for shift := uint(0); shift < 40; shift += 7 {
		m := uint64(1) << shift
		for i := uint64(0); i < 1000; i++ {
			x := Mix64(i)
			if Reduce(x, m) != x&(m-1) {
				t.Fatalf("Reduce(%#x, %d) != mask", x, m)
			}
		}
	}
}

func TestFastRange64Uniformity(t *testing.T) {
	// Bucket 1e5 mixed values into 97 buckets (non-power-of-two); every
	// bucket should receive close to its fair share.
	const m, n = 97, 100000
	var counts [m]int
	for i := uint64(0); i < n; i++ {
		counts[FastRange64(Mix64(i), m)]++
	}
	want := float64(n) / m
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Fatalf("bucket %d has %d values, want ~%.0f", b, c, want)
		}
	}
}

// doubleHashMod is the pre-fastrange reduction, kept in the tests as the
// baseline for the reduction benchmarks and as a distribution cross-check.
func doubleHashMod(h uint64, n int, m uint64, dst []uint64) []uint64 {
	h1 := h
	h2 := Mix64(h) | 1
	for i := 0; i < n; i++ {
		dst = append(dst, h1%m)
		h1 += h2
	}
	return dst
}

func benchDoubleHash(b *testing.B, m uint64, fn func(h uint64, n int, m uint64, dst []uint64) []uint64) {
	var scratch [8]uint64
	var sink uint64
	for i := 0; i < b.N; i++ {
		out := fn(Mix64(uint64(i)), 8, m, scratch[:0])
		sink += out[0]
	}
	_ = sink
}

func BenchmarkDoubleHashFastrange(b *testing.B) { benchDoubleHash(b, 65521, DoubleHash) }
func BenchmarkDoubleHashMod(b *testing.B)       { benchDoubleHash(b, 65521, doubleHashMod) }
func BenchmarkDoubleHashPow2Mask(b *testing.B)  { benchDoubleHash(b, 1<<16, DoubleHash) }
func BenchmarkDoubleHashPow2Mod(b *testing.B)   { benchDoubleHash(b, 1<<16, doubleHashMod) }
