// Package hashutil provides the hash primitives shared by BufferHash and its
// substrates: 64-bit avalanche mixers, seeded hashing of byte strings, the
// Kirsch–Mitzenmacher double-hashing scheme used by the Bloom filters, and
// the partition/key split used by partitioned super tables (§5.2 of the
// paper: the first k1 bits of a key select the super table, the remaining k2
// bits are the key within it).
package hashutil

import (
	"encoding/binary"
	"math/bits"
)

// Mix64 applies the SplitMix64 finalizer, a fast full-avalanche 64-bit mixer.
// It is the core primitive from which all seeded hashes below are derived.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash64Seed hashes x under the given seed. Distinct seeds yield
// (empirically) independent hash functions, which is how the cuckoo tables
// and Bloom filters derive their function families.
func Hash64Seed(x, seed uint64) uint64 {
	return Mix64(x ^ Mix64(seed+0x9e3779b97f4a7c15))
}

// HashBytes hashes an arbitrary byte string with a seeded FNV-1a/mix hybrid:
// FNV-1a accumulates the bytes, Mix64 finalizes to full avalanche.
func HashBytes(p []byte, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ Mix64(seed)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime
	}
	return Mix64(h)
}

// FastRange64 maps a 64-bit hash uniformly into [0, m) without a division,
// using Lemire's multiply-shift reduction: the high 64 bits of x·m. A 64-bit
// integer division costs ~20-40 cycles on current cores; the multiply costs
// ~3, which matters on the Bloom-query hot path where every lookup performs
// h reductions before any flash I/O is even considered.
func FastRange64(x, m uint64) uint64 {
	hi, _ := bits.Mul64(x, m)
	return hi
}

// Reduce maps x into [0, m): a mask when m is a power of two (preserving the
// full-residue coverage of odd double-hashing strides), FastRange64 otherwise.
func Reduce(x, m uint64) uint64 {
	if m&(m-1) == 0 {
		return x & (m - 1)
	}
	return FastRange64(x, m)
}

// DoubleHash expands a single 64-bit hash into n hash values using the
// Kirsch–Mitzenmacher construction g_i(x) = h1(x) + i*h2(x). The two base
// functions are the two 32-bit halves, re-mixed so that h2 is odd (odd
// strides visit all residues modulo a power of two).
//
// Values are reduced into [0, m) with Reduce (mask or fastrange — never a
// division). DoubleHash appends to dst and returns it, so callers can reuse
// a scratch slice across calls.
func DoubleHash(h uint64, n int, m uint64, dst []uint64) []uint64 {
	h1 := h
	h2 := Mix64(h) | 1
	if m&(m-1) == 0 {
		mask := m - 1
		for i := 0; i < n; i++ {
			dst = append(dst, h1&mask)
			h1 += h2
		}
		return dst
	}
	for i := 0; i < n; i++ {
		dst = append(dst, FastRange64(h1, m))
		h1 += h2
	}
	return dst
}

// Split divides a hash key into a partition index (top partitionBits bits)
// and the remaining in-partition key, implementing §5.2's k = k1 + k2 split.
// partitionBits must be in [0, 63].
func Split(key uint64, partitionBits uint) (partition uint64, rest uint64) {
	if partitionBits == 0 {
		return 0, key
	}
	return key >> (64 - partitionBits), key & (^uint64(0) >> partitionBits)
}

// Join is the inverse of Split.
func Join(partition, rest uint64, partitionBits uint) uint64 {
	if partitionBits == 0 {
		return rest
	}
	return partition<<(64-partitionBits) | rest
}

// PutEntry encodes a (key, value) pair into a 16-byte hash entry, the entry
// size used throughout the paper's evaluation (§7.1.1). Little-endian: key in
// bytes [0,8), value in bytes [8,16).
func PutEntry(dst []byte, key, value uint64) {
	binary.LittleEndian.PutUint64(dst[0:8], key)
	binary.LittleEndian.PutUint64(dst[8:16], value)
}

// GetEntry decodes a 16-byte hash entry written by PutEntry.
func GetEntry(src []byte) (key, value uint64) {
	return binary.LittleEndian.Uint64(src[0:8]), binary.LittleEndian.Uint64(src[8:16])
}

// EntrySize is the on-flash size of one hash entry in bytes.
const EntrySize = 16
