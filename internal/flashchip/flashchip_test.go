package flashchip

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/vclock"
)

func newTestChip(t *testing.T, capacity int64) (*Chip, *vclock.Clock) {
	t.Helper()
	clock := vclock.New()
	return New(DefaultConfig(capacity), clock), clock
}

func TestGeometry(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	g := c.Geometry()
	if g.PageSize != 2048 || g.BlockSize != 128<<10 || g.Capacity != 1<<20 {
		t.Fatalf("geometry = %+v", g)
	}
	if g.Blocks() != 8 {
		t.Fatalf("Blocks() = %d, want 8", g.Blocks())
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for capacity not multiple of block size")
		}
	}()
	New(Config{Capacity: 1000, PageSize: 2048, BlockSize: 128 << 10}, vclock.New())
}

func TestErasedReadsFF(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	buf := make([]byte, 64)
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0xFF {
			t.Fatalf("erased byte %d = %#x, want 0xFF", i, b)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	data := make([]byte, 4096) // two pages
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := c.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestWriteUnalignedRejected(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	if _, err := c.WriteAt(make([]byte, 100), 0); !errors.Is(err, storage.ErrUnaligned) {
		t.Fatalf("unaligned length: err = %v", err)
	}
	if _, err := c.WriteAt(make([]byte, 2048), 100); !errors.Is(err, storage.ErrUnaligned) {
		t.Fatalf("unaligned offset: err = %v", err)
	}
}

func TestWriteOutOfRange(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	if _, err := c.WriteAt(make([]byte, 2048), 1<<20); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestRewriteWithoutEraseRejected(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	page := make([]byte, 2048)
	if _, err := c.WriteAt(page, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteAt(page, 0); !errors.Is(err, storage.ErrProgramOrder) {
		t.Fatalf("in-place rewrite: err = %v", err)
	}
}

func TestProgramOrderWithinBlock(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	page := make([]byte, 2048)
	// Skipping page 0 and writing page 1 first violates program order.
	if _, err := c.WriteAt(page, 2048); !errors.Is(err, storage.ErrProgramOrder) {
		t.Fatalf("out-of-order program: err = %v", err)
	}
	// In-order works.
	if _, err := c.WriteAt(page, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteAt(page, 2048); err != nil {
		t.Fatal(err)
	}
}

func TestEraseAllowsRewrite(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	data := make([]byte, 128<<10) // whole block
	for i := range data {
		data[i] = 0x42
	}
	if _, err := c.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Erase(0, 128<<10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	c.ReadAt(buf, 0)
	for _, b := range buf {
		if b != 0xFF {
			t.Fatal("erase did not reset contents to 0xFF")
		}
	}
	if _, err := c.WriteAt(data, 0); err != nil {
		t.Fatalf("rewrite after erase failed: %v", err)
	}
	if got := c.EraseCount(0); got != 1 {
		t.Fatalf("EraseCount = %d, want 1", got)
	}
}

func TestEraseUnalignedRejected(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	if _, err := c.Erase(2048, 2048); !errors.Is(err, storage.ErrUnaligned) {
		t.Fatalf("page-aligned erase accepted: %v", err)
	}
}

func TestReadLatencyChargesWholePages(t *testing.T) {
	c, clock := newTestChip(t, 1<<20)
	costs := DefaultCosts()
	// A 16-byte read still costs one full page (design principle P2).
	before := clock.Now()
	c.WriteAt(make([]byte, 2048), 0)
	start := clock.Now()
	if start == before {
		t.Fatal("write did not advance clock")
	}
	lat, err := c.ReadAt(make([]byte, 16), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := costs.Read(2048)
	if lat != want {
		t.Fatalf("sub-page read latency = %v, want full-page %v", lat, want)
	}
	// A read straddling two pages is charged two pages.
	lat, err = c.ReadAt(make([]byte, 32), 2048-16)
	if err != nil {
		t.Fatal(err)
	}
	if want := costs.Read(4096); lat != want {
		t.Fatalf("straddling read latency = %v, want %v", lat, want)
	}
}

func TestBatchWriteAmortizesFixedCost(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	costs := DefaultCosts()
	// One 64-page write must be cheaper than 64 single-page writes (P3).
	batch, err := c.WriteAt(make([]byte, 128<<10), 0)
	if err != nil {
		t.Fatal(err)
	}
	single := costs.Write(2048)
	if batch >= 64*single {
		t.Fatalf("batched write %v not cheaper than 64 singles %v", batch, 64*single)
	}
	if want := costs.Write(128 << 10); batch != want {
		t.Fatalf("batch latency = %v, want %v", batch, want)
	}
}

func TestPageReadLatencyCalibration(t *testing.T) {
	// Table 2 reports ≈0.24 ms per flash I/O on the chip.
	c, _ := newTestChip(t, 1<<20)
	c.WriteAt(make([]byte, 2048), 0)
	lat, _ := c.ReadAt(make([]byte, 2048), 0)
	ms := float64(lat) / float64(time.Millisecond)
	if ms < 0.15 || ms > 0.35 {
		t.Fatalf("page read = %.3f ms, want ≈0.24 ms", ms)
	}
}

func TestCounters(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	c.WriteAt(make([]byte, 2048), 0)
	c.ReadAt(make([]byte, 2048), 0)
	c.Erase(0, 128<<10)
	cnt := c.Counters()
	if cnt.Writes != 1 || cnt.Reads != 1 || cnt.Erases != 1 {
		t.Fatalf("counters = %+v", cnt)
	}
	if cnt.BytesWritten != 2048 || cnt.BytesRead != 2048 {
		t.Fatalf("byte counters = %+v", cnt)
	}
	if cnt.BusyTime <= 0 {
		t.Fatal("BusyTime not accumulated")
	}
}

func TestClockAdvances(t *testing.T) {
	c, clock := newTestChip(t, 1<<20)
	lat, _ := c.WriteAt(make([]byte, 2048), 0)
	if clock.Now() != lat {
		t.Fatalf("clock = %v, want %v", clock.Now(), lat)
	}
}

func TestFaultInjection(t *testing.T) {
	c, clock := newTestChip(t, 1<<20)
	boom := errors.New("boom")
	c.SetFault(func(op storage.Op, off int64, n int) error {
		if op == storage.OpWrite {
			return boom
		}
		return nil
	})
	if _, err := c.WriteAt(make([]byte, 2048), 0); !errors.Is(err, boom) {
		t.Fatalf("fault not injected: %v", err)
	}
	if clock.Now() != 0 {
		t.Fatal("failed op charged latency")
	}
	c.SetFault(nil)
	if _, err := c.WriteAt(make([]byte, 2048), 0); err != nil {
		t.Fatalf("fault not cleared: %v", err)
	}
}

func TestMultiBlockWrite(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	// A write spanning two blocks must respect both frontiers.
	data := make([]byte, 256<<10)
	if _, err := c.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Both blocks now full; next write must go to block 2.
	if _, err := c.WriteAt(make([]byte, 2048), 256<<10); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLengthIO(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	if _, err := c.ReadAt(nil, 0); err != nil {
		t.Fatalf("zero-length read failed: %v", err)
	}
	if _, err := c.WriteAt(nil, 0); err != nil {
		t.Fatalf("zero-length write failed: %v", err)
	}
}

func TestReadBatchPlaneOverlap(t *testing.T) {
	c, clock := newTestChip(t, 1<<20)
	ps := int64(c.cfg.PageSize)
	if _, err := c.WriteAt(make([]byte, 8*ps), 0); err != nil {
		t.Fatal(err)
	}
	// Four discontiguous page reads over two planes: each pays the fixed
	// sense cost (distinct runs); two lanes of two requests each.
	reqs := []storage.ReadReq{
		{P: make([]byte, ps), Off: 6 * ps},
		{P: make([]byte, ps), Off: 0},
		{P: make([]byte, ps), Off: 4 * ps},
		{P: make([]byte, ps), Off: 2 * ps},
	}
	before := clock.Now()
	batch, err := c.ReadBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now()-before != batch {
		t.Fatal("clock advance != batch latency")
	}
	per := c.cfg.Costs.Read(ps)
	if want := 2 * per; batch != want {
		t.Fatalf("2-plane batch of 4 page reads = %v, want %v", batch, want)
	}
	if got := c.Counters().Reads; got < 4 {
		t.Fatalf("Reads = %d, want per-request accounting", got)
	}
}

func TestReadBatchSequentialRun(t *testing.T) {
	c, _ := newTestChip(t, 1<<20)
	ps := int64(c.cfg.PageSize)
	if _, err := c.WriteAt(make([]byte, 4*ps), 0); err != nil {
		t.Fatal(err)
	}
	reqs := []storage.ReadReq{
		{P: make([]byte, ps), Off: 0},
		{P: make([]byte, ps), Off: ps},
		{P: make([]byte, ps), Off: 2 * ps},
		{P: make([]byte, ps), Off: 3 * ps},
	}
	batch, err := c.ReadBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	perByte := time.Duration(ps) * c.cfg.Costs.ReadPerByte
	// One fixed cost on the run head; transfers split over two planes. The
	// head lane carries fixed + 2 transfers.
	want := c.cfg.Costs.ReadFixed + 2*perByte
	if batch != want {
		t.Fatalf("sequential batch = %v, want %v", batch, want)
	}
}
