// Package flashchip models a raw NAND flash chip: 2 KB pages grouped into
// 128 KB erase blocks, with the three NAND invariants the paper's design
// principles P1–P3 (§4) derive from:
//
//   - a page must be erased before it can be programmed (written);
//   - pages within an erase block must be programmed in order;
//   - erase operates on whole blocks only.
//
// I/O latencies follow the linear cost model of §6.1: reading, writing and
// erasing x bytes cost a_r + b_r·x, a_w + b_w·x and a_e + b_e·x. A single
// multi-page call pays the fixed cost once, which is exactly the batching
// benefit (P3) BufferHash exploits when flushing a buffer.
//
// Erased pages read as 0xFF, as on real NAND.
package flashchip

import (
	"fmt"
	"time"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// CostModel holds the linear I/O cost parameters of §6.1.
type CostModel struct {
	ReadFixed    time.Duration // a_r
	ReadPerByte  time.Duration // b_r
	WriteFixed   time.Duration // a_w
	WritePerByte time.Duration // b_w
	EraseFixed   time.Duration // a_e
	ErasePerByte time.Duration // b_e
}

// Read returns the cost of reading n bytes in one operation.
func (c CostModel) Read(n int64) time.Duration {
	return c.ReadFixed + time.Duration(n)*c.ReadPerByte
}

// Write returns the cost of writing n bytes in one operation.
func (c CostModel) Write(n int64) time.Duration {
	return c.WriteFixed + time.Duration(n)*c.WritePerByte
}

// Erase returns the cost of erasing n bytes in one operation.
func (c CostModel) Erase(n int64) time.Duration {
	return c.EraseFixed + time.Duration(n)*c.ErasePerByte
}

// DefaultCosts is calibrated so that a 2 KB page read costs ≈0.24 ms (the
// per-I/O lookup latency the paper reports for the flash chip in Table 2), a
// 128 KB buffer flush costs ≈6.8 ms, and a block erase ≈1.5 ms.
func DefaultCosts() CostModel {
	return CostModel{
		ReadFixed:    100 * time.Microsecond,
		ReadPerByte:  70 * time.Nanosecond,
		WriteFixed:   150 * time.Microsecond,
		WritePerByte: 50 * time.Nanosecond,
		EraseFixed:   1500 * time.Microsecond,
		ErasePerByte: 0,
	}
}

// Config describes a chip.
type Config struct {
	Capacity  int64 // bytes; must be a multiple of BlockSize
	PageSize  int   // bytes; default 2048
	BlockSize int   // bytes; default 128 KiB
	Costs     CostModel

	// Planes is the number of planes a batched read can sense in parallel
	// (multi-plane page reads). Individual ReadAt calls remain blocking
	// single-plane operations; only ReadBatch overlaps. 0 or 1 disables
	// overlap.
	Planes int
}

// DefaultConfig returns a chip configuration with the paper's geometry
// (2 KB pages, 128 KB blocks, two-plane dies) and DefaultCosts.
func DefaultConfig(capacity int64) Config {
	return Config{
		Capacity:  capacity,
		PageSize:  2048,
		BlockSize: 128 << 10,
		Costs:     DefaultCosts(),
		Planes:    2,
	}
}

// Chip is a simulated NAND flash chip. It implements storage.Device and
// storage.Eraser. Chip is not safe for concurrent use; callers serialize
// (the paper notes flash I/Os are blocking operations, §5.2).
type Chip struct {
	cfg      Config
	clock    *vclock.Clock
	store    *storage.SparseStore
	frontier []int32 // per block: number of programmed pages (program order enforcement)
	eraseCnt []uint32
	counters storage.Counters
	fault    storage.FaultFunc
	batchSvc []time.Duration // ReadBatch per-request service-time scratch
}

// New builds a chip. It panics on invalid geometry, since configurations are
// static in this codebase.
func New(cfg Config, clock *vclock.Clock) *Chip {
	if cfg.PageSize <= 0 || cfg.BlockSize <= 0 || cfg.BlockSize%cfg.PageSize != 0 {
		panic(fmt.Sprintf("flashchip: invalid geometry page=%d block=%d", cfg.PageSize, cfg.BlockSize))
	}
	if cfg.Capacity <= 0 || cfg.Capacity%int64(cfg.BlockSize) != 0 {
		panic(fmt.Sprintf("flashchip: capacity %d not a multiple of block size %d", cfg.Capacity, cfg.BlockSize))
	}
	nBlocks := cfg.Capacity / int64(cfg.BlockSize)
	return &Chip{
		cfg:      cfg,
		clock:    clock,
		store:    storage.NewSparseStore(cfg.PageSize, 0xFF),
		frontier: make([]int32, nBlocks),
		eraseCnt: make([]uint32, nBlocks),
	}
}

// SetFault installs a fault-injection hook (nil clears it).
func (c *Chip) SetFault(f storage.FaultFunc) { c.fault = f }

// Geometry implements storage.Device.
func (c *Chip) Geometry() storage.Geometry {
	return storage.Geometry{Capacity: c.cfg.Capacity, PageSize: c.cfg.PageSize, BlockSize: c.cfg.BlockSize}
}

// Counters implements storage.Device.
func (c *Chip) Counters() storage.Counters { return c.counters }

// EraseCount returns how many times the block containing off was erased
// (wear accounting).
func (c *Chip) EraseCount(off int64) uint32 {
	return c.eraseCnt[off/int64(c.cfg.BlockSize)]
}

// ReadAt reads len(p) bytes at off. Reads may start at any byte offset, but
// latency is charged for every page touched (P2: a sub-page I/O costs at
// least a full-page I/O).
func (c *Chip) ReadAt(p []byte, off int64) (time.Duration, error) {
	if err := storage.CheckRange(c.Geometry(), off, int64(len(p)), 1); err != nil {
		return 0, err
	}
	if c.fault != nil {
		if err := c.fault(storage.OpRead, off, len(p)); err != nil {
			return 0, err
		}
	}
	ps := int64(c.cfg.PageSize)
	firstPage := off / ps
	lastPage := (off + int64(len(p)) - 1) / ps
	if len(p) == 0 {
		lastPage = firstPage
	}
	chargedBytes := (lastPage - firstPage + 1) * ps
	lat := c.cfg.Costs.Read(chargedBytes)
	c.store.ReadAt(p, off)
	c.counters.Reads++
	c.counters.BytesRead += uint64(len(p))
	c.counters.BusyTime += lat
	c.clock.Advance(lat)
	return lat, nil
}

// ReadBatch implements storage.BatchReader with the shared overlap model:
// address-sorted service, sequential runs paying the fixed array-access
// setup once, and per-request sense+transfer times overlapped across the
// chip's planes (max lane total, not sum).
func (c *Chip) ReadBatch(reqs []storage.ReadReq) (time.Duration, error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	g := c.Geometry()
	for _, r := range reqs {
		if err := storage.CheckRange(g, r.Off, int64(len(r.P)), 1); err != nil {
			return 0, err
		}
		if c.fault != nil {
			if err := c.fault(storage.OpRead, r.Off, len(r.P)); err != nil {
				return 0, err
			}
		}
	}
	storage.SortReadReqs(reqs)
	ps := int64(c.cfg.PageSize)
	if cap(c.batchSvc) < len(reqs) {
		c.batchSvc = make([]time.Duration, len(reqs))
	}
	svc := c.batchSvc[:len(reqs)]
	prevEnd := int64(-1)
	for i, r := range reqs {
		firstPage := r.Off / ps
		lastPage := (r.Off + int64(len(r.P)) - 1) / ps
		if len(r.P) == 0 {
			lastPage = firstPage
		}
		lat := time.Duration((lastPage-firstPage+1)*ps) * c.cfg.Costs.ReadPerByte
		if r.Off != prevEnd {
			lat += c.cfg.Costs.ReadFixed
		}
		prevEnd = r.Off + int64(len(r.P))
		svc[i] = lat
		c.store.ReadAt(r.P, r.Off)
		c.counters.Reads++
		c.counters.BytesRead += uint64(len(r.P))
	}
	total := storage.OverlapLanes(svc, c.cfg.Planes)
	c.counters.BusyTime += total
	c.clock.Advance(total)
	return total, nil
}

// WriteAt programs len(p) bytes at off. The range must be page-aligned,
// every target page must be erased, and pages within each block must be
// programmed in ascending order.
func (c *Chip) WriteAt(p []byte, off int64) (time.Duration, error) {
	if err := storage.CheckRange(c.Geometry(), off, int64(len(p)), c.cfg.PageSize); err != nil {
		return 0, err
	}
	if c.fault != nil {
		if err := c.fault(storage.OpWrite, off, len(p)); err != nil {
			return 0, err
		}
	}
	if err := c.program(off, int64(len(p))); err != nil {
		return 0, err
	}
	lat := c.cfg.Costs.Write(int64(len(p)))
	c.store.WriteAt(p, off)
	c.counters.Writes++
	c.counters.BytesWritten += uint64(len(p))
	c.counters.BusyTime += lat
	c.clock.Advance(lat)
	return lat, nil
}

// program validates and advances the program-order frontiers of the blocks
// covered by a page-aligned write of n bytes at off. The frontiers are only
// mutated once the whole range validates, so a failed write leaves the chip
// unchanged. Shared by WriteAt and WriteBatch.
func (c *Chip) program(off, n int64) error {
	ps := int64(c.cfg.PageSize)
	pagesPerBlock := int32(c.cfg.BlockSize / c.cfg.PageSize)
	type blkRange struct {
		blk        int64
		start, end int32 // page indexes within block
	}
	var ranges []blkRange
	for pg := off / ps; pg < (off+n)/ps; {
		blk := pg / int64(pagesPerBlock)
		inBlk := int32(pg % int64(pagesPerBlock))
		endPg := (blk + 1) * int64(pagesPerBlock)
		if lim := (off + n) / ps; endPg > lim {
			endPg = lim
		}
		count := int32(endPg - pg)
		if inBlk != c.frontier[blk] {
			return fmt.Errorf("%w: block %d frontier %d, write starts at page %d",
				storage.ErrProgramOrder, blk, c.frontier[blk], inBlk)
		}
		if inBlk+count > pagesPerBlock {
			count = pagesPerBlock - inBlk
		}
		ranges = append(ranges, blkRange{blk, inBlk, inBlk + count})
		pg += int64(count)
	}
	for _, r := range ranges {
		c.frontier[r.blk] = r.end
	}
	return nil
}

// WriteBatch implements storage.BatchWriter: address-sorted service,
// sequential runs paying the fixed program setup once, and per-request
// program times overlapped across the chip's planes (multi-plane page
// program). Program-order constraints are enforced per request in sorted
// order, so earlier requests of a failing batch remain programmed — the
// same partial-application contract as a failing multi-block WriteAt.
func (c *Chip) WriteBatch(reqs []storage.WriteReq) (time.Duration, error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	g := c.Geometry()
	for _, r := range reqs {
		if err := storage.CheckRange(g, r.Off, int64(len(r.P)), c.cfg.PageSize); err != nil {
			return 0, err
		}
		if c.fault != nil {
			if err := c.fault(storage.OpWrite, r.Off, len(r.P)); err != nil {
				return 0, err
			}
		}
	}
	storage.SortWriteReqs(reqs)
	if cap(c.batchSvc) < len(reqs) {
		c.batchSvc = make([]time.Duration, len(reqs))
	}
	svc := c.batchSvc[:len(reqs)]
	prevEnd := int64(-1)
	var total time.Duration
	for i, r := range reqs {
		n := int64(len(r.P))
		if err := c.program(r.Off, n); err != nil {
			// Charge what was serviced so far; the clock must not move for
			// work that never happened.
			total = storage.OverlapLanes(svc[:i], c.cfg.Planes)
			c.counters.BusyTime += total
			c.clock.Advance(total)
			return total, err
		}
		lat := time.Duration(n) * c.cfg.Costs.WritePerByte
		if r.Off != prevEnd {
			lat += c.cfg.Costs.WriteFixed
		}
		prevEnd = r.Off + n
		svc[i] = lat
		c.store.WriteAt(r.P, r.Off)
		c.counters.Writes++
		c.counters.BytesWritten += uint64(n)
	}
	total = storage.OverlapLanes(svc, c.cfg.Planes)
	c.counters.BusyTime += total
	c.clock.Advance(total)
	return total, nil
}

// Erase erases the blocks covering [off, off+n). The range must be
// block-aligned. Erased pages read back as 0xFF.
func (c *Chip) Erase(off, n int64) (time.Duration, error) {
	if err := storage.CheckRange(c.Geometry(), off, n, c.cfg.BlockSize); err != nil {
		return 0, err
	}
	if c.fault != nil {
		if err := c.fault(storage.OpErase, off, int(n)); err != nil {
			return 0, err
		}
	}
	bs := int64(c.cfg.BlockSize)
	nBlocks := n / bs
	// Per §6.1 the erase cost of a single flush is a_e + b_e·(blocks·S_b):
	// one fixed initialization plus per-byte cost.
	lat := c.cfg.Costs.Erase(n)
	for b := off / bs; b < off/bs+nBlocks; b++ {
		c.frontier[b] = 0
		c.eraseCnt[b]++
	}
	c.store.Drop(off, n)
	c.counters.Erases += uint64(nBlocks)
	c.counters.BusyTime += lat
	c.clock.Advance(lat)
	return lat, nil
}

var (
	_ storage.Device      = (*Chip)(nil)
	_ storage.Eraser      = (*Chip)(nil)
	_ storage.BatchReader = (*Chip)(nil)
	_ storage.BatchWriter = (*Chip)(nil)
)
