package wanopt

import "fmt"

// Token is one element of a compressed object stream (§8: "the compressed
// object is transmitted to the destination, where it gets reconstructed").
// A token is either a literal chunk (new content) or a fingerprint
// reference to a chunk the receiver already holds.
type Token struct {
	// Ref is the SHA-1 fingerprint of a previously transmitted chunk, or
	// nil for a literal token.
	Ref []byte
	// Literal holds the chunk bytes for literal tokens.
	Literal []byte
}

// WireBytes returns the token's on-wire size.
func (t Token) WireBytes() int {
	if t.Ref != nil {
		return RefBytes
	}
	return len(t.Literal)
}

// Encode compresses an object into a token stream against the optimizer's
// fingerprint index, with exactly the same matching decisions as Process —
// used to verify end-to-end reconstruction and to feed a Receiver. The
// index is not modified (index lookups may still charge virtual time on
// simulated indexes).
func (o *Optimizer) Encode(data []byte) []Token {
	chunks := o.chunker.Split(data)
	tokens := make([]Token, 0, len(chunks))
	// Literals already emitted in THIS stream are referenceable too (the
	// receiver caches them on arrival), matching Process's behaviour of
	// inserting fingerprints as it walks the object.
	seen := make(map[[FingerprintBytes]byte]bool)
	for _, chunk := range chunks {
		fp := Fingerprint(chunk)
		if seen[fp] {
			tokens = append(tokens, Token{Ref: append([]byte(nil), fp[:]...)})
			continue
		}
		if _, found, err := o.cfg.Index.Get(fp[:]); err == nil && found {
			tokens = append(tokens, Token{Ref: append([]byte(nil), fp[:]...)})
			continue
		}
		lit := make([]byte, len(chunk))
		copy(lit, chunk)
		tokens = append(tokens, Token{Literal: lit})
		seen[fp] = true
	}
	return tokens
}

// Receiver is the decompressing endpoint: it caches every literal chunk by
// fingerprint and resolves references against that cache. Real deployments
// bound this cache and synchronize eviction with the sender (commercial
// WAN optimizers pair FIFO content stores on both sides, §5.1.2); the
// simulation keeps it unbounded for verification.
type Receiver struct {
	chunks map[string][]byte
}

// NewReceiver returns an empty receiver.
func NewReceiver() *Receiver {
	return &Receiver{chunks: make(map[string][]byte)}
}

// ChunkCount returns the number of cached chunks.
func (r *Receiver) ChunkCount() int { return len(r.chunks) }

// Reconstruct rebuilds the original object from a token stream, caching
// literals for future references.
func (r *Receiver) Reconstruct(tokens []Token) ([]byte, error) {
	var out []byte
	for i, t := range tokens {
		if t.Ref == nil {
			out = append(out, t.Literal...)
			fp := Fingerprint(t.Literal)
			if _, ok := r.chunks[string(fp[:])]; !ok {
				lit := make([]byte, len(t.Literal))
				copy(lit, t.Literal)
				r.chunks[string(fp[:])] = lit
			}
			continue
		}
		chunk, ok := r.chunks[string(t.Ref)]
		if !ok {
			return nil, fmt.Errorf("wanopt: token %d references unknown chunk %x", i, t.Ref)
		}
		out = append(out, chunk...)
	}
	return out, nil
}
