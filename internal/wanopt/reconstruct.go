package wanopt

import "fmt"

// Token is one element of a compressed object stream (§8: "the compressed
// object is transmitted to the destination, where it gets reconstructed").
// A token is either a literal chunk (new content) or a fingerprint
// reference to a chunk the receiver already holds.
type Token struct {
	// Ref is the fingerprint of a previously transmitted chunk, or 0 for
	// a literal token.
	Ref uint64
	// Literal holds the chunk bytes for literal tokens.
	Literal []byte
}

// WireBytes returns the token's on-wire size.
func (t Token) WireBytes() int {
	if t.Ref != 0 {
		return RefBytes
	}
	return len(t.Literal)
}

// Encode compresses an object into a token stream against the optimizer's
// fingerprint index, with exactly the same matching decisions as Process —
// used to verify end-to-end reconstruction and to feed a Receiver. The
// index is not modified (index lookups may still charge virtual time on
// simulated indexes).
func (o *Optimizer) Encode(data []byte) []Token {
	chunks := o.chunker.Split(data)
	tokens := make([]Token, 0, len(chunks))
	// Literals already emitted in THIS stream are referenceable too (the
	// receiver caches them on arrival), matching Process's behaviour of
	// inserting fingerprints as it walks the object.
	seen := make(map[uint64]bool)
	for _, chunk := range chunks {
		fp := Fingerprint(chunk)
		if seen[fp] {
			tokens = append(tokens, Token{Ref: fp})
			continue
		}
		if _, found, err := o.cfg.Index.Lookup(fp); err == nil && found {
			tokens = append(tokens, Token{Ref: fp})
			continue
		}
		lit := make([]byte, len(chunk))
		copy(lit, chunk)
		tokens = append(tokens, Token{Literal: lit})
		seen[fp] = true
	}
	return tokens
}

// Receiver is the decompressing endpoint: it caches every literal chunk by
// fingerprint and resolves references against that cache. Real deployments
// bound this cache and synchronize eviction with the sender (commercial
// WAN optimizers pair FIFO content stores on both sides, §5.1.2); the
// simulation keeps it unbounded for verification.
type Receiver struct {
	chunks map[uint64][]byte
}

// NewReceiver returns an empty receiver.
func NewReceiver() *Receiver {
	return &Receiver{chunks: make(map[uint64][]byte)}
}

// ChunkCount returns the number of cached chunks.
func (r *Receiver) ChunkCount() int { return len(r.chunks) }

// Reconstruct rebuilds the original object from a token stream, caching
// literals for future references.
func (r *Receiver) Reconstruct(tokens []Token) ([]byte, error) {
	var out []byte
	for i, t := range tokens {
		if t.Ref == 0 {
			out = append(out, t.Literal...)
			fp := Fingerprint(t.Literal)
			if _, ok := r.chunks[fp]; !ok {
				lit := make([]byte, len(t.Literal))
				copy(lit, t.Literal)
				r.chunks[fp] = lit
			}
			continue
		}
		chunk, ok := r.chunks[t.Ref]
		if !ok {
			return nil, fmt.Errorf("wanopt: token %d references unknown chunk %#x", i, t.Ref)
		}
		out = append(out, chunk...)
	}
	return out, nil
}
