package wanopt

import (
	"testing"
	"time"

	"repro/clam"
	"repro/internal/bdb"
	"repro/internal/disk"
	"repro/internal/ssd"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// mapIndex is an in-memory Index for unit tests of the optimizer logic.
type mapIndex struct{ m map[string][]byte }

func newMapIndex() *mapIndex { return &mapIndex{m: map[string][]byte{}} }

func (m *mapIndex) Put(fp, ref []byte) error { m.m[string(fp)] = ref; return nil }
func (m *mapIndex) Get(fp []byte) ([]byte, bool, error) {
	v, ok := m.m[string(fp)]
	return v, ok, nil
}

func newOptimizer(t testing.TB, idx Index, clock *vclock.Clock, linkMbps int64) *Optimizer {
	t.Helper()
	o, err := New(Config{
		Index:          idx,
		Clock:          clock,
		LinkBitsPerSec: linkMbps * 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Index: newMapIndex(), Clock: vclock.New()}); err == nil {
		t.Fatal("zero link speed accepted")
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	a := Fingerprint([]byte("hello"))
	if len(a) != FingerprintBytes {
		t.Fatalf("fingerprint is %d bytes", len(a))
	}
	if a != Fingerprint([]byte("hello")) {
		t.Fatal("non-deterministic")
	}
	if a == Fingerprint([]byte("world")) {
		t.Fatal("collision on different data")
	}
}

func TestTransmitTime(t *testing.T) {
	// 1 MB at 8 Mbps = 1 second.
	if got := TransmitTime(1<<20, 8<<20); got != time.Second {
		t.Fatalf("TransmitTime = %v, want 1s", got)
	}
}

func TestDuplicateObjectCompresses(t *testing.T) {
	clock := vclock.New()
	o := newOptimizer(t, newMapIndex(), clock, 100)
	tr := workload.GenerateTrace(workload.TraceConfig{
		Objects: 1, MeanObjectBytes: 512 << 10, Redundancy: 0, Seed: 1,
	})
	data := tr.Objects[0].Data
	first, err := o.Process(data)
	if err != nil {
		t.Fatal(err)
	}
	if first.Matched != 0 {
		t.Fatalf("fresh object matched %d chunks", first.Matched)
	}
	second, err := o.Process(data)
	if err != nil {
		t.Fatal(err)
	}
	if second.Matched != second.Chunks {
		t.Fatalf("identical object matched %d/%d chunks", second.Matched, second.Chunks)
	}
	if second.CompressedBytes >= first.CompressedBytes/10 {
		t.Fatalf("duplicate compressed to %d bytes (first: %d)", second.CompressedBytes, first.CompressedBytes)
	}
}

func TestCompressionMatchesTraceRedundancy(t *testing.T) {
	clock := vclock.New()
	o := newOptimizer(t, newMapIndex(), clock, 100)
	tr := workload.GenerateTrace(workload.TraceConfig{
		Objects: 30, MeanObjectBytes: 256 << 10, Redundancy: 0.5, Seed: 2,
	})
	res, err := RunThroughputTest(o, tr)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.RawBytes) / float64(res.CompressedBytes)
	ideal := 1 / (1 - tr.MeasuredRedundancy())
	t.Logf("compression %.2fx, ideal %.2fx", ratio, ideal)
	// Chunk-boundary resynchronization loses a little of each duplicated
	// segment; 80% of ideal is the expected recovery at 128 KB segments.
	if ratio < ideal*0.80 {
		t.Fatalf("compression %.2f too far below ideal %.2f", ratio, ideal)
	}
	if ratio > ideal*1.05 {
		t.Fatalf("compression %.2f above ideal %.2f: accounting bug", ratio, ideal)
	}
}

func TestThroughputImprovementAtLowSpeed(t *testing.T) {
	// At 10 Mbps even a BDB-backed optimizer keeps up, and a 50%
	// redundancy trace should see ≈2x effective bandwidth (Figure 9a).
	clock := vclock.New()
	dev := ssd.New(ssd.TranscendTS32(), 64<<20, clock)
	idx, err := bdb.NewHashIndex(bdb.Options{Device: dev, CapacityEntries: 500000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := newOptimizer(t, Truncated{idx}, clock, 10)
	tr := workload.GenerateTrace(workload.TraceConfig{
		Objects: 20, MeanObjectBytes: 256 << 10, Redundancy: 0.5, Seed: 3,
	})
	res, err := RunThroughputTest(o, tr)
	if err != nil {
		t.Fatal(err)
	}
	imp := res.Improvement()
	t.Logf("BDB at 10 Mbps: improvement %.2fx", imp)
	if imp < 1.5 {
		t.Fatalf("improvement %.2f, want ≈2 at low link speed", imp)
	}
}

func TestCLAMBeatsBDBAtHighSpeed(t *testing.T) {
	// Figure 9's crossover: at 200 Mbps the BDB-backed optimizer is a
	// bottleneck (improvement < 1) while the CLAM-backed one still helps.
	trace := func() *workload.Trace {
		return workload.GenerateTrace(workload.TraceConfig{
			Objects: 25, MeanObjectBytes: 256 << 10, Redundancy: 0.5, Seed: 4,
		})
	}

	clockB := vclock.New()
	devB := ssd.New(ssd.TranscendTS32(), 64<<20, clockB)
	bidx, err := bdb.NewHashIndex(bdb.Options{Device: devB, CapacityEntries: 500000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ob := newOptimizer(t, Truncated{bidx}, clockB, 200)
	resB, err := RunThroughputTest(ob, trace())
	if err != nil {
		t.Fatal(err)
	}

	clockC := vclock.New()
	cl, err := clam.Open(
		clam.WithDevice(clam.TranscendSSD),
		clam.WithFlash(64<<20), clam.WithMemory(8<<20), clam.WithClock(clockC))
	if err != nil {
		t.Fatal(err)
	}
	oc := newOptimizer(t, cl, clockC, 200)
	resC, err := RunThroughputTest(oc, trace())
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("at 200 Mbps: BDB %.2fx, CLAM %.2fx", resB.Improvement(), resC.Improvement())
	if resC.Improvement() <= resB.Improvement() {
		t.Fatalf("CLAM (%.2f) does not beat BDB (%.2f) at 200 Mbps", resC.Improvement(), resB.Improvement())
	}
	if resB.Improvement() > 1.2 {
		t.Errorf("BDB improvement %.2f at 200 Mbps; paper shows it becomes the bottleneck", resB.Improvement())
	}
	// Figure 9(a): the Transcend CLAM gives "reasonable improvements even
	// at 200 Mbps" (≈1.5 in the figure, down from ≈2 at 100 Mbps).
	if resC.Improvement() < 1.25 {
		t.Errorf("CLAM improvement %.2f at 200 Mbps; paper shows ≈1.5", resC.Improvement())
	}
}

func TestLoadTestPerObject(t *testing.T) {
	clock := vclock.New()
	cl, err := clam.Open(
		clam.WithDevice(clam.TranscendSSD),
		clam.WithFlash(32<<20), clam.WithMemory(8<<20), clam.WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	o := newOptimizer(t, cl, clock, 10)
	tr := workload.GenerateTrace(workload.TraceConfig{
		Objects: 25, MeanObjectBytes: 128 << 10, Redundancy: 0.5, Seed: 5,
	})
	objs, err := RunLoadTest(o, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 25 {
		t.Fatalf("got %d results", len(objs))
	}
	mean := MeanImprovement(objs)
	t.Logf("per-object mean improvement %.2fx", mean)
	if mean < 1.0 {
		t.Fatalf("CLAM optimizer makes objects slower under load: %.2f", mean)
	}
	for i, p := range objs {
		if p.OptTime <= 0 || p.RawTime <= 0 {
			t.Fatalf("object %d has non-positive times: %+v", i, p)
		}
	}
}

func TestContentCacheOnDisk(t *testing.T) {
	clock := vclock.New()
	contentDisk := disk.New(disk.Hitachi7K80(), 256<<20, clock)
	o, err := New(Config{
		Index:          newMapIndex(),
		Clock:          clock,
		LinkBitsPerSec: 100e6,
		ContentDev:     contentDisk,
		CMDelay:        25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.GenerateTrace(workload.TraceConfig{
		Objects: 5, MeanObjectBytes: 256 << 10, Redundancy: 0.3, Seed: 6,
	})
	if _, err := RunThroughputTest(o, tr); err != nil {
		t.Fatal(err)
	}
	if contentDisk.Counters().BytesWritten == 0 {
		t.Fatal("content cache never written")
	}
	st := o.Stats()
	if st.CacheWriteBytes == 0 || st.ChunksTotal == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.CompressionRatio() <= 1 {
		t.Fatalf("compression ratio %.2f", st.CompressionRatio())
	}
}

func TestMeanImprovementEmpty(t *testing.T) {
	if MeanImprovement(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}
