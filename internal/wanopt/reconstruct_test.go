package wanopt

import (
	"bytes"
	"testing"

	"repro/internal/vclock"
	"repro/internal/workload"
)

func TestEndToEndReconstruction(t *testing.T) {
	// The paper's §8 pipeline: compress each object against the sender's
	// fingerprint index, ship tokens, reconstruct at the receiver — every
	// object must come back byte-identical.
	clock := vclock.New()
	o := newOptimizer(t, newMapIndex(), clock, 100)
	rx := NewReceiver()
	tr := workload.GenerateTrace(workload.TraceConfig{
		Objects: 20, MeanObjectBytes: 256 << 10, Redundancy: 0.5, Seed: 21,
	})
	var wire, raw int
	for _, obj := range tr.Objects {
		// Encode BEFORE Process updates the index (a referenced chunk
		// must already have been shipped as a literal).
		tokens := o.Encode(obj.Data)
		got, err := rx.Reconstruct(tokens)
		if err != nil {
			t.Fatalf("object %d: %v", obj.ID, err)
		}
		if !bytes.Equal(got, obj.Data) {
			t.Fatalf("object %d: reconstruction mismatch (%d vs %d bytes)",
				obj.ID, len(got), len(obj.Data))
		}
		for _, tok := range tokens {
			wire += tok.WireBytes()
		}
		raw += len(obj.Data)
		if _, err := o.Process(obj.Data); err != nil {
			t.Fatal(err)
		}
	}
	if rx.ChunkCount() == 0 {
		t.Fatal("receiver cached no chunks")
	}
	ratio := float64(raw) / float64(wire)
	t.Logf("wire compression %.2fx over %d objects (%d cached chunks)", ratio, len(tr.Objects), rx.ChunkCount())
	if ratio < 1.3 {
		t.Fatalf("wire compression %.2f too low for a 50%% redundant trace", ratio)
	}
	// Token accounting must agree with Process's compression accounting
	// to within the per-object boundary effects.
	st := o.Stats()
	if st.BytesOut <= 0 || float64(wire) > float64(st.BytesOut)*1.02 || float64(wire) < float64(st.BytesOut)*0.98 {
		t.Fatalf("token wire bytes %d disagree with Process BytesOut %d", wire, st.BytesOut)
	}
}

func TestReconstructUnknownRef(t *testing.T) {
	rx := NewReceiver()
	if _, err := rx.Reconstruct([]Token{{Ref: []byte("no-such-chunk-fp-123")}}); err == nil {
		t.Fatal("unknown reference accepted")
	}
}

func TestReconstructEmpty(t *testing.T) {
	rx := NewReceiver()
	out, err := rx.Reconstruct(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty stream: %v %v", out, err)
	}
}

func TestTokenWireBytes(t *testing.T) {
	if (Token{Ref: make([]byte, FingerprintBytes)}).WireBytes() != RefBytes {
		t.Fatal("ref token size")
	}
	if (Token{Literal: make([]byte, 100)}).WireBytes() != 100 {
		t.Fatal("literal token size")
	}
}

func TestEncodeDoesNotMutateIndex(t *testing.T) {
	clock := vclock.New()
	idx := newMapIndex()
	o := newOptimizer(t, idx, clock, 100)
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	o.Encode(data)
	if len(idx.m) != 0 {
		t.Fatalf("Encode inserted %d fingerprints", len(idx.m))
	}
	if clock.Now() != 0 {
		t.Fatal("Encode charged virtual time")
	}
}
