package wanopt

import (
	"time"

	"repro/internal/workload"
)

// PerObject records one object's fate under the load scenario (Figure 10).
type PerObject struct {
	Size int
	// RawTime is arrival→completion without the optimizer.
	RawTime time.Duration
	// OptTime is arrival→completion with the optimizer.
	OptTime time.Duration
}

// Improvement returns the per-object throughput improvement factor
// (§8: ratio of an object's throughput with and without the optimizer).
func (p PerObject) Improvement() float64 {
	if p.OptTime == 0 {
		return 0
	}
	return float64(p.RawTime) / float64(p.OptTime)
}

// ThroughputResult is the outcome of the §8 "throughput test" scenario.
type ThroughputResult struct {
	RawBytes        int64
	CompressedBytes int64
	// RawTime is the time to push the uncompressed trace through the link.
	RawTime time.Duration
	// OptTime is the makespan with the optimizer (processing pipelined
	// with transmission).
	OptTime time.Duration
}

// Improvement returns the effective bandwidth improvement factor
// (Figure 9's y-axis).
func (r ThroughputResult) Improvement() float64 {
	if r.OptTime == 0 {
		return 0
	}
	return float64(r.RawTime) / float64(r.OptTime)
}

// RunThroughputTest replays the trace with all objects available at once
// (§8 scenario 1) and measures the makespan with and without the
// optimizer.
func RunThroughputTest(o *Optimizer, tr *workload.Trace) (ThroughputResult, error) {
	var res ThroughputResult
	start := o.cfg.Clock.Now()
	for _, obj := range tr.Objects {
		r, err := o.Process(obj.Data)
		if err != nil {
			return res, err
		}
		res.RawBytes += int64(r.RawBytes)
		res.CompressedBytes += int64(r.CompressedBytes)
	}
	end := o.cfg.Clock.Now()
	if o.LinkFree() > end {
		end = o.LinkFree()
	}
	res.OptTime = end - start
	res.RawTime = TransmitTime(int(res.RawBytes), o.cfg.LinkBitsPerSec)
	return res, nil
}

// RunLoadTest replays the trace with objects arriving at exactly link rate
// (§8 scenario 2: "objects arrive at a rate matching the link speed; thus,
// the link is 100% utilized when there is no compression") and returns the
// per-object raw/optimized completion times.
func RunLoadTest(o *Optimizer, tr *workload.Trace) ([]PerObject, error) {
	clock := o.cfg.Clock
	t0 := clock.Now()
	arrival := t0
	var rawLinkFree time.Duration
	out := make([]PerObject, 0, len(tr.Objects))
	for _, obj := range tr.Objects {
		clock.AdvanceTo(arrival)
		// Raw baseline: the object queues on a link that is exactly
		// saturated by the arrival process.
		rawStart := arrival
		if rawLinkFree > rawStart {
			rawStart = rawLinkFree
		}
		rawDone := rawStart + TransmitTime(len(obj.Data), o.cfg.LinkBitsPerSec)
		rawLinkFree = rawDone

		r, err := o.Process(obj.Data)
		if err != nil {
			return out, err
		}
		out = append(out, PerObject{
			Size:    len(obj.Data),
			RawTime: rawDone - arrival,
			OptTime: r.Completion - arrival,
		})
		arrival += TransmitTime(len(obj.Data), o.cfg.LinkBitsPerSec)
	}
	return out, nil
}

// MeanImprovement averages the per-object improvement factors.
func MeanImprovement(objs []PerObject) float64 {
	if len(objs) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range objs {
		sum += p.Improvement()
	}
	return sum / float64(len(objs))
}
