// Package wanopt implements the WAN optimizer of §8: a connection
// management (CM) front end that chunks incoming objects with Rabin-Karp
// content-defined chunking and fingerprints each chunk with SHA-1; a
// compression engine (CE) that looks fingerprints up in a large hash table
// to find duplicate content, stores new chunks in an on-disk content
// cache, and inserts their fingerprints; and a network subsystem (NS) that
// transmits the compressed bytes over a link of configurable speed.
//
// The fingerprint index is pluggable — a CLAM or a Berkeley-DB-style index
// — which is exactly the comparison of Figures 9 and 10. As in the paper,
// the CM is emulated at high speed (chunks and SHA-1 fingerprints cost no
// virtual time; §8: "We emulate a high-speed CM by pre-computing chunks
// and SHA-1 fingerprints"), and the NS transmits at link rate without
// TCP dynamics.
//
// Everything runs in virtual time on the shared clock: index operations
// and content-cache I/O advance it by their modeled latencies, and
// transmission finishes at link-rate-determined instants.
package wanopt

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/rabin"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// Index is the fingerprint store interface: full SHA-1 fingerprints map
// to cache references. A byte-keyed clam.Store satisfies it directly;
// legacy 64-bit indexes (the Berkeley-DB baselines) attach through
// Truncated, which keeps only the top 8 fingerprint bytes — the compromise
// the paper's 32–64 bit fingerprints made and that this repository's old
// uint64-only API forced on everyone.
type Index interface {
	Put(fp, ref []byte) error
	Get(fp []byte) ([]byte, bool, error)
}

// U64Index is the legacy 64-bit surface of the Berkeley-DB baselines.
type U64Index interface {
	Insert(key, value uint64) error
	Lookup(key uint64) (uint64, bool, error)
}

// Truncated adapts a U64Index to Index by truncating fingerprints to
// their top 8 bytes and dropping the reference payload.
type Truncated struct{ U64 U64Index }

// truncFP folds a fingerprint to the legacy 64-bit key space.
func truncFP(fp []byte) uint64 {
	k := binary.BigEndian.Uint64(fp[:8])
	if k == 0 {
		k = 1
	}
	return k
}

// Put implements Index.
func (t Truncated) Put(fp, ref []byte) error { return t.U64.Insert(truncFP(fp), uint64(len(ref))) }

// Get implements Index.
func (t Truncated) Get(fp []byte) ([]byte, bool, error) {
	_, ok, err := t.U64.Lookup(truncFP(fp))
	return nil, ok, err
}

// FingerprintBytes is the size of a chunk fingerprint (SHA-1).
const FingerprintBytes = sha1.Size

// RefBytes is the on-wire size of a reference to a cached chunk (its
// SHA-1 fingerprint).
const RefBytes = FingerprintBytes

// Config assembles a WAN optimizer.
type Config struct {
	// Index is the fingerprint hash table (CLAM or BDB).
	Index Index
	// ContentDev is the magnetic disk holding the content cache (§8: "The
	// CE maintains a large content cache on a magnetic disk"). May be nil
	// to model an infinitely fast cache.
	ContentDev storage.Device
	// Clock is the shared virtual clock.
	Clock *vclock.Clock
	// LinkBitsPerSec is the WAN link speed.
	LinkBitsPerSec int64
	// CMDelay is the connection-manager buffering delay (§8 uses 25 ms).
	CMDelay time.Duration
	// Chunker overrides the default ~8 KB content chunker.
	Chunker *rabin.Chunker
}

// Optimizer is a WAN optimizer endpoint. Not safe for concurrent use.
type Optimizer struct {
	cfg      Config
	chunker  *rabin.Chunker
	writePos int64 // content cache append position
	linkFree time.Duration
	stats    Stats
}

// Stats aggregates optimizer behaviour.
type Stats struct {
	Objects          int
	BytesIn          int64
	BytesOut         int64
	ChunksTotal      uint64
	ChunksMatched    uint64
	IndexInserts     uint64
	IndexLookups     uint64
	CacheWriteBytes  int64
	CacheWriteTime   time.Duration
	IndexTime        time.Duration
	TransmissionTime time.Duration
}

// CompressionRatio returns BytesIn/BytesOut.
func (s Stats) CompressionRatio() float64 {
	if s.BytesOut == 0 {
		return 0
	}
	return float64(s.BytesIn) / float64(s.BytesOut)
}

// New builds an optimizer.
func New(cfg Config) (*Optimizer, error) {
	if cfg.Index == nil || cfg.Clock == nil {
		return nil, fmt.Errorf("wanopt: Index and Clock are required")
	}
	if cfg.LinkBitsPerSec <= 0 {
		return nil, fmt.Errorf("wanopt: LinkBitsPerSec must be positive")
	}
	ch := cfg.Chunker
	if ch == nil {
		ch = rabin.Default()
	}
	return &Optimizer{cfg: cfg, chunker: ch}, nil
}

// Stats returns aggregate counters.
func (o *Optimizer) Stats() Stats { return o.stats }

// Fingerprint hashes a chunk to its full SHA-1 index key.
func Fingerprint(chunk []byte) [FingerprintBytes]byte {
	return sha1.Sum(chunk)
}

// cacheRef encodes a content-cache reference — the chunk's disk address
// and length, the record the index stores per fingerprint.
func cacheRef(addr uint64, n int) []byte {
	ref := make([]byte, 12)
	binary.LittleEndian.PutUint64(ref[0:8], addr)
	binary.LittleEndian.PutUint32(ref[8:12], uint32(n))
	return ref
}

// ObjectResult reports the processing of one object.
type ObjectResult struct {
	RawBytes        int
	CompressedBytes int
	Chunks          int
	Matched         int
	// ProcessTime is the CE time: index lookups/inserts + cache writes.
	ProcessTime time.Duration
	// Completion is the virtual time when the last byte left the link.
	Completion time.Duration
}

// Process runs one object through CM → CE → NS at the current virtual time
// and returns its result. The link is modeled as a FIFO serializer: an
// object's transmission starts when the link is free and its compressed
// bytes are ready.
func (o *Optimizer) Process(data []byte) (ObjectResult, error) {
	clock := o.cfg.Clock
	res := ObjectResult{RawBytes: len(data)}
	o.stats.Objects++
	o.stats.BytesIn += int64(len(data))

	// CM: content chunking + SHA-1 (precomputed per §8, so free in
	// virtual time aside from the buffering delay).
	clock.Advance(o.cfg.CMDelay)
	chunks := o.chunker.Split(data)
	res.Chunks = len(chunks)
	o.stats.ChunksTotal += uint64(len(chunks))

	// CE: fingerprint lookups, content cache writes, index inserts.
	ceStart := clock.Now()
	compressed := 0
	for _, chunk := range chunks {
		fp := Fingerprint(chunk)
		idxW := clock.StartWatch()
		_, found, err := o.cfg.Index.Get(fp[:])
		o.stats.IndexLookups++
		if err != nil {
			return res, fmt.Errorf("wanopt: index lookup: %w", err)
		}
		if found {
			res.Matched++
			o.stats.ChunksMatched++
			compressed += RefBytes
			o.stats.IndexTime += idxW.Elapsed()
			continue
		}
		compressed += len(chunk)
		// Store the chunk in the on-disk content cache (sequential
		// append, §8: "chunks are inserted into the content cache in a
		// serial fashion").
		addr := uint64(o.writePos)
		if o.cfg.ContentDev != nil {
			cw := clock.StartWatch()
			cap := o.cfg.ContentDev.Geometry().Capacity
			pos := o.writePos % cap
			if pos+int64(len(chunk)) > cap {
				pos = 0 // wrap the cache
				o.writePos = 0
			}
			if _, err := o.cfg.ContentDev.WriteAt(chunk, pos); err != nil {
				return res, fmt.Errorf("wanopt: content cache write: %w", err)
			}
			o.stats.CacheWriteTime += cw.Elapsed()
		}
		o.writePos += int64(len(chunk))
		o.stats.CacheWriteBytes += int64(len(chunk))
		if err := o.cfg.Index.Put(fp[:], cacheRef(addr, len(chunk))); err != nil {
			return res, fmt.Errorf("wanopt: index insert: %w", err)
		}
		o.stats.IndexInserts++
		o.stats.IndexTime += idxW.Elapsed()
	}
	res.CompressedBytes = compressed
	res.ProcessTime = clock.Now() - ceStart
	o.stats.BytesOut += int64(compressed)

	// NS: serialize onto the link.
	tx := o.transmit(compressed)
	res.Completion = tx
	return res, nil
}

// transmit schedules n bytes on the FIFO link, starting no earlier than
// the current time and the link-free instant, and returns the completion
// instant. The clock is NOT advanced: transmission overlaps the processing
// of subsequent objects, as in the paper's pipelined CM/CE/NS design.
func (o *Optimizer) transmit(n int) time.Duration {
	start := o.cfg.Clock.Now()
	if o.linkFree > start {
		start = o.linkFree
	}
	dur := TransmitTime(n, o.cfg.LinkBitsPerSec)
	done := start + dur
	o.linkFree = done
	o.stats.TransmissionTime += dur
	return done
}

// LinkFree returns the instant the link drains.
func (o *Optimizer) LinkFree() time.Duration { return o.linkFree }

// TransmitTime returns the serialization time of n bytes at the given link
// speed.
func TransmitTime(n int, bitsPerSec int64) time.Duration {
	return time.Duration(float64(n*8) / float64(bitsPerSec) * float64(time.Second))
}
