package cuckoo

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hashutil"
)

// params128KB is the paper's buffer shape: 8192 slots × 16 B = 128 KB,
// 2 KB pages = 128 slots per page, 4096-entry capacity at 50% load.
func params128KB() Params {
	return Params{NSlots: 8192, PageSlots: 128, Seed: 0xC0FFEE}
}

func TestParamsValidate(t *testing.T) {
	if err := params128KB().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{NSlots: 0, PageSlots: 128},
		{NSlots: 100, PageSlots: 64},
		{NSlots: 128, PageSlots: 1},
		{NSlots: 128, PageSlots: 4}, // one bucket per page: no alternate
		{NSlots: -128, PageSlots: 128},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Params %+v validated", p)
		}
	}
}

func TestPaperBufferShape(t *testing.T) {
	p := params128KB()
	if p.MaxItems() != 4096 {
		t.Fatalf("MaxItems = %d, want 4096 (§7.1.1)", p.MaxItems())
	}
	if p.ImageSize() != 128<<10 {
		t.Fatalf("ImageSize = %d, want 128KB", p.ImageSize())
	}
	if p.NPages() != 64 {
		t.Fatalf("NPages = %d, want 64", p.NPages())
	}
}

func TestInsertGet(t *testing.T) {
	tb := New(params128KB())
	if err := tb.Insert(42, 1000); err != nil {
		t.Fatal(err)
	}
	v, ok := tb.Get(42)
	if !ok || v != 1000 {
		t.Fatalf("Get = (%d, %v)", v, ok)
	}
	if _, ok := tb.Get(43); ok {
		t.Fatal("absent key found")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestInsertOverwrites(t *testing.T) {
	tb := New(params128KB())
	tb.Insert(42, 1)
	tb.Insert(42, 2)
	if v, _ := tb.Get(42); v != 2 {
		t.Fatalf("overwrite failed: %d", v)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", tb.Len())
	}
}

func TestZeroKeyRejected(t *testing.T) {
	tb := New(params128KB())
	if err := tb.Insert(0, 1); !errors.Is(err, ErrZeroKey) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := tb.Get(0); ok {
		t.Fatal("zero key found")
	}
	if tb.Delete(0) {
		t.Fatal("zero key deleted")
	}
}

func TestFillToCapacity(t *testing.T) {
	tb := New(params128KB())
	rng := rand.New(rand.NewSource(1))
	inserted := 0
	for inserted < tb.Cap() {
		k := rng.Uint64()
		if k == 0 {
			continue
		}
		err := tb.Insert(k, uint64(inserted))
		if err != nil {
			// Page-local displacement can fail slightly before the global
			// cap; it must be rare at 50% load.
			if inserted < tb.Cap()*95/100 {
				t.Fatalf("ErrFull at %d/%d entries (%.1f%%)", inserted, tb.Cap(),
					100*float64(inserted)/float64(tb.Cap()))
			}
			break
		}
		inserted++
	}
	t.Logf("filled %d/%d entries", inserted, tb.Cap())
	if !tb.Full() && inserted == tb.Cap() {
		t.Fatal("Full() false at capacity")
	}
	// One more insert of a fresh key must fail once at cap.
	if inserted == tb.Cap() {
		if err := tb.Insert(0xdeadbeefcafe, 1); !errors.Is(err, ErrFull) {
			t.Fatalf("insert past cap: %v", err)
		}
	}
}

func TestAllEntriesRetrievableAtHighLoad(t *testing.T) {
	tb := New(params128KB())
	rng := rand.New(rand.NewSource(2))
	entries := map[uint64]uint64{}
	for len(entries) < tb.Cap() {
		k := rng.Uint64()
		if k == 0 || entries[k] != 0 {
			continue
		}
		v := rng.Uint64()
		if err := tb.Insert(k, v); err != nil {
			break
		}
		entries[k] = v
	}
	for k, v := range entries {
		got, ok := tb.Get(k)
		if !ok || got != v {
			t.Fatalf("lost entry %#x: (%d, %v)", k, got, ok)
		}
	}
}

func TestErrFullLeavesTableIntact(t *testing.T) {
	// Force page-local failure: many keys directed into one page.
	p := Params{NSlots: 256, PageSlots: 8, Seed: 7}
	tb := New(p)
	// Find keys all hashing to page 0.
	var samePage []uint64
	for k := uint64(1); len(samePage) < 9; k++ {
		if p.PageIndex(k) == 0 {
			samePage = append(samePage, k)
		}
	}
	stored := map[uint64]uint64{}
	for i, k := range samePage {
		err := tb.Insert(k, uint64(i))
		if err == nil {
			stored[k] = uint64(i)
		}
	}
	// Whatever happened, every successfully stored entry must be intact.
	for k, v := range stored {
		got, ok := tb.Get(k)
		if !ok || got != v {
			t.Fatalf("entry %#x lost after ErrFull (got %d, %v)", k, got, ok)
		}
	}
	if tb.Len() != len(stored) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(stored))
	}
}

func TestDelete(t *testing.T) {
	tb := New(params128KB())
	tb.Insert(7, 70)
	if !tb.Delete(7) {
		t.Fatal("Delete returned false")
	}
	if _, ok := tb.Get(7); ok {
		t.Fatal("deleted key found")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if tb.Delete(7) {
		t.Fatal("double delete returned true")
	}
}

func TestReset(t *testing.T) {
	tb := New(params128KB())
	tb.Insert(1, 1)
	tb.Insert(2, 2)
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatal("Len after Reset")
	}
	if _, ok := tb.Get(1); ok {
		t.Fatal("entry survived Reset")
	}
}

func TestIterate(t *testing.T) {
	tb := New(params128KB())
	want := map[uint64]uint64{1: 10, 2: 20, 3: 30}
	for k, v := range want {
		tb.Insert(k, v)
	}
	got := map[uint64]uint64{}
	tb.Iterate(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Iterate visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Iterate: %d = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	tb.Iterate(func(k, v uint64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestModelBasedQuick(t *testing.T) {
	// Property: the table behaves like a map under random insert/delete/get
	// as long as it does not overflow.
	type op struct {
		Kind  uint8
		Key   uint16 // small key space to force collisions
		Value uint64
	}
	tb := New(Params{NSlots: 1024, PageSlots: 64, Seed: 3})
	ref := map[uint64]uint64{}
	f := func(ops []op) bool {
		tb.Reset()
		for k := range ref {
			delete(ref, k)
		}
		for _, o := range ops {
			key := uint64(o.Key) + 1 // non-zero
			switch o.Kind % 3 {
			case 0:
				if err := tb.Insert(key, o.Value); err == nil {
					ref[key] = o.Value
				} else if _, exists := ref[key]; exists {
					return false // overwrite must not fail
				}
			case 1:
				_, wantOK := ref[key]
				if tb.Delete(key) != wantOK {
					return false
				}
				delete(ref, key)
			case 2:
				v, ok := tb.Get(key)
				want, wantOK := ref[key]
				if ok != wantOK || (ok && v != want) {
					return false
				}
			}
		}
		if tb.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tb.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeLookupInPage(t *testing.T) {
	// The flash lookup path: serialize the table, extract only the key's
	// page, and find the value there.
	p := params128KB()
	tb := New(p)
	rng := rand.New(rand.NewSource(4))
	entries := map[uint64]uint64{}
	for i := 0; i < 2000; i++ {
		k := rng.Uint64() | 1
		v := rng.Uint64()
		if tb.Insert(k, v) == nil {
			entries[k] = v
		}
	}
	image := make([]byte, p.ImageSize())
	tb.Serialize(image)
	for k, v := range entries {
		page := p.PageIndex(k)
		off, n := p.PageByteRange(page)
		got, ok := p.LookupInPage(image[off:off+n], k)
		if !ok || got != v {
			t.Fatalf("LookupInPage(%#x) = (%d, %v), want %d", k, got, ok, v)
		}
	}
	// Absent keys are not found.
	misses := 0
	for i := 0; i < 1000; i++ {
		k := rng.Uint64() | 1
		if _, exists := entries[k]; exists {
			continue
		}
		page := p.PageIndex(k)
		off, n := p.PageByteRange(page)
		if _, ok := p.LookupInPage(image[off:off+n], k); ok {
			misses++
		}
	}
	if misses > 0 {
		t.Fatalf("%d phantom hits in serialized image", misses)
	}
}

func TestDecodeImage(t *testing.T) {
	p := Params{NSlots: 64, PageSlots: 8, Seed: 1}
	tb := New(p)
	want := map[uint64]uint64{10: 100, 20: 200, 30: 300}
	for k, v := range want {
		if err := tb.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	image := make([]byte, p.ImageSize())
	tb.Serialize(image)
	got := map[uint64]uint64{}
	p.DecodeImage(image, func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("DecodeImage found %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("DecodeImage: %d = %d, want %d", k, got[k], v)
		}
	}
}

func TestSerializeBufferTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(params128KB()).Serialize(make([]byte, 10))
}

func TestPageLocality(t *testing.T) {
	// Invariant behind the 1-flash-read lookup: after arbitrary inserts
	// with displacement, every entry lives in the page PageIndex assigns
	// to its key.
	p := Params{NSlots: 1024, PageSlots: 32, Seed: 9}
	tb := New(p)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < p.MaxItems(); i++ {
		tb.Insert(rng.Uint64()|1, uint64(i))
	}
	tb.Iterate(func(k, v uint64) bool {
		// Find the slot holding k and check its page.
		found := false
		for s := 0; s < p.NSlots; s++ {
			if tb.keys[s] == k {
				if s/p.PageSlots != p.PageIndex(k) {
					t.Errorf("key %#x stored in page %d, hashed page %d", k, s/p.PageSlots, p.PageIndex(k))
				}
				found = true
			}
		}
		if !found {
			t.Errorf("key %#x not found in slot scan", k)
		}
		return true
	})
}

func TestEntrySizeMatchesPaper(t *testing.T) {
	if hashutil.EntrySize != 16 {
		t.Fatalf("entry size = %d, want 16 bytes (§7.1.1)", hashutil.EntrySize)
	}
}

func BenchmarkInsert(b *testing.B) {
	tb := New(params128KB())
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tb.Full() {
			tb.Reset()
		}
		tb.Insert(rng.Uint64()|1, uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tb := New(params128KB())
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, tb.Cap())
	for i := range keys {
		keys[i] = rng.Uint64() | 1
		tb.Insert(keys[i], uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Get(keys[i%len(keys)])
	}
}
