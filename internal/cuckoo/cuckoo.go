// Package cuckoo implements the hash table used for BufferHash buffers and
// their on-flash incarnation images: cuckoo hashing with two hash functions
// (§7.1: "The hash table in a buffer is implemented using Cuckoo hashing
// with two hash functions"), fixed 16-byte entries, and utilization capped
// at 50% (§7.1.1).
//
// Buckets hold four slots, following the bucketized variant of the paper's
// own citation [25] (Erlingsson, Manasse, McSherry, "A cool and practical
// alternative to traditional hash tables"); with two choices of 4-slot
// buckets the load threshold is ≈97%, so the 50% utilization cap leaves
// enormous headroom and inserts essentially never fail before the cap.
//
// The table is page-local: a key's page is chosen by one hash, and both of
// its candidate buckets lie within that page. When a buffer is flushed to
// flash verbatim, a later lookup therefore reads exactly one flash page per
// incarnation probed — the paper's "only the relevant part of the
// incarnation (e.g., a flash page) can be read directly" (§5.1.1).
// Displacement chains never cross pages, so the property is preserved under
// cuckoo kicks.
//
// A slot is empty iff its key field is zero; callers must normalize keys to
// be non-zero (hashutil keys are full-avalanche hashes, and the core
// package maps 0 to 1).
//
// Value words are opaque 64 bits: the table never inspects them. The byte
// keyed clam path stores tagged value-log pointers in them (see
// core.EncodeValuePtr); the U64 fast path stores raw values. Either way the
// slot format is the same 16-byte (key, value) entry.
package cuckoo

import (
	"errors"
	"fmt"

	"repro/internal/hashutil"
)

// Table errors.
var (
	// ErrFull is returned when the table reached its utilization cap or a
	// displacement chain could not be resolved; BufferHash reacts by
	// flushing the buffer.
	ErrFull = errors.New("cuckoo: table full")
	// ErrZeroKey is returned for the reserved empty-slot key.
	ErrZeroKey = errors.New("cuckoo: zero key is reserved")
)

// MaxLoad is the utilization cap: a table with n slots accepts at most
// n·MaxLoad entries (§7.1.1 uses 50% to bound collisions and avoid cuckoo
// rebuilds).
const MaxLoad = 0.5

// BucketSlots is the number of slots per cuckoo bucket.
const BucketSlots = 4

// maxKicks bounds a displacement chain within one page.
const maxKicks = 64

// Params are the structural parameters of a table. Incarnation images can
// only be searched with the same Params used to build them, so super tables
// persist Params alongside each incarnation's Bloom filter.
type Params struct {
	NSlots    int    // total slots; multiple of PageSlots
	PageSlots int    // slots per locality page; multiple of BucketSlots
	Seed      uint64 // base seed for the hash family
}

// Validate checks structural invariants.
func (p Params) Validate() error {
	if p.NSlots <= 0 || p.PageSlots <= 0 {
		return fmt.Errorf("cuckoo: non-positive sizes %+v", p)
	}
	if p.NSlots%p.PageSlots != 0 {
		return fmt.Errorf("cuckoo: NSlots %d not a multiple of PageSlots %d", p.NSlots, p.PageSlots)
	}
	if p.PageSlots%BucketSlots != 0 || p.PageSlots/BucketSlots < 2 {
		return fmt.Errorf("cuckoo: PageSlots %d must hold at least two %d-slot buckets", p.PageSlots, BucketSlots)
	}
	return nil
}

// NPages returns the number of locality pages.
func (p Params) NPages() int { return p.NSlots / p.PageSlots }

// MaxItems returns the entry capacity under MaxLoad.
func (p Params) MaxItems() int { return int(float64(p.NSlots) * MaxLoad) }

// ImageSize returns the serialized size in bytes.
func (p Params) ImageSize() int { return p.NSlots * hashutil.EntrySize }

// PageIndex returns the locality page of a key.
func (p Params) PageIndex(key uint64) int {
	return int(hashutil.Hash64Seed(key, p.Seed) % uint64(p.NPages()))
}

// bucketCandidates returns the two candidate buckets of key within its
// page, as in-page bucket indexes. They are always distinct.
func (p Params) bucketCandidates(key uint64) (int, int) {
	nb := uint64(p.PageSlots / BucketSlots)
	b1 := int(hashutil.Hash64Seed(key, p.Seed+1) % nb)
	b2 := int(hashutil.Hash64Seed(key, p.Seed+2) % nb)
	if b1 == b2 {
		b2 = (b2 + 1) % int(nb)
	}
	return b1, b2
}

// Table is an in-memory cuckoo hash table. Not safe for concurrent use.
type Table struct {
	params Params
	keys   []uint64
	values []uint64
	count  int
}

// New creates an empty table. It panics on invalid Params (configurations
// are static).
func New(params Params) *Table {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Table{
		params: params,
		keys:   make([]uint64, params.NSlots),
		values: make([]uint64, params.NSlots),
	}
}

// Params returns the table's structural parameters.
func (t *Table) Params() Params { return t.params }

// Len returns the number of entries.
func (t *Table) Len() int { return t.count }

// Cap returns the entry capacity (NSlots·MaxLoad).
func (t *Table) Cap() int { return t.params.MaxItems() }

// Full reports whether the table is at capacity.
func (t *Table) Full() bool { return t.count >= t.Cap() }

// findSlot returns the slot index holding key, or -1.
func (t *Table) findSlot(key uint64) int {
	base := t.params.PageIndex(key) * t.params.PageSlots
	b1, b2 := t.params.bucketCandidates(key)
	for _, b := range [2]int{b1, b2} {
		s := base + b*BucketSlots
		for i := 0; i < BucketSlots; i++ {
			if t.keys[s+i] == key {
				return s + i
			}
		}
	}
	return -1
}

// Get returns the value stored under key.
func (t *Table) Get(key uint64) (uint64, bool) {
	if key == 0 {
		return 0, false
	}
	if s := t.findSlot(key); s >= 0 {
		return t.values[s], true
	}
	return 0, false
}

// emptyIn returns an empty slot in the in-page bucket b, or -1.
func (t *Table) emptyIn(base, b int) int {
	s := base + b*BucketSlots
	for i := 0; i < BucketSlots; i++ {
		if t.keys[s+i] == 0 {
			return s + i
		}
	}
	return -1
}

// Insert stores (key, value), overwriting any existing value for key.
// It returns ErrFull if the table is at its utilization cap or the
// displacement chain within the key's page could not be resolved; in either
// case the table is unchanged.
//
// The overwrite check and the empty-slot search share one pass over the
// two candidate buckets (hashing the key once), since both need to scan
// the same eight slots; the displacement walk below is the rare path.
func (t *Table) Insert(key, value uint64) error {
	if key == 0 {
		return ErrZeroKey
	}
	base := t.params.PageIndex(key) * t.params.PageSlots
	b1, b2 := t.params.bucketCandidates(key)
	empty := -1
	for _, b := range [2]int{b1, b2} {
		s := base + b*BucketSlots
		for i := 0; i < BucketSlots; i++ {
			switch t.keys[s+i] {
			case key:
				t.values[s+i] = value
				return nil
			case 0:
				if empty < 0 {
					empty = s + i
				}
			}
		}
	}
	if t.count >= t.Cap() {
		return ErrFull
	}
	if empty >= 0 {
		t.keys[empty], t.values[empty] = key, value
		t.count++
		return nil
	}
	// Displace within the page, recording the path so a failed walk can be
	// unwound exactly (the table must be unchanged on ErrFull).
	var path [maxKicks]int
	curKey, curVal := key, value
	bucket := b1
	for kick := 0; kick < maxKicks; kick++ {
		// Deterministic victim rotation within the bucket.
		s := base + bucket*BucketSlots + kick%BucketSlots
		curKey, t.keys[s] = t.keys[s], curKey
		curVal, t.values[s] = t.values[s], curVal
		path[kick] = s
		// Move the displaced entry toward its alternate bucket.
		a1, a2 := t.params.bucketCandidates(curKey)
		alt := a1
		if alt == bucket {
			alt = a2
		}
		if es := t.emptyIn(base, alt); es >= 0 {
			t.keys[es], t.values[es] = curKey, curVal
			t.count++
			return nil
		}
		bucket = alt
	}
	// Unwind: swapping back in reverse order is the exact inverse of the
	// walk, leaving the table as it was and curKey == key.
	for i := maxKicks - 1; i >= 0; i-- {
		s := path[i]
		curKey, t.keys[s] = t.keys[s], curKey
		curVal, t.values[s] = t.values[s], curVal
	}
	if curKey != key {
		panic("cuckoo: unwind failed to restore the original key")
	}
	return ErrFull
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key uint64) bool {
	if key == 0 {
		return false
	}
	if s := t.findSlot(key); s >= 0 {
		t.keys[s], t.values[s] = 0, 0
		t.count--
		return true
	}
	return false
}

// Reset clears the table for reuse.
func (t *Table) Reset() {
	for i := range t.keys {
		t.keys[i] = 0
		t.values[i] = 0
	}
	t.count = 0
}

// Iterate calls fn for every entry until fn returns false.
func (t *Table) Iterate(fn func(key, value uint64) bool) {
	for i, k := range t.keys {
		if k == 0 {
			continue
		}
		if !fn(k, t.values[i]) {
			return
		}
	}
}

// Serialize writes the table as a flat slot image into dst, which must be
// at least Params().ImageSize() bytes. Slot i occupies bytes
// [i·16, i·16+16); empty slots are all-zero.
func (t *Table) Serialize(dst []byte) {
	if len(dst) < t.params.ImageSize() {
		panic(fmt.Sprintf("cuckoo: serialize buffer %d < image size %d", len(dst), t.params.ImageSize()))
	}
	for i := range t.keys {
		hashutil.PutEntry(dst[i*hashutil.EntrySize:], t.keys[i], t.values[i])
	}
}

// PageByteRange returns the byte range [off, off+n) that page holds within
// a serialized image.
func (p Params) PageByteRange(page int) (off, n int) {
	n = p.PageSlots * hashutil.EntrySize
	return page * n, n
}

// LookupInPage searches a serialized page image (PageSlots·16 bytes, as
// produced by Serialize for one page) for key, using the candidate buckets
// defined by Params. This is the incarnation lookup path: the caller reads
// just this page from flash.
func (p Params) LookupInPage(pageImage []byte, key uint64) (uint64, bool) {
	if key == 0 {
		return 0, false
	}
	b1, b2 := p.bucketCandidates(key)
	for _, b := range [2]int{b1, b2} {
		s := b * BucketSlots
		for i := 0; i < BucketSlots; i++ {
			k, v := hashutil.GetEntry(pageImage[(s+i)*hashutil.EntrySize:])
			if k == key {
				return v, true
			}
		}
	}
	return 0, false
}

// DecodeImage parses a full serialized image, calling fn for every non-empty
// entry (used by partial-discard eviction scans, §5.1.2).
func (p Params) DecodeImage(image []byte, fn func(key, value uint64) bool) {
	n := len(image) / hashutil.EntrySize
	if n > p.NSlots {
		n = p.NSlots
	}
	for i := 0; i < n; i++ {
		k, v := hashutil.GetEntry(image[i*hashutil.EntrySize:])
		if k == 0 {
			continue
		}
		if !fn(k, v) {
			return
		}
	}
}
