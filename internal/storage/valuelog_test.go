package storage_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/flashchip"
	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// vlogDevices builds one instance of every device model at a small
// capacity, so the log is exercised over byte-addressable reads (SSD,
// disk) and the erase-constrained NAND path alike.
func vlogDevices(t *testing.T, capacity int64) map[string]storage.Device {
	t.Helper()
	return map[string]storage.Device{
		"ssd":  ssd.New(ssd.IntelX18M(), capacity, vclock.New()),
		"disk": disk.New(disk.Hitachi7K80(), capacity, vclock.New()),
		"chip": flashchip.New(flashchip.DefaultConfig(capacity), vclock.New()),
	}
}

func TestValueLogRoundTrip(t *testing.T) {
	for name, dev := range vlogDevices(t, 1<<20) {
		t.Run(name, func(t *testing.T) {
			l, err := storage.NewValueLog(dev)
			if err != nil {
				t.Fatal(err)
			}
			type ref struct {
				off int64
				n   int
				key []byte
				val []byte
			}
			var refs []ref
			// Variable-length records, including empty values and records
			// far larger than a page (spanning pages and flush chunks).
			for i := 0; i < 300; i++ {
				key := []byte(fmt.Sprintf("key-%04d-%s", i, bytes.Repeat([]byte{'k'}, i%37)))
				val := bytes.Repeat([]byte{byte(i)}, (i*131)%2500)
				off, n, err := l.Append(key, val)
				if err != nil {
					t.Fatal(err)
				}
				refs = append(refs, ref{off, n, key, val})
			}
			for _, r := range refs {
				rec, ok, err := l.ReadRecord(r.off, r.n)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("record at %d unreadable before any wrap", r.off)
				}
				val, ok := storage.VerifyRecord(rec, r.key)
				if !ok {
					t.Fatalf("record at %d failed key verification", r.off)
				}
				if !bytes.Equal(val, r.val) {
					t.Fatalf("record at %d value mismatch: %d vs %d bytes", r.off, len(val), len(r.val))
				}
				// The wrong key must never verify.
				if _, ok := storage.VerifyRecord(rec, append([]byte("x"), r.key...)); ok {
					t.Fatal("record verified under a different key")
				}
			}
			if st := l.Stats(); st.Records != 300 || st.Wraps != 0 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestValueLogBatchedReads(t *testing.T) {
	for name, dev := range vlogDevices(t, 1<<20) {
		t.Run(name, func(t *testing.T) {
			l, err := storage.NewValueLog(dev)
			if err != nil {
				t.Fatal(err)
			}
			keys := make([][]byte, 200)
			vals := make([][]byte, 200)
			reqs := make([]storage.ValueReadReq, 200)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("batch-key-%05d", i))
				vals[i] = bytes.Repeat([]byte{byte(i), byte(i >> 3)}, 1+(i*97)%800)
				off, n, err := l.Append(keys[i], vals[i])
				if err != nil {
					t.Fatal(err)
				}
				reqs[i] = storage.ValueReadReq{Off: off, N: n}
			}
			// A bogus request must come back nil without disturbing others.
			reqs = append(reqs, storage.ValueReadReq{Off: 1 << 40, N: 64})
			if err := l.ReadRecordsBatch(reqs); err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				if reqs[i].Rec == nil {
					t.Fatalf("request %d unresolved", i)
				}
				val, ok := storage.VerifyRecord(reqs[i].Rec, keys[i])
				if !ok || !bytes.Equal(val, vals[i]) {
					t.Fatalf("request %d verification failed", i)
				}
			}
			if reqs[200].Rec != nil {
				t.Fatal("out-of-range request resolved")
			}
		})
	}
}

func TestValueLogWrapInvalidatesOldRecords(t *testing.T) {
	for name, dev := range vlogDevices(t, 256<<10) {
		t.Run(name, func(t *testing.T) {
			l, err := storage.NewValueLog(dev)
			if err != nil {
				t.Fatal(err)
			}
			val := bytes.Repeat([]byte{0xAB}, 4000)
			firstKey := []byte("first-record")
			firstOff, firstN, err := l.Append(firstKey, val)
			if err != nil {
				t.Fatal(err)
			}
			// Fill several times the capacity so the head laps the first
			// record repeatedly.
			var lastOff int64
			var lastN int
			lastKey := []byte("last-record")
			for i := 0; l.Stats().Wraps < 3; i++ {
				key := []byte(fmt.Sprintf("filler-%06d", i))
				if _, _, err := l.Append(key, val); err != nil {
					t.Fatal(err)
				}
			}
			if lastOff, lastN, err = l.Append(lastKey, val); err != nil {
				t.Fatal(err)
			}

			// The overwritten record must read as a verification miss, not
			// as wrong bytes.
			rec, ok, err := l.ReadRecord(firstOff, firstN)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				if _, verified := storage.VerifyRecord(rec, firstKey); verified {
					t.Fatal("lapped record still verifies under its key")
				}
			}
			// The newest record is intact.
			rec, ok, err = l.ReadRecord(lastOff, lastN)
			if err != nil || !ok {
				t.Fatalf("newest record unreadable: %v %v", ok, err)
			}
			if got, verified := storage.VerifyRecord(rec, lastKey); !verified || !bytes.Equal(got, val) {
				t.Fatal("newest record failed verification after wraps")
			}
		})
	}
}

// TestValueLogStraddlingFlushFrontier pins the three-way read split: a
// record partly written to the device and partly still in the tail buffer
// must read back whole, serially and batched.
func TestValueLogStraddlingFlushFrontier(t *testing.T) {
	dev := ssd.New(ssd.IntelX18M(), 1<<20, vclock.New())
	l, err := storage.NewValueLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	// One record bigger than the flush threshold: appending it flushes its
	// leading pages, leaving its tail buffered.
	key := []byte("straddler")
	val := bytes.Repeat([]byte{0x5C}, 70<<10)
	off, n, err := l.Append(key, val)
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.BufferedBytes == 0 || st.BufferedBytes >= int64(n) {
		t.Fatalf("expected a partially flushed record, buffered=%d of %d", st.BufferedBytes, n)
	}
	rec, ok, err := l.ReadRecord(off, n)
	if err != nil || !ok {
		t.Fatalf("straddling read: %v %v", ok, err)
	}
	if got, verified := storage.VerifyRecord(rec, key); !verified || !bytes.Equal(got, val) {
		t.Fatal("straddling record corrupted")
	}
	reqs := []storage.ValueReadReq{{Off: off, N: n}}
	if err := l.ReadRecordsBatch(reqs); err != nil {
		t.Fatal(err)
	}
	if got, verified := storage.VerifyRecord(reqs[0].Rec, key); !verified || !bytes.Equal(got, val) {
		t.Fatal("batched straddling record corrupted")
	}
}

func TestValueLogRejectsOversizeRecord(t *testing.T) {
	// The SSD rounds capacity up to whole erase blocks, so size the record
	// off the log's reported capacity rather than the requested bytes.
	dev := ssd.New(ssd.IntelX18M(), 64<<10, vclock.New())
	l, err := storage.NewValueLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]byte("k"), make([]byte, l.Capacity())); err == nil {
		t.Fatal("accepted a record larger than the log")
	}
}

func TestValueLogUnwrittenRegionReadsAsMiss(t *testing.T) {
	dev := ssd.New(ssd.IntelX18M(), 1<<20, vclock.New())
	l, err := storage.NewValueLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Past the head on an unwrapped log: never written.
	if _, ok, err := l.ReadRecord(512<<10, 64); err != nil || ok {
		t.Fatalf("unwritten region readable: ok=%v err=%v", ok, err)
	}
}

// TestValueLogAppendBatchEquivalence drives the same record stream through
// Append and AppendBatch on twin logs: pointers, wrap points and every
// readable record must be identical — only the write submission pattern
// (and therefore latency) may differ.
func TestValueLogAppendBatchEquivalence(t *testing.T) {
	for name := range vlogDevices(t, 1<<20) {
		t.Run(name, func(t *testing.T) {
			serialDev := vlogDevices(t, 256<<10)[name]
			batchDev := vlogDevices(t, 256<<10)[name]
			ls, err := storage.NewValueLog(serialDev)
			if err != nil {
				t.Fatal(err)
			}
			lb, err := storage.NewValueLog(batchDev)
			if err != nil {
				t.Fatal(err)
			}
			nRecords := 900 // enough to wrap the 256 KB logs
			keys := make([][]byte, nRecords)
			vals := make([][]byte, nRecords)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("key-%04d", i))
				vals[i] = bytes.Repeat([]byte{byte(i)}, (i*37)%700)
			}
			type ptr struct {
				off int64
				n   int
			}
			sp := make([]ptr, nRecords)
			bp := make([]ptr, nRecords)
			offs := make([]int64, 64)
			ns := make([]int, 64)
			for at := 0; at < nRecords; at += 64 {
				hi := at + 64
				if hi > nRecords {
					hi = nRecords
				}
				for i := at; i < hi; i++ {
					off, n, err := ls.Append(keys[i], vals[i])
					if err != nil {
						t.Fatal(err)
					}
					sp[i] = ptr{off, n}
				}
				w := hi - at
				if err := lb.AppendBatch(keys[at:hi], vals[at:hi], offs[:w], ns[:w]); err != nil {
					t.Fatal(err)
				}
				for j := 0; j < w; j++ {
					bp[at+j] = ptr{offs[j], ns[j]}
				}
			}
			if sp[len(sp)-1] != bp[len(bp)-1] {
				t.Fatalf("final pointers diverge: %+v vs %+v", sp[len(sp)-1], bp[len(bp)-1])
			}
			ss, bs := ls.Stats(), lb.Stats()
			if ss.Records != bs.Records || ss.AppendedBytes != bs.AppendedBytes || ss.Wraps != bs.Wraps {
				t.Fatalf("stats diverge:\nserial  %+v\nbatched %+v", ss, bs)
			}
			for i := range keys {
				if sp[i] != bp[i] {
					t.Fatalf("record %d pointer: serial %+v, batched %+v", i, sp[i], bp[i])
				}
				srec, sok, err := ls.ReadRecord(sp[i].off, sp[i].n)
				if err != nil {
					t.Fatal(err)
				}
				scp := append([]byte(nil), srec...)
				brec, bok, err := lb.ReadRecord(bp[i].off, bp[i].n)
				if err != nil {
					t.Fatal(err)
				}
				if sok != bok || !bytes.Equal(scp, brec) {
					t.Fatalf("record %d: serial (%v, %d bytes) vs batched (%v, %d bytes)",
						i, sok, len(scp), bok, len(brec))
				}
				sv, sgot := storage.VerifyRecord(scp, keys[i])
				bv, bgot := storage.VerifyRecord(brec, keys[i])
				if sgot != bgot || !bytes.Equal(sv, bv) {
					t.Fatalf("record %d verification diverges", i)
				}
			}
			// The batched log must not have written more often.
			if sw, bw := serialDev.Counters().Writes, batchDev.Counters().Writes; bw > sw {
				t.Fatalf("batched log wrote %d times > serial %d", bw, sw)
			}
		})
	}
}

// TestValueLogSpaceAccounting pins the live/dead/lapped bookkeeping at the
// log level: appends allocate live bytes, MarkDead moves them to the dead
// side, lapping reclaims whole regions, and stale marks are clamped.
func TestValueLogSpaceAccounting(t *testing.T) {
	dev := ssd.New(ssd.IntelX18M(), 64<<10, vclock.New())
	l, err := storage.NewValueLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("space-key")
	val := bytes.Repeat([]byte{9}, 991)
	recN := storage.RecordSize(len(key), len(val))

	off1, n1, err := l.Append(key, val)
	if err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.LiveBytes != int64(recN) || s.DeadBytes != 0 {
		t.Fatalf("after one append: %+v", s)
	}
	l.MarkDead(off1, n1)
	if s := l.Stats(); s.LiveBytes != 0 || s.DeadBytes != int64(recN) {
		t.Fatalf("after MarkDead: %+v", s)
	}
	// Double-marking must clamp, not go negative.
	l.MarkDead(off1, n1)
	if s := l.Stats(); s.LiveBytes < 0 || s.DeadBytes > 2*int64(recN) {
		t.Fatalf("after double MarkDead: %+v", s)
	}

	// Fill past several wraps; accounting must stay bounded by capacity and
	// the lapped counters must grow.
	for i := 0; i < 300; i++ {
		if _, _, err := l.Append(key, val); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.Wraps == 0 {
		t.Fatal("log never wrapped; retune the test")
	}
	if s.LiveBytes+s.DeadBytes > s.Capacity {
		t.Fatalf("accounting exceeds capacity: %+v", s)
	}
	if s.LappedBytes == 0 || s.LappedLiveBytes == 0 {
		t.Fatalf("lapping not accounted: %+v", s)
	}
	if occ := s.Occupancy(); occ <= 0 || occ > 1 {
		t.Fatalf("occupancy = %v", occ)
	}

	// Aggregation: Add must sum the space fields so fleet occupancy stays
	// meaningful.
	var agg storage.ValueLogStats
	agg.Add(s)
	agg.Add(s)
	if agg.Capacity != 2*s.Capacity || agg.LiveBytes != 2*s.LiveBytes {
		t.Fatalf("Add did not sum space fields: %+v", agg)
	}
}
