package storage_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/flashchip"
	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// vlogDevices builds one instance of every device model at a small
// capacity, so the log is exercised over byte-addressable reads (SSD,
// disk) and the erase-constrained NAND path alike.
func vlogDevices(t *testing.T, capacity int64) map[string]storage.Device {
	t.Helper()
	return map[string]storage.Device{
		"ssd":  ssd.New(ssd.IntelX18M(), capacity, vclock.New()),
		"disk": disk.New(disk.Hitachi7K80(), capacity, vclock.New()),
		"chip": flashchip.New(flashchip.DefaultConfig(capacity), vclock.New()),
	}
}

func TestValueLogRoundTrip(t *testing.T) {
	for name, dev := range vlogDevices(t, 1<<20) {
		t.Run(name, func(t *testing.T) {
			l, err := storage.NewValueLog(dev)
			if err != nil {
				t.Fatal(err)
			}
			type ref struct {
				off int64
				n   int
				key []byte
				val []byte
			}
			var refs []ref
			// Variable-length records, including empty values and records
			// far larger than a page (spanning pages and flush chunks).
			for i := 0; i < 300; i++ {
				key := []byte(fmt.Sprintf("key-%04d-%s", i, bytes.Repeat([]byte{'k'}, i%37)))
				val := bytes.Repeat([]byte{byte(i)}, (i*131)%2500)
				off, n, err := l.Append(key, val)
				if err != nil {
					t.Fatal(err)
				}
				refs = append(refs, ref{off, n, key, val})
			}
			for _, r := range refs {
				rec, ok, err := l.ReadRecord(r.off, r.n)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("record at %d unreadable before any wrap", r.off)
				}
				val, ok := storage.VerifyRecord(rec, r.key)
				if !ok {
					t.Fatalf("record at %d failed key verification", r.off)
				}
				if !bytes.Equal(val, r.val) {
					t.Fatalf("record at %d value mismatch: %d vs %d bytes", r.off, len(val), len(r.val))
				}
				// The wrong key must never verify.
				if _, ok := storage.VerifyRecord(rec, append([]byte("x"), r.key...)); ok {
					t.Fatal("record verified under a different key")
				}
			}
			if st := l.Stats(); st.Records != 300 || st.Wraps != 0 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestValueLogBatchedReads(t *testing.T) {
	for name, dev := range vlogDevices(t, 1<<20) {
		t.Run(name, func(t *testing.T) {
			l, err := storage.NewValueLog(dev)
			if err != nil {
				t.Fatal(err)
			}
			keys := make([][]byte, 200)
			vals := make([][]byte, 200)
			reqs := make([]storage.ValueReadReq, 200)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("batch-key-%05d", i))
				vals[i] = bytes.Repeat([]byte{byte(i), byte(i >> 3)}, 1+(i*97)%800)
				off, n, err := l.Append(keys[i], vals[i])
				if err != nil {
					t.Fatal(err)
				}
				reqs[i] = storage.ValueReadReq{Off: off, N: n}
			}
			// A bogus request must come back nil without disturbing others.
			reqs = append(reqs, storage.ValueReadReq{Off: 1 << 40, N: 64})
			if err := l.ReadRecordsBatch(reqs); err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				if reqs[i].Rec == nil {
					t.Fatalf("request %d unresolved", i)
				}
				val, ok := storage.VerifyRecord(reqs[i].Rec, keys[i])
				if !ok || !bytes.Equal(val, vals[i]) {
					t.Fatalf("request %d verification failed", i)
				}
			}
			if reqs[200].Rec != nil {
				t.Fatal("out-of-range request resolved")
			}
		})
	}
}

func TestValueLogWrapInvalidatesOldRecords(t *testing.T) {
	for name, dev := range vlogDevices(t, 256<<10) {
		t.Run(name, func(t *testing.T) {
			l, err := storage.NewValueLog(dev)
			if err != nil {
				t.Fatal(err)
			}
			val := bytes.Repeat([]byte{0xAB}, 4000)
			firstKey := []byte("first-record")
			firstOff, firstN, err := l.Append(firstKey, val)
			if err != nil {
				t.Fatal(err)
			}
			// Fill several times the capacity so the head laps the first
			// record repeatedly.
			var lastOff int64
			var lastN int
			lastKey := []byte("last-record")
			for i := 0; l.Stats().Wraps < 3; i++ {
				key := []byte(fmt.Sprintf("filler-%06d", i))
				if _, _, err := l.Append(key, val); err != nil {
					t.Fatal(err)
				}
			}
			if lastOff, lastN, err = l.Append(lastKey, val); err != nil {
				t.Fatal(err)
			}

			// The overwritten record must read as a verification miss, not
			// as wrong bytes.
			rec, ok, err := l.ReadRecord(firstOff, firstN)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				if _, verified := storage.VerifyRecord(rec, firstKey); verified {
					t.Fatal("lapped record still verifies under its key")
				}
			}
			// The newest record is intact.
			rec, ok, err = l.ReadRecord(lastOff, lastN)
			if err != nil || !ok {
				t.Fatalf("newest record unreadable: %v %v", ok, err)
			}
			if got, verified := storage.VerifyRecord(rec, lastKey); !verified || !bytes.Equal(got, val) {
				t.Fatal("newest record failed verification after wraps")
			}
		})
	}
}

// TestValueLogStraddlingFlushFrontier pins the three-way read split: a
// record partly written to the device and partly still in the tail buffer
// must read back whole, serially and batched.
func TestValueLogStraddlingFlushFrontier(t *testing.T) {
	dev := ssd.New(ssd.IntelX18M(), 1<<20, vclock.New())
	l, err := storage.NewValueLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	// One record bigger than the flush threshold: appending it flushes its
	// leading pages, leaving its tail buffered.
	key := []byte("straddler")
	val := bytes.Repeat([]byte{0x5C}, 70<<10)
	off, n, err := l.Append(key, val)
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.BufferedBytes == 0 || st.BufferedBytes >= int64(n) {
		t.Fatalf("expected a partially flushed record, buffered=%d of %d", st.BufferedBytes, n)
	}
	rec, ok, err := l.ReadRecord(off, n)
	if err != nil || !ok {
		t.Fatalf("straddling read: %v %v", ok, err)
	}
	if got, verified := storage.VerifyRecord(rec, key); !verified || !bytes.Equal(got, val) {
		t.Fatal("straddling record corrupted")
	}
	reqs := []storage.ValueReadReq{{Off: off, N: n}}
	if err := l.ReadRecordsBatch(reqs); err != nil {
		t.Fatal(err)
	}
	if got, verified := storage.VerifyRecord(reqs[0].Rec, key); !verified || !bytes.Equal(got, val) {
		t.Fatal("batched straddling record corrupted")
	}
}

func TestValueLogRejectsOversizeRecord(t *testing.T) {
	// The SSD rounds capacity up to whole erase blocks, so size the record
	// off the log's reported capacity rather than the requested bytes.
	dev := ssd.New(ssd.IntelX18M(), 64<<10, vclock.New())
	l, err := storage.NewValueLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]byte("k"), make([]byte, l.Capacity())); err == nil {
		t.Fatal("accepted a record larger than the log")
	}
}

func TestValueLogUnwrittenRegionReadsAsMiss(t *testing.T) {
	dev := ssd.New(ssd.IntelX18M(), 1<<20, vclock.New())
	l, err := storage.NewValueLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Past the head on an unwrapped log: never written.
	if _, ok, err := l.ReadRecord(512<<10, 64); err != nil || ok {
		t.Fatalf("unwritten region readable: ok=%v err=%v", ok, err)
	}
}
