package storage

import (
	"sort"
	"time"
)

// ReadReq is one read of a batched I/O: fill P from device offset Off.
type ReadReq struct {
	P   []byte
	Off int64
}

// BatchReader is implemented by devices that can service a set of reads as
// one queued submission, overlapping their service across the device's
// internal parallelism (SSD channels, NAND planes) and eliminating seeks
// between address-sorted requests. It is the device half of the batched
// lookup pipeline: BufferHash gathers every flash probe a lookup batch
// needs, dedupes and sorts them, and submits them here in one call.
//
// ReadBatch fills every request's buffer and returns the overlapped service
// time of the whole batch, advancing the device clock by that amount once —
// not by the sum of per-request latencies, which is what a loop over ReadAt
// would charge. Counters still account every request individually (Reads
// and BytesRead grow by the batch size), so I/O counts stay comparable with
// the serial path; only the time model changes.
//
// The overlap model is deliberately explicit and shared by all devices:
//
//  1. Requests are served in ascending address order (NCQ / elevator).
//  2. A request starting exactly where the previous request ended joins a
//     sequential run and pays no per-request fixed cost (no seek, no
//     command setup) — only the transfer cost.
//  3. The device has a fixed number of queue lanes (channels, planes, or 1
//     for a single-actuator disk). Each request is placed on the
//     least-loaded lane, and the batch's service time is the maximum lane
//     total — lanes overlap, they do not add.
//
// Devices that cannot reorder or overlap simply have one lane, where the
// model degenerates to the sorted serial sum (still a win on seek-bound
// media). Callers must treat request buffers as invalid on error.
type BatchReader interface {
	ReadBatch(reqs []ReadReq) (time.Duration, error)
}

// SortReadReqs orders reqs by ascending device address (step 1 of the
// overlap model). Ties keep their relative order so duplicate-page reads
// stay adjacent for callers that dedupe. Already-sorted batches — the
// common case, since the core pipeline submits sorted requests — are
// detected with one linear scan and left untouched.
func SortReadReqs(reqs []ReadReq) {
	sortByOff(reqs, func(r ReadReq) int64 { return r.Off })
}

// sortByOff is the shared elevator ordering of SortReadReqs and
// SortWriteReqs: stable ascending sort by device address, with a linear
// scan skipping batches that are already in order.
func sortByOff[T any](reqs []T, off func(T) int64) {
	sorted := true
	for i := 1; i < len(reqs); i++ {
		if off(reqs[i]) < off(reqs[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	sort.SliceStable(reqs, func(i, j int) bool { return off(reqs[i]) < off(reqs[j]) })
}

// OverlapLanes implements step 3 of the overlap model: distribute the
// per-request service times over `lanes` queue lanes, each request on the
// currently least-loaded lane, and return the maximum lane total. With one
// lane this is the plain sum. svc is consumed in order, so callers pass the
// address-sorted (and sequential-run-discounted) service times.
func OverlapLanes(svc []time.Duration, lanes int) time.Duration {
	if lanes <= 1 {
		var sum time.Duration
		for _, s := range svc {
			sum += s
		}
		return sum
	}
	if lanes > len(svc) {
		lanes = len(svc)
	}
	var laneBuf [32]time.Duration // avoids a heap lane slice for real queue depths
	var lane []time.Duration
	if lanes <= len(laneBuf) {
		lane = laneBuf[:lanes]
	} else {
		lane = make([]time.Duration, lanes)
	}
	for _, s := range svc {
		min := 0
		for i := 1; i < lanes; i++ {
			if lane[i] < lane[min] {
				min = i
			}
		}
		lane[min] += s
	}
	var max time.Duration
	for _, t := range lane {
		if t > max {
			max = t
		}
	}
	return max
}

// ReadBatchFallback services a batch against a plain Device by looping
// ReadAt in address-sorted order. Latency is the serial sum (each ReadAt
// advances the clock as usual); sorting still helps seek-bound devices
// whose cost model tracks head position. It is the correct fallback for
// devices that do not implement BatchReader.
func ReadBatchFallback(d Device, reqs []ReadReq) (time.Duration, error) {
	SortReadReqs(reqs)
	var total time.Duration
	for _, r := range reqs {
		lat, err := d.ReadAt(r.P, r.Off)
		if err != nil {
			return total, err
		}
		total += lat
	}
	return total, nil
}

// WriteReq is one write of a batched I/O: store P at device offset Off.
type WriteReq struct {
	P   []byte
	Off int64
}

// BatchWriter is the write-side twin of BatchReader: a set of writes
// submitted as one queued batch, served in ascending address order with
// sequential runs paying the fixed command cost once and per-request
// service times overlapped across the device's queue lanes. It is the
// device half of the batched insert pipeline: BufferHash collects every
// incarnation image a batch's flushes produce, sorts them by address, and
// submits them here in one call.
//
// WriteBatch stores every request's bytes and returns the overlapped
// service time of the whole batch, advancing the device clock by that
// amount once. Counters still account every request individually (Writes
// and BytesWritten grow by the batch size), so I/O counts stay comparable
// with a loop over WriteAt; only the time model changes. FTL bookkeeping
// (page mapping, garbage collection, erase-before-write) runs per request
// exactly as WriteAt would run it, with any synchronous GC debt paid once
// up front by the whole batch.
//
// Requests must respect the same alignment rules as WriteAt and must not
// overlap one another; on media with program-order constraints (raw NAND)
// the address-sorted requests must respect them, as full-block incarnation
// images do by construction.
type BatchWriter interface {
	WriteBatch(reqs []WriteReq) (time.Duration, error)
}

// SortWriteReqs orders reqs by ascending device address (the elevator/NCQ
// step of the overlap model). Already-sorted batches are detected with one
// linear scan and left untouched.
func SortWriteReqs(reqs []WriteReq) {
	sortByOff(reqs, func(r WriteReq) int64 { return r.Off })
}

// WriteBatchFallback services a write batch against a plain Device by
// looping WriteAt in address-sorted order — the serial sum, the correct
// fallback for devices without BatchWriter.
func WriteBatchFallback(d Device, reqs []WriteReq) (time.Duration, error) {
	SortWriteReqs(reqs)
	var total time.Duration
	for _, r := range reqs {
		lat, err := d.WriteAt(r.P, r.Off)
		if err != nil {
			return total, err
		}
		total += lat
	}
	return total, nil
}
