package storage

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestGeometry(t *testing.T) {
	g := Geometry{Capacity: 1 << 20, PageSize: 2048, BlockSize: 128 << 10}
	if g.Pages() != 512 {
		t.Fatalf("Pages() = %d, want 512", g.Pages())
	}
	if g.Blocks() != 8 {
		t.Fatalf("Blocks() = %d, want 8", g.Blocks())
	}
	g.BlockSize = 0
	if g.Blocks() != 0 {
		t.Fatalf("Blocks() = %d with zero BlockSize", g.Blocks())
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpErase.String() != "erase" {
		t.Fatal("Op.String() wrong")
	}
	if Op(99).String() == "" {
		t.Fatal("unknown op should still format")
	}
}

func TestCheckRange(t *testing.T) {
	g := Geometry{Capacity: 4096, PageSize: 512}
	if err := CheckRange(g, 0, 4096, 512); err != nil {
		t.Fatalf("full-range access rejected: %v", err)
	}
	if err := CheckRange(g, 512, 512, 512); err != nil {
		t.Fatalf("aligned access rejected: %v", err)
	}
	if err := CheckRange(g, 0, 8192, 512); err == nil {
		t.Fatal("out-of-range access accepted")
	}
	if err := CheckRange(g, -512, 512, 512); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := CheckRange(g, 100, 512, 512); err == nil {
		t.Fatal("unaligned offset accepted")
	}
	if err := CheckRange(g, 0, 100, 512); err == nil {
		t.Fatal("unaligned length accepted")
	}
	if err := CheckRange(g, 100, 10, 1); err != nil {
		t.Fatalf("align=1 should accept byte granularity: %v", err)
	}
}

func TestSparseStoreReadUnwritten(t *testing.T) {
	s := NewSparseStore(512, 0xFF)
	buf := make([]byte, 100)
	s.ReadAt(buf, 1000)
	for i, b := range buf {
		if b != 0xFF {
			t.Fatalf("byte %d = %#x, want 0xFF fill", i, b)
		}
	}
}

func TestSparseStoreRoundTrip(t *testing.T) {
	s := NewSparseStore(512, 0)
	data := []byte("hello, sparse world")
	s.WriteAt(data, 700) // crosses a page boundary
	got := make([]byte, len(data))
	s.ReadAt(got, 700)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %q", got)
	}
}

func TestSparseStoreCrossPageWrite(t *testing.T) {
	s := NewSparseStore(8, 0xAA)
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i)
	}
	s.WriteAt(data, 4) // spans 5 pages
	got := make([]byte, 40)
	s.ReadAt(got, 0)
	for i := 0; i < 4; i++ {
		if got[i] != 0xAA {
			t.Fatalf("leading fill corrupted at %d: %#x", i, got[i])
		}
	}
	if !bytes.Equal(got[4:36], data) {
		t.Fatal("cross-page data wrong")
	}
	if got[36] != 0xAA {
		t.Fatal("trailing fill corrupted")
	}
}

func TestSparseStoreDropWholePages(t *testing.T) {
	s := NewSparseStore(16, 0xFF)
	s.WriteAt(make([]byte, 64), 0) // 4 pages of zeros
	if s.PagesAllocated() != 4 {
		t.Fatalf("PagesAllocated = %d, want 4", s.PagesAllocated())
	}
	s.Drop(16, 32) // pages 1 and 2
	if s.PagesAllocated() != 2 {
		t.Fatalf("PagesAllocated = %d after drop, want 2", s.PagesAllocated())
	}
	buf := make([]byte, 64)
	s.ReadAt(buf, 0)
	for i := 0; i < 16; i++ {
		if buf[i] != 0 {
			t.Fatal("page 0 corrupted by drop")
		}
	}
	for i := 16; i < 48; i++ {
		if buf[i] != 0xFF {
			t.Fatalf("dropped region not refilled at %d", i)
		}
	}
}

func TestSparseStoreDropPartialPage(t *testing.T) {
	s := NewSparseStore(16, 0xFF)
	data := make([]byte, 16)
	s.WriteAt(data, 0) // page 0 all zeros
	s.Drop(4, 8)       // partial drop within page 0
	buf := make([]byte, 16)
	s.ReadAt(buf, 0)
	for i := 0; i < 4; i++ {
		if buf[i] != 0 {
			t.Fatal("prefix clobbered")
		}
	}
	for i := 4; i < 12; i++ {
		if buf[i] != 0xFF {
			t.Fatalf("partial drop not refilled at %d", i)
		}
	}
	for i := 12; i < 16; i++ {
		if buf[i] != 0 {
			t.Fatal("suffix clobbered")
		}
	}
}

func TestSparseStoreQuick(t *testing.T) {
	// Property: a sparse store behaves exactly like a flat byte array.
	const size = 1 << 12
	s := NewSparseStore(64, 0)
	ref := make([]byte, size)
	f := func(off16 uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(off16) % (size - int64(len(data)))
		if off < 0 {
			off = 0
		}
		s.WriteAt(data, off)
		copy(ref[off:], data)
		got := make([]byte, len(data))
		s.ReadAt(got, off)
		if !bytes.Equal(got, ref[off:off+int64(len(data))]) {
			return false
		}
		// Also verify a wider window.
		wide := make([]byte, size)
		s.ReadAt(wide, 0)
		return bytes.Equal(wide, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Reads: 1, Writes: 2, Erases: 3, BytesRead: 4, BytesWritten: 5, PagesMoved: 6, GCRuns: 7, BusyTime: 8}
	b := Counters{Reads: 10, Writes: 20, Erases: 30, BytesRead: 40, BytesWritten: 50, PagesMoved: 60, GCRuns: 70, BusyTime: 80}
	a.Add(b)
	want := Counters{Reads: 11, Writes: 22, Erases: 33, BytesRead: 44, BytesWritten: 55, PagesMoved: 66, GCRuns: 77, BusyTime: 88}
	if a != want {
		t.Fatalf("Add: got %+v, want %+v", a, want)
	}
}

func TestOverlapLanes(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	svc := []time.Duration{ms(4), ms(1), ms(1), ms(2)}
	if got := OverlapLanes(svc, 1); got != ms(8) {
		t.Fatalf("1 lane = %v, want serial sum %v", got, ms(8))
	}
	// Least-loaded placement: 4 | 1+1+2 -> max 4.
	if got := OverlapLanes(svc, 2); got != ms(4) {
		t.Fatalf("2 lanes = %v, want %v", got, ms(4))
	}
	// More lanes than requests: bounded by the largest request.
	if got := OverlapLanes(svc, 16); got != ms(4) {
		t.Fatalf("16 lanes = %v, want %v", got, ms(4))
	}
	if got := OverlapLanes(nil, 4); got != 0 {
		t.Fatalf("empty batch = %v, want 0", got)
	}
}

func TestSortReadReqsStable(t *testing.T) {
	a := make([]byte, 1)
	b := make([]byte, 2)
	reqs := []ReadReq{{P: a, Off: 8}, {P: b, Off: 8}, {P: a, Off: 0}}
	SortReadReqs(reqs)
	if reqs[0].Off != 0 || reqs[1].Off != 8 || reqs[2].Off != 8 {
		t.Fatalf("not sorted: %+v", reqs)
	}
	if len(reqs[1].P) != 1 || len(reqs[2].P) != 2 {
		t.Fatal("equal offsets reordered")
	}
}
