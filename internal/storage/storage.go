// Package storage defines the block-device abstraction shared by all
// simulated media (flash chip, SSD, magnetic disk) and the sparse byte store
// backing them.
//
// Devices operate in virtual time: every I/O returns the simulated service
// latency and advances the shared vclock.Clock by it. Devices store real
// bytes, so data integrity is verified end to end by the tests — the latency
// model and the data path are exercised together.
//
// Besides the one-at-a-time Device interface, devices may implement
// BatchReader and BatchWriter: queued submissions of many reads or writes
// whose service times overlap across the device's internal parallelism
// (SSD channels, NAND planes) after an address sort, with sequential runs
// paying the fixed command cost once. The batched lookup pipeline in
// internal/core feeds coalesced flash probes through BatchReader, and the
// batched insert pipeline feeds the incarnation images its flushes
// produce through BatchWriter; see those interfaces for the precise
// three-step overlap model.
package storage

import (
	"errors"
	"fmt"
	"time"
)

// Op identifies a device operation for fault injection and accounting.
type Op int

// Device operations.
const (
	OpRead Op = iota
	OpWrite
	OpErase
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// FaultFunc is a fault-injection hook. If it returns a non-nil error for an
// operation, the device fails that operation with the error (after charging
// no latency). Tests use this to exercise error paths.
type FaultFunc func(op Op, off int64, n int) error

// Geometry describes a device's addressing structure.
type Geometry struct {
	// Capacity is the usable size in bytes.
	Capacity int64
	// PageSize is the smallest read/write unit in bytes (flash page or SSD
	// sector). Disk models use it as the sector size.
	PageSize int
	// BlockSize is the erase-block size in bytes, or 0 for media without an
	// erase constraint (magnetic disk).
	BlockSize int
}

// Pages returns the number of pages on the device.
func (g Geometry) Pages() int64 { return g.Capacity / int64(g.PageSize) }

// Blocks returns the number of erase blocks, or 0 if BlockSize is 0.
func (g Geometry) Blocks() int64 {
	if g.BlockSize == 0 {
		return 0
	}
	return g.Capacity / int64(g.BlockSize)
}

// Counters accumulates I/O accounting for a device.
type Counters struct {
	Reads        uint64
	Writes       uint64
	Erases       uint64
	BytesRead    uint64
	BytesWritten uint64
	// PagesMoved counts garbage-collection relocations (SSD FTL).
	PagesMoved uint64
	// GCRuns counts synchronous garbage-collection episodes (SSD FTL).
	GCRuns uint64
	// BusyTime is the total simulated service time.
	BusyTime time.Duration
}

// Add accumulates another device's counters into c. Sharded deployments sum
// the per-shard device counters into one fleet-wide view; BusyTime becomes
// the total service time across all devices (shard clocks are independent,
// so it can exceed any single clock's reading).
func (c *Counters) Add(o Counters) {
	c.Reads += o.Reads
	c.Writes += o.Writes
	c.Erases += o.Erases
	c.BytesRead += o.BytesRead
	c.BytesWritten += o.BytesWritten
	c.PagesMoved += o.PagesMoved
	c.GCRuns += o.GCRuns
	c.BusyTime += o.BusyTime
}

// Device is a virtual-time block storage device.
//
// Offsets and lengths must respect the device's page alignment; devices
// return an error otherwise. All methods advance the device's clock by the
// returned latency.
type Device interface {
	// ReadAt reads len(p) bytes at off and returns the simulated latency.
	ReadAt(p []byte, off int64) (time.Duration, error)
	// WriteAt writes len(p) bytes at off and returns the simulated latency.
	WriteAt(p []byte, off int64) (time.Duration, error)
	// Geometry returns the device's addressing structure.
	Geometry() Geometry
	// Counters returns a snapshot of the device's I/O accounting.
	Counters() Counters
}

// Eraser is implemented by devices with an explicit erase operation (raw
// flash chips). Offsets and sizes must be erase-block aligned.
type Eraser interface {
	Erase(off, n int64) (time.Duration, error)
}

// Trimmer is implemented by devices that accept invalidation hints (SSDs).
// Trimming tells the FTL the range no longer holds live data.
type Trimmer interface {
	Trim(off, n int64) error
}

// Common device errors.
var (
	ErrOutOfRange   = errors.New("storage: offset out of range")
	ErrUnaligned    = errors.New("storage: unaligned access")
	ErrNotErased    = errors.New("storage: write to non-erased flash page")
	ErrProgramOrder = errors.New("storage: out-of-order page program within erase block")
)

// CheckRange validates [off, off+n) against the geometry and the alignment
// unit `align`.
func CheckRange(g Geometry, off, n int64, align int) error {
	if off < 0 || n < 0 || off+n > g.Capacity {
		return fmt.Errorf("%w: off=%d n=%d cap=%d", ErrOutOfRange, off, n, g.Capacity)
	}
	if align > 1 && (off%int64(align) != 0 || n%int64(align) != 0) {
		return fmt.Errorf("%w: off=%d n=%d align=%d", ErrUnaligned, off, n, align)
	}
	return nil
}

// SparseStore is a page-granular sparse byte store. Unwritten regions read
// as the fill byte (0x00 for disks, 0xFF for erased NAND). It is the data
// backing for all device models, letting a simulated "32 GB" device cost
// only as much host memory as the pages actually touched.
type SparseStore struct {
	pageSize int
	fill     byte
	pages    map[int64][]byte
}

// NewSparseStore returns a store with the given page size and fill byte.
func NewSparseStore(pageSize int, fill byte) *SparseStore {
	return &SparseStore{pageSize: pageSize, fill: fill, pages: make(map[int64][]byte)}
}

// ReadAt fills p from the store at off.
func (s *SparseStore) ReadAt(p []byte, off int64) {
	for len(p) > 0 {
		pageIdx := off / int64(s.pageSize)
		inPage := int(off % int64(s.pageSize))
		n := s.pageSize - inPage
		if n > len(p) {
			n = len(p)
		}
		if page, ok := s.pages[pageIdx]; ok {
			copy(p[:n], page[inPage:inPage+n])
		} else {
			for i := 0; i < n; i++ {
				p[i] = s.fill
			}
		}
		p = p[n:]
		off += int64(n)
	}
}

// WriteAt stores p at off, allocating pages as needed.
func (s *SparseStore) WriteAt(p []byte, off int64) {
	for len(p) > 0 {
		pageIdx := off / int64(s.pageSize)
		inPage := int(off % int64(s.pageSize))
		n := s.pageSize - inPage
		if n > len(p) {
			n = len(p)
		}
		page, ok := s.pages[pageIdx]
		if !ok {
			page = make([]byte, s.pageSize)
			if s.fill != 0 {
				for i := range page {
					page[i] = s.fill
				}
			}
			s.pages[pageIdx] = page
		}
		copy(page[inPage:inPage+n], p[:n])
		p = p[n:]
		off += int64(n)
	}
}

// Drop releases the pages fully covered by [off, off+n) and refills partial
// overlaps with the fill byte.
func (s *SparseStore) Drop(off, n int64) {
	end := off + n
	first := off / int64(s.pageSize)
	last := (end - 1) / int64(s.pageSize)
	for idx := first; idx <= last; idx++ {
		pageStart := idx * int64(s.pageSize)
		pageEnd := pageStart + int64(s.pageSize)
		if pageStart >= off && pageEnd <= end {
			delete(s.pages, idx)
			continue
		}
		if page, ok := s.pages[idx]; ok {
			lo, hi := int64(0), int64(s.pageSize)
			if off > pageStart {
				lo = off - pageStart
			}
			if end < pageEnd {
				hi = end - pageStart
			}
			for i := lo; i < hi; i++ {
				page[i] = s.fill
			}
		}
	}
}

// PagesAllocated returns the number of live pages (for memory accounting in
// tests).
func (s *SparseStore) PagesAllocated() int { return len(s.pages) }
