package storage_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/flashchip"
	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// These tests pin the storage-layer contracts the value log and the
// incarnation layouts rely on: SparseStore.Drop's page-boundary behaviour
// and the Trimmer/Eraser optional interfaces as seen through a plain
// storage.Device.

func TestSparseStoreDropBoundaryCases(t *testing.T) {
	const page = 16
	fresh := func() *storage.SparseStore {
		s := storage.NewSparseStore(page, 0xEE)
		data := make([]byte, 5*page)
		for i := range data {
			data[i] = byte(i)
		}
		s.WriteAt(data, 0)
		return s
	}
	check := func(t *testing.T, s *storage.SparseStore, dropOff, dropN int64) {
		t.Helper()
		got := make([]byte, 5*page)
		s.ReadAt(got, 0)
		for i := int64(0); i < int64(len(got)); i++ {
			want := byte(i)
			if i >= dropOff && i < dropOff+dropN {
				want = 0xEE
			}
			if got[i] != want {
				t.Fatalf("byte %d = %#x, want %#x (drop [%d, %d))", i, got[i], want, dropOff, dropOff+dropN)
			}
		}
	}

	t.Run("exactly-page-aligned", func(t *testing.T) {
		s := fresh()
		s.Drop(page, 2*page)
		if s.PagesAllocated() != 3 {
			t.Fatalf("PagesAllocated = %d, want 3 (two whole pages freed)", s.PagesAllocated())
		}
		check(t, s, page, 2*page)
	})
	t.Run("straddles-both-boundaries", func(t *testing.T) {
		// Partial page 0 tail + whole pages 1,2 + partial page 3 head.
		s := fresh()
		s.Drop(page-4, 2*page+8)
		if s.PagesAllocated() != 3 {
			t.Fatalf("PagesAllocated = %d, want 3", s.PagesAllocated())
		}
		check(t, s, page-4, 2*page+8)
	})
	t.Run("within-one-page", func(t *testing.T) {
		s := fresh()
		s.Drop(page+3, 7)
		if s.PagesAllocated() != 5 {
			t.Fatalf("PagesAllocated = %d, want 5 (no page fully covered)", s.PagesAllocated())
		}
		check(t, s, page+3, 7)
	})
	t.Run("ends-exactly-on-boundary", func(t *testing.T) {
		s := fresh()
		s.Drop(page+4, page-4) // tail of page 1 only, up to page 2's start
		if s.PagesAllocated() != 5 {
			t.Fatalf("PagesAllocated = %d, want 5", s.PagesAllocated())
		}
		check(t, s, page+4, page-4)
	})
	t.Run("single-byte", func(t *testing.T) {
		s := fresh()
		s.Drop(2*page, 1)
		check(t, s, 2*page, 1)
	})
	t.Run("unallocated-pages-are-noop", func(t *testing.T) {
		s := storage.NewSparseStore(page, 0xEE)
		s.WriteAt(make([]byte, page), 0)
		s.Drop(3*page, 2*page) // never written
		if s.PagesAllocated() != 1 {
			t.Fatalf("PagesAllocated = %d, want 1", s.PagesAllocated())
		}
	})
}

// TestTrimmerInterface exercises Trim through the optional interface from
// a plain Device value, on both FTL flavours.
func TestTrimmerInterface(t *testing.T) {
	for _, tc := range []struct {
		name string
		dev  storage.Device
	}{
		{"page-mapped", ssd.New(ssd.IntelX18M(), 4<<20, vclock.New())},
		{"block-mapped", ssd.New(ssd.TranscendTS32(), 4<<20, vclock.New())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, ok := tc.dev.(storage.Trimmer)
			if !ok {
				t.Fatal("SSD does not expose storage.Trimmer")
			}
			page := tc.dev.Geometry().PageSize
			data := bytes.Repeat([]byte{0xAB}, 2*page)
			if _, err := tc.dev.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			// Trim the first page only; the second must survive.
			if err := tr.Trim(0, int64(page)); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 2*page)
			if _, err := tc.dev.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < page; i++ {
				if got[i] != 0 {
					t.Fatalf("trimmed byte %d = %#x, want 0", i, got[i])
				}
			}
			// The block-mapped FTL trims whole erase blocks (it has no
			// per-page map), so only the page-mapped device guarantees the
			// neighbouring page survives a sub-block trim.
			if tc.name == "page-mapped" && !bytes.Equal(got[page:], data[page:]) {
				t.Fatal("untrimmed page corrupted")
			}
			// Partial-page trims must be rejected as unaligned.
			if err := tr.Trim(int64(page/2), int64(page)); !errors.Is(err, storage.ErrUnaligned) {
				t.Fatalf("partial-page trim: %v, want ErrUnaligned", err)
			}
			if err := tr.Trim(0, int64(page)/2); !errors.Is(err, storage.ErrUnaligned) {
				t.Fatalf("partial-page-length trim: %v, want ErrUnaligned", err)
			}
		})
	}
	// Disks have no FTL and must NOT advertise Trimmer.
	if _, ok := interface{}(disk.New(disk.Hitachi7K80(), 4<<20, vclock.New())).(storage.Trimmer); ok {
		t.Fatal("disk claims storage.Trimmer")
	}
}

// TestEraserInterface exercises Erase through the optional interface from
// a plain Device value.
func TestEraserInterface(t *testing.T) {
	var dev storage.Device = flashchip.New(flashchip.DefaultConfig(1<<20), vclock.New())
	er, ok := dev.(storage.Eraser)
	if !ok {
		t.Fatal("flash chip does not expose storage.Eraser")
	}
	g := dev.Geometry()
	bs := int64(g.BlockSize)

	// Program block 0, then overwrite without erase: must fail.
	page := make([]byte, g.PageSize)
	for i := range page {
		page[i] = 0x5A
	}
	if _, err := dev.WriteAt(page, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt(page, 0); !errors.Is(err, storage.ErrNotErased) && !errors.Is(err, storage.ErrProgramOrder) {
		t.Fatalf("rewrite without erase: %v, want ErrNotErased/ErrProgramOrder", err)
	}
	// Erase the block: contents read as 0xFF and the page can be
	// programmed again.
	if lat, err := er.Erase(0, bs); err != nil || lat <= 0 {
		t.Fatalf("erase: lat=%v err=%v", lat, err)
	}
	got := make([]byte, g.PageSize)
	if _, err := dev.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xFF {
			t.Fatalf("erased byte %d = %#x, want 0xFF", i, b)
		}
	}
	if _, err := dev.WriteAt(page, 0); err != nil {
		t.Fatalf("program after erase: %v", err)
	}

	// Erase must be block-aligned, in offset and length.
	if _, err := er.Erase(bs/2, bs); !errors.Is(err, storage.ErrUnaligned) {
		t.Fatalf("partial-block erase offset: %v, want ErrUnaligned", err)
	}
	if _, err := er.Erase(0, bs/2); !errors.Is(err, storage.ErrUnaligned) {
		t.Fatalf("partial-block erase length: %v, want ErrUnaligned", err)
	}
	if _, err := er.Erase(g.Capacity, bs); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("out-of-range erase: %v, want ErrOutOfRange", err)
	}

	// SSDs hide their erase behind the FTL and must NOT advertise Eraser.
	if _, ok := interface{}(ssd.New(ssd.IntelX18M(), 4<<20, vclock.New())).(storage.Eraser); ok {
		t.Fatal("SSD claims storage.Eraser")
	}
}

// TestBatchWriterContract exercises WriteBatch on every device model
// against a twin device driven by serial WriteAt: identical stored bytes
// and write counters, and batch service time never above the serial sum
// (sorting and lane overlap can only help).
func TestBatchWriterContract(t *testing.T) {
	mkDevices := func() map[string]storage.Device {
		return map[string]storage.Device{
			"ssd-intel":     ssd.New(ssd.IntelX18M(), 4<<20, vclock.New()),
			"ssd-transcend": ssd.New(ssd.TranscendTS32(), 4<<20, vclock.New()),
			"chip":          flashchip.New(flashchip.DefaultConfig(4<<20), vclock.New()),
			"disk":          disk.New(disk.Hitachi7K80(), 4<<20, vclock.New()),
		}
	}
	serialDevs, batchDevs := mkDevices(), mkDevices()
	for name := range serialDevs {
		t.Run(name, func(t *testing.T) {
			sd, bd := serialDevs[name], batchDevs[name]
			bw, ok := bd.(storage.BatchWriter)
			if !ok {
				t.Fatalf("%s does not expose storage.BatchWriter", name)
			}
			// 128 KB chunks (whole erase blocks on NAND) at scattered,
			// non-contiguous addresses, submitted in descending order so the
			// batch path must sort.
			const chunk = 128 << 10
			var reqs []storage.WriteReq
			for i := 7; i >= 0; i-- {
				p := bytes.Repeat([]byte{byte('A' + i)}, chunk)
				reqs = append(reqs, storage.WriteReq{P: p, Off: int64(i) * 2 * chunk})
			}
			var serialSum time.Duration
			for i := len(reqs) - 1; i >= 0; i-- { // ascending order for the serial twin
				lat, err := sd.WriteAt(reqs[i].P, reqs[i].Off)
				if err != nil {
					t.Fatal(err)
				}
				serialSum += lat
			}
			batchLat, err := bw.WriteBatch(reqs)
			if err != nil {
				t.Fatal(err)
			}
			if batchLat <= 0 || batchLat > serialSum {
				t.Fatalf("batch latency %v outside (0, serial sum %v]", batchLat, serialSum)
			}
			sc, bc := sd.Counters(), bd.Counters()
			if bc.Writes != sc.Writes || bc.BytesWritten != sc.BytesWritten {
				t.Fatalf("write counters diverge: serial %+v, batched %+v", sc, bc)
			}
			got := make([]byte, chunk)
			want := make([]byte, chunk)
			for _, r := range reqs {
				if _, err := bd.ReadAt(got, r.Off); err != nil {
					t.Fatal(err)
				}
				if _, err := sd.ReadAt(want, r.Off); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) || !bytes.Equal(got, r.P) {
					t.Fatalf("batched write at %d stored wrong bytes", r.Off)
				}
			}
		})
	}
}

// TestBatchWriterSequentialRunDiscount pins the run discount: a batch of
// address-contiguous writes must cost less than the same pages written as
// discontiguous requests (which pay the fixed cost every time).
func TestBatchWriterSequentialRunDiscount(t *testing.T) {
	mk := func() storage.BatchWriter {
		return ssd.New(ssd.IntelX18M(), 4<<20, vclock.New())
	}
	const page = 4096
	seq, scattered := mk(), mk()
	var seqReqs, scatReqs []storage.WriteReq
	for i := 0; i < 32; i++ {
		p := bytes.Repeat([]byte{byte(i)}, page)
		seqReqs = append(seqReqs, storage.WriteReq{P: p, Off: int64(i) * page})
		scatReqs = append(scatReqs, storage.WriteReq{P: p, Off: int64(i) * 3 * page})
	}
	seqLat, err := seq.WriteBatch(seqReqs)
	if err != nil {
		t.Fatal(err)
	}
	scatLat, err := scattered.WriteBatch(scatReqs)
	if err != nil {
		t.Fatal(err)
	}
	if seqLat >= scatLat {
		t.Fatalf("sequential batch %v not cheaper than scattered %v", seqLat, scatLat)
	}
}

// TestBatchWriterProgramOrder: on raw NAND a batch violating program order
// must fail, exactly as serial writes would.
func TestBatchWriterProgramOrder(t *testing.T) {
	chip := flashchip.New(flashchip.DefaultConfig(1<<20), vclock.New())
	g := chip.Geometry()
	p := bytes.Repeat([]byte{0x5A}, g.PageSize)
	// Page 1 of block 0 without page 0 first: out of order even after the
	// address sort.
	_, err := chip.WriteBatch([]storage.WriteReq{{P: p, Off: int64(g.PageSize)}})
	if !errors.Is(err, storage.ErrProgramOrder) {
		t.Fatalf("out-of-order batch write: %v, want ErrProgramOrder", err)
	}
}
