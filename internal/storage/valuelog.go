package storage

import (
	"encoding/binary"
	"fmt"
)

// ValueLog is a circular append-only log of variable-length (key, value)
// records on a Device — the slow-storage half of the byte-keyed CAM API.
// The hash table maps a key's fingerprint to a tagged pointer (offset,
// length) into this log; the record stores the full key bytes, so every
// read is verified against the key the caller asked for and fingerprint
// collisions or overwritten (wrapped-over) records surface as misses, never
// as wrong values.
//
// Writes are page-aligned: records accumulate in a tail buffer whose full
// pages are written to the device in multi-page appends (sequential I/O,
// the access pattern every medium in this repository likes best). Reads are
// byte-granular, as all simulated devices permit; records still buffered in
// the tail are served from memory. On devices with an erase constraint
// (raw NAND) the log erases each block just before the append head re-enters
// it after a wrap, preserving program order within blocks.
//
// Batched reads go through the device's BatchReader when it implements one,
// overlapping the records' service times across the device's queue lanes —
// the "second I/O stream" of a batched Get: first the incarnation page
// probes overlap, then the value-log record reads overlap.
//
// A ValueLog is not safe for concurrent use; the clam facade serializes
// access under the same lock as the hash table.
type ValueLog struct {
	dev      Device
	eraser   Eraser // non-nil when dev has an erase constraint
	pageSize int
	capacity int64 // page-aligned (block-aligned on erasable media) usable bytes

	head     int64  // next append offset
	bufStart int64  // device offset of buf[0]; page-aligned
	buf      []byte // bytes [bufStart, head) not yet written to the device
	flushAt  int    // flush full pages once the tail buffer reaches this size

	wrapped  bool
	erasedTo int64 // exclusive erase frontier for the current cycle

	stats ValueLogStats

	// Space accounting (live vs dead record bytes) is tracked per fixed-size
	// log region: appends allocate into a region, MarkDead moves allocated
	// bytes to the dead side, and when the append head re-enters a region on
	// a later cycle the region's remaining bytes are lapped — destroyed by
	// the circular overwrite, live or not. Totals are maintained
	// incrementally so Stats() is O(1).
	regionSize int64
	regAlloc   []int64  // record bytes appended into the region this cycle
	regDead    []int64  // of those, bytes marked dead
	regCycle   []uint64 // cycle the region's counters belong to
	cycle      uint64   // current append cycle (increments at each wrap)
	allocTotal int64
	deadTotal  int64

	scratch []byte    // batched-read arena, reused across calls
	reqs    []ReadReq // batched-read request scratch
}

// ValueLogStats counts log activity, including the live/dead space
// accounting: delete is index-only and overwrite is append-only, so dead
// records keep occupying log space until the head laps them. LiveBytes and
// DeadBytes partition the un-lapped record bytes; their sum over Capacity
// is the log occupancy.
//
// Dead-marking is driven by the clam facade, which can only observe a
// record dying while its pointer is still in the DRAM buffer (an overwrite
// or delete of a flushed key dies silently), so the split is approximate:
// LiveBytes overcounts for unobserved deaths, and a stale buffered pointer
// whose record was already lapped can debit a region's current bytes
// instead (see MarkDead). Region clamping keeps the totals within
// [0, capacity] either way. The counters are accounting only — no reclaim
// yet.
type ValueLogStats struct {
	// Records is the number of records appended.
	Records uint64
	// AppendedBytes is the total record bytes appended (headers included).
	AppendedBytes uint64
	// Wraps counts how many times the append head wrapped to offset 0,
	// overwriting the oldest records (the log's FIFO eviction).
	Wraps uint64
	// BufferedBytes is the current tail-buffer occupancy.
	BufferedBytes int64

	// Capacity is the usable log capacity in bytes (summed across shards).
	Capacity int64
	// LiveBytes is the record bytes appended and not yet marked dead or
	// lapped by the circular overwrite.
	LiveBytes int64
	// DeadBytes is the record bytes marked dead (deleted or overwritten
	// while still observable) but not yet lapped.
	DeadBytes int64
	// LappedBytes is the total record bytes reclaimed by the head lapping
	// old regions.
	LappedBytes uint64
	// LappedLiveBytes is the subset of LappedBytes never marked dead — the
	// log's silent FIFO data loss.
	LappedLiveBytes uint64
}

// Occupancy returns the fraction of the log capacity holding un-lapped
// record bytes (live + dead).
func (s ValueLogStats) Occupancy() float64 {
	if s.Capacity == 0 {
		return 0
	}
	return float64(s.LiveBytes+s.DeadBytes) / float64(s.Capacity)
}

// LiveFraction returns the fraction of un-lapped record bytes still live.
func (s ValueLogStats) LiveFraction() float64 {
	if s.LiveBytes+s.DeadBytes == 0 {
		return 0
	}
	return float64(s.LiveBytes) / float64(s.LiveBytes+s.DeadBytes)
}

// Add accumulates another log's stats (sharded aggregation). BufferedBytes
// sums to the fleet-wide tail-buffer occupancy; Capacity and the space
// counters sum to the fleet-wide view, so Occupancy stays meaningful.
func (s *ValueLogStats) Add(o ValueLogStats) {
	s.Records += o.Records
	s.AppendedBytes += o.AppendedBytes
	s.Wraps += o.Wraps
	s.BufferedBytes += o.BufferedBytes
	s.Capacity += o.Capacity
	s.LiveBytes += o.LiveBytes
	s.DeadBytes += o.DeadBytes
	s.LappedBytes += o.LappedBytes
	s.LappedLiveBytes += o.LappedLiveBytes
}

// recordHeaderSize is the per-record header: uint32 key length, uint32
// value length, little-endian.
const recordHeaderSize = 8

// MaxValueRecordBytes caps one record (header + key + value) so record
// pointers stay encodable in a 64-bit value word alongside their offset
// (see core.EncodeValuePtr: 25 bits of length).
const MaxValueRecordBytes = 1<<25 - 1

// MaxValueLogBytes caps the log capacity so record offsets stay encodable
// (38 bits of offset).
const MaxValueLogBytes = int64(1) << 38

// RecordSize returns the on-log size of a (key, value) record.
func RecordSize(keyLen, valLen int) int {
	return recordHeaderSize + keyLen + valLen
}

// NewValueLog builds a log over dev, using its whole capacity. The usable
// capacity is rounded down to the page (erase-block, on erasable media)
// multiple and must hold at least eight pages.
func NewValueLog(dev Device) (*ValueLog, error) {
	g := dev.Geometry()
	align := int64(g.PageSize)
	eraser, _ := dev.(Eraser)
	if eraser != nil && g.BlockSize > 0 {
		align = int64(g.BlockSize)
	}
	capacity := g.Capacity / align * align
	if capacity > MaxValueLogBytes {
		return nil, fmt.Errorf("storage: value log capacity %d exceeds the %d pointer-encoding limit",
			capacity, MaxValueLogBytes)
	}
	if capacity < 8*int64(g.PageSize) {
		return nil, fmt.Errorf("storage: value log needs at least 8 pages, got %d bytes", capacity)
	}
	// Flush in ~64 KB sequential appends (an erase block on raw NAND);
	// smaller logs flush at a quarter of their capacity.
	flushAt := 64 << 10
	if g.BlockSize > 0 && eraser != nil {
		flushAt = g.BlockSize
	}
	flushAt -= flushAt % g.PageSize
	if int64(flushAt) > capacity/4 {
		flushAt = int(capacity/4) / g.PageSize * g.PageSize
	}
	if flushAt < g.PageSize {
		flushAt = g.PageSize
	}
	// Space accounting resolution: ~256 regions, page-aligned, at least one
	// page each.
	regionSize := (capacity/256 + int64(g.PageSize) - 1) / int64(g.PageSize) * int64(g.PageSize)
	if regionSize < int64(g.PageSize) {
		regionSize = int64(g.PageSize)
	}
	nRegions := (capacity + regionSize - 1) / regionSize
	return &ValueLog{
		dev:        dev,
		eraser:     eraser,
		pageSize:   g.PageSize,
		capacity:   capacity,
		flushAt:    flushAt,
		erasedTo:   capacity, // fresh media: nothing to erase until the first wrap
		regionSize: regionSize,
		regAlloc:   make([]int64, nRegions),
		regDead:    make([]int64, nRegions),
		regCycle:   make([]uint64, nRegions),
		cycle:      1, // regCycle starts at 0, so every region laps empty on first touch
	}, nil
}

// Capacity returns the usable log capacity in bytes.
func (l *ValueLog) Capacity() int64 { return l.capacity }

// Device returns the backing device.
func (l *ValueLog) Device() Device { return l.dev }

// Stats returns a snapshot of the log counters.
func (l *ValueLog) Stats() ValueLogStats {
	s := l.stats
	s.BufferedBytes = int64(len(l.buf))
	s.Capacity = l.capacity
	s.LiveBytes = l.allocTotal - l.deadTotal
	s.DeadBytes = l.deadTotal
	return s
}

// allocSpan charges the record bytes [off, off+n) to their regions' live
// side, lapping any region the head re-enters on a new cycle: whatever the
// region still held from the previous cycle is destroyed by the circular
// overwrite, live or not.
func (l *ValueLog) allocSpan(off int64, n int) {
	end := off + int64(n)
	for off < end {
		r := off / l.regionSize
		if l.regCycle[r] != l.cycle {
			l.stats.LappedBytes += uint64(l.regAlloc[r])
			l.stats.LappedLiveBytes += uint64(l.regAlloc[r] - l.regDead[r])
			l.allocTotal -= l.regAlloc[r]
			l.deadTotal -= l.regDead[r]
			l.regAlloc[r], l.regDead[r] = 0, 0
			l.regCycle[r] = l.cycle
		}
		span := min((r+1)*l.regionSize, end) - off
		l.regAlloc[r] += span
		l.allocTotal += span
		off += span
	}
}

// MarkDead records that the record at [off, off+n) no longer backs a live
// key (its index entry was deleted or overwritten). The accounting is
// approximate in the presence of stale pointers: a record ahead of the
// head whose region was already re-entered this cycle is provably lapped
// and skipped, but a lapped record behind the head is indistinguishable
// from a current-cycle one, so its debit lands on whatever the region now
// holds (clamped, so totals stay within [0, capacity]). Counters only;
// the space is reclaimed by the circular overwrite as usual.
func (l *ValueLog) MarkDead(off int64, n int) {
	if off < 0 || n <= 0 || off+int64(n) > l.capacity {
		return
	}
	if off >= l.head && l.regCycle[off/l.regionSize] == l.cycle {
		// A record at or past the head was appended in a previous cycle; its
		// region re-entering the current cycle means the head already lapped
		// it — the lap accounting has counted it, nothing left to debit.
		return
	}
	end := off + int64(n)
	for off < end {
		r := off / l.regionSize
		regEnd := (r + 1) * l.regionSize
		span := min(regEnd, end) - off
		// Clamp to what the region still holds: a pointer whose record was
		// already lapped must not drive the region's live count negative.
		if avail := l.regAlloc[r] - l.regDead[r]; span > avail {
			span = avail
		}
		l.regDead[r] += span
		l.deadTotal += span
		off = min(regEnd, end)
	}
}

// Append writes a (key, value) record and returns its pointer (offset and
// total length). The returned offset becomes invalid — and reads of it
// self-invalidate via key verification — once the head wraps past it.
func (l *ValueLog) Append(key, value []byte) (off int64, n int, err error) {
	off, n, err = l.appendRecord(key, value)
	if err != nil {
		return 0, 0, err
	}
	if len(l.buf) >= l.flushAt {
		if err := l.flushFullPages(); err != nil {
			return 0, 0, err
		}
	}
	return off, n, nil
}

// appendRecord stages one record in the tail buffer without triggering the
// full-page flush, so batched appends can accumulate a whole chunk and
// write its pages in one sequential submission.
func (l *ValueLog) appendRecord(key, value []byte) (off int64, n int, err error) {
	n = RecordSize(len(key), len(value))
	if int64(n) > l.capacity {
		return 0, 0, fmt.Errorf("storage: value record of %d bytes exceeds log capacity %d", n, l.capacity)
	}
	if n > MaxValueRecordBytes {
		return 0, 0, fmt.Errorf("storage: value record of %d bytes exceeds the %d record limit", n, MaxValueRecordBytes)
	}
	if l.head+int64(n) > l.capacity {
		if err := l.wrap(); err != nil {
			return 0, 0, err
		}
	}
	off = l.head
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(value)))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, key...)
	l.buf = append(l.buf, value...)
	l.head += int64(n)
	l.stats.Records++
	l.stats.AppendedBytes += uint64(n)
	l.allocSpan(off, n)
	return off, n, nil
}

// AppendBatch appends len(keys) records as one tail-buffered multi-record
// append, filling offs[i] and ns[i] with each record's pointer (both must
// have len(keys)). Record offsets, wrap points and tail-served reads are
// exactly what a loop over Append would produce; the difference is purely
// the write stream — the batch's full pages reach the device as one
// sequential submission at the end instead of one write per flushAt of
// accumulated records. On error the batch may be partially appended.
func (l *ValueLog) AppendBatch(keys, values [][]byte, offs []int64, ns []int) error {
	if len(keys) != len(values) || len(offs) != len(keys) || len(ns) != len(keys) {
		return fmt.Errorf("storage: AppendBatch length mismatch: %d keys, %d values, %d offs, %d ns",
			len(keys), len(values), len(offs), len(ns))
	}
	for i := range keys {
		off, n, err := l.appendRecord(keys[i], values[i])
		if err != nil {
			return err
		}
		offs[i], ns[i] = off, n
	}
	if len(l.buf) >= l.flushAt {
		return l.flushFullPages()
	}
	return nil
}

// flushFullPages writes the tail buffer's whole pages to the device and
// keeps the partial-page remainder buffered. bufStart stays page-aligned.
func (l *ValueLog) flushFullPages() error {
	p := len(l.buf) - len(l.buf)%l.pageSize
	if p == 0 {
		return nil
	}
	if err := l.writeBuf(p); err != nil {
		return err
	}
	rest := copy(l.buf, l.buf[p:])
	l.buf = l.buf[:rest]
	l.bufStart += int64(p)
	return nil
}

// wrap pads the tail buffer to a page boundary, writes it out, and moves
// the append head back to offset 0, beginning a new overwrite cycle.
func (l *ValueLog) wrap() error {
	if pad := (l.pageSize - len(l.buf)%l.pageSize) % l.pageSize; pad > 0 {
		l.buf = append(l.buf, make([]byte, pad)...)
	}
	if len(l.buf) > 0 {
		if err := l.writeBuf(len(l.buf)); err != nil {
			return err
		}
	}
	l.buf = l.buf[:0]
	l.head, l.bufStart = 0, 0
	l.wrapped = true
	l.erasedTo = 0
	l.cycle++
	l.stats.Wraps++
	return nil
}

// writeBuf writes buf[:p] at bufStart, erasing blocks the head re-enters
// on wrapped cycles of erasable media.
func (l *ValueLog) writeBuf(p int) error {
	if l.eraser != nil && l.wrapped {
		bs := int64(l.dev.Geometry().BlockSize)
		for l.erasedTo < l.bufStart+int64(p) {
			if _, err := l.eraser.Erase(l.erasedTo, bs); err != nil {
				return fmt.Errorf("storage: value log erase: %w", err)
			}
			l.erasedTo += bs
		}
	}
	if _, err := l.dev.WriteAt(l.buf[:p], l.bufStart); err != nil {
		return fmt.Errorf("storage: value log write: %w", err)
	}
	return nil
}

// ValueReadReq is one record read of a batched value-log fetch. Off and N
// come from the record's pointer; Rec receives the record bytes (aliasing
// log-owned scratch, valid until the next log call) or stays nil when the
// pointer no longer addresses a live record region.
type ValueReadReq struct {
	Off int64
	N   int
	Rec []byte
}

// inRange reports whether [off, off+n) can hold a record this cycle.
// Pointers past the current head on an unwrapped log were never written;
// anything else is readable (possibly overwritten — key verification
// decides).
func (l *ValueLog) inRange(off int64, n int) bool {
	if off < 0 || n < recordHeaderSize || off+int64(n) > l.capacity {
		return false
	}
	if !l.wrapped && off+int64(n) > l.head {
		return false
	}
	return true
}

// readSegments splits a log range into its buffered and device-backed
// segments: only [bufStart, head) lives in the tail buffer; everything
// else — including stale regions past the head that a wrapped-over pointer
// may still address — is read from the device, where key verification
// sorts live records from overwritten ones. Each device segment is emitted
// through emit; the buffered overlap is copied immediately.
func (l *ValueLog) readSegments(p []byte, off int64, emit func(seg []byte, segOff int64)) {
	end := off + int64(len(p))
	head := l.bufStart + int64(len(l.buf))
	if off < l.bufStart { // device bytes before the flush frontier
		devEnd := min(end, l.bufStart)
		emit(p[:devEnd-off], off)
	}
	if end > l.bufStart && off < head { // tail-buffer overlap
		lo, hi := max(off, l.bufStart), min(end, head)
		copy(p[lo-off:hi-off], l.buf[lo-l.bufStart:hi-l.bufStart])
	}
	if end > head { // stale device bytes past the head (wrapped pointers)
		devOff := max(off, head)
		emit(p[devOff-off:], devOff)
	}
}

// readSplit fills p with the log bytes at off, serving buffered bytes from
// the tail buffer and the rest with direct device reads.
func (l *ValueLog) readSplit(p []byte, off int64) error {
	var err error
	l.readSegments(p, off, func(seg []byte, segOff int64) {
		if err != nil {
			return
		}
		if _, rerr := l.dev.ReadAt(seg, segOff); rerr != nil {
			err = fmt.Errorf("storage: value log read: %w", rerr)
		}
	})
	return err
}

// ReadRecord fetches one record's bytes. ok=false means the pointer does
// not address a live record region (stale after a wrap on an unwrapped
// region, or out of range); the returned slice aliases log-owned scratch
// valid until the next log call.
func (l *ValueLog) ReadRecord(off int64, n int) (rec []byte, ok bool, err error) {
	if !l.inRange(off, n) {
		return nil, false, nil
	}
	if cap(l.scratch) < n {
		l.scratch = make([]byte, n)
	}
	rec = l.scratch[:n]
	if err := l.readSplit(rec, off); err != nil {
		return nil, false, err
	}
	return rec, true, nil
}

// ReadRecordsBatch resolves every request's record bytes. Requests whose
// device portions survive are gathered, address-sorted and issued as one
// BatchReader submission when the device supports it (falling back to a
// sorted serial loop), so a batch of record fetches pays the overlapped
// service time, not the serial sum. Buffered bytes are copied from the
// tail buffer. Rec slices alias log-owned scratch valid until the next
// log call; out-of-range requests leave Rec nil.
func (l *ValueLog) ReadRecordsBatch(reqs []ValueReadReq) error {
	total := 0
	for i := range reqs {
		reqs[i].Rec = nil
		if l.inRange(reqs[i].Off, reqs[i].N) {
			total += reqs[i].N
		}
	}
	if total == 0 {
		return nil
	}
	if cap(l.scratch) < total {
		l.scratch = make([]byte, total)
	}
	arena := l.scratch[:0]
	l.reqs = l.reqs[:0]
	for i := range reqs {
		r := &reqs[i]
		if !l.inRange(r.Off, r.N) {
			continue
		}
		rec := arena[len(arena) : len(arena)+r.N]
		arena = arena[:len(arena)+r.N]
		r.Rec = rec
		// Device segments become batched read requests; the tail-buffer
		// overlap is copied immediately.
		l.readSegments(rec, r.Off, func(seg []byte, segOff int64) {
			l.reqs = append(l.reqs, ReadReq{P: seg, Off: segOff})
		})
	}
	if len(l.reqs) == 0 {
		return nil
	}
	var err error
	if br, ok := l.dev.(BatchReader); ok {
		_, err = br.ReadBatch(l.reqs)
	} else {
		_, err = ReadBatchFallback(l.dev, l.reqs)
	}
	if err != nil {
		return fmt.Errorf("storage: value log batched read: %w", err)
	}
	return nil
}

// VerifyRecord parses rec as a (key, value) record and returns the value
// bytes — aliasing rec — iff the stored key matches key exactly and the
// lengths are consistent with the record size. A mismatch means the
// fingerprint collided or the record was overwritten after a wrap; both
// read as a miss.
func VerifyRecord(rec, key []byte) (value []byte, ok bool) {
	if len(rec) < recordHeaderSize {
		return nil, false
	}
	kl := int(binary.LittleEndian.Uint32(rec[0:4]))
	vl := int(binary.LittleEndian.Uint32(rec[4:8]))
	if kl != len(key) || kl < 0 || vl < 0 || RecordSize(kl, vl) != len(rec) {
		return nil, false
	}
	if string(rec[recordHeaderSize:recordHeaderSize+kl]) != string(key) {
		return nil, false
	}
	return rec[recordHeaderSize+kl:], true
}
