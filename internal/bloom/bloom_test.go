package bloom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hashutil"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1<<16, 4)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %#x", k)
		}
	}
}

func TestNoFalseNegativesQuick(t *testing.T) {
	f := New(1<<12, 5)
	property := func(keys []uint64) bool {
		f.Reset()
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateMatchesTheory(t *testing.T) {
	// 16 bits/key with optimal h=11 gives fp ≈ 0.00046; measure it.
	const n = 4096
	m := uint64(16 * n)
	h := OptimalHashes(m, n)
	f := New(m, h)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		f.Add(rng.Uint64())
	}
	const probes = 200000
	fp := 0
	for i := 0; i < probes; i++ {
		if f.MayContain(rng.Uint64()) {
			fp++
		}
	}
	got := float64(fp) / probes
	want := FalsePositiveRate(m, n, h)
	t.Logf("measured fp = %.6f, theory = %.6f (h=%d)", got, want, h)
	if got > 5*want+0.001 {
		t.Errorf("measured fp %.6f far above theoretical %.6f", got, want)
	}
}

func TestOptimalHashes(t *testing.T) {
	// m/n = 16 bits/key -> h = 16·ln2 ≈ 11.
	if h := OptimalHashes(16*4096, 4096); h != 11 {
		t.Fatalf("OptimalHashes = %d, want 11", h)
	}
	if h := OptimalHashes(100, 0); h != 1 {
		t.Fatalf("OptimalHashes with n=0 = %d, want 1", h)
	}
	if h := OptimalHashes(1, 1000000); h != 1 {
		t.Fatalf("OptimalHashes should clamp to 1, got %d", h)
	}
}

func TestFalsePositiveRateFormula(t *testing.T) {
	// (1/2)^h when m/n = h/ln2 (the paper's p = (1/2)^h, §6.2).
	n := 1000
	h := 7
	m := uint64(math.Round(float64(h) * float64(n) / math.Ln2))
	got := FalsePositiveRate(m, n, h)
	want := math.Pow(0.5, float64(h))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("fp rate = %g, want ≈ %g", got, want)
	}
	if FalsePositiveRate(0, 10, 2) != 0 || FalsePositiveRate(100, 0, 2) != 0 {
		t.Fatal("degenerate cases should be 0")
	}
}

func TestReset(t *testing.T) {
	f := New(1024, 3)
	f.Add(42)
	if f.Count() != 1 {
		t.Fatalf("Count = %d", f.Count())
	}
	f.Reset()
	if f.Count() != 0 {
		t.Fatal("Count not reset")
	}
	if f.MayContain(42) {
		t.Fatal("filter not cleared")
	}
}

func TestSizeRounding(t *testing.T) {
	f := New(100, 2) // rounds to 128
	if f.Bits() != 128 {
		t.Fatalf("Bits = %d, want 128", f.Bits())
	}
	if f.Hashes() != 2 {
		t.Fatalf("Hashes = %d", f.Hashes())
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 1) },
		func() { New(64, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEstimatedFPRateGrowsWithFill(t *testing.T) {
	f := New(1024, 4)
	prev := f.EstimatedFPRate()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		f.Add(rng.Uint64())
		cur := f.EstimatedFPRate()
		if cur < prev {
			t.Fatal("estimated fp rate decreased with fill")
		}
		prev = cur
	}
}

func TestDistinctKeysHashDistinctly(t *testing.T) {
	// Guard against a degenerate interaction with hashutil.Mix64: two
	// sequential keys should not probe identical positions.
	f := New(1<<14, 8)
	f.Add(hashutil.Mix64(1))
	if f.MayContain(hashutil.Mix64(2)) {
		t.Skip("coincidental collision (acceptable at fp rate)")
	}
}

// mayContainMod is the pre-fastrange probe loop, the baseline for
// BenchmarkMayContain* (the filters probe identical bit patterns only for
// power-of-two m, where Reduce degenerates to the same mask).
func (f *Filter) mayContainMod(keyHash uint64) bool {
	h1 := keyHash
	h2 := hashutil.Mix64(keyHash) | 1
	for i := 0; i < f.h; i++ {
		p := h1 % f.m
		if f.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
		h1 += h2
	}
	return true
}

func benchFilter(m uint64) *Filter {
	f := New(m, 8)
	for i := uint64(0); i < 4096; i++ {
		f.Add(hashutil.Mix64(i))
	}
	return f
}

func BenchmarkMayContain(b *testing.B) {
	f := benchFilter(65600) // non-power-of-two: fastrange path
	var hits int
	for i := 0; i < b.N; i++ {
		if f.MayContain(hashutil.Mix64(uint64(i))) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkMayContainMod(b *testing.B) {
	f := benchFilter(65600)
	var hits int
	for i := 0; i < b.N; i++ {
		if f.mayContainMod(hashutil.Mix64(uint64(i))) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkMayContainPow2(b *testing.B) {
	f := benchFilter(1 << 16) // mask path
	var hits int
	for i := 0; i < b.N; i++ {
		if f.MayContain(hashutil.Mix64(uint64(i))) {
			hits++
		}
	}
	_ = hits
}
