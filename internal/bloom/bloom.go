// Package bloom implements the Bloom filters BufferHash keeps in DRAM, one
// per in-flash incarnation (§5.1). Keys are pre-hashed 64-bit values; the h
// probe positions are derived with the Kirsch–Mitzenmacher double-hashing
// construction, which preserves the asymptotic false-positive rate of h
// independent functions.
//
// The package also exposes the sizing math used by §6.2/§6.4: the optimal
// hash count h = (m/n)·ln2 and the resulting false-positive rate (1/2)^h.
package bloom

import (
	"math"

	"repro/internal/hashutil"
)

// Filter is a Bloom filter over pre-hashed 64-bit keys. The zero value is
// not usable; call New.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	h    int    // number of hash functions
	n    int    // number of keys added
}

// New returns a filter with m bits and h hash functions. m is rounded up to
// a multiple of 64; m and h must be positive.
func New(m uint64, h int) *Filter {
	if m == 0 || h <= 0 {
		panic("bloom: non-positive filter parameters")
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, h: h}
}

// OptimalHashes returns the false-positive-minimizing hash count
// h = (m/n)·ln2 for m bits and n keys, at least 1 (§6.2).
func OptimalHashes(m uint64, n int) int {
	if n <= 0 {
		return 1
	}
	h := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if h < 1 {
		h = 1
	}
	return h
}

// FalsePositiveRate returns the standard approximation
// (1 - e^(-hn/m))^h for a filter with m bits, n keys and h hashes.
func FalsePositiveRate(m uint64, n, h int) float64 {
	if m == 0 || n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(h)*float64(n)/float64(m)), float64(h))
}

// Add inserts a pre-hashed key. Probe positions use hashutil.Reduce
// (mask/fastrange) instead of a 64-bit division, matching MayContain.
func (f *Filter) Add(keyHash uint64) {
	h1 := keyHash
	h2 := hashutil.Mix64(keyHash) | 1
	for i := 0; i < f.h; i++ {
		p := hashutil.Reduce(h1, f.m)
		f.bits[p/64] |= 1 << (p % 64)
		h1 += h2
	}
	f.n++
}

// MayContain reports whether the key may have been added. False positives
// occur with probability ≈ FalsePositiveRate; false negatives never.
func (f *Filter) MayContain(keyHash uint64) bool {
	h1 := keyHash
	h2 := hashutil.Mix64(keyHash) | 1
	for i := 0; i < f.h; i++ {
		p := hashutil.Reduce(h1, f.m)
		if f.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
		h1 += h2
	}
	return true
}

// Reset clears the filter for reuse.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Count returns the number of keys added since the last Reset.
func (f *Filter) Count() int { return f.n }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() int { return f.h }

// EstimatedFPRate returns the expected false-positive rate at the current
// fill.
func (f *Filter) EstimatedFPRate() float64 {
	return FalsePositiveRate(f.m, f.n, f.h)
}
