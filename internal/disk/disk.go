// Package disk models a magnetic hard disk (a Hitachi Deskstar 7K80-class
// drive, the paper's BH+Disk / DB+Disk configuration in §7) with the classic
// mechanical latency decomposition:
//
//	service = seek(distance) + rotational delay + transfer
//
// Seek time grows with the square root of the seek distance between a
// track-to-track minimum and a full-stroke maximum; rotational delay is
// drawn deterministically (seeded) from [0, rotation period); sequential
// accesses that continue where the previous operation ended skip both seek
// and rotation (track-buffer streaming).
//
// Calibration targets from the paper: ~7 ms average random 4 KB access
// (Berkeley-DB on disk: 6.8 ms lookups, 7 ms inserts), worst case ~12 ms
// (BufferHash-on-disk worst-case insert), and cheap sequential streaming
// (BufferHash's flushes amortize to microseconds per entry even on disk).
package disk

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// Profile holds the mechanical parameters of a disk model.
type Profile struct {
	Name           string
	SectorSize     int
	TrackToTrack   time.Duration // minimum seek between adjacent tracks
	MaxSeekExtra   time.Duration // full-stroke seek = TrackToTrack + MaxSeekExtra
	RotationPeriod time.Duration // one platter revolution (8.33 ms at 7200 rpm)
	TransferRate   float64       // sustained media rate, bytes per second
	FixedOverhead  time.Duration // controller/command overhead per op
}

// Hitachi7K80 returns the calibrated 7200-rpm profile used throughout the
// evaluation.
func Hitachi7K80() Profile {
	return Profile{
		Name:           "hitachi-7k80",
		SectorSize:     4096,
		TrackToTrack:   800 * time.Microsecond,
		MaxSeekExtra:   4200 * time.Microsecond,
		RotationPeriod: 8333 * time.Microsecond,
		TransferRate:   55e6,
		FixedOverhead:  100 * time.Microsecond,
	}
}

// Disk is a simulated magnetic disk. It implements storage.Device. Not safe
// for concurrent use.
type Disk struct {
	prof     Profile
	capacity int64
	clock    *vclock.Clock
	store    *storage.SparseStore
	counters storage.Counters
	fault    storage.FaultFunc
	lastEnd  int64 // byte position where the previous op finished (-1 initially)
	rng      *rand.Rand
}

// New builds a disk of the given capacity (rounded up to whole sectors).
// The rotational-delay stream is seeded deterministically so simulations
// are reproducible.
func New(prof Profile, capacity int64, clock *vclock.Clock) *Disk {
	if capacity <= 0 {
		panic("disk: non-positive capacity")
	}
	ss := int64(prof.SectorSize)
	if capacity%ss != 0 {
		capacity += ss - capacity%ss
	}
	return &Disk{
		prof:     prof,
		capacity: capacity,
		clock:    clock,
		store:    storage.NewSparseStore(prof.SectorSize, 0),
		lastEnd:  -1,
		rng:      rand.New(rand.NewSource(0x715ac)),
	}
}

// SetFault installs a fault-injection hook (nil clears it).
func (d *Disk) SetFault(f storage.FaultFunc) { d.fault = f }

// Geometry implements storage.Device. BlockSize is 0: disks have no erase
// constraint.
func (d *Disk) Geometry() storage.Geometry {
	return storage.Geometry{Capacity: d.capacity, PageSize: d.prof.SectorSize, BlockSize: 0}
}

// Counters implements storage.Device.
func (d *Disk) Counters() storage.Counters { return d.counters }

// service computes the mechanical latency for an access of n bytes at off.
func (d *Disk) service(off, n int64) time.Duration {
	lat := d.prof.FixedOverhead
	if off != d.lastEnd {
		// Seek distance as a fraction of the full stroke.
		var dist int64
		if d.lastEnd < 0 {
			dist = off
		} else {
			dist = off - d.lastEnd
			if dist < 0 {
				dist = -dist
			}
		}
		frac := float64(dist) / float64(d.capacity)
		lat += d.prof.TrackToTrack + time.Duration(float64(d.prof.MaxSeekExtra)*math.Sqrt(frac))
		lat += time.Duration(d.rng.Int63n(int64(d.prof.RotationPeriod)))
	}
	lat += time.Duration(float64(n) / d.prof.TransferRate * float64(time.Second))
	return lat
}

func (d *Disk) access(op storage.Op, p []byte, off int64) (time.Duration, error) {
	if err := storage.CheckRange(d.Geometry(), off, int64(len(p)), 1); err != nil {
		return 0, err
	}
	if d.fault != nil {
		if err := d.fault(op, off, len(p)); err != nil {
			return 0, err
		}
	}
	lat := d.service(off, int64(len(p)))
	d.lastEnd = off + int64(len(p))
	d.counters.BusyTime += lat
	d.clock.Advance(lat)
	return lat, nil
}

// ReadAt implements storage.Device. Reads may start at any byte offset.
func (d *Disk) ReadAt(p []byte, off int64) (time.Duration, error) {
	lat, err := d.access(storage.OpRead, p, off)
	if err != nil {
		return 0, err
	}
	d.store.ReadAt(p, off)
	d.counters.Reads++
	d.counters.BytesRead += uint64(len(p))
	return lat, nil
}

// WriteAt implements storage.Device. Writes may start at any byte offset.
func (d *Disk) WriteAt(p []byte, off int64) (time.Duration, error) {
	lat, err := d.access(storage.OpWrite, p, off)
	if err != nil {
		return 0, err
	}
	d.store.WriteAt(p, off)
	d.counters.Writes++
	d.counters.BytesWritten += uint64(len(p))
	return lat, nil
}

// ReadBatch implements storage.BatchReader. A disk has one actuator — one
// queue lane — so batched reads cannot overlap; the whole win is command
// queuing: the batch is served in ascending address order (an elevator
// pass), so the expensive random component (seek + rotational delay) is
// paid once per discontiguous run instead of once per request, and
// same-track neighbors stream from the track buffer. The clock advances
// once by the pass total.
func (d *Disk) ReadBatch(reqs []storage.ReadReq) (time.Duration, error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	g := d.Geometry()
	for _, r := range reqs {
		if err := storage.CheckRange(g, r.Off, int64(len(r.P)), 1); err != nil {
			return 0, err
		}
		if d.fault != nil {
			if err := d.fault(storage.OpRead, r.Off, len(r.P)); err != nil {
				return 0, err
			}
		}
	}
	storage.SortReadReqs(reqs)
	var total time.Duration
	for _, r := range reqs {
		// service() already models sequential continuation via lastEnd:
		// within the sorted pass, runs skip seek and rotation.
		total += d.service(r.Off, int64(len(r.P)))
		d.lastEnd = r.Off + int64(len(r.P))
		d.store.ReadAt(r.P, r.Off)
		d.counters.Reads++
		d.counters.BytesRead += uint64(len(r.P))
	}
	d.counters.BusyTime += total
	d.clock.Advance(total)
	return total, nil
}

// WriteBatch implements storage.BatchWriter the same way ReadBatch
// implements BatchReader: one actuator means no overlap, so the whole win
// is the elevator pass — ascending address order pays the random component
// (seek + rotational delay) once per discontiguous run, and contiguous
// requests stream at media rate. The clock advances once by the pass total.
func (d *Disk) WriteBatch(reqs []storage.WriteReq) (time.Duration, error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	g := d.Geometry()
	for _, r := range reqs {
		if err := storage.CheckRange(g, r.Off, int64(len(r.P)), 1); err != nil {
			return 0, err
		}
		if d.fault != nil {
			if err := d.fault(storage.OpWrite, r.Off, len(r.P)); err != nil {
				return 0, err
			}
		}
	}
	storage.SortWriteReqs(reqs)
	var total time.Duration
	for _, r := range reqs {
		total += d.service(r.Off, int64(len(r.P)))
		d.lastEnd = r.Off + int64(len(r.P))
		d.store.WriteAt(r.P, r.Off)
		d.counters.Writes++
		d.counters.BytesWritten += uint64(len(r.P))
	}
	d.counters.BusyTime += total
	d.clock.Advance(total)
	return total, nil
}

var (
	_ storage.Device      = (*Disk)(nil)
	_ storage.BatchReader = (*Disk)(nil)
	_ storage.BatchWriter = (*Disk)(nil)
)
