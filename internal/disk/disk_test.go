package disk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/vclock"
)

func newDisk(capacity int64) (*Disk, *vclock.Clock) {
	clock := vclock.New()
	return New(Hitachi7K80(), capacity, clock), clock
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func TestRoundTrip(t *testing.T) {
	d, _ := newDisk(1 << 20)
	data := []byte("spinning rust")
	if _, err := d.WriteAt(data, 12345); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 12345); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestGeometry(t *testing.T) {
	d, _ := newDisk(1000) // rounds up to one sector
	g := d.Geometry()
	if g.Capacity != 4096 || g.PageSize != 4096 || g.BlockSize != 0 {
		t.Fatalf("geometry = %+v", g)
	}
}

func TestOutOfRange(t *testing.T) {
	d, _ := newDisk(1 << 20)
	if _, err := d.ReadAt(make([]byte, 10), 1<<20); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestRandomAccessLatencyCalibration(t *testing.T) {
	// Target: ~7 ms average random 4 KB access (paper's DB+Disk numbers),
	// worst case ≈ 13 ms.
	d, _ := newDisk(256 << 20)
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 4096)
	var total, worst time.Duration
	const ops = 2000
	for i := 0; i < ops; i++ {
		off := rng.Int63n(256<<20/4096) * 4096
		lat, err := d.ReadAt(buf, off)
		if err != nil {
			t.Fatal(err)
		}
		total += lat
		if lat > worst {
			worst = lat
		}
	}
	mean := ms(total / ops)
	t.Logf("random 4KB reads: mean %.2f ms, worst %.2f ms", mean, ms(worst))
	if mean < 4 || mean > 10 {
		t.Errorf("mean random access = %.2f ms, want ≈7", mean)
	}
	if ms(worst) > 16 {
		t.Errorf("worst random access = %.2f ms, want ≲13", ms(worst))
	}
}

func TestSequentialIsCheap(t *testing.T) {
	d, _ := newDisk(64 << 20)
	buf := make([]byte, 128<<10)
	first, _ := d.WriteAt(buf, 0)
	// Subsequent sequential writes skip seek and rotation.
	var total time.Duration
	const n = 50
	for i := 1; i <= n; i++ {
		lat, err := d.WriteAt(buf, int64(i)*int64(len(buf)))
		if err != nil {
			t.Fatal(err)
		}
		total += lat
	}
	seqMean := total / n
	t.Logf("first (seek) %.2f ms, sequential mean %.2f ms", ms(first), ms(seqMean))
	// 128 KB at 55 MB/s ≈ 2.4 ms of pure transfer.
	if seqMean > 4*time.Millisecond {
		t.Errorf("sequential 128KB write mean %.2f ms, want ≈2.5 (transfer only)", ms(seqMean))
	}
	if seqMean >= first {
		t.Error("sequential write not cheaper than seeking write")
	}
}

func TestSeekDistanceMatters(t *testing.T) {
	d, _ := newDisk(1 << 30)
	buf := make([]byte, 4096)
	// Average over rotation jitter: near seeks must beat far seeks.
	var near, far time.Duration
	const reps = 200
	for i := 0; i < reps; i++ {
		d.ReadAt(buf, 0)
		lat, _ := d.ReadAt(buf, 8192) // short hop
		near += lat
		d.ReadAt(buf, 0)
		lat, _ = d.ReadAt(buf, 1<<30-4096) // full stroke
		far += lat
	}
	if near >= far {
		t.Errorf("near seeks (%v) not cheaper than far seeks (%v)", near/reps, far/reps)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Two identical disks must produce identical latency sequences.
	run := func() []time.Duration {
		d, _ := newDisk(64 << 20)
		rng := rand.New(rand.NewSource(9))
		buf := make([]byte, 4096)
		var lats []time.Duration
		for i := 0; i < 100; i++ {
			lat, _ := d.ReadAt(buf, rng.Int63n(64<<20/4096)*4096)
			lats = append(lats, lat)
		}
		return lats
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency sequence diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClockAdvances(t *testing.T) {
	d, clock := newDisk(1 << 20)
	lat, _ := d.WriteAt(make([]byte, 4096), 0)
	if clock.Now() != lat {
		t.Fatalf("clock = %v, want %v", clock.Now(), lat)
	}
}

func TestFaultInjection(t *testing.T) {
	d, _ := newDisk(1 << 20)
	boom := errors.New("boom")
	d.SetFault(func(op storage.Op, off int64, n int) error {
		if op == storage.OpRead {
			return boom
		}
		return nil
	})
	if _, err := d.ReadAt(make([]byte, 10), 0); !errors.Is(err, boom) {
		t.Fatal("fault not injected")
	}
	if _, err := d.WriteAt(make([]byte, 10), 0); err != nil {
		t.Fatalf("write should pass: %v", err)
	}
}

func TestCounters(t *testing.T) {
	d, _ := newDisk(1 << 20)
	d.WriteAt(make([]byte, 100), 0)
	d.ReadAt(make([]byte, 50), 0)
	c := d.Counters()
	if c.Writes != 1 || c.Reads != 1 || c.BytesWritten != 100 || c.BytesRead != 50 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestReadBatchElevatorBeatsRandomSerial(t *testing.T) {
	d, clock := newDisk(64 << 20)
	rng := rand.New(rand.NewSource(99))
	const n = 32
	offs := make([]int64, n)
	for i := range offs {
		offs[i] = rng.Int63n(64<<20 - 4096)
		if _, err := d.WriteAt([]byte{byte(i + 1)}, offs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Serial baseline in random order on a twin disk.
	d2, _ := newDisk(64 << 20)
	var serial time.Duration
	for _, o := range offs {
		lat, err := d2.ReadAt(make([]byte, 1), o)
		if err != nil {
			t.Fatal(err)
		}
		serial += lat
	}
	reqs := make([]storage.ReadReq, n)
	for i, o := range offs {
		reqs[i] = storage.ReadReq{P: make([]byte, 1), Off: o}
	}
	before := clock.Now()
	batch, err := d.ReadBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now()-before != batch {
		t.Fatal("clock advance != charged batch latency")
	}
	// The elevator pass pays shorter seeks; random serial pays near-average
	// seeks plus rotation per request. Expect a solid win.
	if batch >= serial*3/4 {
		t.Fatalf("elevator batch %v, random serial %v: expected <3/4", batch, serial)
	}
	for _, r := range reqs {
		found := false
		for i, o := range offs {
			if o == r.Off && r.P[0] == byte(i+1) {
				found = true
			}
		}
		if !found {
			t.Fatalf("bad data at off %d: %d", r.Off, r.P[0])
		}
	}
}
