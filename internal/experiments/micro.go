package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bdb"
	"repro/internal/convhash"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/hashutil"
	"repro/internal/metrics"
	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// measured aggregates one microbenchmark run.
type measured struct {
	insert metrics.Histogram
	lookup metrics.Histogram
	// lookupByIO groups lookup latencies by flash reads (Table 2).
	lookupByIO [4]metrics.Histogram
	hits       uint64
	lookups    uint64
	stats      core.Stats
}

func (m *measured) hitRate() float64 {
	if m.lookups == 0 {
		return 0
	}
	return float64(m.hits) / float64(m.lookups)
}

// runCore drives a BufferHash with the paper's lookup-then-insert workload
// (§7.2): warm-up fills the structure to steady state, then `ops` rounds
// are measured. lookupFrac controls the Table 3 operation mix; 0.5 gives
// the canonical interleaved workload.
func runCore(bh *core.BufferHash, clock *vclock.Clock, keyRange uint64, warm, ops int, lookupFrac float64) (*measured, error) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < warm; i++ {
		k := uint64(rng.Int63n(int64(keyRange))) + 1
		if err := bh.Insert(k, uint64(i)); err != nil {
			return nil, err
		}
	}
	bh.ResetStats()
	m := &measured{}
	val := uint64(warm)
	for i := 0; i < ops; i++ {
		k := uint64(rng.Int63n(int64(keyRange))) + 1
		if rng.Float64() < lookupFrac {
			w := clock.StartWatch()
			res, err := bh.Lookup(k)
			if err != nil {
				return nil, err
			}
			lat := w.Elapsed()
			m.lookup.Observe(lat)
			io := res.FlashReads
			if io >= len(m.lookupByIO) {
				io = len(m.lookupByIO) - 1
			}
			m.lookupByIO[io].Observe(lat)
			m.lookups++
			if res.Found {
				m.hits++
			}
		} else {
			val++
			w := clock.StartWatch()
			if err := bh.Insert(k, val); err != nil {
				return nil, err
			}
			m.insert.Observe(w.Elapsed())
		}
	}
	m.stats = bh.Stats()
	return m, nil
}

// newCoreOn builds the paper-shaped BufferHash on a device profile.
func newCoreOn(sc Scale, prof ssd.Profile) (*core.BufferHash, *vclock.Clock, error) {
	clock := vclock.New()
	dev := ssd.New(prof, int64(sc.FlashMB)<<20, clock)
	cfg := clamConfig(sc, dev, clock)
	bh, err := core.New(cfg)
	return bh, clock, err
}

// newCoreOnDisk builds BufferHash on the magnetic disk (BH+Disk).
func newCoreOnDisk(sc Scale) (*core.BufferHash, *vclock.Clock, error) {
	clock := vclock.New()
	dev := disk.New(disk.Hitachi7K80(), int64(sc.FlashMB)<<20, clock)
	cfg := clamConfig(sc, nil, clock)
	cfg.Device = dev
	bh, err := core.New(cfg)
	return bh, clock, err
}

// Fig5 regenerates Figure 5: spurious (Bloom false positive) lookup rate
// versus the memory allocated to buffers under a fixed total memory budget.
// With the implementation's k ≤ 64 bound, the sweep covers the rising
// branch above the analytic optimum B_opt; the falling branch (too little
// buffer, k beyond 64) is covered analytically by Fig 3/TuningTable.
func Fig5(sc Scale) (Report, error) {
	r := Report{
		ID:    "fig5",
		Title: "Spurious lookup rate vs buffer memory (fixed DRAM budget)",
		PaperClaim: "optimum ≈1e-4 near B_opt (256MB at paper scale); rate climbs to " +
			"~0.01-0.2 as buffers squeeze out Bloom filters",
	}
	flash := int64(sc.FlashMB) << 20
	mem := flash / 12 // tight budget so the tradeoff is visible
	flashEntries := flash / 32
	const bufBytes = 32 << 10
	fills := int(flashEntries) + int(flashEntries)/4
	r.addRow("%12s %14s %12s", "buffers(KB)", "bloom bits/ent", "spurious")
	for nt := flash / (64 * bufBytes); nt*bufBytes <= mem; nt *= 2 {
		bits := uint(0)
		for 1<<(bits+1) <= nt {
			bits++
		}
		nt = 1 << bits
		bloomBytes := mem - nt*bufBytes
		if bloomBytes <= 0 {
			break
		}
		fbe := int(bloomBytes * 8 / flashEntries)
		if fbe < 1 {
			fbe = 1
		}
		clock := vclock.New()
		dev := ssd.New(ssd.IntelX18M(), flash, clock)
		cfg := core.Config{
			Device: dev, Clock: clock,
			PartitionBits:      bits,
			BufferBytes:        bufBytes,
			NumIncarnations:    int(flash / (nt * bufBytes)),
			FilterBitsPerEntry: fbe,
			Seed:               1,
		}
		bh, err := core.New(cfg)
		if err != nil {
			return r, err
		}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < fills; i++ {
			if err := bh.Insert(rng.Uint64()|1, 1); err != nil {
				return r, err
			}
		}
		bh.ResetStats()
		// All-miss probes: every flash read is spurious.
		probes := sc.Ops
		for i := 0; i < probes; i++ {
			if _, err := bh.Lookup(uint64(i) + (1 << 61)); err != nil {
				return r, err
			}
		}
		st := bh.Stats()
		rate := float64(st.FlashProbes) / float64(st.Lookups)
		r.addRow("%12d %14d %12.5f", nt*bufBytes>>10, fbe, rate)
		r.metric(fmt.Sprintf("spurious_at_%dKB", nt*bufBytes>>10), rate)
	}
	return r, nil
}

// Table2 regenerates Table 2: the distribution of flash I/Os per lookup at
// 0% and 40% LSR, with per-I/O-count latencies on the Intel SSD.
func Table2(sc Scale) (Report, error) {
	r := Report{
		ID:    "table2",
		Title: "Flash I/Os per lookup (0% and 40% LSR) and latency by I/O count",
		PaperClaim: "P[0 io]=0.99/0.60, P[1 io]=0.009/0.39 at 0%/40% LSR; " +
			">99% of lookups need at most one flash read; 1 io ≈ 0.31ms on Intel",
	}
	var dists [2][4]float64
	var lats [4]time.Duration
	for i, lsr := range []float64{0, 0.4} {
		bh, clock, err := newCoreOn(sc, ssd.IntelX18M())
		if err != nil {
			return r, err
		}
		m, err := runCore(bh, clock, lsrKeyRange(sc, lsr), warmCount(sc), sc.Ops, 0.5)
		if err != nil {
			return r, err
		}
		total := float64(m.lookups)
		for io := 0; io < 4; io++ {
			dists[i][io] = float64(m.lookupByIO[io].Count()) / total
			if i == 1 && m.lookupByIO[io].Count() > 0 {
				lats[io] = m.lookupByIO[io].Mean()
			}
		}
		if i == 1 {
			r.metric("lsr", m.hitRate())
			r.metric("p_le1_io", dists[1][0]+dists[1][1])
		}
	}
	r.addRow("%6s %12s %12s %14s", "#io", "P(0% LSR)", "P(40% LSR)", "latency(ms)")
	for io := 0; io < 4; io++ {
		label := fmt.Sprintf("%d", io)
		if io == 3 {
			label = "3+"
		}
		r.addRow("%6s %12.5f %12.5f %14.3f", label, dists[0][io], dists[1][io], ms(lats[io]))
	}
	return r, nil
}

// deviceRun is one Fig6/Fig7 curve.
type deviceRun struct {
	name   string
	insert metrics.Summary
	lookup metrics.Summary
	insCDF []metrics.Point
	lokCDF []metrics.Point
}

// Fig6 regenerates Figure 6: lookup and insert latency CDFs for BufferHash
// on the Intel SSD, the Transcend SSD, and the magnetic disk, at 40% LSR.
func Fig6(sc Scale) (Report, error) {
	r := Report{
		ID:    "fig6",
		Title: "CLAM latency CDFs: BH+SSD(Intel), BH+SSD(Transcend), BH+Disk @ 40% LSR",
		PaperClaim: "avg insert 0.006/0.007ms, avg lookup ~0.06ms Intel; ~62% of lookups " +
			"<0.02ms (memory); BH+Disk lookups an order of magnitude worse (0.1-12ms)",
	}
	runs := []struct {
		name  string
		build func() (*core.BufferHash, *vclock.Clock, error)
	}{
		{"bh+intel", func() (*core.BufferHash, *vclock.Clock, error) { return newCoreOn(sc, ssd.IntelX18M()) }},
		{"bh+transcend", func() (*core.BufferHash, *vclock.Clock, error) { return newCoreOn(sc, ssd.TranscendTS32()) }},
		{"bh+disk", func() (*core.BufferHash, *vclock.Clock, error) { return newCoreOnDisk(sc) }},
	}
	for _, run := range runs {
		bh, clock, err := run.build()
		if err != nil {
			return r, err
		}
		m, err := runCore(bh, clock, lsrKeyRange(sc, 0.4), warmCount(sc), sc.Ops, 0.5)
		if err != nil {
			return r, err
		}
		ins, lok := m.insert.Summarize(), m.lookup.Summarize()
		r.addRow("%-14s insert: mean %.4fms p99 %.3fms max %.3fms | lookup: mean %.4fms p50 %.4fms p99 %.3fms max %.3fms (lsr %.2f)",
			run.name, ms(ins.Mean), ms(ins.P99), ms(ins.Max),
			ms(lok.Mean), ms(lok.P50), ms(lok.P99), ms(lok.Max), m.hitRate())
		r.metric(run.name+"_insert_mean_ms", ms(ins.Mean))
		r.metric(run.name+"_lookup_mean_ms", ms(lok.Mean))
		r.addRow("  lookup CDF: %s", cdfRow(m.lookup.CDF()))
		r.addRow("  insert CDF: %s", cdfRow(m.insert.CDF()))
	}
	return r, nil
}

// Fig7 regenerates Figure 7: Berkeley-DB latency CDFs on the Intel SSD and
// the magnetic disk, same workload as Figure 6.
func Fig7(sc Scale) (Report, error) {
	r := Report{
		ID:    "fig7",
		Title: "Berkeley-DB latency CDFs: DB+SSD(Intel), DB+Disk @ 40% LSR",
		PaperClaim: "DB+Disk: 6.8/7ms avg; DB+SSD(Intel) surprisingly also slow " +
			"(4.6/4.8ms) because sustained random writes exhaust the FTL's erased blocks",
	}
	// As in the paper, the BDB table occupies (nearly) the whole device —
	// a 32 GB table on a 32 GB SSD — so sustained random writes exhaust
	// the FTL's spare blocks. The table must also dwarf both the page
	// cache (paper ratio ≈3%) and the device's minimum spare-block pool,
	// hence the floor on the warm-up count.
	warm := sc.Ops * 5
	if warm < 600000 {
		warm = 600000
	}
	capacity := int64(warm)
	for _, devName := range []string{"db+intel", "db+disk"} {
		clock := vclock.New()
		devBytes := bdbDeviceBytes(capacity)
		var dev storage.Device
		if devName == "db+intel" {
			dev = ssd.New(ssd.IntelX18M(), devBytes, clock)
		} else {
			dev = disk.New(disk.Hitachi7K80(), devBytes, clock)
		}
		idx, err := bdb.NewHashIndex(bdb.Options{
			Device:          dev,
			CapacityEntries: capacity,
			CachePages:      bdbCachePages(capacity),
			Seed:            2,
		})
		if err != nil {
			return r, err
		}
		rng := rand.New(rand.NewSource(23))
		keyRange := populationKeyRange(warm, 0.4)
		for i := 0; i < warm; i++ {
			if err := idx.Insert(uint64(rng.Int63n(int64(keyRange)))+1, 1); err != nil {
				return r, err
			}
		}
		var ins, lok metrics.Histogram
		hits := 0
		for i := 0; i < sc.Ops/4; i++ {
			k := uint64(rng.Int63n(int64(keyRange))) + 1
			w := clock.StartWatch()
			_, found, err := idx.Lookup(k)
			if err != nil {
				return r, err
			}
			lok.Observe(w.Elapsed())
			if found {
				hits++
			}
			w = clock.StartWatch()
			if err := idx.Insert(k, uint64(i)); err != nil {
				return r, err
			}
			ins.Observe(w.Elapsed())
		}
		is, ls := ins.Summarize(), lok.Summarize()
		r.addRow("%-10s insert: mean %.3fms p99 %.3fms | lookup: mean %.3fms p99 %.3fms (lsr %.2f)",
			devName, ms(is.Mean), ms(is.P99), ms(ls.Mean), ms(ls.P99),
			float64(hits)/float64(lok.Count()))
		r.metric(devName+"_insert_mean_ms", ms(is.Mean))
		r.metric(devName+"_lookup_mean_ms", ms(ls.Mean))
		r.addRow("  lookup CDF: %s", cdfRow(lok.CDF()))
		r.addRow("  insert CDF: %s", cdfRow(ins.CDF()))
	}
	return r, nil
}

// bdbDeviceBytes sizes a device so the BDB index fills ~97% of it, as the
// paper's 32 GB table on a 32 GB SSD; the remainder absorbs overflow pages.
func bdbDeviceBytes(capacityEntries int64) int64 {
	bucketPages := capacityEntries*10/7/255 + 1
	return bucketPages * 4096 * 103 / 100
}

// bdbCachePages sizes BDB's page cache at ~3% of the table, the paper's
// ratio of buffer pool to a 32 GB table.
func bdbCachePages(capacityEntries int64) int {
	bucketPages := capacityEntries*10/7/255 + 1
	c := int(bucketPages * 3 / 100)
	if c < 8 {
		c = 8
	}
	return c
}

// cdfRow compresses a CDF to a handful of (ms, frac) points.
func cdfRow(pts []metrics.Point) string {
	if len(pts) == 0 {
		return "(empty)"
	}
	picks := []float64{0.25, 0.5, 0.75, 0.9, 0.99, 1.0}
	out := ""
	i := 0
	for _, q := range picks {
		for i < len(pts)-1 && pts[i].Fraction < q {
			i++
		}
		out += fmt.Sprintf(" [%.4fms:%.2f]", ms(pts[i].Latency), pts[i].Fraction)
	}
	return out
}

// Table3 regenerates Table 3: per-operation latency versus lookup fraction
// for BufferHash and Berkeley-DB on the Transcend SSD (LSR 0.4).
func Table3(sc Scale) (Report, error) {
	r := Report{
		ID:    "table3",
		Title: "Per-op latency vs lookup fraction (Transcend SSD, LSR=0.4)",
		PaperClaim: "BufferHash 0.007→0.12ms as lookups grow (17x faster on write-heavy); " +
			"BDB 18.4→0.3ms (writes dominate its cost)",
	}
	fractions := []float64{0, 0.3, 0.5, 0.7, 1.0}
	keyRange := lsrKeyRange(sc, 0.4)
	r.addRow("%10s %16s %16s", "lookups", "bufferhash(ms)", "berkeleydb(ms)")
	for _, frac := range fractions {
		bh, clock, err := newCoreOn(sc, ssd.TranscendTS32())
		if err != nil {
			return r, err
		}
		m, err := runCore(bh, clock, keyRange, warmCount(sc), sc.Ops, frac)
		if err != nil {
			return r, err
		}
		bhMs := ms(weightedMean(&m.insert, &m.lookup))

		clock2 := vclock.New()
		dbWarm := sc.Ops * 2
		if dbWarm < 300000 {
			dbWarm = 300000
		}
		dbRange := populationKeyRange(dbWarm, 0.4)
		dev := ssd.New(ssd.TranscendTS32(), bdbDeviceBytes(int64(dbWarm)), clock2)
		idx, err := bdb.NewHashIndex(bdb.Options{
			Device:          dev,
			CapacityEntries: int64(dbWarm),
			CachePages:      bdbCachePages(int64(dbWarm)),
			Seed:            2,
		})
		if err != nil {
			return r, err
		}
		rng := rand.New(rand.NewSource(31))
		for i := 0; i < dbWarm; i++ {
			if err := idx.Insert(uint64(rng.Int63n(int64(dbRange)))+1, 1); err != nil {
				return r, err
			}
		}
		var opHist metrics.Histogram
		for i := 0; i < sc.Ops/8; i++ {
			k := uint64(rng.Int63n(int64(dbRange))) + 1
			w := clock2.StartWatch()
			if rng.Float64() < frac {
				if _, _, err := idx.Lookup(k); err != nil {
					return r, err
				}
			} else if err := idx.Insert(k, 1); err != nil {
				return r, err
			}
			opHist.Observe(w.Elapsed())
		}
		dbMs := ms(opHist.Mean())
		r.addRow("%10.1f %16.4f %16.3f", frac, bhMs, dbMs)
		r.metric(fmt.Sprintf("bh_ms_frac%.1f", frac), bhMs)
		r.metric(fmt.Sprintf("bdb_ms_frac%.1f", frac), dbMs)
	}
	return r, nil
}

func weightedMean(hists ...*metrics.Histogram) time.Duration {
	var sum time.Duration
	var n uint64
	for _, h := range hists {
		sum += h.Sum()
		n += h.Count()
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// Fig8 regenerates Figure 8: insert latency CCDF under the update-based
// (partial discard) eviction policy on both SSDs, and the CDF of
// incarnations tried per cascaded eviction.
func Fig8(sc Scale) (Report, error) {
	r := Report{
		ID:    "fig8",
		Title: "Partial-discard eviction: insert CCDF and cascade depth CDF (40% updates)",
		PaperClaim: "~1% of inserts slow significantly; avg insert rises to 0.56ms " +
			"(Transcend) / 0.08ms (Intel); ≤3 incarnations tried in ~90% of cascades, mean 1.5 " +
			"(cascades need fully-live incarnations, vanishingly rare under uniform updates " +
			"at reduced scale — see EXPERIMENTS.md)",
	}
	for _, prof := range []ssd.Profile{ssd.IntelX18M(), ssd.TranscendTS32()} {
		clock := vclock.New()
		dev := ssd.New(prof, int64(sc.FlashMB)<<20, clock)
		cfg := clamConfig(sc, dev, clock)
		cfg.Policy = core.UpdateBased
		bh, err := core.New(cfg)
		if err != nil {
			return r, err
		}
		// The paper's §7.4 regime: 40% of inserts update a key drawn
		// uniformly from the WHOLE history, 60% are fresh keys. Because
		// updates spread thin over a growing history, old incarnations
		// are mostly LIVE at eviction time — partial discard retains
		// nearly everything, buffers refill completely, and evictions
		// cascade (Figure 8b) with geometrically distributed depth.
		total := warmCount(sc) + 4*sc.Ops
		window := 4 * sc.Ops
		rng := rand.New(rand.NewSource(41))
		keyAt := func(i int64) uint64 { return hashutil.Mix64(uint64(i)) | 1 }
		history := int64(1)
		var ins metrics.Histogram
		for i := 0; i < total; i++ {
			if rng.Intn(2) == 0 {
				if _, err := bh.Lookup(keyAt(rng.Int63n(history))); err != nil {
					return r, err
				}
				continue
			}
			var k uint64
			if rng.Float64() < 0.4 {
				k = keyAt(rng.Int63n(history)) // update
			} else {
				k = keyAt(history) // fresh key
				history++
			}
			w := clock.StartWatch()
			if err := bh.Insert(k, uint64(i)); err != nil {
				return r, err
			}
			if i > total-window {
				ins.Observe(w.Elapsed())
			}
		}
		s := ins.Summarize()
		st := bh.Stats()
		var cascades, within3, evTotal uint64
		for depth, c := range st.CascadeHist {
			if depth >= 1 {
				evTotal += c
				if depth <= 3 {
					within3 += c
				}
				if depth >= 2 {
					cascades += c
				}
			}
		}
		frac3 := 1.0
		if evTotal > 0 {
			frac3 = float64(within3) / float64(evTotal)
		}
		r.addRow("%-14s insert mean %.4fms p99 %.3fms max %.2fms | evictions with ≤3 incarnations tried: %.0f%% (cascaded: %d)",
			prof.Name, ms(s.Mean), ms(s.P99), ms(s.Max), 100*frac3, cascades)
		r.metric(prof.Name+"_insert_mean_ms", ms(s.Mean))
		r.metric(prof.Name+"_cascade_le3_frac", frac3)
		r.addRow("  insert CCDF: %s", ccdfRow(ins.CCDF()))
	}
	return r, nil
}

func ccdfRow(pts []metrics.Point) string {
	if len(pts) == 0 {
		return "(empty)"
	}
	out := ""
	for _, q := range []float64{0.1, 0.01, 0.001} {
		i := 0
		for i < len(pts)-1 && pts[i].Fraction > q {
			i++
		}
		out += fmt.Sprintf(" [P(>%.3fms)≈%.3f]", ms(pts[i].Latency), pts[i].Fraction)
	}
	return out
}

// Ablations regenerates the §7.3.1 numbers: the contribution of buffering,
// Bloom filters, and bit-slicing.
func Ablations(sc Scale) (Report, error) {
	r := Report{
		ID:    "ablations",
		Title: "Contribution of BufferHash optimizations (§7.3.1)",
		PaperClaim: "no buffering: ~4.8ms inserts backlogged, ~0.3ms idle; no Bloom: " +
			"1.95/1.5ms lookup I/O at 40/80% LSR (10-30x worse); bit-slicing: ~20% " +
			"faster memory-bound lookups",
	}
	// (a) Buffering: conventional hash on the Intel SSD.
	clock := vclock.New()
	dev := ssd.New(ssd.IntelX18M(), int64(sc.FlashMB)<<20, clock)
	conv, err := convhash.New(dev, 3)
	if err != nil {
		return r, err
	}
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < int(flashEntries(sc))*7/10; i++ {
		if err := conv.Insert(rng.Uint64()|1, 1); err != nil {
			return r, err
		}
	}
	var unbuf metrics.Histogram
	for i := 0; i < sc.Ops/4; i++ {
		w := clock.StartWatch()
		if err := conv.Insert(rng.Uint64()|1, 1); err != nil {
			return r, err
		}
		unbuf.Observe(w.Elapsed())
	}
	bh, clock2, err := newCoreOn(sc, ssd.IntelX18M())
	if err != nil {
		return r, err
	}
	mBuf, err := runCore(bh, clock2, lsrKeyRange(sc, 0.4), warmCount(sc), sc.Ops, 0)
	if err != nil {
		return r, err
	}
	r.addRow("buffering: unbuffered insert %.3fms vs BufferHash %.4fms (%.0fx)",
		ms(unbuf.Mean()), ms(mBuf.insert.Mean()),
		float64(unbuf.Mean())/float64(mBuf.insert.Mean()))
	r.metric("unbuffered_insert_ms", ms(unbuf.Mean()))
	r.metric("buffered_insert_ms", ms(mBuf.insert.Mean()))

	// (b) Bloom filters, at 40% and 80% LSR.
	for _, lsr := range []float64{0.4, 0.8} {
		withB, clockA, err := newCoreOn(sc, ssd.IntelX18M())
		if err != nil {
			return r, err
		}
		mA, err := runCore(withB, clockA, lsrKeyRange(sc, lsr), warmCount(sc), sc.Ops/2, 0.5)
		if err != nil {
			return r, err
		}
		clockB := vclock.New()
		devB := ssd.New(ssd.IntelX18M(), int64(sc.FlashMB)<<20, clockB)
		cfgB := clamConfig(sc, devB, clockB)
		cfgB.DisableBloom = true
		noB, err := core.New(cfgB)
		if err != nil {
			return r, err
		}
		mB, err := runCore(noB, clockB, lsrKeyRange(sc, lsr), warmCount(sc), sc.Ops/2, 0.5)
		if err != nil {
			return r, err
		}
		r.addRow("bloom (LSR %.1f): lookup with %.4fms vs without %.3fms (%.0fx)",
			lsr, ms(mA.lookup.Mean()), ms(mB.lookup.Mean()),
			float64(mB.lookup.Mean())/float64(mA.lookup.Mean()))
		r.metric(fmt.Sprintf("lookup_bloom_lsr%.1f_ms", lsr), ms(mA.lookup.Mean()))
		r.metric(fmt.Sprintf("lookup_nobloom_lsr%.1f_ms", lsr), ms(mB.lookup.Mean()))
	}

	// (c) Bit-slicing: memory-bound lookups (0% LSR: all misses answered
	// by the filters).
	sliced, clockS, err := newCoreOn(sc, ssd.IntelX18M())
	if err != nil {
		return r, err
	}
	mS, err := runCore(sliced, clockS, lsrKeyRange(sc, 0), warmCount(sc), sc.Ops/2, 0.9)
	if err != nil {
		return r, err
	}
	clockN := vclock.New()
	devN := ssd.New(ssd.IntelX18M(), int64(sc.FlashMB)<<20, clockN)
	cfgN := clamConfig(sc, devN, clockN)
	cfgN.DisableBitslice = true
	naive, err := core.New(cfgN)
	if err != nil {
		return r, err
	}
	mN, err := runCore(naive, clockN, lsrKeyRange(sc, 0), warmCount(sc), sc.Ops/2, 0.9)
	if err != nil {
		return r, err
	}
	imp := (float64(mN.lookup.Mean()) - float64(mS.lookup.Mean())) / float64(mN.lookup.Mean())
	r.addRow("bit-slicing: memory-bound lookup %.4fms vs naive %.4fms (%.0f%% faster)",
		ms(mS.lookup.Mean()), ms(mN.lookup.Mean()), 100*imp)
	r.metric("bitslice_improvement_frac", imp)
	return r, nil
}

// Headline regenerates the §7.2.1/§7.5 headline numbers and the §7.4 LRU
// comparison.
func Headline(sc Scale) (Report, error) {
	r := Report{
		ID:    "headline",
		Title: "Headline latencies (§7.2.1) and eviction policies (§7.4)",
		PaperClaim: "Intel: 0.006ms insert / 0.06ms lookup @40% LSR, worst flush 2.72ms; " +
			"Transcend: 0.007ms insert, worst 30ms; LRU raises insert 0.007→0.008ms",
	}
	for _, prof := range []ssd.Profile{ssd.IntelX18M(), ssd.TranscendTS32()} {
		bh, clock, err := newCoreOn(sc, prof)
		if err != nil {
			return r, err
		}
		m, err := runCore(bh, clock, lsrKeyRange(sc, 0.4), warmCount(sc), sc.Ops, 0.5)
		if err != nil {
			return r, err
		}
		ins, lok := m.insert.Summarize(), m.lookup.Summarize()
		r.addRow("%-14s insert mean %.4fms (max %.2fms) | lookup mean %.4fms @ LSR %.2f",
			prof.Name, ms(ins.Mean), ms(ins.Max), ms(lok.Mean), m.hitRate())
		r.metric(prof.Name+"_insert_ms", ms(ins.Mean))
		r.metric(prof.Name+"_lookup_ms", ms(lok.Mean))
		r.metric(prof.Name+"_insert_max_ms", ms(ins.Max))
	}
	// §7.4: LRU vs FIFO on the Transcend SSD.
	var insByPolicy [2]time.Duration
	for i, pol := range []core.EvictionPolicy{core.FIFO, core.LRU} {
		clock := vclock.New()
		dev := ssd.New(ssd.TranscendTS32(), int64(sc.FlashMB)<<20, clock)
		cfg := clamConfig(sc, dev, clock)
		cfg.Policy = pol
		bh, err := core.New(cfg)
		if err != nil {
			return r, err
		}
		m, err := runCore(bh, clock, lsrKeyRange(sc, 0.4), warmCount(sc), sc.Ops, 0.5)
		if err != nil {
			return r, err
		}
		insByPolicy[i] = m.insert.Mean()
	}
	r.addRow("eviction: FIFO insert %.4fms vs LRU %.4fms (paper: 0.007 vs 0.008)",
		ms(insByPolicy[0]), ms(insByPolicy[1]))
	r.metric("fifo_insert_ms", ms(insByPolicy[0]))
	r.metric("lru_insert_ms", ms(insByPolicy[1]))
	return r, nil
}
