package experiments

import (
	"time"

	"repro/internal/costmodel"
)

// Fig3 regenerates Figure 3: expected lookup I/O overhead versus total
// Bloom filter size for F = 32 GB and 64 GB (analytic, §6.4).
func Fig3() Report {
	r := Report{
		ID:    "fig3",
		Title: "Expected I/O overhead vs Bloom filter size (analytic)",
		PaperClaim: "diminishing returns after a certain size; for F=32GB, " +
			"1GB of filters keeps overhead below 1ms",
	}
	cr := costmodel.PageReadCost(costmodel.IntelSSDCosts())
	const s = 32.0
	r.addRow("%12s %14s %14s", "bloom(MB)", "F=32GB (ms)", "F=64GB (ms)")
	for _, mb := range []int64{10, 30, 100, 300, 1000, 3000, 10000} {
		c32 := costmodel.LookupCost(32<<30, costmodel.OptimalBufferBytes(32<<30, s), mb<<20, s, cr)
		c64 := costmodel.LookupCost(64<<30, costmodel.OptimalBufferBytes(64<<30, s), mb<<20, s, cr)
		r.addRow("%12d %14.3f %14.3f", mb, ms(c32), ms(c64))
	}
	oneGB := costmodel.LookupCost(32<<30, costmodel.OptimalBufferBytes(32<<30, s), 1<<30, s, cr)
	r.metric("overhead_ms_at_1GB_32GB", ms(oneGB))
	r.addRow("check: F=32GB @1GB filters = %.3f ms (paper: <1 ms)", ms(oneGB))
	return r
}

// Fig4 regenerates Figure 4: amortized and worst-case insertion cost versus
// per-super-table buffer size, on the flash chip and the Intel SSD
// (analytic, §6.1/§6.4).
func Fig4() Report {
	r := Report{
		ID:    "fig4",
		Title: "Insertion cost vs buffer size B' (analytic; chip and SSD)",
		PaperClaim: "chip costs minimize when B' matches the 128KB erase block; " +
			"on SSDs larger buffers cut average cost but grow the worst case",
	}
	const s = 32.0
	chip := costmodel.ChipCosts()
	intel := costmodel.IntelSSDCosts()
	r.addRow("%10s | %12s %12s | %12s %12s", "B'(KB)",
		"chip avg(ms)", "chip max(ms)", "ssd avg(ms)", "ssd max(ms)")
	for _, kb := range []int64{2, 8, 32, 64, 128, 256, 512, 1024, 4096} {
		buf := kb << 10
		ca := costmodel.AmortizedInsert(chip, buf, s)
		cw := costmodel.WorstInsert(chip, buf)
		sa := costmodel.AmortizedInsert(intel, buf, s)
		sw := costmodel.WorstInsert(intel, buf)
		r.addRow("%10d | %12.5f %12.3f | %12.5f %12.3f", kb, ms(ca), ms(cw), ms(sa), ms(sw))
	}
	atBlockWorst := costmodel.WorstInsert(chip, 128<<10)
	r.metric("chip_worst_at_block_ms", ms(atBlockWorst))
	r.metric("ssd_worst_at_128KB_ms", ms(costmodel.WorstInsert(intel, 128<<10)))
	r.addRow("check: SSD worst at 128KB = %.2f ms (paper: 2.72 ms incl. FTL effects)",
		ms(costmodel.WorstInsert(intel, 128<<10)))
	return r
}

// TuningTable reproduces the §6.4 tuning outputs: B_opt and required Bloom
// memory for target overheads.
func TuningTable() Report {
	r := Report{
		ID:         "tuning",
		Title:      "Parameter tuning (B_opt and Bloom sizing, §6.4)",
		PaperClaim: "B_opt ≈ 2F/s bits (266MB for F=32GB, s=32B); measured optimum 256MB (Fig 5)",
	}
	const s = 32.0
	cr := costmodel.PageReadCost(costmodel.IntelSSDCosts())
	for _, gb := range []int64{32, 64} {
		f := gb << 30
		bopt := costmodel.OptimalBufferBytes(f, s)
		r.addRow("F=%dGB: B_opt = %d MB", gb, bopt>>20)
		for _, target := range []time.Duration{100 * time.Microsecond, time.Millisecond} {
			need := costmodel.RequiredBloomBytes(f, s, cr, target)
			r.addRow("  bloom for %v overhead: %d MB", target, need>>20)
		}
	}
	r.metric("bopt_mb_32GB", float64(costmodel.OptimalBufferBytes(32<<30, s)>>20))
	return r
}
