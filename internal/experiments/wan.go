package experiments

import (
	"fmt"

	"repro/clam"
	"repro/internal/bdb"
	"repro/internal/ssd"
	"repro/internal/vclock"
	"repro/internal/wanopt"
	"repro/internal/workload"
)

// clamU64 exposes a clam.Store's inline fast path as a wanopt.U64Index —
// the paper's own design point: the evaluated optimizer stored 32–64 bit
// fingerprints (§7.1.1), so the figures are regenerated on the fast path
// and the full-fingerprint byte API is exercised by the wanopt tests and
// examples instead.
type clamU64 struct{ st clam.Store }

func (c clamU64) Insert(k, v uint64) error              { return c.st.PutU64(k, v) }
func (c clamU64) Lookup(k uint64) (uint64, bool, error) { return c.st.GetU64(k) }

// wanIndex builds the fingerprint index for a WAN optimizer run.
//
// At the paper's scale the fingerprint table (32 GB) dwarfs the DRAM
// buffers, so duplicate fingerprints are found on FLASH — that flash
// lookup cost is exactly what limits the optimizer's top speed (Fig 9's
// right edge). To preserve that regime at reduced scale the index gets
// deliberately small buffers (32 KB × 1 super table = 1 K entries) and is
// pre-warmed past one eviction cycle so flushing is steady-state.
func wanIndex(sc Scale, useCLAM bool) (wanopt.Index, *vclock.Clock, error) {
	const idxFlash = 2 << 20 // 64 K fingerprints on flash, 1 K buffered
	clock := vclock.New()
	var u64 wanopt.U64Index
	if useCLAM {
		c, err := clam.Open(
			clam.WithDevice(clam.TranscendSSD),
			clam.WithFlash(idxFlash),
			clam.WithBufferKB(32),
			clam.WithMaxIncarnations(64),
			clam.WithClock(clock))
		if err != nil {
			return nil, nil, err
		}
		u64 = clamU64{c}
	} else {
		capacity := int64(idxFlash) / 32
		dev := ssd.New(ssd.TranscendTS32(), bdbDeviceBytes(capacity), clock)
		h, err := bdb.NewHashIndex(bdb.Options{
			Device:          dev,
			CapacityEntries: capacity,
			CachePages:      bdbCachePages(capacity),
			Seed:            1,
		})
		if err != nil {
			return nil, nil, err
		}
		u64 = h
	}
	// Pre-warm with unrelated fingerprints so the structures are in
	// steady state when the trace arrives; the scenarios measure time
	// deltas, so warm-up cost is excluded. The CLAM warms past a full
	// eviction cycle; BDB (no eviction) warms to ~60% occupancy, leaving
	// room for the trace's new fingerprints.
	warm := int(idxFlash/32) * 5 / 4
	if !useCLAM {
		warm = int(idxFlash/32) * 6 / 10
	}
	for i := 0; i < warm; i++ {
		fp := uint64(i)*2654435761 + (1 << 62)
		if err := u64.Insert(fp|1, 1); err != nil {
			return nil, nil, err
		}
	}
	return wanopt.Truncated{U64: u64}, clock, nil
}

// Fig9 regenerates Figure 9: effective bandwidth improvement versus link
// speed for CLAM-backed and BDB-backed WAN optimizers (Transcend SSD), at
// 50% and 15% trace redundancy.
func Fig9(sc Scale) (Report, error) {
	r := Report{
		ID:    "fig9",
		Title: "WAN optimizer: effective bandwidth improvement vs link speed (Transcend)",
		PaperClaim: "BDB ≈2x only up to ~10Mbps then collapses; CLAM ≈2x through " +
			"~100Mbps, reasonable at 200Mbps, bottleneck by 400Mbps (50% redundancy trace)",
	}
	speeds := []int64{10, 20, 100, 200, 400}
	for _, red := range []float64{0.5, 0.15} {
		r.addRow("redundancy %.0f%%:", red*100)
		r.addRow("%10s %14s %14s", "Mbps", "bufferhash", "berkeleydb")
		for _, mbps := range speeds {
			var imps [2]float64
			for i, useCLAM := range []bool{true, false} {
				// Objects are large (2 MB mean) so the trace carries far
				// more distinct chunks than the index can buffer in DRAM.
				tr := workload.GenerateTrace(workload.TraceConfig{
					Objects:         sc.TraceObjects,
					MeanObjectBytes: 2 << 20,
					Redundancy:      red,
					Seed:            97,
				})
				idx, clock, err := wanIndex(sc, useCLAM)
				if err != nil {
					return r, err
				}
				o, err := wanopt.New(wanopt.Config{
					Index:          idx,
					Clock:          clock,
					LinkBitsPerSec: mbps * 1e6,
				})
				if err != nil {
					return r, err
				}
				res, err := wanopt.RunThroughputTest(o, tr)
				if err != nil {
					return r, err
				}
				imps[i] = res.Improvement()
			}
			r.addRow("%10d %14.2f %14.2f", mbps, imps[0], imps[1])
			r.metric(fmt.Sprintf("bh_red%.0f_%dmbps", red*100, mbps), imps[0])
			r.metric(fmt.Sprintf("bdb_red%.0f_%dmbps", red*100, mbps), imps[1])
		}
	}
	return r, nil
}

// Fig10 regenerates Figure 10: per-object throughput improvement under
// 100%-utilization load at 10 Mbps, 50% redundancy, for both indexes.
func Fig10(sc Scale) (Report, error) {
	r := Report{
		ID:    "fig10",
		Title: "WAN optimizer under load: per-object throughput improvement @ 10Mbps",
		PaperClaim: "BDB worsens many (especially small) objects by 2x or more; CLAM " +
			"hurts far fewer objects; mean improvement 3.1 (CLAM) vs 1.9 (BDB), 65% better",
	}
	for _, useCLAM := range []bool{true, false} {
		tr := workload.GenerateTrace(workload.TraceConfig{
			Objects:         sc.TraceObjects,
			MeanObjectBytes: 2 << 20,
			Redundancy:      0.5,
			Seed:            98,
		})
		idx, clock, err := wanIndex(sc, useCLAM)
		if err != nil {
			return r, err
		}
		o, err := wanopt.New(wanopt.Config{Index: idx, Clock: clock, LinkBitsPerSec: 10e6})
		if err != nil {
			return r, err
		}
		objs, err := wanopt.RunLoadTest(o, tr)
		if err != nil {
			return r, err
		}
		name := "berkeleydb"
		if useCLAM {
			name = "bufferhash"
		}
		worsened := 0
		for _, p := range objs {
			if p.Improvement() < 1.0 {
				worsened++
			}
		}
		mean := wanopt.MeanImprovement(objs)
		r.addRow("%-12s mean improvement %.2fx; %d/%d objects worsened",
			name, mean, worsened, len(objs))
		r.metric(name+"_mean_improvement", mean)
		r.metric(name+"_worsened_frac", float64(worsened)/float64(len(objs)))
		// A few per-object samples, smallest and largest.
		for _, p := range objs[:min(3, len(objs))] {
			r.addRow("  obj %7.2fMB: %.2fx", float64(p.Size)/(1<<20), p.Improvement())
		}
	}
	return r, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
