// Package experiments contains one driver per table and figure of the
// paper's evaluation (§6.4, §7, §8), shared by the cmd/clam-figures tool
// and the root benchmark suite. Every driver runs against the simulated
// device substrate in virtual time at a configurable scale and returns a
// Report whose rows mirror the paper's presentation, so paper-vs-measured
// comparisons (EXPERIMENTS.md) are mechanical.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ssd"
	"repro/internal/vclock"
)

// Scale sets experiment sizes. The paper's hardware-scale configuration
// (32 GB flash, 4 GB DRAM) is reproduced at reduced scale with all ratios
// preserved (DESIGN.md §3): k = 16 incarnations, 128 KB buffers, 16 B
// entries, ~16 Bloom bits per entry. Warm-up is derived from the flash
// size: the structure is filled past one full eviction cycle so lookups
// measure the flash-resident steady state, as in the paper's backlogged
// workloads (§7.2).
type Scale struct {
	Name         string
	FlashMB      int // F
	MemMB        int // M
	Ops          int // measured operations
	TraceObjects int // WAN optimizer trace length
	TraceMeanKB  int // WAN optimizer mean object size
}

// Small is the test/bench scale (runs in seconds).
var Small = Scale{
	Name: "small", FlashMB: 16, MemMB: 4,
	Ops:          20000,
	TraceObjects: 15, TraceMeanKB: 192,
}

// Medium is the default scale for cmd/clam-figures (tens of seconds).
var Medium = Scale{
	Name: "medium", FlashMB: 64, MemMB: 12,
	Ops:          80000,
	TraceObjects: 40, TraceMeanKB: 512,
}

// Large exercises a bigger fraction of the paper's scale (minutes).
var Large = Scale{
	Name: "large", FlashMB: 256, MemMB: 40,
	Ops:          200000,
	TraceObjects: 80, TraceMeanKB: 1024,
}

// flashEntries returns the steady-state flash-resident population.
func flashEntries(sc Scale) int64 { return int64(sc.FlashMB) << 20 / 32 }

// warmCount returns the number of warm-up inserts: 1.25 eviction cycles.
func warmCount(sc Scale) int { return int(flashEntries(sc) * 5 / 4) }

// populationKeyRange returns the key range that yields the target LSR for
// a store WITHOUT eviction (e.g. BDB) after w warm-up inserts: the distinct
// count after w uniform draws from R keys is R·(1-e^{-w/R}), so the range
// solving distinct/R = lsr is w / ln(1/(1-lsr)).
func populationKeyRange(w int, lsr float64) uint64 {
	if lsr <= 0 {
		return 1 << 62
	}
	if lsr >= 1 {
		lsr = 0.99
	}
	return uint64(float64(w) / (-math.Log(1 - lsr)))
}

// Report is a formatted experiment result.
type Report struct {
	ID    string // e.g. "fig6"
	Title string
	// PaperClaim summarizes what the paper reports for this artifact.
	PaperClaim string
	Rows       []string
	// Metrics are machine-readable key values for the bench harness.
	Metrics map[string]float64
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	for _, row := range r.Rows {
		b.WriteString(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Report) addRow(format string, args ...any) {
	r.Rows = append(r.Rows, fmt.Sprintf(format, args...))
}

func (r *Report) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) float64 { return metrics.Ms(d) }

// clamConfig builds the paper-shaped BufferHash config for a scale on a
// given SSD profile (16 super tables per 32 MB of flash, 128 KB buffers,
// k=16, 16 Bloom bits/entry).
func clamConfig(sc Scale, dev *ssd.SSD, clock *vclock.Clock) core.Config {
	flash := int64(sc.FlashMB) << 20
	const bufBytes = 128 << 10
	// nt·k·buf = flash with k=16.
	nt := flash / (16 * bufBytes)
	bits := uint(0)
	for 1<<(bits+1) <= nt {
		bits++
	}
	return core.Config{
		Device:             dev,
		Clock:              clock,
		PartitionBits:      bits,
		BufferBytes:        bufBytes,
		NumIncarnations:    16,
		FilterBitsPerEntry: 16,
		Seed:               1,
	}
}

// lsrKeyRange returns the key range for a target steady-state LSR given
// the store's flash-resident population.
func lsrKeyRange(sc Scale, lsr float64) uint64 {
	flashEntries := uint64(sc.FlashMB) << 20 / 32
	if lsr <= 0 {
		return 1 << 62
	}
	return uint64(float64(flashEntries) / lsr)
}
