package experiments

import (
	"strings"
	"testing"
)

// tiny is an even smaller scale than Small, for fast unit tests of the
// drivers themselves.
var tiny = Scale{
	Name: "tiny", FlashMB: 8, MemMB: 2,
	Ops:          8000,
	TraceObjects: 8, TraceMeanKB: 128,
}

func TestFig3Analytic(t *testing.T) {
	r := Fig3()
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	if v := r.Metrics["overhead_ms_at_1GB_32GB"]; v <= 0 || v >= 1 {
		t.Fatalf("1GB overhead = %.3f ms, paper says <1ms", v)
	}
	if !strings.Contains(r.String(), "fig3") {
		t.Fatal("report string malformed")
	}
}

func TestFig4Analytic(t *testing.T) {
	r := Fig4()
	if v := r.Metrics["ssd_worst_at_128KB_ms"]; v < 1.5 || v > 3.5 {
		t.Fatalf("SSD worst at 128KB = %.2f ms, want ≈2.5 (paper 2.72)", v)
	}
}

func TestTuningTable(t *testing.T) {
	r := TuningTable()
	if v := r.Metrics["bopt_mb_32GB"]; v < 250 || v > 280 {
		t.Fatalf("B_opt = %.0f MB, want ≈266 (§7.1.1)", v)
	}
}

func TestFig5SpuriousRateRises(t *testing.T) {
	r, err := Fig5(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// As buffers grow (squeezing Bloom memory), the spurious rate must
	// rise — the right branch of the paper's U-curve.
	var rates []float64
	for k, v := range r.Metrics {
		_ = k
		rates = append(rates, v)
	}
	if len(rates) < 2 {
		t.Fatalf("sweep produced %d points", len(rates))
	}
	var lo, hi float64 = 1, 0
	for _, v := range rates {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < 10*lo && hi < 0.01 {
		t.Fatalf("spurious rate barely moved: [%.5f, %.5f]", lo, hi)
	}
}

func TestTable2Shape(t *testing.T) {
	r, err := Table2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if v := r.Metrics["p_le1_io"]; v < 0.99 {
		t.Fatalf("P[≤1 io] = %.4f, want >0.99 (Table 2)", v)
	}
	if lsr := r.Metrics["lsr"]; lsr < 0.25 || lsr > 0.55 {
		t.Fatalf("achieved LSR %.2f, want ≈0.4", lsr)
	}
}

func TestFig6Orderings(t *testing.T) {
	r, err := Fig6(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	intel := r.Metrics["bh+intel_lookup_mean_ms"]
	transcend := r.Metrics["bh+transcend_lookup_mean_ms"]
	dsk := r.Metrics["bh+disk_lookup_mean_ms"]
	if !(intel < transcend && transcend < dsk) {
		t.Fatalf("lookup ordering broken: intel %.4f, transcend %.4f, disk %.4f",
			intel, transcend, dsk)
	}
	if ins := r.Metrics["bh+intel_insert_mean_ms"]; ins > 0.03 {
		t.Fatalf("intel insert %.4f ms, want ≈0.006", ins)
	}
	if lok := r.Metrics["bh+intel_lookup_mean_ms"]; lok < 0.01 || lok > 0.2 {
		t.Fatalf("intel lookup %.4f ms, want ≈0.06", lok)
	}
}

func TestFig7BDBSlow(t *testing.T) {
	r, err := Fig7(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// The paper's headline comparison: BDB is milliseconds on both media.
	if v := r.Metrics["db+disk_lookup_mean_ms"]; v < 3 {
		t.Fatalf("DB+Disk lookup %.2f ms, want ≈6.8", v)
	}
	// On the Intel SSD, sustained random writes drag the whole system to
	// sub-millisecond-to-millisecond per-op costs (paper: 4.6/4.8 ms; in
	// our model the GC charge lands mostly on the read that follows each
	// write, so the per-op-pair combined mean is the comparable number).
	combined := (r.Metrics["db+intel_insert_mean_ms"] + r.Metrics["db+intel_lookup_mean_ms"]) / 2
	if combined < 0.4 {
		t.Fatalf("DB+Intel combined per-op mean %.2f ms, want GC-inflated (≥0.4; paper ≈4.7)", combined)
	}
}

func TestTable3Crossover(t *testing.T) {
	r, err := Table3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// BufferHash gets cheaper as lookups shrink; BDB gets cheaper as
	// lookups grow. At every mix BufferHash wins by orders of magnitude
	// except pure-lookup where the gap narrows.
	if r.Metrics["bh_ms_frac0.0"] >= r.Metrics["bh_ms_frac1.0"] {
		t.Error("BufferHash should be fastest on write-heavy mixes")
	}
	if r.Metrics["bdb_ms_frac0.0"] <= r.Metrics["bdb_ms_frac1.0"] {
		t.Error("BDB should be slowest on write-heavy mixes")
	}
	for _, frac := range []string{"0.0", "0.3", "0.5", "0.7"} {
		bh := r.Metrics["bh_ms_frac"+frac]
		db := r.Metrics["bdb_ms_frac"+frac]
		if bh*10 > db {
			t.Errorf("at %s lookups BufferHash (%.3f) not ≥10x faster than BDB (%.3f)", frac, bh, db)
		}
	}
}

func TestFig8PartialDiscard(t *testing.T) {
	r, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	intel := r.Metrics["intel-x18m_insert_mean_ms"]
	transcend := r.Metrics["transcend-ts32_insert_mean_ms"]
	if intel <= 0 || transcend <= 0 {
		t.Fatal("missing metrics")
	}
	// Paper: update-based eviction costs more on the slower device
	// (0.56ms Transcend vs 0.08ms Intel).
	if transcend <= intel {
		t.Errorf("Transcend partial-discard inserts (%.3f) should cost more than Intel (%.3f)",
			transcend, intel)
	}
	for _, k := range []string{"intel-x18m_cascade_le3_frac", "transcend-ts32_cascade_le3_frac"} {
		if v, ok := r.Metrics[k]; !ok || v < 0.5 {
			t.Errorf("%s = %.2f, paper says ~90%% of cascades try ≤3 incarnations", k, v)
		}
	}
}

func TestAblationDirections(t *testing.T) {
	r, err := Ablations(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if r.Metrics["unbuffered_insert_ms"] < 20*r.Metrics["buffered_insert_ms"] {
		t.Error("buffering should speed inserts by far more than 20x")
	}
	if r.Metrics["lookup_nobloom_lsr0.4_ms"] < 3*r.Metrics["lookup_bloom_lsr0.4_ms"] {
		t.Error("Bloom filters should speed 40%-LSR lookups by several x")
	}
	if v := r.Metrics["bitslice_improvement_frac"]; v <= 0 {
		t.Errorf("bit-slicing improvement %.2f, want positive (~20%% in paper)", v)
	}
}

func TestHeadline(t *testing.T) {
	r, err := Headline(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if v := r.Metrics["intel-x18m_insert_ms"]; v > 0.03 {
		t.Errorf("intel insert %.4f ms, paper 0.006", v)
	}
	if v := r.Metrics["transcend-ts32_insert_max_ms"]; v < 15 || v > 60 {
		t.Errorf("transcend worst insert %.1f ms, paper ~30", v)
	}
	fifo, lru := r.Metrics["fifo_insert_ms"], r.Metrics["lru_insert_ms"]
	if lru < fifo {
		t.Errorf("LRU inserts (%.4f) should cost at least FIFO's (%.4f)", lru, fifo)
	}
}

func TestFig9Crossover(t *testing.T) {
	r, err := Fig9(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// The paper's qualitative claims at 50% redundancy:
	// 1. both give real improvement at 10 Mbps;
	// 2. BDB collapses by 100 Mbps while BufferHash still delivers;
	// 3. BufferHash degrades by 400 Mbps on the Transcend device.
	if v := r.Metrics["bh_red50_10mbps"]; v < 1.4 {
		t.Errorf("BH at 10Mbps: %.2f, want ≈2", v)
	}
	// The paper reports ≈2x for BDB at 10 Mbps, which is in tension with
	// its own Table 3 (18.4 ms backlogged inserts cannot sustain the ~100
	// inserts/s a 10 Mbps link generates); our synchronous model lands
	// just above break-even. See EXPERIMENTS.md.
	if v := r.Metrics["bdb_red50_10mbps"]; v < 1.0 {
		t.Errorf("BDB at 10Mbps: %.2f, want ≥1 (paper ≈2)", v)
	}
	bh100, bdb100 := r.Metrics["bh_red50_100mbps"], r.Metrics["bdb_red50_100mbps"]
	if bh100 < 1.4 {
		t.Errorf("BH at 100Mbps: %.2f, want ≈2", bh100)
	}
	if bdb100 > 1.0 {
		t.Errorf("BDB at 100Mbps: %.2f, paper shows collapse (<1)", bdb100)
	}
	if bh400 := r.Metrics["bh_red50_400mbps"]; bh400 > 1.6 {
		t.Errorf("BH at 400Mbps: %.2f, paper shows Transcend CLAM becomes a bottleneck", bh400)
	}
}

func TestFig10PerObject(t *testing.T) {
	r, err := Fig10(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	bh := r.Metrics["bufferhash_mean_improvement"]
	db := r.Metrics["berkeleydb_mean_improvement"]
	if bh <= db {
		t.Errorf("per-object mean improvement: BH %.2f should beat BDB %.2f (paper 3.1 vs 1.9)", bh, db)
	}
	if r.Metrics["bufferhash_worsened_frac"] > r.Metrics["berkeleydb_worsened_frac"] {
		t.Error("BufferHash should worsen fewer objects than BDB")
	}
}
