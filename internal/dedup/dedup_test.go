package dedup

import (
	"bytes"
	"testing"

	"repro/clam"
	"repro/internal/bdb"
	"repro/internal/hashutil"
	"repro/internal/ssd"
	"repro/internal/vclock"
)

func openIndex(t *testing.T, flash, mem int64, clock *vclock.Clock) clam.Store {
	t.Helper()
	st, err := clam.Open(
		clam.WithDevice(clam.IntelSSD),
		clam.WithFlash(flash), clam.WithMemory(mem), clam.WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFingerprintSetDeterministicNonZero(t *testing.T) {
	s := NewFingerprintSet(1, 1000)
	seen := map[string]bool{}
	for i := int64(0); i < s.Len(); i++ {
		fp := s.At(i)
		if len(fp) != FingerprintBytes {
			t.Fatalf("fingerprint %d has %d bytes", i, len(fp))
		}
		if seen[string(fp)] {
			t.Fatalf("duplicate fingerprint at %d", i)
		}
		seen[string(fp)] = true
	}
	if !bytes.Equal(s.At(7), NewFingerprintSet(1, 1000).At(7)) {
		t.Fatal("non-deterministic")
	}
}

func TestMergeCountsNewAndDuplicate(t *testing.T) {
	clock := vclock.New()
	c := openIndex(t, 16<<20, 4<<20, clock)
	base := NewFingerprintSet(1, 20000)
	if err := Populate(c, base); err != nil {
		t.Fatal(err)
	}
	incoming := NewOverlappingSet(base, 2, 10000, 0.4)
	res, err := MergeOverlapping(c, incoming, clock)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 10000 {
		t.Fatalf("scanned %d", res.Scanned)
	}
	// 40% of incoming overlap the base.
	if res.Duplicates < 3800 || res.Duplicates > 4200 {
		t.Fatalf("duplicates = %d, want ≈4000", res.Duplicates)
	}
	if res.New+res.Duplicates != res.Scanned {
		t.Fatal("counts inconsistent")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if res.Rate() <= 0 {
		t.Fatal("rate not computed")
	}
	// Merged fingerprints must resolve to their chunk locator.
	loc, ok, err := c.Get(incoming.At(9999))
	if err != nil || !ok {
		t.Fatalf("merged fingerprint missing: %v %v", ok, err)
	}
	if !bytes.Equal(loc, incoming.LocatorAt(9999)) {
		t.Fatalf("merged locator = %q, want %q", loc, incoming.LocatorAt(9999))
	}
}

func TestCLAMMergeMuchFasterThanBDB(t *testing.T) {
	// §3: BDB merge ~2 hours vs CLAM ~2 minutes (≈60x). At our scale the
	// exact factor varies, but the order-of-magnitude gap must hold.
	const (
		baseN     = 30000
		incomingN = 15000
	)
	base := NewFingerprintSet(10, baseN)

	clockC := vclock.New()
	c := openIndex(t, 32<<20, 8<<20, clockC)
	if err := Populate(c, base); err != nil {
		t.Fatal(err)
	}
	clamRes, err := MergeOverlapping(c, NewOverlappingSet(base, 11, incomingN, 0.3), clockC)
	if err != nil {
		t.Fatal(err)
	}

	clockB := vclock.New()
	dev := ssd.New(ssd.IntelX18M(), 32<<20, clockB)
	h, err := bdb.NewHashIndex(bdb.Options{Device: dev, CapacityEntries: baseN + incomingN, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bdbIdx := bdbAdapter{h}
	if err := Populate(bdbIdx, base); err != nil {
		t.Fatal(err)
	}
	bdbRes, err := MergeOverlapping(bdbIdx, NewOverlappingSet(base, 11, incomingN, 0.3), clockB)
	if err != nil {
		t.Fatal(err)
	}

	speedup := float64(bdbRes.Elapsed) / float64(clamRes.Elapsed)
	t.Logf("merge of %d fps: CLAM %v, BDB %v (%.0fx speedup; paper ≈60x)",
		incomingN, clamRes.Elapsed, bdbRes.Elapsed, speedup)
	if speedup < 10 {
		t.Fatalf("CLAM merge speedup %.1fx, want ≥10x", speedup)
	}
}

// bdbAdapter narrows *bdb.HashIndex to the dedup.Index interface the way
// the paper-era API forced everyone to: full fingerprints truncated to 64
// bits, locators to a word.
type bdbAdapter struct{ h *bdb.HashIndex }

func (a bdbAdapter) Put(fp, locator []byte) error {
	return a.h.Insert(hashutil.HashBytes(fp, 42)|1, uint64(len(locator)))
}
func (a bdbAdapter) Get(fp []byte) ([]byte, bool, error) {
	_, ok, err := a.h.Lookup(hashutil.HashBytes(fp, 42) | 1)
	return nil, ok, err
}

func TestPlainMerge(t *testing.T) {
	clock := vclock.New()
	c := openIndex(t, 8<<20, 2<<20, clock)
	res, err := Merge(c, NewFingerprintSet(3, 5000), clock)
	if err != nil {
		t.Fatal(err)
	}
	if res.New != 5000 || res.Duplicates != 0 {
		t.Fatalf("fresh merge: %+v", res)
	}
	// Merging the same set again: all duplicates.
	res, err = Merge(c, NewFingerprintSet(3, 5000), clock)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicates != 5000 || res.New != 0 {
		t.Fatalf("repeat merge: %+v", res)
	}
}
