// Package dedup implements the deduplication/backup scenario of §3: merging
// the fingerprint index of one dataset into a larger one. "To merge a
// smaller index into a larger one, fingerprints from the latter dataset
// need to be looked up, and the larger index updated with any new
// information. We estimate that merging fingerprints into a larger index
// using Berkeley-DB could take as long as 2hrs. In contrast, our CLAM
// prototypes can help the merge finish in under 2mins."
//
// Fingerprints are full SHA-1-sized byte strings and the index stores a
// variable-length chunk locator per fingerprint (container + byte range) —
// the record a real dedup index keeps. The clam byte-keyed Store serves
// this directly; the Berkeley-DB baseline truncates fingerprints to 64
// bits through an adapter, exactly the compromise the old 8-byte API
// forced on every caller.
//
// The merge walks every fingerprint of the incoming (smaller) index,
// looks it up in the destination index, and inserts it if absent — a
// lookup-heavy, insert-heavy random workload that is exactly where
// BufferHash's batched writes and Bloom-filtered lookups pay off.
package dedup

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/hashutil"
	"repro/internal/vclock"
)

// FingerprintBytes is the size of a chunk fingerprint (SHA-1).
const FingerprintBytes = 20

// Index is the fingerprint store being merged into (a clam.Store, or the
// BDB baseline behind an adapter): fingerprint bytes → chunk locator.
type Index interface {
	Put(fp, locator []byte) error
	Get(fp []byte) ([]byte, bool, error)
}

// BatchIndex is implemented by indexes whose lookups and inserts can be
// batched into overlapped submissions (clam.Store). Merge feeds such
// indexes window-at-a-time, so the index page probes — and the value-log
// record fetches behind the duplicate hits — overlap across the device's
// queue lanes instead of paying one blocking round trip per fingerprint.
type BatchIndex interface {
	Index
	GetBatch(ctx context.Context, fps [][]byte) ([][]byte, []bool, error)
	PutBatch(ctx context.Context, fps, locators [][]byte) error
}

// ProbeIndex is implemented by indexes offering existence probes that stop
// at the index hit and skip the record fetch (clam.Store.Contains). A
// dedup merge only asks "have I seen this fingerprint", so the probe's
// fingerprint-collision false positive rate — which the paper accepts at
// 32–64-bit fingerprints — merely misclassifies a chunk as duplicate, the
// same outcome a true fingerprint collision produces in any dedup system.
type ProbeIndex interface {
	Contains(fp []byte) (bool, error)
}

// BatchProbeIndex is the batched ProbeIndex (clam.Store.ContainsBatch).
type BatchProbeIndex interface {
	ContainsBatch(ctx context.Context, fps [][]byte) ([]bool, error)
}

// mergeWindow is the batched-merge window size.
const mergeWindow = 1024

// FingerprintSet is a deterministic synthetic set of chunk fingerprints,
// standing in for a dataset's index (DESIGN.md §3: synthetic stand-ins for
// proprietary dedup corpora).
type FingerprintSet struct {
	seed uint64
	n    int64
}

// NewFingerprintSet describes n fingerprints derived from seed.
func NewFingerprintSet(seed uint64, n int64) *FingerprintSet {
	return &FingerprintSet{seed: seed, n: n}
}

// Len returns the set size.
func (s *FingerprintSet) Len() int64 { return s.n }

// At returns the i-th fingerprint: 20 pseudo-SHA-1 bytes derived from the
// set seed.
func (s *FingerprintSet) At(i int64) []byte {
	fp := make([]byte, FingerprintBytes)
	binary.LittleEndian.PutUint64(fp[0:8], hashutil.Hash64Seed(uint64(i), s.seed))
	binary.LittleEndian.PutUint64(fp[8:16], hashutil.Hash64Seed(uint64(i), s.seed^0xfeedface))
	binary.LittleEndian.PutUint32(fp[16:20], uint32(hashutil.Hash64Seed(uint64(i), s.seed^0x1234abcd)))
	return fp
}

// LocatorAt returns the i-th fingerprint's chunk locator — the
// variable-length "where the chunk lives" record the index stores:
// container, offset, length.
func (s *FingerprintSet) LocatorAt(i int64) []byte {
	return fmt.Appendf(nil, "container-%05d:%010x+%d", i>>10, i<<13, 4096+(i*97)%8192)
}

// Result summarizes a merge.
type Result struct {
	Scanned    int64
	New        int64
	Duplicates int64
	// Elapsed is the virtual time the merge took.
	Elapsed time.Duration
}

// Rate returns merged fingerprints per second of virtual time.
func (r Result) Rate() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Scanned) / r.Elapsed.Seconds()
}

// source is the common surface of FingerprintSet and OverlappingSet.
type source interface {
	Len() int64
	At(i int64) []byte
	LocatorAt(i int64) []byte
}

// merge folds src into dst: look up each fingerprint, insert the locator
// for the new ones. Batch-capable indexes are driven window-at-a-time; the
// per-fingerprint outcome (New vs Duplicate) is identical to the serial
// walk — a fingerprint repeated within one window counts as a duplicate,
// exactly as it would after the serial walk's insert.
func merge(dst Index, src source, clock *vclock.Clock) (Result, error) {
	var res Result
	w := clock.StartWatch()
	if b, ok := dst.(BatchIndex); ok {
		err := mergeBatched(b, src, &res)
		res.Elapsed = w.Elapsed()
		return res, err
	}
	probe, canProbe := dst.(ProbeIndex)
	for i := int64(0); i < src.Len(); i++ {
		fp := src.At(i)
		res.Scanned++
		var found bool
		var err error
		if canProbe {
			// The duplicate check needs only existence: the probe stops at
			// the index hit and skips the record read.
			found, err = probe.Contains(fp)
		} else {
			_, found, err = dst.Get(fp)
		}
		if err != nil {
			return res, fmt.Errorf("dedup: lookup: %w", err)
		}
		if found {
			res.Duplicates++
			continue
		}
		if err := dst.Put(fp, src.LocatorAt(i)); err != nil {
			return res, fmt.Errorf("dedup: insert: %w", err)
		}
		res.New++
	}
	res.Elapsed = w.Elapsed()
	return res, nil
}

// mergeBatched is the windowed merge path for batch-capable indexes.
func mergeBatched(dst BatchIndex, src source, res *Result) error {
	ctx := context.Background()
	fps := make([][]byte, 0, mergeWindow)
	locs := make([][]byte, 0, mergeWindow)
	newFps := make([][]byte, 0, mergeWindow)
	newLocs := make([][]byte, 0, mergeWindow)
	seen := make(map[string]bool, mergeWindow)
	for at := int64(0); at < src.Len(); at += mergeWindow {
		fps, locs = fps[:0], locs[:0]
		for i := at; i < min(at+mergeWindow, src.Len()); i++ {
			fps = append(fps, src.At(i))
			locs = append(locs, src.LocatorAt(i))
		}
		res.Scanned += int64(len(fps))
		var found []bool
		var err error
		if bp, ok := dst.(BatchProbeIndex); ok {
			// Existence is all the window needs; the batched probe pays only
			// the overlapped index reads, not the value-log record fetches.
			found, err = bp.ContainsBatch(ctx, fps)
		} else {
			_, found, err = dst.GetBatch(ctx, fps)
		}
		if err != nil {
			return fmt.Errorf("dedup: batched lookup: %w", err)
		}
		newFps, newLocs = newFps[:0], newLocs[:0]
		clear(seen)
		for i, ok := range found {
			if ok || seen[string(fps[i])] {
				res.Duplicates++
				continue
			}
			seen[string(fps[i])] = true
			newFps = append(newFps, fps[i])
			newLocs = append(newLocs, locs[i])
			res.New++
		}
		if len(newFps) == 0 {
			continue
		}
		if err := dst.PutBatch(ctx, newFps, newLocs); err != nil {
			return fmt.Errorf("dedup: batched insert: %w", err)
		}
	}
	return nil
}

// Merge folds the incoming fingerprint set into dst.
func Merge(dst Index, incoming *FingerprintSet, clock *vclock.Clock) (Result, error) {
	return merge(dst, incoming, clock)
}

// Populate bulk-inserts a fingerprint set into an index (building the
// "large" destination index before a merge).
func Populate(dst Index, set *FingerprintSet) error {
	for i := int64(0); i < set.Len(); i++ {
		if err := dst.Put(set.At(i), set.LocatorAt(i)); err != nil {
			return fmt.Errorf("dedup: populate: %w", err)
		}
	}
	return nil
}

// OverlappingSet is an incoming set of n fingerprints of which ~overlap
// fraction collide with base (sharing its seed and index space).
type OverlappingSet struct {
	base    *FingerprintSet
	fresh   *FingerprintSet
	overlap float64
	n       int64
}

// NewOverlappingSet builds an incoming set with the given overlap fraction
// against base.
func NewOverlappingSet(base *FingerprintSet, freshSeed uint64, n int64, overlap float64) *OverlappingSet {
	return &OverlappingSet{
		base:    base,
		fresh:   NewFingerprintSet(freshSeed, n),
		overlap: overlap,
		n:       n,
	}
}

// Len returns the set size.
func (o *OverlappingSet) Len() int64 { return o.n }

// At returns the i-th fingerprint: a duplicate of a base fingerprint for
// the first overlap·n indexes, fresh otherwise.
func (o *OverlappingSet) At(i int64) []byte {
	if float64(i) < o.overlap*float64(o.n) && o.base.Len() > 0 {
		return o.base.At(i % o.base.Len())
	}
	return o.fresh.At(i)
}

// LocatorAt mirrors At's index space.
func (o *OverlappingSet) LocatorAt(i int64) []byte {
	if float64(i) < o.overlap*float64(o.n) && o.base.Len() > 0 {
		return o.base.LocatorAt(i % o.base.Len())
	}
	return o.fresh.LocatorAt(i)
}

// MergeOverlapping is Merge for an OverlappingSet.
func MergeOverlapping(dst Index, incoming *OverlappingSet, clock *vclock.Clock) (Result, error) {
	return merge(dst, incoming, clock)
}
