// Package dedup implements the deduplication/backup scenario of §3: merging
// the fingerprint index of one dataset into a larger one. "To merge a
// smaller index into a larger one, fingerprints from the latter dataset
// need to be looked up, and the larger index updated with any new
// information. We estimate that merging fingerprints into a larger index
// using Berkeley-DB could take as long as 2hrs. In contrast, our CLAM
// prototypes can help the merge finish in under 2mins."
//
// The merge walks every fingerprint of the incoming (smaller) index,
// looks it up in the destination index, and inserts it if absent — a
// lookup-heavy, insert-heavy random workload that is exactly where
// BufferHash's batched writes and Bloom-filtered lookups pay off.
package dedup

import (
	"fmt"
	"time"

	"repro/internal/hashutil"
	"repro/internal/vclock"
)

// Index is the fingerprint store being merged into (CLAM or BDB).
type Index interface {
	Insert(key, value uint64) error
	Lookup(key uint64) (uint64, bool, error)
}

// FingerprintSet is a deterministic synthetic set of chunk fingerprints,
// standing in for a dataset's index (DESIGN.md §3: synthetic stand-ins for
// proprietary dedup corpora).
type FingerprintSet struct {
	seed uint64
	n    int64
}

// NewFingerprintSet describes n fingerprints derived from seed.
func NewFingerprintSet(seed uint64, n int64) *FingerprintSet {
	return &FingerprintSet{seed: seed, n: n}
}

// Len returns the set size.
func (s *FingerprintSet) Len() int64 { return s.n }

// At returns the i-th fingerprint.
func (s *FingerprintSet) At(i int64) uint64 {
	fp := hashutil.Hash64Seed(uint64(i), s.seed)
	if fp == 0 {
		fp = 1
	}
	return fp
}

// Result summarizes a merge.
type Result struct {
	Scanned    int64
	New        int64
	Duplicates int64
	// Elapsed is the virtual time the merge took.
	Elapsed time.Duration
}

// Rate returns merged fingerprints per second of virtual time.
func (r Result) Rate() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Scanned) / r.Elapsed.Seconds()
}

// Merge folds the incoming fingerprint set into dst, overlapping an
// existing population by reusing overlapSeed for a prefix of the set when
// overlap > 0 is requested at generation time (see MakeOverlapping).
func Merge(dst Index, incoming *FingerprintSet, clock *vclock.Clock) (Result, error) {
	var res Result
	w := clock.StartWatch()
	for i := int64(0); i < incoming.Len(); i++ {
		fp := incoming.At(i)
		res.Scanned++
		_, found, err := dst.Lookup(fp)
		if err != nil {
			return res, fmt.Errorf("dedup: lookup: %w", err)
		}
		if found {
			res.Duplicates++
			continue
		}
		if err := dst.Insert(fp, uint64(i)); err != nil {
			return res, fmt.Errorf("dedup: insert: %w", err)
		}
		res.New++
	}
	res.Elapsed = w.Elapsed()
	return res, nil
}

// Populate bulk-inserts a fingerprint set into an index (building the
// "large" destination index before a merge).
func Populate(dst Index, set *FingerprintSet) error {
	for i := int64(0); i < set.Len(); i++ {
		if err := dst.Insert(set.At(i), uint64(i)); err != nil {
			return fmt.Errorf("dedup: populate: %w", err)
		}
	}
	return nil
}

// MakeOverlapping returns an incoming set of n fingerprints of which
// ~overlap fraction collide with base (sharing its seed and index space).
type OverlappingSet struct {
	base    *FingerprintSet
	fresh   *FingerprintSet
	overlap float64
	n       int64
}

// NewOverlappingSet builds an incoming set with the given overlap fraction
// against base.
func NewOverlappingSet(base *FingerprintSet, freshSeed uint64, n int64, overlap float64) *OverlappingSet {
	return &OverlappingSet{
		base:    base,
		fresh:   NewFingerprintSet(freshSeed, n),
		overlap: overlap,
		n:       n,
	}
}

// Len returns the set size.
func (o *OverlappingSet) Len() int64 { return o.n }

// At returns the i-th fingerprint: a duplicate of a base fingerprint for
// the first overlap·n indexes, fresh otherwise.
func (o *OverlappingSet) At(i int64) uint64 {
	if float64(i) < o.overlap*float64(o.n) && o.base.Len() > 0 {
		return o.base.At(i % o.base.Len())
	}
	return o.fresh.At(i)
}

// MergeOverlapping is Merge for an OverlappingSet.
func MergeOverlapping(dst Index, incoming *OverlappingSet, clock *vclock.Clock) (Result, error) {
	var res Result
	w := clock.StartWatch()
	for i := int64(0); i < incoming.Len(); i++ {
		fp := incoming.At(i)
		res.Scanned++
		_, found, err := dst.Lookup(fp)
		if err != nil {
			return res, fmt.Errorf("dedup: lookup: %w", err)
		}
		if found {
			res.Duplicates++
			continue
		}
		if err := dst.Insert(fp, uint64(i)); err != nil {
			return res, fmt.Errorf("dedup: insert: %w", err)
		}
		res.New++
	}
	res.Elapsed = w.Elapsed()
	return res, nil
}
