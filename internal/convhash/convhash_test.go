package convhash

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ssd"
	"repro/internal/vclock"
)

func newTable(t testing.TB) (*Table, *vclock.Clock, *ssd.SSD) {
	t.Helper()
	clock := vclock.New()
	dev := ssd.New(ssd.IntelX18M(), 32<<20, clock)
	tb, err := New(dev, 9)
	if err != nil {
		t.Fatal(err)
	}
	return tb, clock, dev
}

func TestInsertLookup(t *testing.T) {
	tb, _, _ := newTable(t)
	if err := tb.Insert(11, 110); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tb.Lookup(11)
	if err != nil || !ok || v != 110 {
		t.Fatalf("Lookup = %d %v %v", v, ok, err)
	}
	if _, ok, _ := tb.Lookup(12); ok {
		t.Fatal("phantom key")
	}
}

func TestOverwrite(t *testing.T) {
	tb, _, _ := newTable(t)
	tb.Insert(1, 1)
	tb.Insert(1, 2)
	if v, _, _ := tb.Lookup(1); v != 2 {
		t.Fatalf("overwrite: %d", v)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestZeroKey(t *testing.T) {
	tb, _, _ := newTable(t)
	if err := tb.Insert(0, 1); !errors.Is(err, ErrZeroKey) {
		t.Fatal("zero key accepted")
	}
}

func TestBulkAgainstMap(t *testing.T) {
	tb, _, _ := newTable(t)
	rng := rand.New(rand.NewSource(1))
	ref := map[uint64]uint64{}
	for i := 0; i < 50000; i++ {
		k := rng.Uint64() | 1
		v := rng.Uint64()
		if err := tb.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	n := 0
	for k, v := range ref {
		got, ok, err := tb.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got != v {
			t.Fatalf("key %#x: (%d, %v), want %d", k, got, ok, v)
		}
		if n++; n > 5000 {
			break
		}
	}
}

func TestEveryInsertIsReadModifyWrite(t *testing.T) {
	// §4: a conventional hash table violates P1-P3 — one random page read
	// plus one random page write per insert.
	tb, _, dev := newTable(t)
	rng := rand.New(rand.NewSource(2))
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tb.Insert(rng.Uint64()|1, 1); err != nil {
			t.Fatal(err)
		}
	}
	c := dev.Counters()
	if c.Writes < n {
		t.Fatalf("%d device writes for %d inserts: unbuffered baseline must not batch", c.Writes, n)
	}
	if c.Reads < n {
		t.Fatalf("%d device reads for %d inserts", c.Reads, n)
	}
}

func TestSustainedInsertLatencyDegrades(t *testing.T) {
	// §7.3.1: "without buffering, all insertions go to flash, yielding an
	// average insertion latency of ~4.8ms at high insert rate ... even at
	// low insert rate, average insertion latency is ~0.3ms".
	clock := vclock.New()
	dev := ssd.New(ssd.IntelX18M(), 8<<20, clock)
	tb, err := New(dev, 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// Warm-up: touch (nearly) every page so the whole logical space is
	// live, as it would be with a full fingerprint table.
	for i := 0; i < 30000; i++ {
		if err := tb.Insert(rng.Uint64()|1, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Sustained phase: backlogged inserts.
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		w := clock.StartWatch()
		if err := tb.Insert(rng.Uint64()|1, 1); err != nil {
			t.Fatal(err)
		}
		total += w.Elapsed()
	}
	sustained := float64(total/time.Duration(n)) / float64(time.Millisecond)
	// Low-rate phase: 1 ms of idle between inserts lets the FTL clean.
	total = 0
	const m = 500
	for i := 0; i < m; i++ {
		clock.Advance(time.Millisecond)
		w := clock.StartWatch()
		if err := tb.Insert(rng.Uint64()|1, 1); err != nil {
			t.Fatal(err)
		}
		total += w.Elapsed()
	}
	idle := float64(total/time.Duration(m)) / float64(time.Millisecond)
	t.Logf("unbuffered inserts: sustained %.2f ms (paper ~4.8), low-rate %.2f ms (paper ~0.3)", sustained, idle)
	if sustained < 1.0 {
		t.Errorf("sustained unbuffered inserts = %.2f ms; want multi-ms degradation", sustained)
	}
	if idle > sustained/2 {
		t.Errorf("low-rate inserts (%.2f ms) not clearly faster than sustained (%.2f ms)", idle, sustained)
	}
}

func TestDeviceTooSmall(t *testing.T) {
	clock := vclock.New()
	dev := ssd.New(ssd.IntelX18M(), 4096, clock)
	if _, err := New(dev, 1); err == nil {
		// 4096 rounds up to one block = 32 pages, fine; force smaller via
		// a page-sized capacity is impossible with block rounding, so
		// just check construction succeeded.
		t.Skip("block rounding keeps device usable")
	}
}
