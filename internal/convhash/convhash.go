// Package convhash implements the conventional (unbuffered) hash table
// directly on flash that §4 of the paper argues against and §7.3.1 measures
// as the "without buffering" ablation: every insert is an in-place
// read-modify-write of the page holding the key's slot — a small random
// write — and every lookup is a random page read.
//
// The table uses open addressing with linear probing at page granularity:
// a key hashes to a slot; its page is probed first, overflowing into the
// following page(s). No DRAM is used beyond one page of scratch (the paper:
// "a memory buffer is practically useless for external hashing" [43]).
package convhash

import (
	"errors"
	"fmt"

	"repro/internal/hashutil"
	"repro/internal/storage"
)

// Errors.
var (
	ErrFull    = errors.New("convhash: table full")
	ErrZeroKey = errors.New("convhash: zero key is reserved")
)

// maxProbePages bounds linear probing before declaring the table full.
const maxProbePages = 8

// Table is an unbuffered on-flash hash table. Not safe for concurrent use.
type Table struct {
	dev          storage.Device
	seed         uint64
	pageSize     int
	slotsPerPage int
	nPages       int64
	count        int64
	maxCount     int64
	scratch      []byte
	stats        Stats
}

// Stats counts table operations.
type Stats struct {
	Inserts, Lookups, Hits uint64
	PageReads, PageWrites  uint64
}

// New lays a table across the whole device, capped at 70% occupancy.
func New(dev storage.Device, seed uint64) (*Table, error) {
	g := dev.Geometry()
	ps := g.PageSize
	nPages := g.Capacity / int64(ps)
	if nPages < 2 {
		return nil, fmt.Errorf("convhash: device too small (%d pages)", nPages)
	}
	slots := ps / hashutil.EntrySize
	return &Table{
		dev:          dev,
		seed:         seed,
		pageSize:     ps,
		slotsPerPage: slots,
		nPages:       nPages,
		maxCount:     nPages * int64(slots) * 7 / 10,
		scratch:      make([]byte, ps),
	}, nil
}

// Stats returns operation counters.
func (t *Table) Stats() Stats { return t.stats }

// Len returns the number of stored entries.
func (t *Table) Len() int64 { return t.count }

func (t *Table) homePage(key uint64) int64 {
	return int64(hashutil.Hash64Seed(key, t.seed) % uint64(t.nPages))
}

func (t *Table) readPage(id int64) error {
	_, err := t.dev.ReadAt(t.scratch, id*int64(t.pageSize))
	t.stats.PageReads++
	return err
}

func (t *Table) writePage(id int64) error {
	_, err := t.dev.WriteAt(t.scratch, id*int64(t.pageSize))
	t.stats.PageWrites++
	return err
}

// Insert stores (key, value) with an in-place page rewrite.
func (t *Table) Insert(key, value uint64) error {
	if key == 0 {
		return ErrZeroKey
	}
	if t.count >= t.maxCount {
		return ErrFull
	}
	t.stats.Inserts++
	home := t.homePage(key)
	for probe := int64(0); probe < maxProbePages; probe++ {
		id := (home + probe) % t.nPages
		if err := t.readPage(id); err != nil {
			return err
		}
		freeSlot := -1
		for i := 0; i < t.slotsPerPage; i++ {
			k, _ := hashutil.GetEntry(t.scratch[i*hashutil.EntrySize:])
			if k == key {
				hashutil.PutEntry(t.scratch[i*hashutil.EntrySize:], key, value)
				return t.writePage(id)
			}
			if k == 0 && freeSlot < 0 {
				freeSlot = i
			}
		}
		if freeSlot >= 0 {
			hashutil.PutEntry(t.scratch[freeSlot*hashutil.EntrySize:], key, value)
			t.count++
			return t.writePage(id)
		}
	}
	return ErrFull
}

// Lookup returns the value stored under key.
func (t *Table) Lookup(key uint64) (uint64, bool, error) {
	if key == 0 {
		return 0, false, ErrZeroKey
	}
	t.stats.Lookups++
	home := t.homePage(key)
	for probe := int64(0); probe < maxProbePages; probe++ {
		id := (home + probe) % t.nPages
		if err := t.readPage(id); err != nil {
			return 0, false, err
		}
		sawFree := false
		for i := 0; i < t.slotsPerPage; i++ {
			k, v := hashutil.GetEntry(t.scratch[i*hashutil.EntrySize:])
			if k == key {
				t.stats.Hits++
				return v, true, nil
			}
			if k == 0 {
				sawFree = true
			}
		}
		if sawFree {
			// A free slot in the probe path means the key was never
			// pushed further.
			return 0, false, nil
		}
	}
	return 0, false, nil
}
