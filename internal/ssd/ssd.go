// Package ssd models a solid-state disk behind a Flash Translation Layer.
//
// Two FTL designs are provided, matching the paper's two devices (§7.1):
//
//   - PageMapped: a log-structured page-level FTL with greedy garbage
//     collection and over-provisioning, modeling the Intel X18-M ("new
//     generation"). Sustained small random writes exhaust the erased-block
//     pool; once below the low watermark, the next I/O — read or write —
//     blocks while the FTL reclaims space, reproducing the paper's key
//     observation (§7.2.2) that Berkeley-DB on an Intel SSD sees ~4.6 ms
//     lookups under high write load even though a clean random read takes
//     0.15 ms. Conversely, cyclic sequential overwrites (BufferHash's write
//     pattern) leave victims fully invalid, so cleaning costs almost
//     nothing.
//
//   - BlockMapped: a block-level FTL modeling the Transcend TS32GSSD25
//     ("old generation"). Sequential appends within an erase block are
//     cheap; any out-of-order write forces a read-modify-write of the whole
//     128 KB block, which is why small random writes cost tens of
//     milliseconds (α < 1 in §6.3: sequentially writing a 128 KB buffer is
//     cheaper than one random sector write).
//
// Latency parameters are calibrated against the paper's reported numbers;
// see the Intel/Transcend profile constructors.
package ssd

import (
	"fmt"
	"math"
	"time"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// MappingMode selects the FTL design.
type MappingMode int

// FTL designs.
const (
	// PageMapped is a log-structured page-level FTL with greedy GC.
	PageMapped MappingMode = iota
	// BlockMapped is a block-level FTL with read-modify-write updates.
	BlockMapped
)

// Profile holds the calibrated parameters of an SSD model.
type Profile struct {
	Name       string
	SectorSize int // logical sector size in bytes (host I/O granularity)
	PageSize   int // internal flash page size in bytes
	BlockPages int // internal pages per erase block

	// Host-visible service costs (linear model, §6.1).
	ReadFixed    time.Duration
	ReadPerByte  time.Duration
	WriteFixed   time.Duration
	WritePerByte time.Duration

	// Internal costs used by the FTL.
	EraseTime        time.Duration // full block erase
	PageMoveTime     time.Duration // GC relocation of one valid page
	InternalReadTime time.Duration // per-page read during block-mapped RMW

	// EraseOverlap divides the erase cost of fully-invalid victims,
	// modeling multi-channel overlap of erases with host transfers. Only
	// used by the page-mapped FTL. Must be ≥ 1.
	EraseOverlap int

	// Page-mapped FTL pool management.
	OverProvision float64 // spare physical capacity fraction (e.g. 0.04)
	GCLowBlocks   int     // run synchronous GC when free blocks ≤ low
	GCHighBlocks  int     // reclaim until free blocks ≥ high

	// IdleGCBlocksPerSec is the background cleaning rate: blocks reclaimed
	// per second of host idle time (virtual). This is what makes the SSD
	// fast again under "light" load (§7.2.2).
	IdleGCBlocksPerSec float64

	// LogBlockSlots models the log-block staging of old block-mapped
	// FTLs: out-of-order writes append cheaply to a log block, and every
	// LogBlockSlots-th such write pays the full read-modify-write merge.
	// 1 (or 0) means every out-of-order write merges immediately.
	LogBlockSlots int

	// QueueDepth is the number of internal queue lanes a batched read
	// submission can overlap across (NCQ over independent flash channels).
	// 1 (or 0) means batched reads serialize like a loop over ReadAt, minus
	// the fixed cost on sequential runs.
	QueueDepth int

	Mapping MappingMode
}

// BlockSize returns the erase-block size in bytes.
func (p Profile) BlockSize() int { return p.PageSize * p.BlockPages }

// IntelX18M returns the page-mapped profile calibrated to the paper's Intel
// SSD numbers: 4 KB random read ≈ 0.15 ms, clean 4 KB random write ≈ 0.27 ms,
// sequential 128 KB write ≈ 2.5 ms (paper's worst-case flush: 2.72 ms), and
// multi-millisecond I/Os once sustained random writes force synchronous GC.
func IntelX18M() Profile {
	return Profile{
		Name:               "intel-x18m",
		SectorSize:         4096,
		PageSize:           4096,
		BlockPages:         32,
		ReadFixed:          120 * time.Microsecond,
		ReadPerByte:        8 * time.Nanosecond,
		WriteFixed:         200 * time.Microsecond,
		WritePerByte:       17 * time.Nanosecond,
		EraseTime:          2 * time.Millisecond,
		PageMoveTime:       250 * time.Microsecond,
		InternalReadTime:   60 * time.Microsecond,
		EraseOverlap:       4,
		OverProvision:      0.04,
		GCLowBlocks:        2,
		GCHighBlocks:       6,
		IdleGCBlocksPerSec: 2000,
		QueueDepth:         8,
		Mapping:            PageMapped,
	}
}

// TranscendTS32 returns the block-mapped profile calibrated to the paper's
// Transcend SSD numbers: 4 KB read ≈ 0.55 ms, sequential 128 KB buffer flush
// ≈ 28 ms (paper: ~30 ms worst case, 0.007 ms amortized over 4096 entries),
// and ~30 ms small random writes via whole-block read-modify-write.
func TranscendTS32() Profile {
	return Profile{
		Name:               "transcend-ts32",
		SectorSize:         4096,
		PageSize:           4096,
		BlockPages:         32,
		ReadFixed:          500 * time.Microsecond,
		ReadPerByte:        12 * time.Nanosecond,
		WriteFixed:         1 * time.Millisecond,
		WritePerByte:       190 * time.Nanosecond,
		EraseTime:          2 * time.Millisecond,
		PageMoveTime:       800 * time.Microsecond,
		InternalReadTime:   100 * time.Microsecond,
		EraseOverlap:       1,
		OverProvision:      0.02,
		GCLowBlocks:        1,
		GCHighBlocks:       2,
		IdleGCBlocksPerSec: 200,
		LogBlockSlots:      4,
		QueueDepth:         1, // pre-NCQ device: batched reads only save seeks
		Mapping:            BlockMapped,
	}
}

// SSD is a simulated solid-state disk. It implements storage.Device and
// storage.Trimmer. Not safe for concurrent use.
type SSD struct {
	prof     Profile
	clock    *vclock.Clock
	store    *storage.SparseStore
	counters storage.Counters
	fault    storage.FaultFunc

	// Virtual time at which the device last finished servicing an op;
	// the gap to the next op is idle time available for background GC.
	busyUntil time.Duration

	// --- page-mapped state ---
	nLogicalPages  int64
	nPhysBlocks    int64
	l2p            []int64 // logical page -> physical page (-1 = unmapped)
	p2l            []int64 // physical page -> logical page (-1 = invalid)
	blockValid     []int32 // per physical block: count of valid pages
	blockSealed    []bool  // block fully programmed (candidate for GC)
	freeBlocks     []int64 // erased, empty physical blocks
	activeBlock    int64
	activeNextPage int32
	idleCredit     float64 // fractional blocks of background GC earned

	// --- block-mapped state ---
	frontier    []int32 // per logical block: programmed page count
	everWritten []bool  // per logical block: needs erase before reuse
	logWrites   int64   // out-of-order writes staged in log blocks

	batchSvc []time.Duration // ReadBatch per-request service-time scratch
}

// New builds an SSD with the given usable capacity. Capacity is rounded up
// to a whole number of erase blocks.
func New(prof Profile, capacity int64, clock *vclock.Clock) *SSD {
	bs := int64(prof.BlockSize())
	if capacity <= 0 {
		panic("ssd: non-positive capacity")
	}
	if capacity%bs != 0 {
		capacity += bs - capacity%bs
	}
	if prof.EraseOverlap < 1 {
		prof.EraseOverlap = 1
	}
	s := &SSD{
		prof:  prof,
		clock: clock,
		store: storage.NewSparseStore(prof.SectorSize, 0),
	}
	nLogicalBlocks := capacity / bs
	s.nLogicalPages = nLogicalBlocks * int64(prof.BlockPages)
	switch prof.Mapping {
	case PageMapped:
		spare := int64(math.Ceil(float64(nLogicalBlocks) * prof.OverProvision))
		if spare < int64(prof.GCHighBlocks)+1 {
			spare = int64(prof.GCHighBlocks) + 1
		}
		s.nPhysBlocks = nLogicalBlocks + spare
		nPhysPages := s.nPhysBlocks * int64(prof.BlockPages)
		s.l2p = make([]int64, s.nLogicalPages)
		s.p2l = make([]int64, nPhysPages)
		for i := range s.l2p {
			s.l2p[i] = -1
		}
		for i := range s.p2l {
			s.p2l[i] = -1
		}
		s.blockValid = make([]int32, s.nPhysBlocks)
		s.blockSealed = make([]bool, s.nPhysBlocks)
		s.freeBlocks = make([]int64, 0, s.nPhysBlocks)
		for b := s.nPhysBlocks - 1; b >= 1; b-- {
			s.freeBlocks = append(s.freeBlocks, b)
		}
		s.activeBlock = 0
		s.activeNextPage = 0
	case BlockMapped:
		s.frontier = make([]int32, nLogicalBlocks)
		s.everWritten = make([]bool, nLogicalBlocks)
	default:
		panic(fmt.Sprintf("ssd: unknown mapping mode %d", prof.Mapping))
	}
	return s
}

// SetFault installs a fault-injection hook (nil clears it).
func (s *SSD) SetFault(f storage.FaultFunc) { s.fault = f }

// Profile returns the device profile.
func (s *SSD) Profile() Profile { return s.prof }

// Geometry implements storage.Device. BlockSize is exposed so applications
// can align batched writes to erase blocks, as BufferHash does.
func (s *SSD) Geometry() storage.Geometry {
	return storage.Geometry{
		Capacity:  s.nLogicalPages / int64(s.prof.BlockPages) * int64(s.prof.BlockSize()),
		PageSize:  s.prof.SectorSize,
		BlockSize: s.prof.BlockSize(),
	}
}

// Counters implements storage.Device.
func (s *SSD) Counters() storage.Counters { return s.counters }

// FreeBlocks returns the current erased-block pool size (page-mapped FTL).
func (s *SSD) FreeBlocks() int { return len(s.freeBlocks) }

// finish charges lat for an op, advances the clock and updates accounting.
func (s *SSD) finish(lat time.Duration) time.Duration {
	s.counters.BusyTime += lat
	s.clock.Advance(lat)
	s.busyUntil = s.clock.Now()
	return lat
}

// creditIdle converts host idle time into background GC budget.
func (s *SSD) creditIdle() {
	now := s.clock.Now()
	if now <= s.busyUntil {
		return
	}
	idle := now - s.busyUntil
	s.busyUntil = now
	s.idleCredit += idle.Seconds() * s.prof.IdleGCBlocksPerSec
	// Background cleaning: reclaim for free while credit lasts and the
	// pool is not full.
	for s.idleCredit >= 1 && s.prof.Mapping == PageMapped {
		if len(s.freeBlocks) >= int(s.nPhysBlocks)/2 || !s.reclaimOne(nil) {
			break
		}
		s.idleCredit--
	}
	if s.idleCredit > 1e6 {
		s.idleCredit = 1e6
	}
}

// ReadAt implements storage.Device. Reads are sector-aligned. A read that
// arrives while the erased-block pool is depleted pays for the pending
// reclamation first (I/Os block during GC, §7.2.2).
func (s *SSD) ReadAt(p []byte, off int64) (time.Duration, error) {
	g := s.Geometry()
	if err := storage.CheckRange(g, off, int64(len(p)), 1); err != nil {
		return 0, err
	}
	if s.fault != nil {
		if err := s.fault(storage.OpRead, off, len(p)); err != nil {
			return 0, err
		}
	}
	s.creditIdle()
	var lat time.Duration
	if s.prof.Mapping == PageMapped {
		lat += s.gcIfNeeded()
	}
	// Charge whole sectors (P2).
	ss := int64(s.prof.SectorSize)
	first := off / ss
	last := (off + int64(len(p)) - 1) / ss
	if len(p) == 0 {
		last = first
	}
	lat += s.prof.ReadFixed + time.Duration((last-first+1)*ss)*s.prof.ReadPerByte
	s.store.ReadAt(p, off)
	s.counters.Reads++
	s.counters.BytesRead += uint64(len(p))
	return s.finish(lat), nil
}

// ReadBatch implements storage.BatchReader with the shared overlap model:
// requests are served in ascending address order, address-contiguous
// requests form sequential runs that skip the fixed command cost, and the
// per-request service times are overlapped across QueueDepth channel lanes
// (the batch costs the maximum lane total, not the sum). Any pending
// synchronous GC debt is paid once, up front, by the whole batch — exactly
// as a single arriving ReadAt would pay it (§7.2.2) — rather than once per
// request.
func (s *SSD) ReadBatch(reqs []storage.ReadReq) (time.Duration, error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	g := s.Geometry()
	for _, r := range reqs {
		if err := storage.CheckRange(g, r.Off, int64(len(r.P)), 1); err != nil {
			return 0, err
		}
		if s.fault != nil {
			if err := s.fault(storage.OpRead, r.Off, len(r.P)); err != nil {
				return 0, err
			}
		}
	}
	s.creditIdle()
	var base time.Duration
	if s.prof.Mapping == PageMapped {
		base = s.gcIfNeeded()
	}
	storage.SortReadReqs(reqs)
	ss := int64(s.prof.SectorSize)
	if cap(s.batchSvc) < len(reqs) {
		s.batchSvc = make([]time.Duration, len(reqs))
	}
	svc := s.batchSvc[:len(reqs)]
	prevEnd := int64(-1)
	for i, r := range reqs {
		first := r.Off / ss
		last := (r.Off + int64(len(r.P)) - 1) / ss
		if len(r.P) == 0 {
			last = first
		}
		lat := time.Duration((last-first+1)*ss) * s.prof.ReadPerByte
		if r.Off != prevEnd {
			lat += s.prof.ReadFixed // new run: command setup / channel switch
		}
		prevEnd = r.Off + int64(len(r.P))
		svc[i] = lat
		s.store.ReadAt(r.P, r.Off)
		s.counters.Reads++
		s.counters.BytesRead += uint64(len(r.P))
	}
	total := base + storage.OverlapLanes(svc, s.prof.QueueDepth)
	return s.finish(total), nil
}

// WriteAt implements storage.Device. Writes must be sector-aligned.
func (s *SSD) WriteAt(p []byte, off int64) (time.Duration, error) {
	g := s.Geometry()
	if err := storage.CheckRange(g, off, int64(len(p)), s.prof.SectorSize); err != nil {
		return 0, err
	}
	if s.fault != nil {
		if err := s.fault(storage.OpWrite, off, len(p)); err != nil {
			return 0, err
		}
	}
	s.creditIdle()
	var lat time.Duration
	switch s.prof.Mapping {
	case PageMapped:
		lat = s.writePageMapped(off, int64(len(p)))
	case BlockMapped:
		lat = s.writeBlockMapped(off, int64(len(p)))
	}
	s.store.WriteAt(p, off)
	s.counters.Writes++
	s.counters.BytesWritten += uint64(len(p))
	return s.finish(lat), nil
}

// WriteBatch implements storage.BatchWriter with the shared overlap model:
// requests are served in ascending address order, address-contiguous
// requests form sequential runs that skip the fixed command cost, and the
// per-request transfer times are overlapped across QueueDepth channel
// lanes. FTL bookkeeping runs per request exactly as WriteAt would run it;
// synchronous GC debt — pending reclamation plus any emergency reclaims the
// batch's own allocations force — is charged once to the whole batch and
// serializes ahead of the overlapped transfers, the same "GC blocks the
// device" behaviour a single arriving write exhibits (§7.2.2).
func (s *SSD) WriteBatch(reqs []storage.WriteReq) (time.Duration, error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	g := s.Geometry()
	for _, r := range reqs {
		if err := storage.CheckRange(g, r.Off, int64(len(r.P)), s.prof.SectorSize); err != nil {
			return 0, err
		}
		if s.fault != nil {
			if err := s.fault(storage.OpWrite, r.Off, len(r.P)); err != nil {
				return 0, err
			}
		}
	}
	s.creditIdle()
	storage.SortWriteReqs(reqs)
	var base time.Duration
	if s.prof.Mapping == PageMapped {
		base = s.gcIfNeeded()
	}
	if cap(s.batchSvc) < len(reqs) {
		s.batchSvc = make([]time.Duration, len(reqs))
	}
	svc := s.batchSvc[:len(reqs)]
	prevEnd := int64(-1)
	for i, r := range reqs {
		n := int64(len(r.P))
		var lat time.Duration
		switch s.prof.Mapping {
		case PageMapped:
			if n > 0 {
				s.allocRange(r.Off, n, &base)
			}
			lat = time.Duration(n) * s.prof.WritePerByte
		case BlockMapped:
			lat = s.blockMappedBody(r.Off, n)
		}
		if r.Off != prevEnd {
			lat += s.prof.WriteFixed // new run: command setup / channel switch
		}
		prevEnd = r.Off + n
		svc[i] = lat
		s.store.WriteAt(r.P, r.Off)
		s.counters.Writes++
		s.counters.BytesWritten += uint64(n)
	}
	total := base + storage.OverlapLanes(svc, s.prof.QueueDepth)
	return s.finish(total), nil
}

// Trim implements storage.Trimmer: it invalidates the mapping for the given
// sector-aligned range without charging host latency.
func (s *SSD) Trim(off, n int64) error {
	g := s.Geometry()
	if err := storage.CheckRange(g, off, n, s.prof.SectorSize); err != nil {
		return err
	}
	switch s.prof.Mapping {
	case PageMapped:
		ps := int64(s.prof.PageSize)
		for lp := off / ps; lp < (off+n)/ps; lp++ {
			s.invalidate(lp)
		}
	case BlockMapped:
		bs := int64(s.prof.BlockSize())
		for b := off / bs; b < (off+n+bs-1)/bs; b++ {
			s.frontier[b] = 0
		}
	}
	s.store.Drop(off, n)
	return nil
}

// --- page-mapped FTL ---

func (s *SSD) invalidate(lp int64) {
	pp := s.l2p[lp]
	if pp < 0 {
		return
	}
	s.l2p[lp] = -1
	s.p2l[pp] = -1
	s.blockValid[pp/int64(s.prof.BlockPages)]--
}

// allocPage places a logical page at the write frontier, returning true if a
// new active block had to be opened.
func (s *SSD) allocPage(lp int64) bool {
	opened := false
	if s.activeNextPage == int32(s.prof.BlockPages) {
		s.blockSealed[s.activeBlock] = true
		last := len(s.freeBlocks) - 1
		s.activeBlock = s.freeBlocks[last]
		s.freeBlocks = s.freeBlocks[:last]
		s.blockSealed[s.activeBlock] = false
		s.activeNextPage = 0
		opened = true
	}
	pp := s.activeBlock*int64(s.prof.BlockPages) + int64(s.activeNextPage)
	s.activeNextPage++
	s.l2p[lp] = pp
	s.p2l[pp] = lp
	s.blockValid[s.activeBlock]++
	return opened
}

// reclaimOne garbage-collects the best victim block. If cost is non-nil the
// latency is added to it; with a nil cost the work is free (background GC).
// Returns false if no victim is available.
func (s *SSD) reclaimOne(cost *time.Duration) bool {
	victim := int64(-1)
	best := int32(math.MaxInt32)
	for b := int64(0); b < s.nPhysBlocks; b++ {
		if b == s.activeBlock || !s.blockSealed[b] {
			continue
		}
		// A fully-valid victim frees nothing; skipping it also guarantees
		// every reclamation makes net progress.
		if s.blockValid[b] < best && s.blockValid[b] < int32(s.prof.BlockPages) {
			best = s.blockValid[b]
			victim = b
		}
	}
	if victim < 0 {
		return false
	}
	// Relocate valid pages to the write frontier.
	moved := 0
	base := victim * int64(s.prof.BlockPages)
	for i := int64(0); i < int64(s.prof.BlockPages); i++ {
		lp := s.p2l[base+i]
		if lp < 0 {
			continue
		}
		s.p2l[base+i] = -1
		s.blockValid[victim]--
		s.allocPage(lp)
		moved++
	}
	if cost != nil {
		*cost += time.Duration(moved) * s.prof.PageMoveTime
		if moved == 0 {
			// Fully-invalid victim: the erase overlaps host transfers on
			// other channels.
			*cost += s.prof.EraseTime / time.Duration(s.prof.EraseOverlap)
		} else {
			*cost += s.prof.EraseTime
		}
	}
	s.counters.PagesMoved += uint64(moved)
	s.counters.Erases++
	s.blockSealed[victim] = false
	s.freeBlocks = append(s.freeBlocks, victim)
	return true
}

// gcIfNeeded runs synchronous reclamation when the pool is at or below the
// low watermark, returning the latency charged to the triggering op.
//
// Reclamation is incremental — one victim per triggering I/O — so while the
// pool stays low under sustained random writes, every arriving operation,
// read or write alike, pays a share of the cleaning. This is the mechanism
// behind the paper's observation that Berkeley-DB's lookups AND inserts both
// degrade to ~4.6–4.8 ms on the Intel SSD under high write load (§7.2.2).
func (s *SSD) gcIfNeeded() time.Duration {
	var cost time.Duration
	if len(s.freeBlocks) > s.prof.GCLowBlocks {
		return 0
	}
	s.counters.GCRuns++
	s.reclaimOne(&cost)
	// Emergency: never leave the pool empty.
	for iter := int64(0); len(s.freeBlocks) == 0 && iter < 2*s.nPhysBlocks; iter++ {
		if !s.reclaimOne(&cost) {
			break
		}
	}
	return cost
}

func (s *SSD) writePageMapped(off, n int64) time.Duration {
	lat := s.gcIfNeeded()
	if n == 0 {
		return lat + s.prof.WriteFixed
	}
	s.allocRange(off, n, &lat)
	lat += s.prof.WriteFixed + time.Duration(n)*s.prof.WritePerByte
	return lat
}

// allocRange invalidates and reallocates the logical pages of [off, off+n)
// at the write frontier, charging emergency reclamation to *cost. Shared by
// the single-write and batched-write paths so FTL state evolves identically.
func (s *SSD) allocRange(off, n int64, cost *time.Duration) {
	ps := int64(s.prof.PageSize)
	first := off / ps
	last := (off + n - 1) / ps
	for lp := first; lp <= last; lp++ {
		s.invalidate(lp)
		s.allocPage(lp)
		// Emergency-only reclamation mid-write: free just enough to keep
		// allocating. The remaining debt is paid by whichever I/O arrives
		// next (read or write), which is how sustained random writes end
		// up slowing reads too (§7.2.2).
		if len(s.freeBlocks) == 0 {
			s.counters.GCRuns++
			if !s.reclaimOne(cost) {
				break
			}
		}
	}
}

// --- block-mapped FTL ---

func (s *SSD) writeBlockMapped(off, n int64) time.Duration {
	return s.blockMappedBody(off, n) + s.prof.WriteFixed
}

// blockMappedBody is the block-mapped write cost and FTL bookkeeping
// without the per-command fixed overhead (which batched sequential runs
// pay only once).
func (s *SSD) blockMappedBody(off, n int64) time.Duration {
	if n == 0 {
		return 0
	}
	var lat time.Duration
	ps := int64(s.prof.PageSize)
	bs := int64(s.prof.BlockSize())
	bp := int32(s.prof.BlockPages)
	end := off + n
	for off < end {
		blk := off / bs
		startPage := int32((off % bs) / ps)
		segEnd := (blk + 1) * bs
		if segEnd > end {
			segEnd = end
		}
		segPages := int32((segEnd - off + ps - 1) / ps)
		f := s.frontier[blk]
		switch {
		case startPage == 0 && (f == 0 || f == bp):
			// Fresh cycle on this block: erase (if previously used), then
			// sequential program at host write speed.
			if s.everWritten[blk] {
				lat += s.prof.EraseTime
				s.counters.Erases++
			}
			lat += time.Duration(segEnd-off) * s.prof.WritePerByte
			s.frontier[blk] = segPages
		case startPage == f:
			// Pure append.
			lat += time.Duration(segEnd-off) * s.prof.WritePerByte
			s.frontier[blk] = f + segPages
		default:
			// Out-of-order update. The FTL stages it in a log block
			// (cheap sequential append); every LogBlockSlots-th such
			// write fills a log block and pays the full merge:
			// read valid pages + erase + reprogram the whole block.
			lat += time.Duration(segEnd-off) * s.prof.WritePerByte
			s.logWrites++
			slots := int64(s.prof.LogBlockSlots)
			if slots < 1 {
				slots = 1
			}
			if s.logWrites%slots == 0 {
				valid := f
				if valid > bp {
					valid = bp
				}
				lat += time.Duration(valid) * s.prof.InternalReadTime
				lat += s.prof.EraseTime
				lat += time.Duration(bp) * time.Duration(ps) * s.prof.WritePerByte
				s.counters.Erases++
				s.counters.PagesMoved += uint64(valid)
			}
			newF := startPage + segPages
			if newF < f {
				newF = f
			}
			s.frontier[blk] = newF
		}
		s.everWritten[blk] = true
		off = segEnd
	}
	return lat
}

var (
	_ storage.Device      = (*SSD)(nil)
	_ storage.Trimmer     = (*SSD)(nil)
	_ storage.BatchReader = (*SSD)(nil)
	_ storage.BatchWriter = (*SSD)(nil)
)
