package ssd

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/vclock"
)

const kib = 1024

func newIntel(capacity int64) (*SSD, *vclock.Clock) {
	clock := vclock.New()
	return New(IntelX18M(), capacity, clock), clock
}

func newTranscend(capacity int64) (*SSD, *vclock.Clock) {
	clock := vclock.New()
	return New(TranscendTS32(), capacity, clock), clock
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func TestGeometryRoundedToBlocks(t *testing.T) {
	s, _ := newIntel(100 * kib) // rounds up to 128 KiB
	if got := s.Geometry().Capacity; got != 128*kib {
		t.Fatalf("capacity = %d, want 128KiB", got)
	}
	if s.Geometry().PageSize != 4096 || s.Geometry().BlockSize != 128*kib {
		t.Fatalf("geometry = %+v", s.Geometry())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	for _, mk := range []func(int64) (*SSD, *vclock.Clock){newIntel, newTranscend} {
		s, _ := mk(1 << 20)
		data := make([]byte, 8192)
		for i := range data {
			data[i] = byte(i)
		}
		if _, err := s.WriteAt(data, 4096); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := s.ReadAt(got, 4096); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: round trip mismatch", s.Profile().Name)
		}
	}
}

func TestAlignmentEnforced(t *testing.T) {
	s, _ := newIntel(1 << 20)
	if _, err := s.WriteAt(make([]byte, 100), 0); !errors.Is(err, storage.ErrUnaligned) {
		t.Fatalf("unaligned write accepted: %v", err)
	}
	if _, err := s.WriteAt(make([]byte, 4096), 1<<20); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("out-of-range write accepted: %v", err)
	}
	// Byte-granularity reads are fine (charged per sector).
	s.WriteAt(make([]byte, 4096), 0)
	if _, err := s.ReadAt(make([]byte, 10), 5); err != nil {
		t.Fatalf("sub-sector read rejected: %v", err)
	}
}

func TestIntelCleanLatencyCalibration(t *testing.T) {
	s, _ := newIntel(16 << 20)
	s.WriteAt(make([]byte, 4096), 0)

	// 4 KB random read ≈ 0.15 ms (§7.2.2).
	lat, _ := s.ReadAt(make([]byte, 4096), 0)
	if m := ms(lat); m < 0.10 || m > 0.25 {
		t.Errorf("clean 4KB read = %.3f ms, want ≈0.15", m)
	}
	// Clean 4 KB random write ≈ 0.3 ms (§7.3.1 low-rate insert latency).
	lat, _ = s.WriteAt(make([]byte, 4096), 8192)
	if m := ms(lat); m < 0.15 || m > 0.45 {
		t.Errorf("clean 4KB write = %.3f ms, want ≈0.27", m)
	}
	// Sequential 128 KB write ≈ 2.5 ms (paper worst-case flush 2.72 ms).
	lat, _ = s.WriteAt(make([]byte, 128*kib), 128*kib)
	if m := ms(lat); m < 1.5 || m > 3.5 {
		t.Errorf("seq 128KB write = %.3f ms, want ≈2.5", m)
	}
}

func TestTranscendLatencyCalibration(t *testing.T) {
	s, _ := newTranscend(16 << 20)
	s.WriteAt(make([]byte, 128*kib), 0)

	// 4 KB read ≈ 0.55 ms.
	lat, _ := s.ReadAt(make([]byte, 4096), 0)
	if m := ms(lat); m < 0.4 || m > 0.7 {
		t.Errorf("4KB read = %.3f ms, want ≈0.55", m)
	}
	// Second-cycle sequential 128 KB write (erase + program) ≈ 28 ms.
	lat, _ = s.WriteAt(make([]byte, 128*kib), 0)
	if m := ms(lat); m < 20 || m > 35 {
		t.Errorf("cyclic 128KB write = %.3f ms, want ≈28", m)
	}
	// Out-of-order small writes: staged in log blocks, with every
	// LogBlockSlots-th write paying a whole-block merge. The mean should
	// land around 10 ms with a multi-tens-of-ms worst case (the paper's
	// Table 3 shows 18.4 ms/op for backlogged BDB inserts, which include
	// a bucket read as well).
	var total, worst time.Duration
	const n = 8
	for i := 0; i < n; i++ {
		lat, _ = s.WriteAt(make([]byte, 4096), int64(16+8*i)*4096)
		total += lat
		if lat > worst {
			worst = lat
		}
	}
	if m := ms(total / n); m < 4 || m > 20 {
		t.Errorf("random 4KB write mean = %.3f ms, want ≈10", m)
	}
	if m := ms(worst); m < 20 || m > 45 {
		t.Errorf("random 4KB write worst (merge) = %.3f ms, want ≈30", m)
	}
}

func TestTranscendAlphaLessThanOne(t *testing.T) {
	// §6.3: on old-generation SSDs, sequentially writing a whole 128 KB
	// buffer is CHEAPER than one small random write that triggers the
	// block merge (α < 1).
	s, _ := newTranscend(16 << 20)
	s.WriteAt(make([]byte, 128*kib), 0) // populate block 0
	seq, _ := s.WriteAt(make([]byte, 128*kib), 0)
	var worstRnd time.Duration
	for i := 0; i < 8; i++ {
		rnd, _ := s.WriteAt(make([]byte, 4096), int64(16+i*4)*4096)
		if rnd > worstRnd {
			worstRnd = rnd
		}
	}
	if seq >= worstRnd {
		t.Fatalf("alpha >= 1: seq 128KB %v, merging random 4KB %v", seq, worstRnd)
	}
}

func TestTranscendAppendIsCheap(t *testing.T) {
	s, _ := newTranscend(16 << 20)
	s.WriteAt(make([]byte, 4096), 0)
	app, _ := s.WriteAt(make([]byte, 4096), 4096) // append at frontier
	if m := ms(app); m > 3 {
		t.Fatalf("append write = %.3f ms, want cheap (<3ms)", m)
	}
}

// fillSequential writes the whole logical space once.
func fillSequential(t *testing.T, s *SSD) {
	t.Helper()
	g := s.Geometry()
	buf := make([]byte, 128*kib)
	for off := int64(0); off < g.Capacity; off += int64(len(buf)) {
		if _, err := s.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIntelSustainedRandomWriteStreamDegrades(t *testing.T) {
	// §7.2.2: under a high random-write rate the Intel SSD exhausts its
	// erased-block pool; each write then pays a share of synchronous GC.
	s, _ := newIntel(64 << 20)
	fillSequential(t, s)
	g := s.Geometry()
	rng := rand.New(rand.NewSource(7))
	nSectors := g.Capacity / 4096

	var wTotal time.Duration
	const ops = 8000
	buf := make([]byte, 4096)
	for i := 0; i < ops; i++ {
		lat, err := s.WriteAt(buf, rng.Int63n(nSectors)*4096)
		if err != nil {
			t.Fatal(err)
		}
		wTotal += lat
	}
	wMean := ms(wTotal / ops)
	t.Logf("write stream: mean %.3f ms, GC runs %d, pages moved %d",
		wMean, s.Counters().GCRuns, s.Counters().PagesMoved)
	if wMean < 1.0 {
		t.Errorf("write mean %.3f ms: random writes did not degrade (want ≥1ms, paper ~4.8)", wMean)
	}
	if s.Counters().GCRuns == 0 {
		t.Error("no GC runs under sustained random writes")
	}
	// A clean device writes the same sector in ~0.27 ms; sustained random
	// writes must be several times slower.
	clean, _ := newIntel(64 << 20)
	cleanLat, _ := clean.WriteAt(buf, 0)
	if wMean < 3*ms(cleanLat) {
		t.Errorf("sustained write mean %.3f ms < 3x clean %.3f ms", wMean, ms(cleanLat))
	}
}

func TestIntelReadsSlowedByWriteLoad(t *testing.T) {
	// §7.2.2: reads arriving while the pool is depleted block on
	// reclamation. (This is why Berkeley-DB — whose inserts are
	// read-modify-write — sees both lookups and inserts at ~4.6–4.8 ms.)
	s, _ := newIntel(64 << 20)
	fillSequential(t, s)
	g := s.Geometry()
	rng := rand.New(rand.NewSource(7))
	nSectors := g.Capacity / 4096

	var rTotal time.Duration
	const ops = 4000
	buf := make([]byte, 4096)
	for i := 0; i < ops; i++ {
		if _, err := s.WriteAt(buf, rng.Int63n(nSectors)*4096); err != nil {
			t.Fatal(err)
		}
		lat, err := s.ReadAt(buf, rng.Int63n(nSectors)*4096)
		if err != nil {
			t.Fatal(err)
		}
		rTotal += lat
	}
	rMean := ms(rTotal / ops)
	t.Logf("interleaved: read mean %.3f ms (clean read is 0.15 ms)", rMean)
	if rMean < 0.5 {
		t.Errorf("read mean %.3f ms: reads not slowed by GC backlog (want ≥0.5ms, paper ~4.6)", rMean)
	}
}

func TestIntelCyclicSequentialStaysFast(t *testing.T) {
	// BufferHash's write pattern: large sequential writes cycling through
	// the device leave GC victims fully invalid, so writes stay cheap even
	// after many device cycles.
	s, _ := newIntel(16 << 20)
	g := s.Geometry()
	buf := make([]byte, 128*kib)
	var total time.Duration
	n := 0
	for cycle := 0; cycle < 6; cycle++ {
		for off := int64(0); off < g.Capacity; off += int64(len(buf)) {
			lat, err := s.WriteAt(buf, off)
			if err != nil {
				t.Fatal(err)
			}
			total += lat
			n++
		}
	}
	mean := ms(total / time.Duration(n))
	t.Logf("cyclic sequential: mean %.3f ms per 128KB write, pages moved %d", mean, s.Counters().PagesMoved)
	if mean > 5 {
		t.Errorf("cyclic sequential write mean %.3f ms, want < 5 ms", mean)
	}
	// GC should find (nearly) fully-invalid victims: relocations must be a
	// tiny fraction of pages written.
	written := s.Counters().BytesWritten / 4096
	if moved := s.Counters().PagesMoved; moved > written/20 {
		t.Errorf("GC moved %d pages for %d written: sequential pattern should be nearly free", moved, written)
	}
}

func TestIdleTimeRestoresPool(t *testing.T) {
	s, clock := newIntel(64 << 20)
	fillSequential(t, s)
	rng := rand.New(rand.NewSource(3))
	g := s.Geometry()
	nSectors := g.Capacity / 4096
	buf := make([]byte, 4096)
	// Degrade the device.
	for i := 0; i < 3000; i++ {
		s.WriteAt(buf, rng.Int63n(nSectors)*4096)
	}
	degraded, _ := s.WriteAt(buf, rng.Int63n(nSectors)*4096)
	// One virtual second of idle lets background GC rebuild the pool.
	clock.Advance(time.Second)
	free0 := s.FreeBlocks()
	recovered, _ := s.WriteAt(buf, rng.Int63n(nSectors)*4096)
	if s.FreeBlocks() < free0-1 {
		t.Fatalf("pool did not grow during idle: %d -> %d", free0, s.FreeBlocks())
	}
	t.Logf("degraded %.3f ms, after idle %.3f ms, free blocks %d", ms(degraded), ms(recovered), s.FreeBlocks())
	if recovered >= degraded && degraded > 2*time.Millisecond {
		t.Errorf("idle time did not restore write latency: %v -> %v", degraded, recovered)
	}
}

func TestDataIntegrityUnderGC(t *testing.T) {
	// Property: after thousands of random overwrites that force garbage
	// collection, every sector reads back its last-written contents.
	s, _ := newIntel(8 << 20)
	g := s.Geometry()
	nSectors := g.Capacity / 4096
	ref := make([]byte, g.Capacity)
	rng := rand.New(rand.NewSource(11))
	buf := make([]byte, 4096)
	for i := 0; i < 6000; i++ {
		sec := rng.Int63n(nSectors)
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		if _, err := s.WriteAt(buf, sec*4096); err != nil {
			t.Fatal(err)
		}
		copy(ref[sec*4096:], buf)
	}
	if s.Counters().GCRuns == 0 {
		t.Fatal("test did not exercise GC")
	}
	got := make([]byte, g.Capacity)
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("data corrupted by FTL garbage collection")
	}
}

func TestTrimInvalidates(t *testing.T) {
	s, _ := newIntel(8 << 20)
	fillSequential(t, s)
	moved0 := s.Counters().PagesMoved
	// Trim everything: subsequent writes should find free victims easily.
	if err := s.Trim(0, s.Geometry().Capacity); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		s.WriteAt(buf, rng.Int63n(s.Geometry().Capacity/4096)*4096)
	}
	if moved := s.Counters().PagesMoved - moved0; moved > 100 {
		t.Errorf("GC moved %d pages after full trim, want ~0", moved)
	}
	// Trimmed data reads as zero.
	s2, _ := newIntel(1 << 20)
	data := []byte("hello")
	padded := make([]byte, 4096)
	copy(padded, data)
	s2.WriteAt(padded, 0)
	s2.Trim(0, 4096)
	got := make([]byte, 5)
	s2.ReadAt(got, 0)
	if !bytes.Equal(got, make([]byte, 5)) {
		t.Fatalf("trimmed sector not zeroed: %q", got)
	}
}

func TestTrimAlignment(t *testing.T) {
	s, _ := newIntel(1 << 20)
	if err := s.Trim(100, 4096); !errors.Is(err, storage.ErrUnaligned) {
		t.Fatalf("unaligned trim accepted: %v", err)
	}
}

func TestFaultInjection(t *testing.T) {
	s, clock := newIntel(1 << 20)
	boom := errors.New("boom")
	s.SetFault(func(op storage.Op, off int64, n int) error { return boom })
	if _, err := s.ReadAt(make([]byte, 4096), 0); !errors.Is(err, boom) {
		t.Fatal("read fault not injected")
	}
	if _, err := s.WriteAt(make([]byte, 4096), 0); !errors.Is(err, boom) {
		t.Fatal("write fault not injected")
	}
	if clock.Now() != 0 {
		t.Fatal("failed ops charged latency")
	}
}

func TestCountersAccumulate(t *testing.T) {
	s, _ := newIntel(1 << 20)
	s.WriteAt(make([]byte, 8192), 0)
	s.ReadAt(make([]byte, 4096), 0)
	c := s.Counters()
	if c.Writes != 1 || c.Reads != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.BytesWritten != 8192 || c.BytesRead != 4096 {
		t.Fatalf("byte counters = %+v", c)
	}
	if c.BusyTime <= 0 {
		t.Fatal("busy time missing")
	}
}

func TestSubSectorReadChargedFullSector(t *testing.T) {
	s, _ := newIntel(1 << 20)
	s.WriteAt(make([]byte, 4096), 0)
	full, _ := s.ReadAt(make([]byte, 4096), 0)
	small, _ := s.ReadAt(make([]byte, 16), 0)
	if small != full {
		t.Fatalf("16B read %v != full sector read %v (design principle P2)", small, full)
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero capacity")
		}
	}()
	New(IntelX18M(), 0, vclock.New())
}

func TestReadBatchOverlapsLanes(t *testing.T) {
	s, clock := newIntel(4 << 20)
	// Lay down identifiable data across 16 scattered sectors.
	sec := int64(s.Profile().SectorSize)
	offs := []int64{30, 2, 17, 9, 25, 4, 11, 28, 0, 19, 6, 22, 13, 31, 8, 15}
	for i, o := range offs {
		page := bytes.Repeat([]byte{byte(i + 1)}, int(sec))
		if _, err := s.WriteAt(page, o*sec); err != nil {
			t.Fatal(err)
		}
	}
	// Serial baseline on a twin device.
	s2, _ := newIntel(4 << 20)
	for i, o := range offs {
		page := bytes.Repeat([]byte{byte(i + 1)}, int(sec))
		if _, err := s2.WriteAt(page, o*sec); err != nil {
			t.Fatal(err)
		}
	}
	var serial time.Duration
	for _, o := range offs {
		buf := make([]byte, sec)
		lat, err := s2.ReadAt(buf, o*sec)
		if err != nil {
			t.Fatal(err)
		}
		serial += lat
	}

	reqs := make([]storage.ReadReq, len(offs))
	for i, o := range offs {
		reqs[i] = storage.ReadReq{P: make([]byte, sec), Off: o * sec}
	}
	before := clock.Now()
	batch, err := s.ReadBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if advanced := clock.Now() - before; advanced != batch {
		t.Fatalf("clock advanced %v, batch charged %v", advanced, batch)
	}
	// 16 random reads over 8 lanes must land well under the serial sum and
	// at or above the single-lane bandwidth floor (sum/QueueDepth).
	if batch >= serial {
		t.Fatalf("batch %v not faster than serial %v", batch, serial)
	}
	if floor := serial / time.Duration(s.Profile().QueueDepth); batch < floor/2 {
		t.Fatalf("batch %v implausibly below lane floor %v", batch, floor)
	}
	// Data integrity: reqs were sorted in place, so identify by offset.
	for _, r := range reqs {
		i := -1
		for j, o := range offs {
			if o*sec == r.Off {
				i = j
			}
		}
		if i < 0 || !bytes.Equal(r.P, bytes.Repeat([]byte{byte(i + 1)}, int(sec))) {
			t.Fatalf("data mismatch at off %d", r.Off)
		}
	}
	if got := s.Counters().Reads; got != uint64(len(offs)) {
		t.Fatalf("Reads = %d, want %d (every request accounted)", got, len(offs))
	}
}

func TestReadBatchSequentialRunDiscount(t *testing.T) {
	s, _ := newIntel(4 << 20)
	sec := int64(s.Profile().SectorSize)
	buf := make([]byte, 8*sec)
	if _, err := s.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// 8 contiguous sector reads: one fixed cost + 8 transfers, overlapped.
	reqs := make([]storage.ReadReq, 8)
	for i := range reqs {
		reqs[i] = storage.ReadReq{P: make([]byte, sec), Off: int64(i) * sec}
	}
	batch, err := s.ReadBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Profile()
	perByte := time.Duration(sec) * p.ReadPerByte
	// The run's lone fixed cost and the 8 transfers spread over 8 lanes:
	// max lane = ReadFixed + perByte.
	want := p.ReadFixed + perByte
	if batch != want {
		t.Fatalf("sequential batch = %v, want %v", batch, want)
	}
}

func TestReadBatchErrorsLeaveClockAlone(t *testing.T) {
	s, clock := newIntel(1 << 20)
	reqs := []storage.ReadReq{{P: make([]byte, 4096), Off: 1 << 30}}
	if _, err := s.ReadBatch(reqs); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if clock.Now() != 0 {
		t.Fatal("failed batch advanced the clock")
	}
}

func TestReadBatchTranscendSingleLane(t *testing.T) {
	// QueueDepth 1: the batch equals the sorted serial sum with sequential
	// discounting — no overlap on the old device.
	s, _ := newTranscend(4 << 20)
	sec := int64(s.Profile().SectorSize)
	if _, err := s.WriteAt(make([]byte, 4*sec), 0); err != nil {
		t.Fatal(err)
	}
	reqs := []storage.ReadReq{
		{P: make([]byte, sec), Off: 2 * sec},
		{P: make([]byte, sec), Off: 0},
	}
	batch, err := s.ReadBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Profile()
	perByte := time.Duration(sec) * p.ReadPerByte
	want := 2*p.ReadFixed + 2*perByte // discontiguous: two runs, one lane
	if batch != want {
		t.Fatalf("transcend batch = %v, want %v", batch, want)
	}
}
